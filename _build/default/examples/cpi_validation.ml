(* Native-hardware validation (the paper's Section IV-E / Figure 12):
   run benchmarks natively under "perf", then simulate their Regional
   Pinballs in the Sniper-style timing model and compare CPIs.

     dune exec examples/cpi_validation.exe -- [scale] [bench ...] *)

open Specrepro

let default_benches = [ "505.mcf_r"; "641.leela_s"; "519.lbm_r" ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let scale, benches =
    match args with
    | s :: rest when float_of_string_opt s <> None ->
        (float_of_string s, if rest = [] then default_benches else rest)
    | [] -> (0.25, default_benches)
    | rest -> (0.25, rest)
  in
  let options =
    { Pipeline.default_options with slices_scale = scale; collect_variance = false }
  in
  Printf.printf "%-18s %10s %16s %15s %8s\n" "Benchmark" "perf CPI"
    "Sniper Regional" "Sniper Reduced" "err";
  let errs =
    List.map
      (fun bench ->
        let spec = Sp_workloads.Suite.find bench in
        let r = Pipeline.run_benchmark ~options spec in
        (* the perf side: native execution with hardware counters *)
        let native = r.Pipeline.native in
        let native_cpi = Sp_perf.Perf_counters.cpi native in
        (* the Sniper side: warmed regional replays in the timing model *)
        let sniper = (Pipeline.warmup_regional r).Runstats.cpi in
        let reduced = (Pipeline.reduced_warm r).Runstats.cpi in
        let err = Sp_util.Stats.rel_error_pct ~reference:native_cpi sniper in
        Printf.printf "%-18s %10.3f %16.3f %15.3f %7.1f%%\n" bench native_cpi
          sniper reduced err;
        err)
      benches
  in
  Printf.printf "\nAverage CPI error: %.2f%% (paper reports 2.59%% on real \
                 hardware at full scale)\n"
    (Sp_util.Stats.mean (Array.of_list errs));
  (* show what a full perf report looks like for the last benchmark *)
  match List.rev benches with
  | last :: _ ->
      let spec = Sp_workloads.Suite.find last in
      let built = Sp_workloads.Benchspec.build ~slices_scale:0.05 spec in
      Printf.printf "\n$ perf stat ./%s (simulated hardware)\n" last;
      let sample = Sp_perf.Native.run built.Sp_workloads.Benchspec.program in
      Format.printf "%a" Sp_perf.Perf_counters.pp sample
  | [] -> ()
