(* Phase explorer: visualise a workload's phase behaviour the way
   Figures 1 and 6 of the paper do — a timeline of which cluster each
   slice belongs to, and the weight distribution of the chosen
   simulation points.

     dune exec examples/phase_explorer.exe -- [benchmark] [scale] *)

open Sp_pin
open Sp_simpoint

let glyph_of_cluster c =
  let glyphs = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghij" in
  if c < String.length glyphs then glyphs.[c] else '#'

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "623.xalancbmk_s" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.25
  in
  let spec = Sp_workloads.Suite.find bench in
  let built = Sp_workloads.Benchspec.build ~slices_scale:scale spec in
  let prog = built.Sp_workloads.Benchspec.program in

  (* collect BBVs over the whole execution *)
  let bbv =
    Bbv_tool.create ~slice_len:built.Sp_workloads.Benchspec.slice_insns prog
  in
  let run = Pin.run_fresh ~tools:[ Bbv_tool.hooks bbv ] prog in
  Bbv_tool.finish bbv;
  let slices = Bbv_tool.slices bbv in
  Printf.printf "%s: %d instructions, %d slices\n" spec.Sp_workloads.Benchspec.name
    run.Pin.retired (Array.length slices);

  (* cluster and show the phase timeline *)
  let sel =
    Simpoints.select ~slice_len:built.Sp_workloads.Benchspec.slice_insns slices
  in
  Printf.printf "SimPoint found %d phases\n\n" sel.Simpoints.chosen_k;
  let n = Array.length sel.Simpoints.assignment in
  let width = 100 in
  let per_char = max 1 (n / width) in
  Printf.printf "Phase timeline (each column = %d slices):\n  " per_char;
  let i = ref 0 in
  while !i < n do
    (* majority cluster in this column *)
    let counts = Hashtbl.create 8 in
    for j = !i to min (n - 1) (!i + per_char - 1) do
      let c = sel.Simpoints.assignment.(j) in
      Hashtbl.replace counts c
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts c))
    done;
    let best, _ =
      Hashtbl.fold (fun c k (bc, bk) -> if k > bk then (c, k) else (bc, bk))
        counts (0, 0)
    in
    print_char (glyph_of_cluster best);
    i := !i + per_char
  done;
  print_newline ();

  (* weight stack, Figure 6 style *)
  Printf.printf "\nSimulation-point weights (the paper's Figure 6 bar):\n";
  let points = Array.copy sel.Simpoints.points in
  Array.sort (fun (a : Simpoints.point) b -> compare b.weight a.weight) points;
  let cum = ref 0.0 in
  let cut_printed = ref false in
  Array.iter
    (fun (p : Simpoints.point) ->
      if (not !cut_printed) && !cum >= 0.9 then begin
        Printf.printf "  ---- 90th percentile ----\n";
        cut_printed := true
      end;
      cum := !cum +. p.weight;
      let bar = String.make (max 1 (int_of_float (p.weight *. 120.0))) '#' in
      Printf.printf "  %c %5.2f%% %s\n"
        (glyph_of_cluster p.cluster)
        (p.weight *. 100.0) bar)
    points;
  Printf.printf
    "\n%d of %d points cover 90%% of execution (paper reports %d of %d).\n"
    (Array.length (Simpoints.reduce sel ~coverage:0.9))
    (Array.length points) spec.Sp_workloads.Benchspec.planted_n90
    spec.Sp_workloads.Benchspec.planted_phases
