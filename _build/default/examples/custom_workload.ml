(* Defining your own workload.

   Downstream users are not limited to the 29 calibrated CPU2017 stand-
   ins: a benchmark is just a {!Sp_workloads.Benchspec.t} — a kernel
   palette, a footprint profile, a phase count and weight skew — and the
   whole pipeline (pinballs, SimPoint, cache/timing simulation) runs on
   it unchanged.

     dune exec examples/custom_workload.exe *)

open Sp_workloads
open Specrepro

let my_benchmark =
  {
    Benchspec.name = "999.mydb_s";
    (* an OLTP-ish flavour: hash-table probes, pointer chasing through
       index nodes, a log-writer stream, and some compute *)
    suite_class = Benchspec.Int_speed;
    planted_phases = 8;
    planted_n90 = 5;
    reduction_hint = 500.0;
    palette =
      Kernel.[ hash_mix; pointer_chase; store_stream; btree_search; alu_mix ];
    footprints = Benchspec.[ Large; Xlarge; Medium; Small ];
    weight_override = None;
    seed = 20260705;
  }

let () =
  Printf.printf "Custom workload: %s (%d planted phases)\n"
    my_benchmark.Benchspec.name my_benchmark.Benchspec.planted_phases;
  List.iter
    (fun (k : Kernel.t) -> Printf.printf "  kernel: %s\n" k.Kernel.name)
    my_benchmark.Benchspec.palette;

  let options =
    {
      Pipeline.default_options with
      slices_scale = 0.25;
      collect_variance = false;
      progress = false;
    }
  in
  let r = Pipeline.run_benchmark ~options my_benchmark in
  Printf.printf "\nSimPoint found %d phases; %d cover 90%%\n"
    (Array.length r.Pipeline.selection.points)
    (Pipeline.reduced_count r);
  let show (s : Runstats.run_stats) =
    Printf.printf "  %-18s %10.0f insns  %s  L3 %.1f%%  CPI %.3f\n"
      s.Runstats.label s.Runstats.insns
      (Format.asprintf "%a" Sp_pin.Mix.pp s.Runstats.mix)
      (s.Runstats.l3_miss *. 100.0) s.Runstats.cpi
  in
  show r.Pipeline.whole;
  show (Pipeline.regional r);
  show (Pipeline.warmup_regional r);
  Printf.printf
    "\nmix error %.2f pp; instruction reduction %.0fx — your workload, the \
     paper's pipeline.\n"
    (Runstats.mix_error_pp ~reference:r.Pipeline.whole (Pipeline.regional r))
    (r.Pipeline.whole.Runstats.insns /. (Pipeline.regional r).Runstats.insns)
