(* Quickstart: the SimPoint pipeline on one benchmark, end to end.

     dune exec examples/quickstart.exe -- [benchmark] [scale]

   Builds the synthetic 505.mcf_r workload, logs a Whole Pinball while
   profiling it, selects simulation points, replays the Regional
   Pinballs, and prints the paper's core comparison: how well a handful
   of simulation points represents the whole run. *)

open Specrepro

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "505.mcf_r" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.25
  in
  let spec = Sp_workloads.Suite.find bench in
  Printf.printf "Benchmark: %s (%s)\n" spec.Sp_workloads.Benchspec.name
    (Sp_workloads.Benchspec.suite_class_name
       spec.Sp_workloads.Benchspec.suite_class);
  let options =
    { Pipeline.default_options with slices_scale = scale; collect_variance = false }
  in
  let r = Pipeline.run_benchmark ~options spec in

  Printf.printf "\nWhole run: %d instructions in %d slices of %d\n"
    r.Pipeline.whole_insns r.Pipeline.selection.num_slices
    r.Pipeline.built.Sp_workloads.Benchspec.slice_insns;
  Printf.printf "SimPoint chose %d simulation points (paper: %d); %d cover 90%%\n"
    r.Pipeline.selection.chosen_k spec.Sp_workloads.Benchspec.planted_phases
    (Pipeline.reduced_count r);

  Printf.printf "\nSimulation points (weight-ordered):\n";
  let points = Array.copy r.Pipeline.selection.points in
  Array.sort
    (fun (a : Sp_simpoint.Simpoints.point) b -> compare b.weight a.weight)
    points;
  Array.iteri
    (fun i (p : Sp_simpoint.Simpoints.point) ->
      if i < 10 then
        Printf.printf "  %2d. weight %5.2f%%  slice %6d (@instruction %d)\n"
          (i + 1) (p.weight *. 100.0) p.slice_index p.start_icount)
    points;
  if Array.length points > 10 then
    Printf.printf "  ... and %d more\n" (Array.length points - 10);

  let show (s : Runstats.run_stats) =
    Printf.printf "  %-18s %12.0f insns   %s   CPI %.3f\n" s.Runstats.label
      s.Runstats.insns
      (Format.asprintf "%a" Sp_pin.Mix.pp s.Runstats.mix)
      s.Runstats.cpi
  in
  Printf.printf "\nWhole vs sampled runs:\n";
  show r.Pipeline.whole;
  show (Pipeline.regional r);
  show (Pipeline.reduced r);
  let reg = Pipeline.regional r in
  Printf.printf
    "\nInstruction-distribution error (largest class): %.2f percentage points\n"
    (Runstats.mix_error_pp ~reference:r.Pipeline.whole reg);
  Printf.printf "Instruction reduction: %.0fx (Regional), %.0fx (Reduced)\n"
    (r.Pipeline.whole.Runstats.insns /. reg.Runstats.insns)
    (r.Pipeline.whole.Runstats.insns /. (Pipeline.reduced r).Runstats.insns)
