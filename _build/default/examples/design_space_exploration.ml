(* Design-space exploration with simulation points — the use case the
   paper's title is about, done the way its Section IV-D recommends:
   sample with SimPoints, warm before measuring, and validate the
   conclusion against full runs.

   We sweep the L2 capacity of the allcache hierarchy on a memory-bound
   workload and ask the design question "where does growing L2 stop
   paying off?", answered three ways: whole runs (ground truth), warmed
   Regional runs (the recommended practice, ~hundreds of times cheaper),
   and cold Regional runs (the anti-pattern).

     dune exec examples/design_space_exploration.exe -- [benchmark] [scale] *)

open Specrepro

let l2_sizes_kb = [ 16; 32; 64; 128 ]

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "641.leela_s" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.25
  in
  let spec = Sp_workloads.Suite.find bench in
  Printf.printf "L2 design sweep on %s (scaled hierarchy, L2 candidates: %s kB)\n\n"
    spec.Sp_workloads.Benchspec.name
    (String.concat "/" (List.map string_of_int l2_sizes_kb));
  Printf.printf "%8s | %12s | %14s | %14s\n" "L2 (kB)" "whole L2miss"
    "warm Regional" "cold Regional";
  let rows =
    List.map
      (fun size_kb ->
        let cache_config =
          let base = Sp_cache.Config.allcache_sim in
          {
            base with
            Sp_cache.Config.l2 =
              Sp_cache.Config.level ~name:"L2" ~size_kb
                ~assoc:base.Sp_cache.Config.l2.assoc
                ~line_bytes:base.Sp_cache.Config.l2.line_bytes;
          }
        in
        let options =
          {
            Pipeline.default_options with
            slices_scale = scale;
            collect_variance = false;
            progress = false;
            cache_config;
          }
        in
        let r = Pipeline.run_benchmark ~options spec in
        let whole = r.Pipeline.whole.Runstats.l2_miss in
        let warm = (Pipeline.warmup_regional r).Runstats.l2_miss in
        let cold = (Pipeline.regional r).Runstats.l2_miss in
        Printf.printf "%8d | %11.2f%% | %13.2f%% | %13.2f%%\n" size_kb
          (whole *. 100.) (warm *. 100.) (cold *. 100.);
        (size_kb, whole, warm, cold))
      l2_sizes_kb
  in
  (* the design question: the smallest L2 whose miss rate is within 15%
     of the best (largest) configuration *)
  let knee column =
    let best = column (List.nth rows (List.length rows - 1)) in
    List.find_map
      (fun row ->
        if column row <= (best *. 1.15) +. 1e-9 then
          Some (let s, _, _, _ = row in s)
        else None)
      rows
    |> Option.value ~default:0
  in
  let whole_knee = knee (fun (_, w, _, _) -> w) in
  let warm_knee = knee (fun (_, _, w, _) -> w) in
  let cold_knee = knee (fun (_, _, _, c) -> c) in
  Printf.printf
    "\nSmallest L2 within 15%% of the best miss rate:\n\
    \  whole runs:    %d kB   <- ground truth\n\
    \  warm regional: %d kB   %s\n\
    \  cold regional: %d kB   %s\n"
    whole_knee warm_knee
    (if warm_knee = whole_knee then "(same conclusion, ~100x cheaper)"
     else "(DIFFERENT conclusion!)")
    cold_knee
    (if cold_knee = whole_knee then "(got lucky)"
     else "(wrong: cold caches mask the capacity effect)")
