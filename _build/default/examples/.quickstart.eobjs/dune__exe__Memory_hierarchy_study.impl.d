examples/memory_hierarchy_study.ml: Array List Pipeline Printf Runstats Sp_cache Sp_workloads Specrepro Sys
