examples/pinball_portability.ml: Array Filename Format List Logger Pinball Pipeline Printf Replayer Sp_pin Sp_pinball Sp_simpoint Sp_workloads Specrepro Store Sys Unix
