examples/phase_explorer.mli:
