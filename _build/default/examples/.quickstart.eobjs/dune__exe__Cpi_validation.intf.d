examples/cpi_validation.mli:
