examples/quickstart.ml: Array Format Pipeline Printf Runstats Sp_pin Sp_simpoint Sp_workloads Specrepro Sys
