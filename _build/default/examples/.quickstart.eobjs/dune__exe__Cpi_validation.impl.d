examples/cpi_validation.ml: Array Format List Pipeline Printf Runstats Sp_perf Sp_util Sp_workloads Specrepro Sys
