examples/custom_workload.ml: Array Benchspec Format Kernel List Pipeline Printf Runstats Sp_pin Sp_workloads Specrepro
