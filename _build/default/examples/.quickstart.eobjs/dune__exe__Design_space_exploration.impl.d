examples/design_space_exploration.ml: Array List Option Pipeline Printf Runstats Sp_cache Sp_workloads Specrepro String Sys
