examples/phase_explorer.ml: Array Bbv_tool Hashtbl Option Pin Printf Simpoints Sp_pin Sp_simpoint Sp_workloads String Sys
