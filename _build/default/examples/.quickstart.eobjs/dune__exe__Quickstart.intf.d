examples/quickstart.mli:
