examples/memory_hierarchy_study.mli:
