examples/pinball_portability.mli:
