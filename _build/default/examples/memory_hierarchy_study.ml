(* The paper's cautionary tale (Section IV-D): exploring a memory
   hierarchy with SimPoints gives badly wrong LLC numbers unless the
   caches are warmed before each simulation point.

     dune exec examples/memory_hierarchy_study.exe -- [benchmark] [scale]

   Runs a memory-bound workload and prints the same cache-design
   question answered three ways: from the whole run (ground truth),
   from cold Regional Pinballs (the naive approach), and from warmed
   Regional Pinballs (the mitigation). *)

open Specrepro

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "605.mcf_s" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.25
  in
  let spec = Sp_workloads.Suite.find bench in
  let options =
    { Pipeline.default_options with slices_scale = scale; collect_variance = false }
  in
  Printf.printf "Memory-hierarchy study on %s\n" spec.Sp_workloads.Benchspec.name;
  Printf.printf "(allcache hierarchy: Table I, capacity-scaled 1/%d)\n\n"
    Sp_cache.Config.sim_scale;
  let r = Pipeline.run_benchmark ~options spec in
  let whole = r.Pipeline.whole in
  let cold = Pipeline.regional r in
  let warm = Pipeline.warmup_regional r in
  Printf.printf "%-24s %8s %8s %8s %12s\n" "Run" "L1D" "L2" "L3" "L3 accesses";
  List.iter
    (fun (s : Runstats.run_stats) ->
      Printf.printf "%-24s %7.2f%% %7.2f%% %7.2f%% %12.0f\n" s.Runstats.label
        (s.Runstats.l1d_miss *. 100.0)
        (s.Runstats.l2_miss *. 100.0)
        (s.Runstats.l3_miss *. 100.0)
        s.Runstats.l3_accesses)
    [ whole; cold; warm ];
  let err label (s : Runstats.run_stats) =
    let l1d, l2, l3 = Runstats.miss_rate_error_pct ~reference:whole s in
    Printf.printf "%-24s L1D %6.1f%%   L2 %6.1f%%   L3 %6.1f%%\n" label l1d l2 l3
  in
  Printf.printf "\nMiss-rate error vs the whole run:\n";
  err "cold Regional" cold;
  err "Warmup Regional" warm;
  Printf.printf
    "\nThe cold Regional run inflates last-level miss rates (every region\n\
     starts with empty caches), exactly the hazard the paper reports for\n\
     memory-hierarchy studies; warming the caches for %d instructions\n\
     before each point recovers most of the fidelity.\n"
    r.Pipeline.options.Pipeline.warmup_insns;
  (* a concrete design-decision illustration: compare two L3 sizes
     using cold pinballs vs whole runs *)
  Printf.printf
    "\nDesign-question check: does doubling L3 halve the L3 miss rate?\n";
  let bigger_l3 =
    let h = options.Pipeline.cache_config in
    {
      h with
      Sp_cache.Config.l3 =
        { h.Sp_cache.Config.l3 with
          Sp_cache.Config.size_bytes = h.Sp_cache.Config.l3.size_bytes * 2 };
    }
  in
  let options2 = { options with Pipeline.cache_config = bigger_l3 } in
  let r2 = Pipeline.run_benchmark ~options:options2 spec in
  let pct x = x *. 100.0 in
  Printf.printf "  whole runs:     %.2f%% -> %.2f%%\n"
    (pct whole.Runstats.l3_miss)
    (pct r2.Pipeline.whole.Runstats.l3_miss);
  Printf.printf "  cold regional:  %.2f%% -> %.2f%%   (cold caches mask the gain)\n"
    (pct cold.Runstats.l3_miss)
    (pct (Pipeline.regional r2).Runstats.l3_miss);
  Printf.printf "  warm regional:  %.2f%% -> %.2f%%\n"
    (pct warm.Runstats.l3_miss)
    (pct (Pipeline.warmup_regional r2).Runstats.l3_miss)
