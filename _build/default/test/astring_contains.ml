(* Tiny substring helper shared by the test modules (no external string
   library is vendored). *)

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i + nn <= hn do
      if String.sub haystack !i nn = needle then found := true;
      incr i
    done;
    !found
  end
