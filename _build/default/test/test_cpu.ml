(* Tests for Sp_cpu: branch prediction, core configs and the interval
   timing model. *)

open Sp_vm
open Sp_cpu

(* ------------------------------------------------------------------ *)
(* Branch predictor *)

let test_bp_learns_bias () =
  let bp = Branch_predictor.create () in
  for _ = 1 to 1000 do
    ignore (Branch_predictor.predict_and_update bp ~pc:100 ~taken:true)
  done;
  Alcotest.(check bool) "biased branch learned" true
    (Branch_predictor.mispredict_rate bp < 0.02)

let test_bp_learns_alternation () =
  let bp = Branch_predictor.create () in
  for i = 1 to 4000 do
    ignore (Branch_predictor.predict_and_update bp ~pc:7 ~taken:(i mod 2 = 0))
  done;
  (* gshare history resolves a strict alternation *)
  Alcotest.(check bool)
    (Printf.sprintf "alternation learned (%.3f)" (Branch_predictor.mispredict_rate bp))
    true
    (Branch_predictor.mispredict_rate bp < 0.10)

let test_bp_random_is_hard () =
  let bp = Branch_predictor.create () in
  let rng = Sp_util.Rng.create 21 in
  for _ = 1 to 4000 do
    ignore (Branch_predictor.predict_and_update bp ~pc:3 ~taken:(Sp_util.Rng.bool rng))
  done;
  Alcotest.(check bool) "random near 50%" true
    (Branch_predictor.mispredict_rate bp > 0.35)

let test_bp_observe_and_reset () =
  let bp = Branch_predictor.create () in
  Branch_predictor.observe bp ~pc:1 ~taken:true;
  Alcotest.(check int) "observe not counted" 0 (Branch_predictor.lookups bp);
  ignore (Branch_predictor.predict_and_update bp ~pc:1 ~taken:true);
  Branch_predictor.reset_stats bp;
  Alcotest.(check int) "stats reset" 0 (Branch_predictor.lookups bp)

(* ------------------------------------------------------------------ *)
(* Config *)

let test_config_table3 () =
  let c = Core_config.i7_3770 in
  Alcotest.(check (float 0.0)) "3.4 GHz" 3.4 c.Core_config.freq_ghz;
  Alcotest.(check int) "ROB" 168 c.Core_config.rob_entries;
  Alcotest.(check int) "mispredict penalty" 8 c.Core_config.branch_penalty;
  let rendered = Format.asprintf "%a" Core_config.pp c in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring_contains.contains rendered needle))
    [ "i7-3770"; "19 stage"; "168 entries"; "8 cycles"; "8 MB" ]

let test_config_sim_scaled () =
  let sim = Core_config.i7_3770_sim in
  Alcotest.(check int) "scaled L3"
    (8 * 1024 * 1024 / Sp_cache.Config.sim_scale)
    sim.Core_config.caches.Sp_cache.Config.l3.size_bytes;
  (* non-cache parameters unchanged *)
  Alcotest.(check int) "ROB unchanged" 168 sim.Core_config.rob_entries

(* ------------------------------------------------------------------ *)
(* Interval core *)

let alu_loop_program ~iters =
  let a = Asm.create () in
  Asm.li a 1 iters;
  let top = Asm.here a in
  Asm.alui a Add 2 2 3;
  Asm.alui a Xor 3 2 5;
  Asm.alui a Add 4 4 1;
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.halt a;
  Asm.assemble a

let chase_program ~entries ~iters =
  (* dependent loads over an LCG ring, via the workload kernel *)
  let k = Sp_workloads.Kernel.pointer_chase in
  let p =
    Sp_workloads.Kernel.normalize
      { Sp_workloads.Kernel.base = 0x40_0000; elems = entries; stride = 8;
        chunk = iters; seed = 3 }
  in
  let a = Asm.create () in
  Asm.li a 15 0;
  let rtl = Sp_workloads.Rtl.emit a in
  k.Sp_workloads.Kernel.emit_init a rtl p;
  let fn = Asm.new_label a in
  Asm.li a 12 4;
  let top = Asm.here a in
  Asm.call a fn;
  Asm.alui a Sub 12 12 1;
  Asm.branch a Gt 12 15 top;
  Asm.halt a;
  Asm.place a fn;
  k.Sp_workloads.Kernel.emit_body a p;
  Asm.ret a;
  Asm.assemble a

let time_program prog =
  let core = Interval_core.create ~config:Core_config.i7_3770_sim prog in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks:(Interval_core.hooks core) prog m);
  core

let test_alu_cpi_near_dispatch () =
  let core = time_program (alu_loop_program ~iters:5000) in
  let cpi = Interval_core.cpi core in
  (* 4-wide dispatch: pure ALU code should run near 0.25 CPI *)
  Alcotest.(check bool) (Printf.sprintf "alu CPI %.3f" cpi) true
    (cpi > 0.2 && cpi < 0.45)

let test_memory_bound_cpi_higher () =
  let alu = time_program (alu_loop_program ~iters:5000) in
  let mem = time_program (chase_program ~entries:4096 ~iters:1000) in
  Alcotest.(check bool)
    (Printf.sprintf "chase CPI %.2f > alu CPI %.2f"
       (Interval_core.cpi mem) (Interval_core.cpi alu))
    true
    (Interval_core.cpi mem > 2.0 *. Interval_core.cpi alu)

let test_stats_components_sum () =
  let core = time_program (chase_program ~entries:1024 ~iters:500) in
  let s = Interval_core.stats core in
  Alcotest.(check (float 1e-6)) "components sum"
    s.Interval_core.cycles
    (s.Interval_core.base_cycles +. s.Interval_core.branch_stall_cycles
   +. s.Interval_core.memory_stall_cycles);
  Alcotest.(check bool) "level hits recorded" true
    (Array.fold_left ( + ) 0 s.Interval_core.level_hits > 0)

let test_warming_excluded () =
  let prog = alu_loop_program ~iters:1000 in
  let core = Interval_core.create ~config:Core_config.i7_3770_sim prog in
  Interval_core.set_warming core true;
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks:(Interval_core.hooks core) ~fuel:500 prog m);
  Alcotest.(check int) "warming counts nothing" 0 (Interval_core.instructions core);
  Alcotest.(check (float 0.0)) "no cycles" 0.0 (Interval_core.cycles core);
  Interval_core.set_warming core false;
  ignore (Interp.run ~hooks:(Interval_core.hooks core) ~fuel:500 prog m);
  Alcotest.(check int) "measured after warmup" 500 (Interval_core.instructions core)

let test_reset_state () =
  let prog = alu_loop_program ~iters:100 in
  let core = time_program prog in
  Interval_core.reset_state core;
  Alcotest.(check int) "instructions zeroed" 0 (Interval_core.instructions core);
  Alcotest.(check (float 0.0)) "cpi zero" 0.0 (Interval_core.cpi core)

let test_seconds () =
  let core = time_program (alu_loop_program ~iters:1000) in
  let s = Interval_core.seconds core in
  Alcotest.(check (float 1e-12)) "seconds = cycles/freq"
    (Interval_core.cycles core /. 3.4e9)
    s

let test_branch_penalty_counted () =
  (* a data-dependent 50/50 branch: mispredicts must show up as stalls *)
  let a = Asm.create () in
  Asm.li a 1 4000;
  Asm.li a 4 (0x5DEECE66D land 0x3FFFFFFF);
  let top = Asm.here a in
  Asm.alui a Mul 4 4 1103515245;
  Asm.alui a Add 4 4 12345;
  Asm.alui a And 4 4 0x3FFFFFFF;
  Asm.alui a Shr 5 4 7;
  Asm.alui a And 5 5 1;
  let skip = Asm.new_label a in
  Asm.branch a Eq 5 15 skip;
  Asm.alui a Add 6 6 1;
  Asm.place a skip;
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.halt a;
  let prog = Asm.assemble a in
  let core = time_program prog in
  let s = Interval_core.stats core in
  Alcotest.(check bool) "mispredicts seen" true (s.Interval_core.branch_mispredicts > 500);
  Alcotest.(check bool) "stall cycles accrued" true
    (s.Interval_core.branch_stall_cycles
    >= float_of_int s.Interval_core.branch_mispredicts *. 8.0 -. 1.0)

let suite =
  [
    Alcotest.test_case "bp learns bias" `Quick test_bp_learns_bias;
    Alcotest.test_case "bp learns alternation" `Quick test_bp_learns_alternation;
    Alcotest.test_case "bp random hard" `Quick test_bp_random_is_hard;
    Alcotest.test_case "bp observe/reset" `Quick test_bp_observe_and_reset;
    Alcotest.test_case "Table III config" `Quick test_config_table3;
    Alcotest.test_case "scaled sim config" `Quick test_config_sim_scaled;
    Alcotest.test_case "alu CPI near dispatch" `Quick test_alu_cpi_near_dispatch;
    Alcotest.test_case "memory-bound CPI higher" `Quick test_memory_bound_cpi_higher;
    Alcotest.test_case "stats components sum" `Quick test_stats_components_sum;
    Alcotest.test_case "warming excluded" `Quick test_warming_excluded;
    Alcotest.test_case "reset state" `Quick test_reset_state;
    Alcotest.test_case "seconds" `Quick test_seconds;
    Alcotest.test_case "branch penalty counted" `Quick test_branch_penalty_counted;
  ]
