(* Final coverage batch: ROI detection, address masking, time-model
   ordering, normalisation invariants, CPI-stack consistency. *)

open Sp_vm

(* ------------------------------------------------------------------ *)
(* ROI tool *)

let test_roi_detection () =
  let a = Asm.create () in
  Asm.li a 1 100;
  let top = Asm.here a in
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  (* the "driver" starts here, after 1 + 200 init instructions *)
  let roi = Asm.position a in
  Asm.li a 2 7;
  Asm.halt a;
  let prog = Asm.assemble a in
  let tool = Sp_pin.Roi_tool.create ~target_pc:roi in
  ignore (Sp_pin.Pin.run_fresh ~tools:[ Sp_pin.Roi_tool.hooks tool ] prog);
  Alcotest.(check (option int)) "roi offset" (Some 201)
    (Sp_pin.Roi_tool.reached_at tool)

let test_roi_unreached () =
  let prog = Program.of_instrs [| Sp_isa.Isa.Halt |] in
  let tool = Sp_pin.Roi_tool.create ~target_pc:12345 in
  ignore (Sp_pin.Pin.run_fresh ~tools:[ Sp_pin.Roi_tool.hooks tool ] prog);
  Alcotest.(check (option int)) "never" None (Sp_pin.Roi_tool.reached_at tool)

let test_benchspec_roi_pc () =
  let spec = Sp_workloads.Suite.find "620.omnetpp_s" in
  let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
  let roi_pc = built.Sp_workloads.Benchspec.roi_start_pc in
  Alcotest.(check bool) "roi pc in range" true
    (roi_pc > 0
    && roi_pc < Array.length built.Sp_workloads.Benchspec.program.Program.instrs);
  (* everything at/after the ROI start and before the phase functions is
     driver code: the detector must fire after the init instructions *)
  let tool = Sp_pin.Roi_tool.create ~target_pc:roi_pc in
  ignore
    (Sp_pin.Pin.run_fresh ~tools:[ Sp_pin.Roi_tool.hooks tool ]
       built.Sp_workloads.Benchspec.program);
  match Sp_pin.Roi_tool.reached_at tool with
  | None -> Alcotest.fail "ROI never reached"
  | Some n -> Alcotest.(check bool) "init is non-trivial" true (n > 100)

(* ------------------------------------------------------------------ *)
(* Address masking *)

let test_memory_negative_address_masked () =
  let m = Memory.create () in
  (* negative addresses mask into the 38-bit space instead of crashing *)
  Memory.store m (-8) 42;
  Alcotest.(check int) "read back through mask" 42 (Memory.load m (-8))

let test_interp_wild_address () =
  (* a load through an uninitialised (zero) register plus a huge offset
     must not crash the interpreter *)
  let prog =
    Program.of_instrs
      [| Sp_isa.Isa.Li (1, max_int); Sp_isa.Isa.Load (2, 1, 16); Sp_isa.Isa.Halt |]
  in
  let m = Interp.create ~entry:0 () in
  let status = Interp.run prog m in
  Alcotest.(check bool) "survives" true (status = Interp.Halted)

(* ------------------------------------------------------------------ *)
(* Time model ordering *)

let test_timemodel_ordering () =
  let open Sp_util.Timemodel in
  Alcotest.(check bool) "native fastest" true
    (replay_rate Native > replay_rate Logging);
  Alcotest.(check bool) "logging faster than tool replay" true
    (replay_rate Logging > replay_rate Whole);
  Alcotest.(check bool) "regional replay slightly faster than whole" true
    (replay_rate Regional > replay_rate Whole)

(* ------------------------------------------------------------------ *)
(* Kernel normalisation *)

let prop_normalize_invariants =
  QCheck.Test.make ~name:"Kernel.normalize invariants" ~count:200
    QCheck.(triple small_int small_int small_int)
    (fun (elems, stride, chunk) ->
      let p =
        Sp_workloads.Kernel.normalize
          { Sp_workloads.Kernel.base = 0; elems; stride; chunk; seed = 1 }
      in
      p.Sp_workloads.Kernel.elems >= 16
      && p.Sp_workloads.Kernel.elems mod 4 = 0
      && p.Sp_workloads.Kernel.stride >= 1
      && p.Sp_workloads.Kernel.chunk >= 4
      && p.Sp_workloads.Kernel.chunk mod 4 = 0)

let test_chase_stride () =
  (* benchspec assigns line-spaced entries to pointer-chase phases *)
  let spec = Sp_workloads.Suite.find "505.mcf_r" in
  let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
  Array.iter
    (fun (ph : Sp_workloads.Benchspec.phase) ->
      if ph.kernel.Sp_workloads.Kernel.name = "pointer_chase" then
        Alcotest.(check int) "chase stride" 4
          ph.params.Sp_workloads.Kernel.stride)
    built.Sp_workloads.Benchspec.phases

let test_call_cost_positive () =
  let spec = Sp_workloads.Suite.find "505.mcf_r" in
  let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
  Array.iter
    (fun (ph : Sp_workloads.Benchspec.phase) ->
      Alcotest.(check bool)
        (ph.kernel.Sp_workloads.Kernel.name ^ " cost positive")
        true
        (ph.Sp_workloads.Benchspec.call_cost > 4.0))
    built.Sp_workloads.Benchspec.phases

let test_calibrated_kernel_cost () =
  (* a calibrated kernel's call_cost must match a direct measurement *)
  let spec =
    {
      (Sp_workloads.Suite.find "620.omnetpp_s") with
      Sp_workloads.Benchspec.name = "cal.test";
      palette = [ Sp_workloads.Kernel.selection_sort ];
      planted_phases = 2;
      planted_n90 = 2;
      footprints = [ Sp_workloads.Benchspec.Small ];
    }
  in
  let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
  Array.iter
    (fun (ph : Sp_workloads.Benchspec.phase) ->
      (* selection sort of a 24-window costs roughly 2000-2600 per call *)
      Alcotest.(check bool)
        (Printf.sprintf "measured cost plausible (%.0f)" ph.Sp_workloads.Benchspec.call_cost)
        true
        (ph.Sp_workloads.Benchspec.call_cost > 1000.0
        && ph.Sp_workloads.Benchspec.call_cost < 4000.0))
    built.Sp_workloads.Benchspec.phases

(* ------------------------------------------------------------------ *)
(* CPI stack *)

let test_cpistack_shares () =
  let spec = Sp_workloads.Suite.find "620.omnetpp_s" in
  let options =
    {
      Specrepro.Pipeline.default_options with
      slices_scale = 0.02;
      collect_variance = false;
      progress = false;
    }
  in
  let r = Specrepro.Pipeline.run_benchmark ~options spec in
  let s = r.Specrepro.Pipeline.whole_core in
  let total = s.Sp_cpu.Interval_core.cycles in
  let sum =
    s.Sp_cpu.Interval_core.base_cycles
    +. s.Sp_cpu.Interval_core.branch_stall_cycles
    +. s.Sp_cpu.Interval_core.memory_stall_cycles
  in
  Alcotest.(check (float 1e-6)) "stack sums to total" total sum;
  let table = Specrepro.Experiments.cpistack [ r ] in
  Alcotest.(check bool) "renders" true
    (Astring_contains.contains (Sp_util.Table.render table) "620.omnetpp_s")

let suite =
  [
    Alcotest.test_case "roi detection" `Quick test_roi_detection;
    Alcotest.test_case "roi unreached" `Quick test_roi_unreached;
    Alcotest.test_case "benchspec roi pc" `Quick test_benchspec_roi_pc;
    Alcotest.test_case "negative address masked" `Quick
      test_memory_negative_address_masked;
    Alcotest.test_case "interp wild address" `Quick test_interp_wild_address;
    Alcotest.test_case "timemodel ordering" `Quick test_timemodel_ordering;
    QCheck_alcotest.to_alcotest prop_normalize_invariants;
    Alcotest.test_case "chase stride" `Quick test_chase_stride;
    Alcotest.test_case "call cost positive" `Quick test_call_cost_positive;
    Alcotest.test_case "calibrated kernel cost" `Quick test_calibrated_kernel_cost;
    Alcotest.test_case "cpistack shares" `Quick test_cpistack_shares;
  ]
