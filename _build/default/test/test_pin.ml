(* Tests for Sp_pin: the instrumentation engine and pintools. *)

open Sp_isa
open Sp_vm
open Sp_pin

(* a program with a known static mix: per loop iteration
   1 load + 1 store + 1 movs + 3 alu + 1 branch *)
let mix_program ~iters =
  let a = Asm.create () in
  Asm.li a 1 0x1000;
  Asm.li a 2 0x2000;
  Asm.li a 3 iters;
  let top = Asm.here a in
  Asm.load a 4 1 0;
  Asm.store a 4 2 0;
  Asm.movs a 2 1;
  Asm.alui a Add 1 1 8;
  Asm.alui a Add 2 2 8;
  Asm.alui a Sub 3 3 1;
  Asm.branch a Gt 3 15 top;
  Asm.halt a;
  Asm.assemble a

let test_inscount () =
  let prog = mix_program ~iters:10 in
  let tool = Inscount.create () in
  let run = Pin.run_fresh ~tools:[ Inscount.hooks tool ] prog in
  Alcotest.(check int) "total = retired" run.Pin.retired (Inscount.total tool);
  Alcotest.(check int) "loads" 10 (Inscount.by_kind tool Isa.K_load);
  Alcotest.(check int) "stores" 10 (Inscount.by_kind tool Isa.K_store);
  Alcotest.(check int) "movs" 10 (Inscount.by_kind tool Isa.K_movs);
  Alcotest.(check int) "branches" 10 (Inscount.by_kind tool Isa.K_branch);
  Inscount.reset tool;
  Alcotest.(check int) "reset" 0 (Inscount.total tool)

let test_ldstmix () =
  let prog = mix_program ~iters:50 in
  let tool = Ldstmix.create () in
  let run = Pin.run_fresh ~tools:[ Ldstmix.hooks tool ] prog in
  Alcotest.(check int) "MEM_R" 50 (Ldstmix.count tool Isa.Mem_r);
  Alcotest.(check int) "MEM_W" 50 (Ldstmix.count tool Isa.Mem_w);
  Alcotest.(check int) "MEM_RW" 50 (Ldstmix.count tool Isa.Mem_rw);
  Alcotest.(check int) "total" run.Pin.retired (Ldstmix.total tool);
  let m = Ldstmix.mix tool in
  Alcotest.(check (float 1e-9)) "fractions sum to 1" 1.0
    (m.Mix.no_mem +. m.Mix.mem_r +. m.Mix.mem_w +. m.Mix.mem_rw)

let test_mix_weighted () =
  let a = { Mix.no_mem = 1.0; mem_r = 0.0; mem_w = 0.0; mem_rw = 0.0 } in
  let b = { Mix.no_mem = 0.0; mem_r = 1.0; mem_w = 0.0; mem_rw = 0.0 } in
  let w = Mix.weighted [ (3.0, a); (1.0, b) ] in
  Alcotest.(check (float 1e-9)) "no_mem" 0.75 w.Mix.no_mem;
  Alcotest.(check (float 1e-9)) "mem_r" 0.25 w.Mix.mem_r;
  Alcotest.(check (float 1e-9)) "l1 distance" 2.0 (Mix.l1_distance a b);
  Alcotest.(check (float 1e-9)) "max err pp" 100.0
    (Mix.max_abs_error_pp ~reference:a b)

let test_mix_of_counts_zero () =
  let z = Mix.of_counts ~no_mem:0 ~mem_r:0 ~mem_w:0 ~mem_rw:0 in
  Alcotest.(check (float 0.0)) "zero" 0.0 z.Mix.no_mem

let test_allcache_tool () =
  let prog = mix_program ~iters:100 in
  let tool =
    Allcache_tool.create ~config:Sp_cache.Config.allcache_sim prog
  in
  ignore (Pin.run_fresh ~tools:[ Allcache_tool.hooks tool ] prog);
  let s = Allcache_tool.stats tool in
  Alcotest.(check bool) "L1I saw fetches" true (s.Sp_cache.Hierarchy.l1i.accesses > 0);
  (* loop touches a small footprint: data L1 should mostly hit *)
  Alcotest.(check bool) "L1D accessed" true (s.Sp_cache.Hierarchy.l1d.accesses > 300);
  Alcotest.(check bool) "L1D miss rate low" true
    (s.Sp_cache.Hierarchy.l1d.miss_rate < 0.2)

let test_bbv_tool_slices () =
  let prog = mix_program ~iters:200 in
  let bbv = Bbv_tool.create ~slice_len:100 prog in
  let run = Pin.run_fresh ~tools:[ Bbv_tool.hooks bbv ] prog in
  Bbv_tool.finish bbv;
  let slices = Bbv_tool.slices bbv in
  Alcotest.(check int) "slice count" (Bbv_tool.num_slices bbv)
    (Array.length slices);
  (* every slice's bbv mass equals its length; starts are contiguous *)
  let total = ref 0 in
  Array.iteri
    (fun i (s : Bbv_tool.slice) ->
      Alcotest.(check int) "contiguous" !total s.Bbv_tool.start_icount;
      Alcotest.(check int) "index" i s.Bbv_tool.index;
      let mass = Array.fold_left (fun acc (_, c) -> acc + c) 0 s.Bbv_tool.bbv in
      Alcotest.(check int) "mass = length" s.Bbv_tool.length mass;
      if i < Array.length slices - 1 then
        Alcotest.(check int) "full slice" 100 s.Bbv_tool.length;
      total := !total + s.Bbv_tool.length)
    slices;
  Alcotest.(check int) "total = retired" run.Pin.retired !total

let test_bbv_deterministic () =
  let prog = mix_program ~iters:120 in
  let collect () =
    let bbv = Bbv_tool.create ~slice_len:64 prog in
    ignore (Pin.run_fresh ~tools:[ Bbv_tool.hooks bbv ] prog);
    Bbv_tool.finish bbv;
    Bbv_tool.slices bbv
  in
  Alcotest.(check bool) "identical reruns" true (collect () = collect ())

let test_tracer () =
  let prog = mix_program ~iters:5 in
  let t = Tracer.create ~capacity:16 () in
  ignore (Pin.run_fresh ~tools:[ Tracer.hooks t ] prog);
  let events = Tracer.events t in
  Alcotest.(check int) "bounded" 16 (List.length events);
  Alcotest.(check bool) "counted all" true (Tracer.total_events t > 16);
  Tracer.clear t;
  Alcotest.(check int) "cleared" 0 (List.length (Tracer.events t))

let test_multi_tool_composition () =
  let prog = mix_program ~iters:30 in
  let c1 = Inscount.create () and c2 = Inscount.create () in
  let run =
    Pin.run_fresh ~tools:[ Inscount.hooks c1; Inscount.hooks c2 ] prog
  in
  Alcotest.(check int) "both tools saw all" (Inscount.total c1)
    (Inscount.total c2);
  Alcotest.(check int) "= retired" run.Pin.retired (Inscount.total c1)

let suite =
  [
    Alcotest.test_case "inscount" `Quick test_inscount;
    Alcotest.test_case "ldstmix" `Quick test_ldstmix;
    Alcotest.test_case "mix weighted" `Quick test_mix_weighted;
    Alcotest.test_case "mix zero counts" `Quick test_mix_of_counts_zero;
    Alcotest.test_case "allcache tool" `Quick test_allcache_tool;
    Alcotest.test_case "bbv slices" `Quick test_bbv_tool_slices;
    Alcotest.test_case "bbv deterministic" `Quick test_bbv_deterministic;
    Alcotest.test_case "tracer ring" `Quick test_tracer;
    Alcotest.test_case "multi-tool composition" `Quick test_multi_tool_composition;
  ]
