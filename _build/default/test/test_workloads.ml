(* Tests for Sp_workloads: kernels, weights, schedules, benchmark
   construction, the suite registry. *)

open Sp_vm
open Sp_workloads

(* Wrap a single kernel into a runnable program: init + [calls] body
   invocations. *)
let kernel_program (k : Kernel.t) params ~calls =
  let p = Kernel.normalize params in
  let a = Asm.create ~name:k.Kernel.name () in
  Asm.li a 15 0;
  let rtl = Rtl.emit a in
  k.Kernel.emit_init a rtl p;
  let fn = Asm.new_label a in
  Asm.li a 12 calls;
  let top = Asm.here a in
  Asm.call a fn;
  Asm.alui a Sub 12 12 1;
  Asm.branch a Gt 12 15 top;
  Asm.halt a;
  Asm.place a fn;
  k.Kernel.emit_body a p;
  Asm.ret a;
  (Asm.assemble a, p)

let base_params =
  { Kernel.base = 0x10_0000; elems = 256; stride = 1; chunk = 32; seed = 99 }

let test_every_kernel_runs () =
  List.iter
    (fun (k : Kernel.t) ->
      let prog, _ = kernel_program k base_params ~calls:5 in
      let m = Interp.create ~entry:prog.Program.entry () in
      let status = Interp.run ~fuel:2_000_000 prog m in
      Alcotest.(check bool) (k.Kernel.name ^ " halts") true (status = Interp.Halted);
      Alcotest.(check int) (k.Kernel.name ^ " preserves r15") 0 m.Interp.regs.(15))
    Kernel.all

let test_kernel_cost_model () =
  List.iter
    (fun (k : Kernel.t) ->
      let calls = 10 in
      let prog, p = kernel_program k base_params ~calls in
      (* measure one call by subtracting the init+driver overhead of a
         zero-extra-calls run *)
      let run calls =
        let prog, _ = kernel_program k base_params ~calls in
        let m = Interp.create ~entry:prog.Program.entry () in
        ignore (Interp.run ~fuel:5_000_000 prog m);
        m.Interp.icount
      in
      ignore prog;
      let per_call = float_of_int (run (calls * 2) - run calls) /. float_of_int calls in
      let model = k.Kernel.body_insns p +. 4.0 (* call + ret + dec + branch *) in
      let err = Float.abs (per_call -. model) /. per_call in
      (* kernels flagged for calibration only need a ballpark estimate:
         the builder measures their true cost *)
      let bound = if k.Kernel.calibrate then 0.6 else 0.25 in
      Alcotest.(check bool)
        (Printf.sprintf "%s cost model within %.0f%%%% (measured %.1f, model %.1f)"
           k.Kernel.name (bound *. 100.) per_call model)
        true (err < bound))
    Kernel.all

let test_kernel_mem_classes () =
  (* kernels advertised as FP must issue FP work; integer ones not *)
  List.iter
    (fun (k : Kernel.t) ->
      let prog, _ = kernel_program k base_params ~calls:3 in
      let counter = Sp_pin.Inscount.create () in
      ignore
        (Sp_pin.Pin.run_fresh ~tools:[ Sp_pin.Inscount.hooks counter ] prog);
      let fp =
        Sp_pin.Inscount.by_kind counter Sp_isa.Isa.K_falu
        + Sp_pin.Inscount.by_kind counter Sp_isa.Isa.K_fmul
        + Sp_pin.Inscount.by_kind counter Sp_isa.Isa.K_fdiv
      in
      if k.Kernel.is_fp then
        Alcotest.(check bool) (k.Kernel.name ^ " uses FP") true (fp > 0)
      else
        Alcotest.(check bool) (k.Kernel.name ^ " is integer") true (fp = 0))
    Kernel.all

let test_pointer_chase_is_ring () =
  (* the chase must traverse the whole power-of-two ring, not collapse *)
  let k = Kernel.pointer_chase in
  let p = Kernel.normalize { base_params with Kernel.stride = 4; chunk = 600 } in
  let prog, p = kernel_program k p ~calls:1 in
  let distinct = Hashtbl.create 64 in
  let hooks =
    {
      Hooks.nil with
      on_read =
        (fun a ->
          if a >= p.Kernel.base && a < Kernel.state_addr p then
            Hashtbl.replace distinct a ());
    }
  in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks ~fuel:1_000_000 prog m);
  Alcotest.(check int) "full ring visited" 256 (Hashtbl.length distinct)

let test_state_persistence () =
  (* stream_sum's cursor advances across calls: consecutive calls touch
     different addresses *)
  let k = Kernel.stream_sum in
  let p = Kernel.normalize { base_params with Kernel.elems = 4096; chunk = 16 } in
  let prog, p = kernel_program k p ~calls:2 in
  let reads = ref [] in
  let hooks =
    {
      Hooks.nil with
      on_read =
        (fun a ->
          if a >= p.Kernel.base && a < Kernel.state_addr p then
            reads := a :: !reads);
    }
  in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks ~fuel:100_000 prog m);
  let distinct = List.sort_uniq compare !reads in
  (* two calls x 16 items, no wrap on 4096 elems: all addresses distinct *)
  Alcotest.(check int) "cursor advanced across calls" 32 (List.length distinct)

(* ------------------------------------------------------------------ *)
(* Weights *)

let test_weights_fit_table2 () =
  List.iter
    (fun (name, n, n90) ->
      let w = Weights.fit ~n ~n90 in
      Alcotest.(check int) (name ^ " length") n (Array.length w);
      Alcotest.(check (float 1e-9)) (name ^ " sums to 1") 1.0 (Sp_util.Stats.sum w);
      Array.iter
        (fun x ->
          Alcotest.(check bool) (name ^ " floor") true (x >= Weights.min_weight *. 0.9))
        w;
      let got = Weights.coverage_count w 0.9 in
      Alcotest.(check bool)
        (Printf.sprintf "%s n90: wanted %d got %d" name n90 got)
        true
        (abs (got - n90) <= 1))
    Suite.table2_reference

let test_weights_explicit () =
  let w = Weights.explicit [ 3.0; 1.0 ] in
  Alcotest.(check (float 1e-9)) "normalised" 0.75 w.(0);
  (try
     ignore (Weights.explicit []);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_coverage_count () =
  Alcotest.(check int) "simple" 2
    (Weights.coverage_count [| 0.5; 0.4; 0.1 |] 0.9);
  Alcotest.(check int) "unsorted input" 2
    (Weights.coverage_count [| 0.1; 0.5; 0.4 |] 0.9)

(* ------------------------------------------------------------------ *)
(* Schedule *)

let test_schedule () =
  let weights = Weights.fit ~n:5 ~n90:3 in
  let segs = Schedule.make ~seed:3 ~total_slices:1000 ~weights in
  (* every phase appears; per-phase slices roughly match weights *)
  let total = Schedule.total segs in
  Alcotest.(check bool) "total close" true (abs (total - 1000) < 20);
  Array.iteri
    (fun i w ->
      let s = Schedule.slices_of_phase segs i in
      Alcotest.(check bool)
        (Printf.sprintf "phase %d share" i)
        true
        (Float.abs (float_of_int s -. (w *. 1000.0)) < 10.0);
      let nsegs =
        List.length (List.filter (fun (x : Schedule.segment) -> x.phase = i) segs)
      in
      Alcotest.(check bool) "segments bounded" true
        (nsegs >= 1 && nsegs <= Schedule.max_segments))
    weights

let test_schedule_deterministic () =
  let weights = Weights.fit ~n:4 ~n90:2 in
  let a = Schedule.make ~seed:9 ~total_slices:300 ~weights in
  let b = Schedule.make ~seed:9 ~total_slices:300 ~weights in
  Alcotest.(check bool) "same" true (a = b);
  let c = Schedule.make ~seed:10 ~total_slices:300 ~weights in
  Alcotest.(check bool) "order differs across seeds" true (a <> c)

(* ------------------------------------------------------------------ *)
(* Benchspec / Suite *)

let test_build_runs_to_halt () =
  let spec = Suite.find "620.omnetpp_s" in
  let built = Benchspec.build ~slices_scale:0.02 spec in
  let prog = built.Benchspec.program in
  let m = Interp.create ~entry:prog.Program.entry () in
  let status = Interp.run ~fuel:20_000_000 prog m in
  Alcotest.(check bool) "halts" true (status = Interp.Halted);
  let actual = float_of_int m.Interp.icount in
  let err = Float.abs (actual -. built.Benchspec.expected_insns) /. actual in
  Alcotest.(check bool)
    (Printf.sprintf "expected_insns within 15%% (actual %.0f, model %.0f)"
       actual built.Benchspec.expected_insns)
    true (err < 0.15)

let test_build_r15_invariant () =
  let spec = Suite.find "648.exchange2_s" in
  let built = Benchspec.build ~slices_scale:0.02 spec in
  let prog = built.Benchspec.program in
  let m = Interp.create ~entry:prog.Program.entry () in
  let violations = ref 0 in
  let hooks =
    { Hooks.nil with on_instr = (fun _ _ -> if m.Interp.regs.(15) <> 0 then incr violations) }
  in
  ignore (Interp.run ~hooks ~fuel:2_000_000 prog m);
  Alcotest.(check int) "r15 always zero" 0 !violations

let test_phase_of_pc () =
  let spec = Suite.find "505.mcf_r" in
  let built = Benchspec.build ~slices_scale:0.02 spec in
  let covered = Array.make (Array.length built.Benchspec.phases) false in
  Array.iter
    (fun ph -> if ph >= 0 then covered.(ph) <- true)
    built.Benchspec.phase_of_pc;
  Array.iteri
    (fun i c -> Alcotest.(check bool) (Printf.sprintf "phase %d has code" i) true c)
    covered

let test_build_validation () =
  let spec = Suite.find "505.mcf_r" in
  (try
     ignore (Benchspec.build { spec with Benchspec.planted_n90 = 0 });
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_extended_suite () =
  Alcotest.(check int) "14 extended" 14 (List.length Suite.extended);
  Alcotest.(check int) "43 total" 43 (List.length Suite.full);
  Alcotest.(check string) "find extended" "628.pop2_s"
    (Suite.find "pop2_s").Benchspec.name;
  (* every extended workload builds and runs to completion *)
  List.iter
    (fun spec ->
      let built = Benchspec.build ~slices_scale:0.005 spec in
      let prog = built.Benchspec.program in
      let m = Interp.create ~entry:prog.Program.entry () in
      let status = Interp.run ~fuel:10_000_000 prog m in
      Alcotest.(check bool) (spec.Benchspec.name ^ " halts") true
        (status = Interp.Halted))
    Suite.extended

let test_suite_registry () =
  Alcotest.(check int) "29 benchmarks" 29 (List.length Suite.all);
  let names = Suite.names in
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check string) "find by full name" "505.mcf_r"
    (Suite.find "505.mcf_r").Benchspec.name;
  Alcotest.(check string) "find by short name" "505.mcf_r"
    (Suite.find "mcf_r").Benchspec.name;
  (try
     ignore (Suite.find "no_such_bench");
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  Alcotest.(check int) "INT suite size" 19 (List.length Suite.int_benchmarks);
  Alcotest.(check int) "FP suite size" 10 (List.length Suite.fp_benchmarks)

let test_table2_reference_consistent () =
  List.iter2
    (fun (name, points, n90) (spec : Benchspec.t) ->
      Alcotest.(check string) "name" spec.Benchspec.name name;
      Alcotest.(check int) "points" spec.Benchspec.planted_phases points;
      Alcotest.(check int) "n90" spec.Benchspec.planted_n90 n90;
      Alcotest.(check bool) "n90 <= points" true (n90 <= points))
    Suite.table2_reference Suite.all

let test_footprints_fit_scaled_hierarchy () =
  let l2 = Sp_cache.Config.allcache_sim.Sp_cache.Config.l2.size_bytes in
  let l3 = Sp_cache.Config.allcache_sim.Sp_cache.Config.l3.size_bytes in
  Alcotest.(check bool) "Medium < L2" true
    (Benchspec.footprint_bytes Benchspec.Medium < l2);
  Alcotest.(check bool) "Large in (L2, L3)" true
    (Benchspec.footprint_bytes Benchspec.Large > l2
    && Benchspec.footprint_bytes Benchspec.Large < l3);
  Alcotest.(check bool) "Xlarge > L3" true
    (Benchspec.footprint_bytes Benchspec.Xlarge > l3)

let suite =
  [
    Alcotest.test_case "every kernel runs" `Quick test_every_kernel_runs;
    Alcotest.test_case "kernel cost model" `Quick test_kernel_cost_model;
    Alcotest.test_case "kernel FP classes" `Quick test_kernel_mem_classes;
    Alcotest.test_case "pointer chase ring" `Quick test_pointer_chase_is_ring;
    Alcotest.test_case "kernel state persistence" `Quick test_state_persistence;
    Alcotest.test_case "weights fit Table II" `Quick test_weights_fit_table2;
    Alcotest.test_case "weights explicit" `Quick test_weights_explicit;
    Alcotest.test_case "coverage count" `Quick test_coverage_count;
    Alcotest.test_case "schedule" `Quick test_schedule;
    Alcotest.test_case "schedule deterministic" `Quick test_schedule_deterministic;
    Alcotest.test_case "build runs to halt" `Quick test_build_runs_to_halt;
    Alcotest.test_case "r15 invariant" `Quick test_build_r15_invariant;
    Alcotest.test_case "phase_of_pc coverage" `Quick test_phase_of_pc;
    Alcotest.test_case "build validation" `Quick test_build_validation;
    Alcotest.test_case "extended suite" `Quick test_extended_suite;
    Alcotest.test_case "suite registry" `Quick test_suite_registry;
    Alcotest.test_case "table2 reference" `Quick test_table2_reference_consistent;
    Alcotest.test_case "footprints vs scaled caches" `Quick
      test_footprints_fit_scaled_hierarchy;
  ]
