(* Coverage batch: printing paths, edge cases, resumption, RSS bounds,
   per-benchmark build sanity across the whole (43-workload) suite. *)

open Sp_vm

(* ------------------------------------------------------------------ *)
(* Pretty-printers and formatting *)

let test_scale_pp () =
  let s x = Format.asprintf "%a" Sp_util.Scale.pp_paper_insns x in
  Alcotest.(check string) "T" "6.9 T" (s 6.9e12);
  Alcotest.(check string) "B" "10.4 B" (s 10.4e9);
  Alcotest.(check string) "M" "30.0 M" (s 30e6);
  Alcotest.(check string) "raw" "512" (s 512.0)

let test_mix_pp () =
  let m = { Sp_pin.Mix.no_mem = 0.5; mem_r = 0.3; mem_w = 0.15; mem_rw = 0.05 } in
  let s = Format.asprintf "%a" Sp_pin.Mix.pp m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring_contains.contains s needle))
    [ "NO_MEM 50.0%"; "MEM_R 30.0%"; "MEM_RW 5.0%" ]

let test_hierarchy_pp () =
  let h = Sp_cache.Hierarchy.create Sp_cache.Config.allcache_sim in
  Sp_cache.Hierarchy.read h 0;
  let s = Format.asprintf "%a" Sp_cache.Hierarchy.pp_stats (Sp_cache.Hierarchy.stats h) in
  Alcotest.(check bool) "mentions L3" true (Astring_contains.contains s "L3")

let test_config_pp () =
  let s =
    Format.asprintf "%a" Sp_cache.Config.pp_hierarchy Sp_cache.Config.allcache_table1
  in
  Alcotest.(check bool) "direct-mapped" true
    (Astring_contains.contains s "direct-mapped")

let test_pinball_describe_region () =
  let prog = Program.of_instrs [| Sp_isa.Isa.Li (1, 1); Sp_isa.Isa.Halt |] in
  let whole = Sp_pinball.Logger.log_whole ~benchmark:"b" prog in
  let points =
    [|
      {
        Sp_simpoint.Simpoints.cluster = 3;
        slice_index = 0;
        start_icount = 0;
        length = 1;
        weight = 0.25;
      };
    |]
  in
  let regions = Sp_pinball.Logger.capture_regions whole points in
  let s = Sp_pinball.Pinball.describe regions.(0) in
  Alcotest.(check bool) "has cluster and weight" true
    (Astring_contains.contains s "region3" && Astring_contains.contains s "0.25")

let test_store_filename () =
  let prog = Program.of_instrs [| Sp_isa.Isa.Halt |] in
  let whole = Sp_pinball.Logger.log_whole ~benchmark:"605.mcf_s" prog in
  Alcotest.(check string) "whole name" "605.mcf_s.whole.pb"
    (Sp_pinball.Store.filename whole.Sp_pinball.Logger.pinball)

(* ------------------------------------------------------------------ *)
(* Asm growth and program size *)

let test_asm_grows () =
  let a = Asm.create () in
  for i = 0 to 999 do
    Asm.li a (i mod 12) i
  done;
  Asm.halt a;
  let p = Asm.assemble a in
  Alcotest.(check int) "all instructions kept" 1001
    (Array.length p.Program.instrs)

let test_pin_run_resumes () =
  let a = Asm.create () in
  Asm.li a 1 1000;
  let top = Asm.here a in
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.halt a;
  let prog = Asm.assemble a in
  let machine = Interp.create ~entry:0 () in
  let c = Sp_pin.Inscount.create () in
  let r1 = Sp_pin.Pin.run ~tools:[ Sp_pin.Inscount.hooks c ] ~fuel:100 prog machine in
  Alcotest.(check bool) "paused" true (r1.Sp_pin.Pin.status = Interp.Out_of_fuel);
  Alcotest.(check int) "first chunk" 100 r1.Sp_pin.Pin.retired;
  let r2 = Sp_pin.Pin.run ~tools:[ Sp_pin.Inscount.hooks c ] prog machine in
  Alcotest.(check bool) "finished" true (r2.Sp_pin.Pin.status = Interp.Halted);
  Alcotest.(check int) "tool saw both chunks"
    (r1.Sp_pin.Pin.retired + r2.Sp_pin.Pin.retired)
    (Sp_pin.Inscount.total c)

(* ------------------------------------------------------------------ *)
(* K-means corner cases *)

let test_kmeans_duplicates () =
  (* more clusters than distinct points: empty-cluster repair must not
     loop or crash, and distortion must be 0 *)
  let points = Array.make 10 [| 1.0; 2.0 |] in
  let r = Sp_simpoint.Kmeans.fit ~k:4 points in
  Alcotest.(check (float 1e-12)) "zero distortion" 0.0 r.Sp_simpoint.Kmeans.distortion;
  Alcotest.(check int) "everything assigned" 10
    (Array.fold_left ( + ) 0 r.Sp_simpoint.Kmeans.sizes)

let test_bic_flat_range () =
  (* equal scores at every k: pick the smallest k *)
  Alcotest.(check int) "flat" 2
    (Sp_simpoint.Bic.pick_k ~threshold:0.9 [ (5, 1.0); (2, 1.0); (9, 1.0) ])

let test_variance_config_passthrough () =
  let slices =
    Array.init 60 (fun i ->
        {
          Sp_pin.Bbv_tool.index = i;
          start_icount = i * 100;
          length = 100;
          bbv = [| (i mod 3, 100) |];
        })
  in
  let v = Sp_simpoint.Variance.at_k ~k:3 slices in
  Alcotest.(check int) "k respected" 3 v.Sp_simpoint.Variance.k;
  Alcotest.(check (float 1e-9)) "clean separation" 0.0 v.Sp_simpoint.Variance.avg_variance

(* ------------------------------------------------------------------ *)
(* Memory bounds: capped fills keep resident memory proportional *)

let test_fill_cap_bounds_rss () =
  (* an Xlarge stream phase must not materialise its full span *)
  let k = Sp_workloads.Kernel.stream_sum in
  let p =
    Sp_workloads.Kernel.normalize
      { Sp_workloads.Kernel.base = 0x100000; elems = 1_000_000; stride = 1;
        chunk = 64; seed = 5 }
  in
  let a = Asm.create () in
  Asm.li a 15 0;
  let rtl = Sp_workloads.Rtl.emit a in
  k.Sp_workloads.Kernel.emit_init a rtl p;
  Asm.halt a;
  let prog = Asm.assemble a in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~fuel:5_000_000 prog m);
  (* the 8 MB span must not be fully resident: only the capped fill *)
  Alcotest.(check bool) "resident bounded by the cap" true
    (Memory.footprint_bytes m.Interp.mem < 2 * 65536 * 8)

(* ------------------------------------------------------------------ *)
(* Whole-suite build sanity: all 43 workloads assemble with consistent
   metadata (cheap: no execution) *)

let test_full_suite_builds () =
  List.iter
    (fun (spec : Sp_workloads.Benchspec.t) ->
      let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
      let prog = built.Sp_workloads.Benchspec.program in
      Alcotest.(check bool)
        (spec.Sp_workloads.Benchspec.name ^ " has phases")
        true
        (Array.length built.Sp_workloads.Benchspec.phases
        = spec.Sp_workloads.Benchspec.planted_phases);
      Alcotest.(check bool)
        (spec.Sp_workloads.Benchspec.name ^ " nontrivial program")
        true
        (Array.length prog.Program.instrs > 50);
      (* weights sum to 1 *)
      let wsum =
        Array.fold_left
          (fun acc (p : Sp_workloads.Benchspec.phase) -> acc +. p.weight)
          0.0 built.Sp_workloads.Benchspec.phases
      in
      Alcotest.(check bool)
        (spec.Sp_workloads.Benchspec.name ^ " weights sum")
        true
        (Float.abs (wsum -. 1.0) < 1e-6))
    Sp_workloads.Suite.full

let test_run_suite_subset () =
  let options =
    {
      Specrepro.Pipeline.default_options with
      slices_scale = 0.02;
      collect_variance = false;
      progress = false;
    }
  in
  let specs =
    [ Sp_workloads.Suite.find "620.omnetpp_s"; Sp_workloads.Suite.find "648.exchange2_s" ]
  in
  let results = Specrepro.Pipeline.run_suite ~options ~specs () in
  Alcotest.(check int) "two results" 2 (List.length results);
  List.iter
    (fun (r : Specrepro.Pipeline.bench_result) ->
      Alcotest.(check bool) "reduced_warm aggregates" true
        ((Specrepro.Pipeline.reduced_warm r).Specrepro.Runstats.cpi > 0.0))
    results

(* ------------------------------------------------------------------ *)
(* Recursion depth determinism *)

let test_recursion_depth_bounds () =
  for seed = 0 to 20 do
    let p =
      Sp_workloads.Kernel.normalize
        { Sp_workloads.Kernel.base = 0x1000; elems = 64; stride = 1; chunk = 4;
          seed }
    in
    let cost = Sp_workloads.Kernel.recursive_calls.Sp_workloads.Kernel.body_insns p in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d cost bounded (%.0f)" seed cost)
      true
      (cost > 100.0 && cost < 20_000.0)
  done

(* ------------------------------------------------------------------ *)
(* Program text format *)

let test_progtext_roundtrip () =
  let spec = Sp_workloads.Suite.find "620.omnetpp_s" in
  let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
  let prog = built.Sp_workloads.Benchspec.program in
  match Sp_vm.Progtext.parse (Sp_vm.Progtext.print prog) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
      Alcotest.(check int) "same length"
        (Array.length prog.Program.instrs)
        (Array.length parsed.Program.instrs);
      Alcotest.(check bool) "same instructions" true
        (prog.Program.instrs = parsed.Program.instrs);
      (* the reparsed program executes identically *)
      let run p =
        let m = Interp.create ~entry:p.Program.entry () in
        ignore (Interp.run ~fuel:300_000 p m);
        (m.Interp.icount, Array.copy m.Interp.regs)
      in
      Alcotest.(check bool) "same execution" true (run prog = run parsed)

let test_progtext_errors () =
  (match Sp_vm.Progtext.parse "li r1, 5\nbogus stuff\nhalt" with
  | Error e ->
      Alcotest.(check bool) "line number" true
        (Astring_contains.contains e "line 2")
  | Ok _ -> Alcotest.fail "expected error");
  (match Sp_vm.Progtext.parse "# only comments\n\n" with
  | Error e -> Alcotest.(check string) "empty" "empty program" e
  | Ok _ -> Alcotest.fail "expected error");
  (match Sp_vm.Progtext.parse "jmp @5\nhalt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected out-of-range error")

let test_progtext_comments () =
  match Sp_vm.Progtext.parse "  li r1, 2 # two\n# note\n\nhalt" with
  | Error e -> Alcotest.fail e
  | Ok p -> Alcotest.(check int) "two instrs" 2 (Array.length p.Program.instrs)

let suite =
  [
    Alcotest.test_case "scale pp" `Quick test_scale_pp;
    Alcotest.test_case "mix pp" `Quick test_mix_pp;
    Alcotest.test_case "hierarchy pp" `Quick test_hierarchy_pp;
    Alcotest.test_case "config pp" `Quick test_config_pp;
    Alcotest.test_case "pinball describe" `Quick test_pinball_describe_region;
    Alcotest.test_case "store filename" `Quick test_store_filename;
    Alcotest.test_case "asm grows" `Quick test_asm_grows;
    Alcotest.test_case "pin run resumes" `Quick test_pin_run_resumes;
    Alcotest.test_case "kmeans duplicates" `Quick test_kmeans_duplicates;
    Alcotest.test_case "bic flat range" `Quick test_bic_flat_range;
    Alcotest.test_case "variance passthrough" `Quick test_variance_config_passthrough;
    Alcotest.test_case "fill cap bounds RSS" `Quick test_fill_cap_bounds_rss;
    Alcotest.test_case "full suite builds" `Quick test_full_suite_builds;
    Alcotest.test_case "run_suite subset" `Quick test_run_suite_subset;
    Alcotest.test_case "recursion depth bounds" `Quick test_recursion_depth_bounds;
    Alcotest.test_case "progtext roundtrip" `Quick test_progtext_roundtrip;
    Alcotest.test_case "progtext errors" `Quick test_progtext_errors;
    Alcotest.test_case "progtext comments" `Quick test_progtext_comments;
  ]
