(* Tests for Sp_cache: geometry validation, LRU, hierarchy walks,
   warming. *)

open Sp_cache

let line32 = 32

let small_level ~assoc ~lines =
  Config.level ~name:"T" ~size_kb:(lines * line32 / 1024) ~assoc
    ~line_bytes:line32

(* a 2-set, 2-way cache: 4 lines of 32B = 128B = can't express via size_kb
   (kB granularity), so use a 1 kB cache: 32 lines *)
let tiny () = Cache.create (Config.level ~name:"tiny" ~size_kb:1 ~assoc:2 ~line_bytes:32)

let test_config_validation () =
  (try
     ignore (Config.level ~name:"x" ~size_kb:3 ~assoc:1 ~line_bytes:32);
     Alcotest.fail "expected Invalid_argument (size)"
   with Invalid_argument _ -> ());
  (try
     ignore (Config.level ~name:"x" ~size_kb:32 ~assoc:0 ~line_bytes:32);
     Alcotest.fail "expected Invalid_argument (assoc)"
   with Invalid_argument _ -> ());
  let l = Config.level ~name:"ok" ~size_kb:32 ~assoc:8 ~line_bytes:64 in
  Alcotest.(check int) "sets" 64 (Config.num_sets l);
  Alcotest.(check int) "lines" 512 (Config.num_lines l)

let test_table1_config () =
  let h = Config.allcache_table1 in
  Alcotest.(check int) "L1 32kB" (32 * 1024) h.Config.l1d.size_bytes;
  Alcotest.(check int) "L1 32-way" 32 h.Config.l1d.assoc;
  Alcotest.(check int) "L2 2MB" (2 * 1024 * 1024) h.Config.l2.size_bytes;
  Alcotest.(check int) "L2 direct" 1 h.Config.l2.assoc;
  Alcotest.(check int) "L3 16MB" (16 * 1024 * 1024) h.Config.l3.size_bytes;
  Alcotest.(check int) "linesize" 32 h.Config.l3.line_bytes

let test_scaled_config () =
  let h = Config.allcache_sim in
  Alcotest.(check int) "L1 scaled" (32 * 1024 / Config.sim_scale)
    h.Config.l1d.size_bytes;
  (* associativity clamped to line count *)
  Alcotest.(check bool) "assoc sane" true
    (h.Config.l1d.assoc <= Config.num_lines h.Config.l1d)

let test_cold_miss_then_hit () =
  let c = tiny () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0x40);
  Alcotest.(check bool) "hit" true (Cache.access c 0x40);
  Alcotest.(check bool) "same line hit" true (Cache.access c 0x5F);
  Alcotest.(check int) "accesses" 3 (Cache.accesses c);
  Alcotest.(check int) "misses" 1 (Cache.misses c);
  Alcotest.(check int) "hits" 2 (Cache.hits c)

let test_lru_eviction () =
  (* 2-way: fill a set with A,B; touch A; insert C -> B evicted, A kept *)
  let c = tiny () in
  let sets = 16 in
  let stride = sets * line32 in
  (* aliases in set 0 *)
  let a = 0 and b = stride and d = 2 * stride in
  ignore (Cache.access c a);
  ignore (Cache.access c b);
  ignore (Cache.access c a);
  (* A is MRU *)
  ignore (Cache.access c d);
  (* evicts B *)
  Alcotest.(check bool) "A retained" true (Cache.access c a);
  Alcotest.(check bool) "B evicted" false (Cache.access c b)

let test_direct_mapped_conflict () =
  let c =
    Cache.create (Config.level ~name:"dm" ~size_kb:1 ~assoc:1 ~line_bytes:32)
  in
  let stride = 32 * line32 in
  ignore (Cache.access c 0);
  ignore (Cache.access c stride);
  Alcotest.(check bool) "conflict evicted" false (Cache.access c 0)

let test_warm_not_counted () =
  let c = tiny () in
  ignore (Cache.warm c 0x40);
  Alcotest.(check int) "warm not counted" 0 (Cache.accesses c);
  Alcotest.(check bool) "but installed" true (Cache.access c 0x40)

let test_reset () =
  let c = tiny () in
  ignore (Cache.access c 0);
  Cache.reset_stats c;
  Alcotest.(check int) "stats zeroed" 0 (Cache.accesses c);
  Alcotest.(check bool) "state kept" true (Cache.access c 0);
  Cache.reset_state c;
  Alcotest.(check bool) "state cleared" false (Cache.access c 0)

let test_resident_lines () =
  let c = tiny () in
  Alcotest.(check int) "empty" 0 (Cache.resident_lines c);
  for i = 0 to 9 do
    ignore (Cache.access c (i * line32))
  done;
  Alcotest.(check int) "ten lines" 10 (Cache.resident_lines c)

let prop_stats_invariant =
  QCheck.Test.make ~name:"accesses = hits + misses" ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 0 4096))
    (fun addrs ->
      let c = tiny () in
      List.iter (fun a -> ignore (Cache.access c (a * 8))) addrs;
      Cache.accesses c = Cache.hits c + Cache.misses c
      && Cache.accesses c = List.length addrs)

let prop_capacity_bound =
  QCheck.Test.make ~name:"resident lines bounded by capacity" ~count:50
    QCheck.(list_of_size Gen.(1 -- 500) (int_range 0 100_000))
    (fun addrs ->
      let cfg = Config.level ~name:"c" ~size_kb:1 ~assoc:2 ~line_bytes:32 in
      let c = Cache.create cfg in
      List.iter (fun a -> ignore (Cache.access c (a * 8))) addrs;
      Cache.resident_lines c <= Config.num_lines cfg)

(* ------------------------------------------------------------------ *)
(* Hierarchy *)

let small_hierarchy () =
  Hierarchy.create
    {
      Config.l1i = small_level ~assoc:2 ~lines:32;
      l1d = small_level ~assoc:2 ~lines:32;
      l2 = small_level ~assoc:1 ~lines:64;
      l3 = small_level ~assoc:1 ~lines:128;
    }

let test_hierarchy_walk () =
  let h = small_hierarchy () in
  Hierarchy.read h 0x1000;
  let s = Hierarchy.stats h in
  Alcotest.(check int) "L1D accessed" 1 s.Hierarchy.l1d.accesses;
  Alcotest.(check int) "L2 accessed (L1 missed)" 1 s.Hierarchy.l2.accesses;
  Alcotest.(check int) "L3 accessed" 1 s.Hierarchy.l3.accesses;
  Hierarchy.read h 0x1000;
  let s = Hierarchy.stats h in
  Alcotest.(check int) "L1 hit stops walk" 1 s.Hierarchy.l2.accesses

let test_hierarchy_fetch_separate () =
  let h = small_hierarchy () in
  Hierarchy.fetch h 0x2000;
  let s = Hierarchy.stats h in
  Alcotest.(check int) "L1I accessed" 1 s.Hierarchy.l1i.accesses;
  Alcotest.(check int) "L1D untouched" 0 s.Hierarchy.l1d.accesses

let test_hierarchy_where () =
  let h = small_hierarchy () in
  Alcotest.(check bool) "cold -> memory" true
    (Hierarchy.read_where h 0x3000 = Hierarchy.Memory);
  Alcotest.(check bool) "now L1" true
    (Hierarchy.read_where h 0x3000 = Hierarchy.L1);
  (* evict from L1 (2-way, 16 sets): two aliases on top *)
  let stride = 16 * 32 in
  ignore (Hierarchy.read_where h (0x3000 + stride));
  ignore (Hierarchy.read_where h (0x3000 + (2 * stride)));
  Alcotest.(check bool) "L1 evicted, deeper level serves" true
    (match Hierarchy.read_where h 0x3000 with
    | Hierarchy.L2 | Hierarchy.L3 -> true
    | Hierarchy.L1 | Hierarchy.Memory -> false)

let test_hierarchy_warming () =
  let h = small_hierarchy () in
  Hierarchy.set_warming h true;
  Hierarchy.read h 0x4000;
  let s = Hierarchy.stats h in
  Alcotest.(check int) "no stats while warming" 0 s.Hierarchy.l1d.accesses;
  Hierarchy.set_warming h false;
  Alcotest.(check bool) "warm line resident" true
    (Hierarchy.read_where h 0x4000 = Hierarchy.L1)

let test_latency_class () =
  Alcotest.(check int) "L1" 0 (Hierarchy.latency_class Hierarchy.L1);
  Alcotest.(check int) "Memory" 3 (Hierarchy.latency_class Hierarchy.Memory)

let suite =
  [
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "Table I config" `Quick test_table1_config;
    Alcotest.test_case "scaled config" `Quick test_scaled_config;
    Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
    Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
    Alcotest.test_case "direct-mapped conflict" `Quick test_direct_mapped_conflict;
    Alcotest.test_case "warm not counted" `Quick test_warm_not_counted;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "resident lines" `Quick test_resident_lines;
    QCheck_alcotest.to_alcotest prop_stats_invariant;
    QCheck_alcotest.to_alcotest prop_capacity_bound;
    Alcotest.test_case "hierarchy walk" `Quick test_hierarchy_walk;
    Alcotest.test_case "hierarchy fetch separate" `Quick test_hierarchy_fetch_separate;
    Alcotest.test_case "hierarchy where" `Quick test_hierarchy_where;
    Alcotest.test_case "hierarchy warming" `Quick test_hierarchy_warming;
    Alcotest.test_case "latency class" `Quick test_latency_class;
  ]
