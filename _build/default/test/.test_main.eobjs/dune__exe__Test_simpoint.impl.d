test/test_simpoint.ml: Aggregate Alcotest Array Bic Kmeans Printf Projection QCheck QCheck_alcotest Simpoints Sp_pin Sp_simpoint Sp_util Variance
