test/test_vm.ml: Alcotest Array Asm Hooks Interp Isa List Memory Printf Program QCheck QCheck_alcotest Snapshot Sp_isa Sp_vm
