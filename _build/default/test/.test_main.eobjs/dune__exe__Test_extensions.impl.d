test/test_extensions.ml: Alcotest Array Asm Cache Config Filename Float Hierarchy Hooks Interp List Program Reuse Sp_cache Sp_cpu Sp_isa Sp_pin Sp_simpoint Sp_util Sp_vm Sys Tlb
