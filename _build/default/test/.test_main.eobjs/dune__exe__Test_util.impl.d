test/test_util.ml: Alcotest Array Astring_contains Float Format Gen List QCheck QCheck_alcotest Rng Scale Sp_util Stats String Table Timemodel
