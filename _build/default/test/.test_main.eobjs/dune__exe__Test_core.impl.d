test/test_core.ml: Alcotest Array Astring_contains Experiments Lazy List Pipeline Printf Runstats Sp_cache Sp_perf Sp_pin Sp_simpoint Sp_util Sp_workloads Specrepro String
