test/test_cache.ml: Alcotest Cache Config Gen Hierarchy List QCheck QCheck_alcotest Sp_cache
