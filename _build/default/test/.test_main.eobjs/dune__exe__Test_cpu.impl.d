test/test_cpu.ml: Alcotest Array Asm Astring_contains Branch_predictor Core_config Format Interp Interval_core List Printf Program Sp_cache Sp_cpu Sp_util Sp_vm Sp_workloads
