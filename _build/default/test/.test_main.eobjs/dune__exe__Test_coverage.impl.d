test/test_coverage.ml: Alcotest Array Asm Astring_contains Float Format Interp List Memory Printf Program Sp_cache Sp_isa Sp_pin Sp_pinball Sp_simpoint Sp_util Sp_vm Sp_workloads Specrepro
