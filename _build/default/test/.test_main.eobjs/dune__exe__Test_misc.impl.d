test/test_misc.ml: Alcotest Array Asm Astring_contains Interp Memory Printf Program QCheck QCheck_alcotest Sp_cpu Sp_isa Sp_pin Sp_util Sp_vm Sp_workloads Specrepro
