test/test_perf.ml: Alcotest Array Asm Astring_contains Float Format Interp List Native Perf_counters Printf Program Sp_cpu Sp_isa Sp_perf Sp_vm
