test/test_models.ml: Alcotest Array Asm Astring_contains Hooks Interp List Multicore Printf Program Shared_hierarchy Sp_cache Sp_cpu Sp_util Sp_vm Sp_workloads Specrepro String
