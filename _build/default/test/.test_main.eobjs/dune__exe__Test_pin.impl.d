test/test_pin.ml: Alcotest Allcache_tool Array Asm Bbv_tool Inscount Isa Ldstmix List Mix Pin Sp_cache Sp_isa Sp_pin Sp_vm Tracer
