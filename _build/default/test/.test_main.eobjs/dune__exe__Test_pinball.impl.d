test/test_pinball.ml: Alcotest Array Asm Filename Hooks Interp Isa List Logger Memory Pinball Replayer Sp_isa Sp_pin Sp_pinball Sp_simpoint Sp_util Sp_vm Store Sys
