test/test_isa.ml: Alcotest Gen Isa List QCheck QCheck_alcotest Sp_isa Test
