test/test_workloads.ml: Alcotest Array Asm Benchspec Float Hashtbl Hooks Interp Kernel List Printf Program Rtl Schedule Sp_cache Sp_isa Sp_pin Sp_util Sp_vm Sp_workloads Suite Weights
