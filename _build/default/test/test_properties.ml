(* Property-based and differential tests across the libraries:
   model-based memory checking, a reference evaluator for straight-line
   code, schedule/weights invariants, cache invariants. *)

open Sp_isa
open Sp_vm

(* ------------------------------------------------------------------ *)
(* Differential test: straight-line ALU programs against a reference
   evaluator written independently of the interpreter. *)

let alu_op_gen =
  QCheck.Gen.oneofl
    [ Isa.Add; Isa.Sub; Isa.Mul; Isa.Div; Isa.Rem; Isa.And; Isa.Or; Isa.Xor; Isa.Shl; Isa.Shr ]

let straightline_gen =
  QCheck.Gen.(
    list_size (1 -- 40)
      (oneof
         [
           map3
             (fun op rd (r1, r2) -> Isa.Alu (op, rd, r1, r2))
             alu_op_gen (0 -- 14)
             (pair (0 -- 14) (0 -- 14));
           map3
             (fun op rd (r1, imm) -> Isa.Alui (op, rd, r1, imm))
             alu_op_gen (0 -- 14)
             (pair (0 -- 14) (int_range (-1000) 1000));
           map2 (fun rd imm -> Isa.Li (rd, imm)) (0 -- 14) (int_range (-10000) 10000);
           map2 (fun rd rs -> Isa.Mov (rd, rs)) (0 -- 14) (0 -- 14);
         ]))

(* the reference semantics, written from the ISA documentation *)
let reference_eval instrs =
  let regs = Array.make 16 0 in
  let alu op a b =
    match op with
    | Isa.Add -> a + b
    | Isa.Sub -> a - b
    | Isa.Mul -> a * b
    | Isa.Div -> if b = 0 then 0 else a / b
    | Isa.Rem -> if b = 0 then 0 else a mod b
    | Isa.And -> a land b
    | Isa.Or -> a lor b
    | Isa.Xor -> a lxor b
    | Isa.Shl -> a lsl (b land 63)
    | Isa.Shr -> a lsr (b land 63)
  in
  List.iter
    (fun i ->
      match i with
      | Isa.Alu (op, rd, r1, r2) -> regs.(rd) <- alu op regs.(r1) regs.(r2)
      | Isa.Alui (op, rd, r1, imm) -> regs.(rd) <- alu op regs.(r1) imm
      | Isa.Li (rd, imm) -> regs.(rd) <- imm
      | Isa.Mov (rd, rs) -> regs.(rd) <- regs.(rs)
      | _ -> assert false)
    instrs;
  regs

let prop_interp_matches_reference =
  QCheck.Test.make ~name:"interpreter matches reference on straight-line code"
    ~count:300
    (QCheck.make straightline_gen)
    (fun instrs ->
      let prog = Program.of_instrs (Array.of_list (instrs @ [ Isa.Halt ])) in
      let m = Interp.create ~entry:0 () in
      ignore (Interp.run prog m);
      let expected = reference_eval instrs in
      Array.for_all2 ( = ) expected m.Interp.regs
      && m.Interp.icount = List.length instrs + 1)

(* ------------------------------------------------------------------ *)
(* Model-based memory test against a Hashtbl reference *)

let prop_memory_model =
  QCheck.Test.make ~name:"memory matches Hashtbl model" ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 100)
        (pair (int_range 0 (1 lsl 20)) (pair bool int)))
    (fun ops ->
      let mem = Memory.create () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 64 in
      List.for_all
        (fun (addr, (is_store, v)) ->
          let addr = addr land lnot 7 in
          if is_store then begin
            Memory.store mem addr v;
            Hashtbl.replace model addr v;
            true
          end
          else
            Memory.load mem addr
            = Option.value ~default:0 (Hashtbl.find_opt model addr))
        ops)

(* ------------------------------------------------------------------ *)
(* Weights / schedule invariants *)

let prop_weights_fit =
  QCheck.Test.make ~name:"Weights.fit invariants" ~count:100
    QCheck.(pair (int_range 2 40) (int_range 1 40))
    (fun (n, n90_raw) ->
      let n90 = max 1 (min n n90_raw) in
      let w = Sp_workloads.Weights.fit ~n ~n90 in
      Array.length w = n
      && Float.abs (Sp_util.Stats.sum w -. 1.0) < 1e-9
      && Array.for_all (fun x -> x > 0.0) w
      (* sorted descending *)
      && Array.for_all
           (fun i -> w.(i) >= w.(i + 1) -. 1e-12)
           (Array.init (n - 1) (fun i -> i)))

let prop_schedule_conserves =
  QCheck.Test.make ~name:"Schedule totals track weights" ~count:100
    QCheck.(pair small_int (int_range 2 20))
    (fun (seed, n) ->
      let w = Sp_workloads.Weights.fit ~n ~n90:(max 1 (n / 2)) in
      let segs =
        Sp_workloads.Schedule.make ~seed ~total_slices:500 ~weights:w
      in
      let total = Sp_workloads.Schedule.total segs in
      abs (total - 500) <= n
      && Array.for_all
           (fun i -> Sp_workloads.Schedule.slices_of_phase segs i >= 1)
           (Array.init n (fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Cache invariants *)

let prop_lru_mru_safe =
  QCheck.Test.make ~name:"LRU never evicts the just-accessed line" ~count:200
    QCheck.(list_of_size Gen.(2 -- 100) (int_range 0 10_000))
    (fun addrs ->
      let cfg =
        Sp_cache.Config.level ~name:"t" ~size_kb:1 ~assoc:2 ~line_bytes:32
      in
      let c = Sp_cache.Cache.create cfg in
      List.for_all
        (fun a ->
          let addr = a * 8 in
          ignore (Sp_cache.Cache.access c addr);
          (* immediate re-access must hit *)
          Sp_cache.Cache.access c addr)
        addrs)

let prop_warm_equals_access_state =
  QCheck.Test.make ~name:"warm and access leave identical residency" ~count:100
    QCheck.(list_of_size Gen.(1 -- 80) (int_range 0 4_000))
    (fun addrs ->
      let cfg =
        Sp_cache.Config.level ~name:"t" ~size_kb:1 ~assoc:4 ~line_bytes:32
      in
      let a = Sp_cache.Cache.create cfg in
      let b = Sp_cache.Cache.create cfg in
      List.iter
        (fun x ->
          ignore (Sp_cache.Cache.access a (x * 16));
          ignore (Sp_cache.Cache.warm b (x * 16)))
        addrs;
      (* both caches now answer identically *)
      List.for_all
        (fun x ->
          Sp_cache.Cache.access a (x * 16) = Sp_cache.Cache.access b (x * 16))
        addrs)

let prop_reuse_estimate_bounded =
  QCheck.Test.make ~name:"reuse estimate in [0,1] and monotone in capacity"
    ~count:100
    QCheck.(list_of_size Gen.(1 -- 200) (int_range 0 500))
    (fun addrs ->
      let r = Sp_cache.Reuse.create ~line_bytes:64 () in
      List.iter (fun a -> Sp_cache.Reuse.access r (a * 64)) addrs;
      let e1 = Sp_cache.Reuse.miss_rate_estimate r ~cache_lines:4 in
      let e2 = Sp_cache.Reuse.miss_rate_estimate r ~cache_lines:64 in
      let e3 = Sp_cache.Reuse.miss_rate_estimate r ~cache_lines:1024 in
      e1 >= 0.0 && e1 <= 1.0 && e1 >= e2 -. 1e-9 && e2 >= e3 -. 1e-9)

(* ------------------------------------------------------------------ *)
(* BBV invariants on random kernel programs *)

let prop_bbv_mass =
  QCheck.Test.make ~name:"BBV mass equals retired instructions" ~count:30
    QCheck.(pair (int_range 0 16) (int_range 50 400))
    (fun (kseed, slice_len) ->
      let kernels = Array.of_list Sp_workloads.Kernel.all in
      let k = kernels.(kseed mod Array.length kernels) in
      let p =
        Sp_workloads.Kernel.normalize
          { Sp_workloads.Kernel.base = 0x9000; elems = 128; stride = 1;
            chunk = 16; seed = kseed }
      in
      let a = Asm.create () in
      Asm.li a 15 0;
      let rtl = Sp_workloads.Rtl.emit a in
      k.Sp_workloads.Kernel.emit_init a rtl p;
      let fn = Asm.new_label a in
      Asm.li a 12 3;
      let top = Asm.here a in
      Asm.call a fn;
      Asm.alui a Sub 12 12 1;
      Asm.branch a Gt 12 15 top;
      Asm.halt a;
      Asm.place a fn;
      k.Sp_workloads.Kernel.emit_body a p;
      Asm.ret a;
      let prog = Asm.assemble a in
      let bbv = Sp_pin.Bbv_tool.create ~slice_len prog in
      let run = Sp_pin.Pin.run_fresh ~tools:[ Sp_pin.Bbv_tool.hooks bbv ] prog in
      Sp_pin.Bbv_tool.finish bbv;
      let mass =
        Array.fold_left
          (fun acc (s : Sp_pin.Bbv_tool.slice) ->
            acc + Array.fold_left (fun a (_, c) -> a + c) 0 s.Sp_pin.Bbv_tool.bbv)
          0
          (Sp_pin.Bbv_tool.slices bbv)
      in
      mass = run.Sp_pin.Pin.retired)

(* ------------------------------------------------------------------ *)
(* Replay fidelity on random regions of a real benchmark *)

let replay_fidelity_fixture =
  lazy
    (let spec = Sp_workloads.Suite.find "620.omnetpp_s" in
     let built = Sp_workloads.Benchspec.build ~slices_scale:0.02 spec in
     let whole =
       Sp_pinball.Logger.log_whole ~benchmark:"fidelity"
         built.Sp_workloads.Benchspec.program
     in
     whole)

let prop_region_replay_fidelity =
  QCheck.Test.make ~name:"random regions replay to identical mixes" ~count:15
    QCheck.(pair (int_range 0 1_000_000) (int_range 200 2_000))
    (fun (start_raw, len) ->
      let whole = Lazy.force replay_fidelity_fixture in
      let total = whole.Sp_pinball.Logger.total_insns in
      let start = start_raw mod max 1 (total - len) in
      let point =
        {
          Sp_simpoint.Simpoints.cluster = 0;
          slice_index = 0;
          start_icount = start;
          length = len;
          weight = 1.0;
        }
      in
      let regions = Sp_pinball.Logger.capture_regions whole [| point |] in
      let mix1 = Sp_pin.Ldstmix.create () in
      ignore
        (Sp_pinball.Replayer.replay ~tools:[ Sp_pin.Ldstmix.hooks mix1 ]
           regions.(0));
      (* replay twice: identical *)
      let mix2 = Sp_pin.Ldstmix.create () in
      ignore
        (Sp_pinball.Replayer.replay ~tools:[ Sp_pin.Ldstmix.hooks mix2 ]
           regions.(0));
      List.for_all
        (fun cls -> Sp_pin.Ldstmix.count mix1 cls = Sp_pin.Ldstmix.count mix2 cls)
        Isa.all_mem_classes)

(* ------------------------------------------------------------------ *)
(* CSV *)

let test_csv () =
  let t = Sp_util.Table.create ~title:"T" [ ("a", Sp_util.Table.Left); ("b", Sp_util.Table.Right) ] in
  Sp_util.Table.add_row t [ "x,y"; "1" ];
  Sp_util.Table.add_rule t;
  Sp_util.Table.add_row t [ "quote\"here"; "2" ];
  let csv = Sp_util.Table.to_csv t in
  Alcotest.(check string) "csv"
    "a,b\n\"x,y\",1\n\"quote\"\"here\",2\n" csv;
  Alcotest.(check (option string)) "title" (Some "T") (Sp_util.Table.title t)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_interp_matches_reference;
    QCheck_alcotest.to_alcotest prop_memory_model;
    QCheck_alcotest.to_alcotest prop_weights_fit;
    QCheck_alcotest.to_alcotest prop_schedule_conserves;
    QCheck_alcotest.to_alcotest prop_lru_mru_safe;
    QCheck_alcotest.to_alcotest prop_warm_equals_access_state;
    QCheck_alcotest.to_alcotest prop_reuse_estimate_bounded;
    QCheck_alcotest.to_alcotest prop_bbv_mass;
    QCheck_alcotest.to_alcotest prop_region_replay_fidelity;
    Alcotest.test_case "csv rendering" `Quick test_csv;
  ]
