(* Tests for Sp_pinball: logging, replay fidelity, regional capture,
   the on-disk store. *)

open Sp_isa
open Sp_vm
open Sp_pinball

(* a small program with non-deterministic inputs: sums sys values and
   writes a running pattern to memory *)
let sys_program ~iters =
  let a = Asm.create ~name:"syss" () in
  Asm.li a 1 0x1000;
  Asm.li a 2 iters;
  let top = Asm.here a in
  Asm.sys a 0 3;
  Asm.alu a Add 4 4 3;
  Asm.store a 4 1 0;
  Asm.alui a Add 1 1 8;
  Asm.alui a Sub 2 2 1;
  Asm.branch a Gt 2 15 top;
  Asm.halt a;
  Asm.assemble a

let noisy_syscall seed =
  let rng = Sp_util.Rng.create seed in
  fun (_ : int) -> Sp_util.Rng.int rng 1000

let test_log_whole () =
  let prog = sys_program ~iters:20 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  Alcotest.(check bool) "counted" true (whole.Logger.total_insns > 100);
  Alcotest.(check int) "recorded all inputs" 20
    (Array.length whole.Logger.pinball.Pinball.syscalls);
  Alcotest.(check int) "whole starts at zero" 0
    (Pinball.start_icount whole.Logger.pinball);
  Alcotest.(check (float 0.0)) "whole weight" 1.0
    (Pinball.weight whole.Logger.pinball)

let test_whole_replay_reproduces () =
  let prog = sys_program ~iters:25 in
  (* log with a non-trivial input source *)
  let whole = Logger.log_whole ~syscall:(noisy_syscall 3) ~benchmark:"t" prog in
  let result = Replayer.replay whole.Logger.pinball in
  Alcotest.(check int) "same instruction count" whole.Logger.total_insns
    result.Replayer.retired;
  (* re-run natively with the same inputs to get ground-truth state *)
  let m = Interp.create ~entry:0 () in
  ignore (Interp.run ~syscall:(noisy_syscall 3) prog m);
  Alcotest.(check int) "same accumulator" m.Interp.regs.(4)
    result.Replayer.machine.Interp.regs.(4);
  Alcotest.(check int) "same memory"
    (Memory.load m.Interp.mem 0x1008)
    (Memory.load result.Replayer.machine.Interp.mem 0x1008)

let mk_point cluster slice_index start length weight =
  { Sp_simpoint.Simpoints.cluster; slice_index; start_icount = start; length; weight }

let test_regional_capture_matches_ground_truth () =
  let prog = sys_program ~iters:100 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 7) ~benchmark:"t" prog in
  let start = 150 and len = 120 in
  let points = [| mk_point 0 0 start len 1.0 |] in
  let regions = Logger.capture_regions whole points in
  Alcotest.(check int) "one region" 1 (Array.length regions);
  let mixt = Sp_pin.Ldstmix.create () in
  let r = Replayer.replay ~tools:[ Sp_pin.Ldstmix.hooks mixt ] regions.(0) in
  Alcotest.(check int) "exact length" len r.Replayer.retired;
  (* ground truth: native run, instrument the same interval *)
  let gt = Sp_pin.Ldstmix.create () in
  let m = Interp.create ~entry:0 () in
  let syscall = noisy_syscall 7 in
  ignore (Interp.run ~syscall ~fuel:start prog m);
  ignore (Interp.run ~hooks:(Sp_pin.Ldstmix.hooks gt) ~syscall ~fuel:len prog m);
  List.iter
    (fun cls ->
      Alcotest.(check int)
        (Isa.mem_class_name cls)
        (Sp_pin.Ldstmix.count gt cls)
        (Sp_pin.Ldstmix.count mixt cls))
    Isa.all_mem_classes

let test_region_syscall_injection () =
  let prog = sys_program ~iters:50 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 11) ~benchmark:"t" prog in
  (* a region that contains syscalls: replaying twice is deterministic *)
  let points = [| mk_point 0 0 60 90 1.0 |] in
  let regions = Logger.capture_regions whole points in
  let run () =
    let r = Replayer.replay regions.(0) in
    r.Replayer.machine.Interp.regs.(4)
  in
  Alcotest.(check int) "deterministic replay" (run ()) (run ())

let test_replay_divergence () =
  let prog = sys_program ~iters:10 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  let pb = whole.Logger.pinball in
  (* corrupt: drop the recorded inputs *)
  let broken = { pb with Pinball.syscalls = [||] } in
  try
    ignore (Replayer.replay broken);
    Alcotest.fail "expected Divergence"
  with Replayer.Divergence _ -> ()

let test_scan_matches_capture () =
  let prog = sys_program ~iters:80 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 2) ~benchmark:"t" prog in
  let points =
    [| mk_point 1 0 100 50 0.5; mk_point 0 0 300 50 0.5 |]
  in
  let captured = Logger.capture_regions whole points in
  let scanned = ref [] in
  Logger.scan_regions whole points (fun pb -> scanned := pb :: !scanned);
  let scanned = List.rev !scanned in
  Alcotest.(check int) "same count" 2 (List.length scanned);
  List.iteri
    (fun i pb ->
      (* scan order is by start; points were given in start order here *)
      let ref_pb = captured.(i) in
      let final pb = (Replayer.replay pb).Replayer.machine.Interp.regs.(4) in
      Alcotest.(check int) "same replay result" (final ref_pb) (final pb))
    scanned

let test_scan_warmup_hooks () =
  let prog = sys_program ~iters:200 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  let points = [| mk_point 0 0 600 100 1.0 |] in
  let warm_count = ref 0 in
  let started = ref 0 in
  let warmup =
    {
      Logger.length = 250;
      hooks = { Hooks.nil with on_instr = (fun _ _ -> incr warm_count) };
      on_start = (fun () -> incr started);
    }
  in
  Logger.scan_regions ~warmup whole points (fun _ -> ());
  Alcotest.(check int) "on_start once" 1 !started;
  Alcotest.(check int) "warm window length" 250 !warm_count

let test_scan_warmup_clamped () =
  let prog = sys_program ~iters:200 in
  let whole = Logger.log_whole ~benchmark:"t" prog in
  let points = [| mk_point 0 0 100 50 1.0 |] in
  let warm_count = ref 0 in
  let warmup =
    {
      Logger.length = 10_000;
      hooks = { Hooks.nil with on_instr = (fun _ _ -> incr warm_count) };
      on_start = ignore;
    }
  in
  Logger.scan_regions ~warmup whole points (fun _ -> ());
  Alcotest.(check int) "clamped to gap" 100 !warm_count

let test_store_roundtrip () =
  let dir = Filename.temp_file "spstore" "" in
  Sys.remove dir;
  let prog = sys_program ~iters:30 in
  let whole = Logger.log_whole ~syscall:(noisy_syscall 5) ~benchmark:"bench.x" prog in
  let path = Store.save ~dir whole.Logger.pinball in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  let loaded = Store.load path in
  Alcotest.(check string) "benchmark name" "bench.x" loaded.Pinball.benchmark;
  let a = Replayer.replay whole.Logger.pinball in
  let b = Replayer.replay loaded in
  Alcotest.(check int) "replays equal"
    a.Replayer.machine.Interp.regs.(4)
    b.Replayer.machine.Interp.regs.(4);
  Alcotest.(check (list string)) "listed"
    [ path ]
    (Store.list_dir ~dir);
  (* bad magic *)
  let bad = Filename.concat dir "bad.pb" in
  let oc = open_out_bin bad in
  output_string oc "NOT-A-PINBALL-AT-ALL";
  close_out oc;
  (try
     ignore (Store.load bad);
     Alcotest.fail "expected Failure"
   with Failure _ -> ());
  Sys.remove bad;
  Sys.remove path;
  Sys.rmdir dir

let test_describe () =
  let prog = sys_program ~iters:5 in
  let whole = Logger.log_whole ~benchmark:"b" prog in
  Alcotest.(check string) "whole" "b.whole"
    (Pinball.describe whole.Logger.pinball)

let suite =
  [
    Alcotest.test_case "log whole" `Quick test_log_whole;
    Alcotest.test_case "whole replay reproduces" `Quick test_whole_replay_reproduces;
    Alcotest.test_case "regional capture matches ground truth" `Quick
      test_regional_capture_matches_ground_truth;
    Alcotest.test_case "region syscall injection" `Quick test_region_syscall_injection;
    Alcotest.test_case "replay divergence" `Quick test_replay_divergence;
    Alcotest.test_case "scan matches capture" `Quick test_scan_matches_capture;
    Alcotest.test_case "scan warmup hooks" `Quick test_scan_warmup_hooks;
    Alcotest.test_case "scan warmup clamped" `Quick test_scan_warmup_clamped;
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "describe" `Quick test_describe;
  ]
