(* Tests for the in-order model, multicore/rate substrates, charts and
   the CPI-stack/model experiments. *)

open Sp_vm

let alu_loop ~iters =
  let a = Asm.create () in
  Asm.li a 1 iters;
  let top = Asm.here a in
  Asm.alui a Add 2 2 3;
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.halt a;
  Asm.assemble a

let load_loop ~iters =
  let a = Asm.create () in
  Asm.li a 1 iters;
  Asm.li a 3 0x100000;
  let top = Asm.here a in
  Asm.load a 2 3 0;
  Asm.alui a Add 3 3 4096;
  (* new page/line every time: misses everywhere *)
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.halt a;
  Asm.assemble a

(* ------------------------------------------------------------------ *)
(* In-order core *)

let inorder_cpi prog =
  let core = Sp_cpu.Inorder_core.create prog in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks:(Sp_cpu.Inorder_core.hooks core) prog m);
  Sp_cpu.Inorder_core.cpi core

let ooo_cpi prog =
  let core = Sp_cpu.Interval_core.create prog in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks:(Sp_cpu.Interval_core.hooks core) prog m);
  Sp_cpu.Interval_core.cpi core

let test_inorder_vs_ooo () =
  let prog = alu_loop ~iters:5000 in
  let ino = inorder_cpi prog and ooo = ooo_cpi prog in
  Alcotest.(check bool)
    (Printf.sprintf "in-order (%.2f) slower than OoO (%.2f)" ino ooo)
    true (ino > ooo);
  Alcotest.(check bool) "in-order at least 1 CPI" true (ino >= 1.0)

let test_inorder_memory_stalls () =
  let compute = inorder_cpi (alu_loop ~iters:3000) in
  let memory = inorder_cpi (load_loop ~iters:3000) in
  Alcotest.(check bool)
    (Printf.sprintf "memory-bound (%.1f) much slower than compute (%.1f)"
       memory compute)
    true
    (memory > 5.0 *. compute)

let test_inorder_warming () =
  let prog = alu_loop ~iters:1000 in
  let core = Sp_cpu.Inorder_core.create prog in
  Sp_cpu.Inorder_core.set_warming core true;
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks:(Sp_cpu.Inorder_core.hooks core) ~fuel:500 prog m);
  Alcotest.(check int) "warming uncounted" 0 (Sp_cpu.Inorder_core.instructions core);
  Sp_cpu.Inorder_core.set_warming core false;
  ignore (Interp.run ~hooks:(Sp_cpu.Inorder_core.hooks core) ~fuel:100 prog m);
  Alcotest.(check int) "counted after" 100 (Sp_cpu.Inorder_core.instructions core)

(* ------------------------------------------------------------------ *)
(* Multicore *)

let test_multicore_runs_all () =
  let p1 = alu_loop ~iters:2000 and p2 = alu_loop ~iters:100 in
  let mc = Multicore.create [ (p1, Hooks.nil); (p2, Hooks.nil) ] in
  Multicore.run ~quantum:64 mc;
  let halted = Multicore.halted mc in
  Alcotest.(check bool) "both halted" true (halted.(0) && halted.(1));
  let retired = Multicore.retired mc in
  Alcotest.(check bool) "core0 ran longer" true (retired.(0) > retired.(1))

let test_multicore_interleaves () =
  (* with a small quantum, both cores make progress before either
     finishes *)
  let order = ref [] in
  let tag i = { Hooks.nil with on_instr = (fun _ _ -> order := i :: !order) } in
  let mc =
    Multicore.create
      [ (alu_loop ~iters:500, tag 0); (alu_loop ~iters:500, tag 1) ]
  in
  Multicore.run ~quantum:10 mc;
  let seen_switch =
    let rec go = function
      | a :: (b :: _ as rest) -> a <> b || go rest
      | _ -> false
    in
    go (List.rev !order)
  in
  Alcotest.(check bool) "interleaved" true seen_switch

let test_multicore_fuel () =
  let mc = Multicore.create [ (alu_loop ~iters:1_000_000, Hooks.nil) ] in
  Multicore.run ~quantum:100 ~fuel:5000 mc;
  Alcotest.(check int) "fuel respected" 5000 (Multicore.retired mc).(0);
  Alcotest.(check bool) "not halted" true (not (Multicore.halted mc).(0))

let test_multicore_isolation () =
  (* same program on two cores: identical final register state, and
     memory writes do not leak between cores *)
  let prog = load_loop ~iters:100 in
  let mc = Multicore.create [ (prog, Hooks.nil); (prog, Hooks.nil) ] in
  Multicore.run ~quantum:7 mc;
  let m0 = Multicore.machine mc 0 and m1 = Multicore.machine mc 1 in
  Alcotest.(check bool) "same registers" true (m0.Interp.regs = m1.Interp.regs);
  Alcotest.(check bool) "distinct memories" true (m0.Interp.mem != m1.Interp.mem)

(* ------------------------------------------------------------------ *)
(* Shared hierarchy *)

let shared_cfg =
  {
    Sp_cache.Config.l1i =
      Sp_cache.Config.level ~name:"i" ~size_kb:1 ~assoc:2 ~line_bytes:32;
    l1d = Sp_cache.Config.level ~name:"d" ~size_kb:1 ~assoc:2 ~line_bytes:32;
    l2 = Sp_cache.Config.level ~name:"2" ~size_kb:2 ~assoc:1 ~line_bytes:32;
    l3 = Sp_cache.Config.level ~name:"3" ~size_kb:4 ~assoc:1 ~line_bytes:32;
  }

let test_shared_l3_interference () =
  let open Sp_cache in
  (* one core streaming 4 kB fits the shared L3 alone... *)
  let solo = Shared_hierarchy.create ~cores:1 shared_cfg in
  for pass = 1 to 4 do
    ignore pass;
    for i = 0 to 127 do
      Shared_hierarchy.read solo ~core:0 (i * 32)
    done
  done;
  let s1 = Shared_hierarchy.core_stats solo 0 in
  (* ...but two cores with the same footprint thrash it *)
  let duo = Shared_hierarchy.create ~cores:2 shared_cfg in
  for pass = 1 to 4 do
    ignore pass;
    for i = 0 to 127 do
      Shared_hierarchy.read duo ~core:0 (i * 32);
      Shared_hierarchy.read duo ~core:1 (i * 32)
    done
  done;
  let s2 = Shared_hierarchy.core_stats duo 0 in
  let rate (s : Shared_hierarchy.core_stats) =
    float_of_int s.Shared_hierarchy.l3_misses
    /. float_of_int (max 1 s.Shared_hierarchy.l3_accesses)
  in
  Alcotest.(check bool)
    (Printf.sprintf "solo %.2f < shared %.2f" (rate s1) (rate s2))
    true
    (rate s1 < rate s2);
  (* cores see disjoint addresses: core 1's lines never hit core 0's *)
  let l3 = Shared_hierarchy.shared_l3 duo in
  Alcotest.(check bool) "both cores reached L3" true
    (l3.Sp_cache.Hierarchy.accesses
    = s2.Shared_hierarchy.l3_accesses
      + (Shared_hierarchy.core_stats duo 1).Shared_hierarchy.l3_accesses)

(* ------------------------------------------------------------------ *)
(* Charts *)

let test_chart_bar () =
  let s = Sp_util.Chart.bar ~width:10 [ ("a", 10.0); ("bb", 5.0); ("c", 0.0) ] in
  Alcotest.(check bool) "a full bar" true
    (Astring_contains.contains s "##########");
  Alcotest.(check bool) "labels aligned" true (Astring_contains.contains s "bb |");
  Alcotest.(check bool) "zero is empty" true (Astring_contains.contains s "c  |  0")

let test_chart_series () =
  let s =
    Sp_util.Chart.series ~height:5 ~width:20 ~labels:[ "up"; "down" ]
      [ [| 0.0; 1.0; 2.0; 3.0 |]; [| 3.0; 2.0; 1.0; 0.0 |] ]
  in
  Alcotest.(check bool) "legend" true (Astring_contains.contains s "*=up");
  Alcotest.(check bool) "second glyph" true (Astring_contains.contains s "o=down");
  (try
     ignore (Sp_util.Chart.series ~labels:[ "x" ] []);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Experiment smoke tests (tiny scale) *)

let tiny_options =
  {
    Specrepro.Pipeline.default_options with
    slices_scale = 0.02;
    collect_variance = false;
    progress = false;
  }

let test_models_smoke () =
  let t =
    Specrepro.Experiments.models ~options:tiny_options
      ~specs:[ Sp_workloads.Suite.find "620.omnetpp_s" ] ()
  in
  let s = Sp_util.Table.render t in
  Alcotest.(check bool) "row present" true
    (Astring_contains.contains s "620.omnetpp_s")

let test_rate_smoke () =
  let t =
    Specrepro.Experiments.rate ~options:tiny_options
      ~specs:[ Sp_workloads.Suite.find "620.omnetpp_s" ]
      ~copies:2 ()
  in
  let s = Sp_util.Table.render t in
  Alcotest.(check bool) "row present" true
    (Astring_contains.contains s "620.omnetpp_s")

let test_sampling_smoke () =
  let t =
    Specrepro.Experiments.sampling ~options:tiny_options
      ~specs:[ Sp_workloads.Suite.find "620.omnetpp_s" ] ()
  in
  Alcotest.(check bool) "renders" true
    (String.length (Sp_util.Table.render t) > 0)

let test_smarts_smoke () =
  let t =
    Specrepro.Experiments.smarts ~options:tiny_options
      ~specs:[ Sp_workloads.Suite.find "620.omnetpp_s" ]
      ~period:10 ()
  in
  Alcotest.(check bool) "renders" true
    (Astring_contains.contains (Sp_util.Table.render t) "620.omnetpp_s")

let test_timevary_smoke () =
  let s =
    Specrepro.Experiments.timevary ~options:tiny_options
      ~specs:[ Sp_workloads.Suite.find "620.omnetpp_s" ] ()
  in
  Alcotest.(check bool) "chart rendered" true
    (Astring_contains.contains s "CPI per slice")

let test_statcache_smoke () =
  let t =
    Specrepro.Experiments.statcache ~options:tiny_options
      ~specs:[ Sp_workloads.Suite.find "620.omnetpp_s" ] ()
  in
  Alcotest.(check bool) "renders" true
    (String.length (Sp_util.Table.render t) > 0)

let suite =
  [
    Alcotest.test_case "inorder vs ooo" `Quick test_inorder_vs_ooo;
    Alcotest.test_case "inorder memory stalls" `Quick test_inorder_memory_stalls;
    Alcotest.test_case "inorder warming" `Quick test_inorder_warming;
    Alcotest.test_case "multicore runs all" `Quick test_multicore_runs_all;
    Alcotest.test_case "multicore interleaves" `Quick test_multicore_interleaves;
    Alcotest.test_case "multicore fuel" `Quick test_multicore_fuel;
    Alcotest.test_case "multicore isolation" `Quick test_multicore_isolation;
    Alcotest.test_case "shared L3 interference" `Quick test_shared_l3_interference;
    Alcotest.test_case "chart bar" `Quick test_chart_bar;
    Alcotest.test_case "chart series" `Quick test_chart_series;
    Alcotest.test_case "models smoke" `Quick test_models_smoke;
    Alcotest.test_case "rate smoke" `Quick test_rate_smoke;
    Alcotest.test_case "sampling smoke" `Quick test_sampling_smoke;
    Alcotest.test_case "statcache smoke" `Quick test_statcache_smoke;
    Alcotest.test_case "timevary smoke" `Quick test_timevary_smoke;
    Alcotest.test_case "smarts smoke" `Quick test_smarts_smoke;
  ]
