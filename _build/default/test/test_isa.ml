(* Tests for Sp_isa: classification, codes, control-flow helpers. *)

open Sp_isa

let all_sample_instrs =
  [
    Isa.Alu (Isa.Add, 0, 1, 2);
    Isa.Alu (Isa.Mul, 0, 1, 2);
    Isa.Alu (Isa.Div, 0, 1, 2);
    Isa.Alu (Isa.Rem, 0, 1, 2);
    Isa.Alui (Isa.Xor, 0, 1, 5);
    Isa.Li (3, 42);
    Isa.Mov (4, 5);
    Isa.Load (0, 1, 8);
    Isa.Store (0, 1, 8);
    Isa.Movs (0, 1);
    Isa.Falu (Isa.Fadd, 0, 1, 2);
    Isa.Falu (Isa.Fmul, 0, 1, 2);
    Isa.Falu (Isa.Fdiv, 0, 1, 2);
    Isa.Fload (0, 1, 0);
    Isa.Fstore (0, 1, 0);
    Isa.Fmovi (0, 1.5);
    Isa.Cvtif (0, 1);
    Isa.Cvtfi (0, 1);
    Isa.Branch (Isa.Eq, 0, 1, 7);
    Isa.Jump 3;
    Isa.Call 9;
    Isa.Ret;
    Isa.Sys (0, 2);
    Isa.Halt;
  ]

let test_mem_class () =
  let check i cls =
    Alcotest.(check string)
      (Isa.to_string i) (Isa.mem_class_name cls)
      (Isa.mem_class_name (Isa.mem_class i))
  in
  check (Isa.Load (0, 1, 0)) Isa.Mem_r;
  check (Isa.Fload (0, 1, 0)) Isa.Mem_r;
  check (Isa.Store (0, 1, 0)) Isa.Mem_w;
  check (Isa.Fstore (0, 1, 0)) Isa.Mem_w;
  check (Isa.Movs (0, 1)) Isa.Mem_rw;
  check (Isa.Alu (Isa.Add, 0, 1, 2)) Isa.No_mem;
  check (Isa.Branch (Isa.Eq, 0, 1, 0)) Isa.No_mem;
  check Isa.Halt Isa.No_mem

let test_mem_class_codes () =
  List.iter
    (fun cls ->
      Alcotest.(check string)
        "roundtrip" (Isa.mem_class_name cls)
        (Isa.mem_class_name (Isa.mem_class_of_code (Isa.mem_class_code cls))))
    Isa.all_mem_classes;
  Alcotest.check_raises "bad code"
    (Invalid_argument "Isa.mem_class_of_code: 9") (fun () ->
      ignore (Isa.mem_class_of_code 9))

let test_kind_codes () =
  List.iter
    (fun i ->
      let k = Isa.kind i in
      let code = Isa.kind_code k in
      Alcotest.(check bool) "in range" true (code >= 0 && code < Isa.num_kinds);
      Alcotest.(check bool) "roundtrip" true (Isa.kind_of_code code = k))
    all_sample_instrs

let test_kind_classification () =
  Alcotest.(check bool) "mul" true (Isa.kind (Isa.Alu (Isa.Mul, 0, 0, 0)) = Isa.K_mul);
  Alcotest.(check bool) "div" true (Isa.kind (Isa.Alui (Isa.Div, 0, 0, 1)) = Isa.K_div);
  Alcotest.(check bool) "rem is div-class" true
    (Isa.kind (Isa.Alu (Isa.Rem, 0, 0, 0)) = Isa.K_div);
  Alcotest.(check bool) "fmul" true (Isa.kind (Isa.Falu (Isa.Fmul, 0, 0, 0)) = Isa.K_fmul);
  Alcotest.(check bool) "call is jump-class" true (Isa.kind (Isa.Call 0) = Isa.K_jump);
  Alcotest.(check bool) "ret is jump-class" true (Isa.kind Isa.Ret = Isa.K_jump)

let test_control () =
  let controls = [ Isa.Branch (Isa.Lt, 0, 1, 2); Isa.Jump 0; Isa.Call 0; Isa.Ret; Isa.Halt ] in
  List.iter
    (fun i -> Alcotest.(check bool) (Isa.to_string i) true (Isa.is_control i))
    controls;
  Alcotest.(check bool) "load not control" false (Isa.is_control (Isa.Load (0, 1, 0)));
  Alcotest.(check bool) "branch target" true
    (Isa.branch_target (Isa.Branch (Isa.Eq, 0, 0, 17)) = Some 17);
  Alcotest.(check bool) "ret has no static target" true (Isa.branch_target Isa.Ret = None)

let test_map_target () =
  let f t = t + 100 in
  Alcotest.(check bool) "jump remapped" true
    (Isa.map_target f (Isa.Jump 1) = Isa.Jump 101);
  Alcotest.(check bool) "call remapped" true
    (Isa.map_target f (Isa.Call 2) = Isa.Call 102);
  Alcotest.(check bool) "branch remapped" true
    (Isa.map_target f (Isa.Branch (Isa.Ge, 1, 2, 3)) = Isa.Branch (Isa.Ge, 1, 2, 103));
  let load = Isa.Load (0, 1, 2) in
  Alcotest.(check bool) "non-control unchanged" true (Isa.map_target f load = load)

let test_disassembly () =
  let check i expect = Alcotest.(check string) expect expect (Isa.to_string i) in
  check (Isa.Alu (Isa.Add, 3, 1, 2)) "add r3, r1, r2";
  check (Isa.Li (4, -7)) "li r4, -7";
  check (Isa.Load (2, 5, 16)) "ld r2, 16(r5)";
  check (Isa.Branch (Isa.Gt, 1, 15, 9)) "bgt r1, r15, @9";
  check Isa.Halt "halt"

let test_parse_roundtrip () =
  List.iter
    (fun i ->
      match Isa.of_string (Isa.to_string i) with
      | Some parsed ->
          Alcotest.(check string) (Isa.to_string i) (Isa.to_string i)
            (Isa.to_string parsed)
      | None -> Alcotest.fail ("unparseable: " ^ Isa.to_string i))
    all_sample_instrs

let prop_parse_roundtrip =
  let open QCheck in
  let reg = Gen.int_range 0 15 in
  let gen =
    Gen.oneof
      [
        Gen.map3 (fun op a (b, c) -> Isa.Alu (op, a, b, c))
          (Gen.oneofl [ Isa.Add; Isa.Mul; Isa.Shr; Isa.Rem ])
          reg (Gen.pair reg reg);
        Gen.map3 (fun op a (b, imm) -> Isa.Alui (op, a, b, imm))
          (Gen.oneofl [ Isa.Sub; Isa.Xor; Isa.And ])
          reg
          (Gen.pair reg (Gen.int_range (-100000) 100000));
        Gen.map2 (fun a imm -> Isa.Li (a, imm)) reg (Gen.int_range (-1000000) 1000000);
        Gen.map3 (fun a b off -> Isa.Load (a, b, off)) reg reg (Gen.int_range (-512) 512);
        Gen.map3 (fun a b off -> Isa.Fstore (a, b, off)) reg reg (Gen.int_range (-512) 512);
        Gen.map2 (fun a b -> Isa.Movs (a, b)) reg reg;
        Gen.map3 (fun c (a, b) t -> Isa.Branch (c, a, b, t))
          (Gen.oneofl [ Isa.Eq; Isa.Ne; Isa.Lt; Isa.Le; Isa.Gt; Isa.Ge ])
          (Gen.pair reg reg) (Gen.int_range 0 100000);
        Gen.map2 (fun fd q -> Isa.Fmovi (fd, float_of_int q /. 4.0))
          reg (Gen.int_range (-1000) 1000);
        Gen.map (fun t -> Isa.Jump t) (Gen.int_range 0 100000);
        Gen.map2 (fun n r -> Isa.Sys (n, r)) (Gen.int_range 0 63) reg;
      ]
  in
  Test.make ~name:"disassembly parse roundtrip" ~count:500 (make gen)
    (fun i -> Isa.of_string (Isa.to_string i) = Some i)

let test_parse_rejects_garbage () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true (Isa.of_string s = None))
    [ ""; "nop"; "add r1, r2"; "ld r99, 0(r1)"; "beq r1, r2, 7"; "li rx, 3" ]

let suite =
  [
    Alcotest.test_case "mem_class" `Quick test_mem_class;
    Alcotest.test_case "mem_class codes" `Quick test_mem_class_codes;
    Alcotest.test_case "kind codes" `Quick test_kind_codes;
    Alcotest.test_case "kind classification" `Quick test_kind_classification;
    Alcotest.test_case "control helpers" `Quick test_control;
    Alcotest.test_case "map_target" `Quick test_map_target;
    Alcotest.test_case "disassembly" `Quick test_disassembly;
    Alcotest.test_case "parse roundtrip (samples)" `Quick test_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_parse_roundtrip;
    Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects_garbage;
  ]
