(* Tests for the extension substrates: TLBs, replacement policies,
   write-backs, prefetching, reuse-distance profiling, systematic
   sampling, PCA, hierarchical clustering, trace I/O, slice timing. *)

open Sp_cache

(* ------------------------------------------------------------------ *)
(* TLB *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create Tlb.dtlb_default in
  Tlb.access tlb 0x1000;
  Tlb.access tlb 0x1008;
  (* same page *)
  Tlb.access tlb 0x5000;
  let s = Tlb.stats tlb in
  Alcotest.(check int) "accesses" 3 s.Tlb.accesses;
  Alcotest.(check int) "misses" 2 s.Tlb.misses;
  Alcotest.(check int) "walks (no L2)" 2 s.Tlb.walks

let test_tlb_second_level () =
  let tlb = Tlb.create ~level2:Tlb.stlb_default Tlb.dtlb_default in
  (* touch 65 distinct pages: one more than the 64-entry first level *)
  for i = 0 to 64 do
    Tlb.access tlb (i * 4096)
  done;
  (* page 0 misses the L1 TLB (fully cycled) but hits the 512-entry L2 *)
  Tlb.access tlb 0;
  let s = Tlb.stats tlb in
  Alcotest.(check int) "walks = compulsory only" 65 s.Tlb.walks;
  Alcotest.(check bool) "L1 miss happened" true (s.Tlb.misses > 65 - 1)

let test_tlb_warm () =
  let tlb = Tlb.create Tlb.dtlb_default in
  Tlb.warm tlb 0x2000;
  let s = Tlb.stats tlb in
  Alcotest.(check int) "warm not counted" 0 s.Tlb.accesses;
  Tlb.access tlb 0x2008;
  Alcotest.(check int) "warm installed" 0 (Tlb.stats tlb).Tlb.misses

(* ------------------------------------------------------------------ *)
(* Cache policies / writebacks / prefetch *)

let tiny_cfg = Config.level ~name:"tiny" ~size_kb:1 ~assoc:2 ~line_bytes:32

let test_fifo_vs_lru () =
  (* sequence in one set: A B A C; under LRU the re-touch protects A,
     under FIFO A is still the oldest and gets evicted *)
  let stride = 16 * 32 in
  let a, b, c = (0, stride, 2 * stride) in
  let run policy =
    let cache = Cache.create ~policy tiny_cfg in
    ignore (Cache.access cache a);
    ignore (Cache.access cache b);
    ignore (Cache.access cache a);
    ignore (Cache.access cache c);
    Cache.access cache a
  in
  Alcotest.(check bool) "LRU keeps A" true (run Cache.Lru);
  Alcotest.(check bool) "FIFO evicts A" false (run Cache.Fifo)

let test_random_policy_bounded () =
  let cache = Cache.create ~policy:Cache.Random ~seed:7 tiny_cfg in
  for i = 0 to 199 do
    ignore (Cache.access cache (i * 32))
  done;
  Alcotest.(check bool) "resident bounded" true
    (Cache.resident_lines cache <= Config.num_lines tiny_cfg);
  Alcotest.(check int) "all counted" 200 (Cache.accesses cache)

let test_writebacks () =
  let cache = Cache.create tiny_cfg in
  let stride = 16 * 32 in
  ignore (Cache.access_rw cache ~write:true 0);
  ignore (Cache.access_rw cache ~write:false stride);
  (* evict the dirty line with two more aliases *)
  ignore (Cache.access_rw cache ~write:false (2 * stride));
  ignore (Cache.access_rw cache ~write:false (3 * stride));
  Alcotest.(check int) "one writeback" 1 (Cache.writebacks cache);
  (* clean evictions do not count *)
  ignore (Cache.access_rw cache ~write:false (4 * stride));
  Alcotest.(check int) "still one" 1 (Cache.writebacks cache)

let test_dirty_sticks_through_lru_rotation () =
  let cache = Cache.create tiny_cfg in
  let stride = 16 * 32 in
  ignore (Cache.access_rw cache ~write:true 0);
  ignore (Cache.access_rw cache ~write:false stride);
  ignore (Cache.access_rw cache ~write:false 0);
  (* rotate the dirty line to MRU *)
  ignore (Cache.access_rw cache ~write:false (2 * stride));
  (* evicts the clean line *)
  ignore (Cache.access_rw cache ~write:false (3 * stride));
  (* evicts dirty line *)
  Alcotest.(check int) "dirty bit survived rotation" 1 (Cache.writebacks cache)

let small_hierarchy ?policy ?next_line_prefetch () =
  Hierarchy.create ?policy ?next_line_prefetch
    {
      Config.l1i = Config.level ~name:"i" ~size_kb:1 ~assoc:2 ~line_bytes:32;
      l1d = Config.level ~name:"d" ~size_kb:1 ~assoc:2 ~line_bytes:32;
      l2 = Config.level ~name:"2" ~size_kb:2 ~assoc:1 ~line_bytes:32;
      l3 = Config.level ~name:"3" ~size_kb:4 ~assoc:1 ~line_bytes:32;
    }

let test_prefetch () =
  let h = small_hierarchy ~next_line_prefetch:true () in
  Hierarchy.read h 0x8000;
  (* L2-missing access: next line prefetched into L2/L3 *)
  Alcotest.(check int) "prefetch issued" 1 (Hierarchy.prefetches h);
  Alcotest.(check bool) "next line now in L2 or L3" true
    (match Hierarchy.read_where h 0x8020 with
    | Hierarchy.L2 | Hierarchy.L3 -> true
    | Hierarchy.L1 | Hierarchy.Memory -> false);
  let off = small_hierarchy () in
  Hierarchy.read off 0x8000;
  Alcotest.(check int) "disabled by default" 0 (Hierarchy.prefetches off);
  Alcotest.(check bool) "no prefetch -> memory" true
    (Hierarchy.read_where off 0x8020 = Hierarchy.Memory)

let test_hierarchy_writebacks () =
  let h = small_hierarchy () in
  Hierarchy.write h 0;
  let stride = 16 * 32 in
  Hierarchy.read h stride;
  Hierarchy.read h (2 * stride);
  Hierarchy.read h (3 * stride);
  let l1d, _, _ = Hierarchy.writebacks h in
  Alcotest.(check int) "L1D writeback counted" 1 l1d

(* ------------------------------------------------------------------ *)
(* Reuse-distance profiling *)

let test_reuse_basics () =
  let r = Reuse.create ~line_bytes:64 () in
  (* A B A : A's reuse distance is 1 distinct line *)
  Reuse.access r 0;
  Reuse.access r 64;
  Reuse.access r 0;
  Alcotest.(check int) "total" 3 (Reuse.total r);
  Alcotest.(check int) "cold" 2 (Reuse.cold r);
  Alcotest.(check (float 1e-9)) "everything within 1 line" 1.0 (Reuse.cdf_at r 1)

let test_reuse_distances () =
  let r = Reuse.create ~line_bytes:64 () in
  (* touch lines 0..7, then re-touch line 0: distance 7 *)
  for i = 0 to 7 do
    Reuse.access r (i * 64)
  done;
  Reuse.access r 0;
  Alcotest.(check (float 1e-9)) "not within 4" 0.0 (Reuse.cdf_at r 4);
  Alcotest.(check (float 1e-9)) "within 8" 1.0 (Reuse.cdf_at r 8)

let test_reuse_same_line_spatial () =
  let r = Reuse.create ~line_bytes:64 () in
  Reuse.access r 0;
  Reuse.access r 8;
  (* same line: distance ~0 -> bucket 1 *)
  Alcotest.(check int) "one cold only" 1 (Reuse.cold r);
  Alcotest.(check (float 1e-9)) "spatial hit close" 1.0 (Reuse.cdf_at r 1)

let test_reuse_miss_estimate_matches_lru () =
  (* cyclic sweep over N lines: a fully-associative LRU cache of >= N
     lines hits everything after the first pass; < N lines misses all *)
  let n = 32 in
  let r = Reuse.create ~line_bytes:64 () in
  for _pass = 1 to 8 do
    for i = 0 to n - 1 do
      Reuse.access r (i * 64)
    done
  done;
  let big = Reuse.miss_rate_estimate r ~cache_lines:64 in
  let small = Reuse.miss_rate_estimate r ~cache_lines:8 in
  Alcotest.(check bool) "big cache ~ cold only" true (big < 0.2);
  Alcotest.(check bool) "small cache misses everything" true (small > 0.9)

let test_reuse_cap () =
  let r = Reuse.create ~line_bytes:64 ~max_accesses:10 () in
  for i = 0 to 99 do
    Reuse.access r (i * 64)
  done;
  Alcotest.(check int) "capped total" 10 (Reuse.total r);
  Alcotest.(check bool) "flagged" true (Reuse.capped r)

(* ------------------------------------------------------------------ *)
(* Systematic sampling *)

let test_systematic_design () =
  let d = Sp_simpoint.Systematic.design_for_budget ~num_slices:1000 ~budget:20 in
  let idx = Sp_simpoint.Systematic.sample_indices d ~num_slices:1000 in
  Alcotest.(check bool) "about the budget" true
    (Array.length idx >= 18 && Array.length idx <= 22);
  Array.iter
    (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 1000))
    idx;
  (* uniform spacing *)
  for i = 1 to Array.length idx - 1 do
    Alcotest.(check int) "spacing" d.Sp_simpoint.Systematic.period
      (idx.(i) - idx.(i - 1))
  done

let test_systematic_estimate () =
  let e = Sp_simpoint.Systematic.estimate [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 e.Sp_simpoint.Systematic.mean;
  Alcotest.(check bool) "CI positive" true (e.Sp_simpoint.Systematic.ci95_half > 0.0);
  (* constant samples: zero CI *)
  let c = Sp_simpoint.Systematic.estimate [| 5.0; 5.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "constant CI" 0.0 c.Sp_simpoint.Systematic.ci95_half

let test_systematic_ci_shrinks () =
  let rng = Sp_util.Rng.create 11 in
  let sample n = Array.init n (fun _ -> Sp_util.Rng.gaussian rng ~mu:2.0 ~sigma:0.5) in
  let small = Sp_simpoint.Systematic.estimate (sample 20) in
  let large = Sp_simpoint.Systematic.estimate (sample 2000) in
  Alcotest.(check bool) "more samples, tighter CI" true
    (large.Sp_simpoint.Systematic.ci95_half < small.Sp_simpoint.Systematic.ci95_half)

let test_required_samples () =
  Alcotest.(check int) "SMARTS rule" 426
    (Sp_simpoint.Systematic.required_samples ~cv:0.1 ~target_rel_ci:0.0095);
  Alcotest.(check bool) "monotone in cv" true
    (Sp_simpoint.Systematic.required_samples ~cv:0.5 ~target_rel_ci:0.03
    > Sp_simpoint.Systematic.required_samples ~cv:0.1 ~target_rel_ci:0.03)

(* ------------------------------------------------------------------ *)
(* PCA *)

let test_pca_explained () =
  (* a rank-ish structure: y = 2x + tiny noise; z independent but small *)
  let rng = Sp_util.Rng.create 3 in
  let data =
    Array.init 200 (fun _ ->
        let x = Sp_util.Rng.gaussian rng ~mu:0.0 ~sigma:1.0 in
        [| x; 2.0 *. x +. Sp_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.01 |])
  in
  let p = Sp_simpoint.Pca.fit data in
  Alcotest.(check bool) "PC1 dominates" true (p.Sp_simpoint.Pca.explained.(0) > 0.95);
  let total = Array.fold_left ( +. ) 0.0 p.Sp_simpoint.Pca.explained in
  Alcotest.(check bool) "explained sums to ~1" true (Float.abs (total -. 1.0) < 1e-6)

let test_pca_standardize () =
  let z = Sp_simpoint.Pca.standardize [| [| 1.0; 5.0 |]; [| 3.0; 5.0 |] |] in
  Alcotest.(check (float 1e-9)) "z mean 0" 0.0 (z.(0).(0) +. z.(1).(0));
  Alcotest.(check (float 1e-9)) "constant column to 0" 0.0 z.(0).(1)

let test_jacobi () =
  let m = [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  let eigenvalues, _ = Sp_simpoint.Pca.jacobi_eigen m in
  Array.sort compare eigenvalues;
  Alcotest.(check (float 1e-9)) "lambda1" 1.0 eigenvalues.(0);
  Alcotest.(check (float 1e-9)) "lambda2" 3.0 eigenvalues.(1)

(* ------------------------------------------------------------------ *)
(* Hierarchical clustering *)

let test_hcluster () =
  (* three tight groups on a line *)
  let points =
    [| [| 0.0 |]; [| 0.1 |]; [| 10.0 |]; [| 10.1 |]; [| 20.0 |]; [| 20.1 |] |]
  in
  let steps = Sp_simpoint.Hcluster.linkage points in
  Alcotest.(check int) "n-1 merges" 5 (List.length steps);
  let assignment = Sp_simpoint.Hcluster.cut ~n:6 steps ~k:3 in
  Alcotest.(check int) "pairs together 01" assignment.(0) assignment.(1);
  Alcotest.(check int) "pairs together 23" assignment.(2) assignment.(3);
  Alcotest.(check int) "pairs together 45" assignment.(4) assignment.(5);
  Alcotest.(check bool) "groups distinct" true
    (assignment.(0) <> assignment.(2) && assignment.(2) <> assignment.(4));
  let reps = Sp_simpoint.Hcluster.medoids points assignment in
  Alcotest.(check int) "three representatives" 3 (Array.length reps);
  Array.iteri
    (fun c rep ->
      Alcotest.(check int) "rep in own cluster" c assignment.(rep))
    reps

let test_hcluster_cut_bounds () =
  let points = [| [| 0.0 |]; [| 1.0 |] |] in
  let steps = Sp_simpoint.Hcluster.linkage points in
  let one = Sp_simpoint.Hcluster.cut ~n:2 steps ~k:1 in
  Alcotest.(check int) "k=1 merges all" one.(0) one.(1);
  let all = Sp_simpoint.Hcluster.cut ~n:2 steps ~k:10 in
  Alcotest.(check bool) "k clamped to n" true (all.(0) <> all.(1))

(* ------------------------------------------------------------------ *)
(* Trace I/O *)

let test_trace_roundtrip () =
  let open Sp_vm in
  let a = Asm.create () in
  Asm.li a 1 0x40;
  Asm.load a 2 1 0;
  Asm.store a 2 1 8;
  let target = Asm.new_label a in
  Asm.branch a Sp_isa.Isa.Eq 1 1 target;
  Asm.place a target;
  Asm.halt a;
  let prog = Asm.assemble a in
  let path = Filename.temp_file "trace" ".txt" in
  let oc = open_out path in
  let w = Sp_pin.Trace_io.Writer.create oc in
  ignore (Sp_pin.Pin.run_fresh ~tools:[ Sp_pin.Trace_io.Writer.hooks w ] prog);
  close_out oc;
  let ic = open_in path in
  let events = Sp_pin.Trace_io.Reader.read_all ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check int) "events written" (Sp_pin.Trace_io.Writer.events_written w)
    (List.length events);
  let reads =
    List.filter (function Sp_pin.Trace_io.Read _ -> true | _ -> false) events
  in
  let writes =
    List.filter (function Sp_pin.Trace_io.Write 0x48 -> true | _ -> false) events
  in
  Alcotest.(check int) "one read" 1 (List.length reads);
  Alcotest.(check int) "write addr preserved" 1 (List.length writes);
  Alcotest.(check bool) "branch taken recorded" true
    (List.exists
       (function Sp_pin.Trace_io.Branch (_, true) -> true | _ -> false)
       events)

let test_trace_limit () =
  let open Sp_vm in
  let a = Asm.create () in
  Asm.li a 1 100;
  let top = Asm.here a in
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.halt a;
  let prog = Asm.assemble a in
  let path = Filename.temp_file "trace" ".txt" in
  let oc = open_out path in
  let w = Sp_pin.Trace_io.Writer.create ~limit:10 oc in
  ignore (Sp_pin.Pin.run_fresh ~tools:[ Sp_pin.Trace_io.Writer.hooks w ] prog);
  close_out oc;
  Sys.remove path;
  Alcotest.(check int) "limited" 10 (Sp_pin.Trace_io.Writer.events_written w);
  Alcotest.(check bool) "truncated flag" true (Sp_pin.Trace_io.Writer.truncated w)

let test_trace_malformed () =
  let path = Filename.temp_file "trace" ".txt" in
  let oc = open_out path in
  output_string oc "X nonsense\n";
  close_out oc;
  let ic = open_in path in
  (try
     ignore (Sp_pin.Trace_io.Reader.read_all ic);
     Alcotest.fail "expected Failure"
   with Failure _ -> ());
  close_in ic;
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Slice timer *)

let test_slice_timer () =
  let open Sp_vm in
  let a = Asm.create () in
  Asm.li a 1 5000;
  let top = Asm.here a in
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.halt a;
  let prog = Asm.assemble a in
  let core = Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim prog in
  let timer = Sp_cpu.Slice_timer.create ~slice_len:1000 core in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore
    (Interp.run
       ~hooks:
         (Hooks.seq (Sp_cpu.Interval_core.hooks core) (Sp_cpu.Slice_timer.hooks timer))
       prog m);
  Sp_cpu.Slice_timer.finish timer;
  let cpis = Sp_cpu.Slice_timer.slice_cpis timer in
  Alcotest.(check int) "10 slices" 10 (Array.length cpis);
  (* mid slices of a pure loop all cost the same *)
  Alcotest.(check (float 1e-6)) "steady slices equal" cpis.(3) cpis.(6);
  (* per-slice CPIs average (weighted) to the core's CPI *)
  let mean = Sp_util.Stats.mean cpis in
  Alcotest.(check bool) "mean close to whole CPI" true
    (Float.abs (mean -. Sp_cpu.Interval_core.cpi core) < 0.05)

let suite =
  [
    Alcotest.test_case "tlb hit/miss" `Quick test_tlb_hit_miss;
    Alcotest.test_case "tlb second level" `Quick test_tlb_second_level;
    Alcotest.test_case "tlb warm" `Quick test_tlb_warm;
    Alcotest.test_case "fifo vs lru" `Quick test_fifo_vs_lru;
    Alcotest.test_case "random policy" `Quick test_random_policy_bounded;
    Alcotest.test_case "writebacks" `Quick test_writebacks;
    Alcotest.test_case "dirty bit rotation" `Quick test_dirty_sticks_through_lru_rotation;
    Alcotest.test_case "prefetch" `Quick test_prefetch;
    Alcotest.test_case "hierarchy writebacks" `Quick test_hierarchy_writebacks;
    Alcotest.test_case "reuse basics" `Quick test_reuse_basics;
    Alcotest.test_case "reuse distances" `Quick test_reuse_distances;
    Alcotest.test_case "reuse same line" `Quick test_reuse_same_line_spatial;
    Alcotest.test_case "reuse vs LRU" `Quick test_reuse_miss_estimate_matches_lru;
    Alcotest.test_case "reuse cap" `Quick test_reuse_cap;
    Alcotest.test_case "systematic design" `Quick test_systematic_design;
    Alcotest.test_case "systematic estimate" `Quick test_systematic_estimate;
    Alcotest.test_case "systematic CI shrinks" `Quick test_systematic_ci_shrinks;
    Alcotest.test_case "required samples" `Quick test_required_samples;
    Alcotest.test_case "pca explained" `Quick test_pca_explained;
    Alcotest.test_case "pca standardize" `Quick test_pca_standardize;
    Alcotest.test_case "jacobi eigen" `Quick test_jacobi;
    Alcotest.test_case "hcluster" `Quick test_hcluster;
    Alcotest.test_case "hcluster cut bounds" `Quick test_hcluster_cut_bounds;
    Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace limit" `Quick test_trace_limit;
    Alcotest.test_case "trace malformed" `Quick test_trace_malformed;
    Alcotest.test_case "slice timer" `Quick test_slice_timer;
  ]
