(* Tests for Sp_perf: counter samples and the native-machine model. *)

open Sp_vm
open Sp_perf

let small_program () =
  let a = Asm.create ~name:"perf-test" () in
  Asm.li a 1 100_000;
  let top = Asm.here a in
  Asm.li a 2 0x1000;
  Asm.load a 3 2 0;
  Asm.alu a Sp_isa.Isa.Add 4 4 3;
  Asm.alui a Sp_isa.Isa.Sub 1 1 1;
  Asm.branch a Sp_isa.Isa.Gt 1 15 top;
  Asm.halt a;
  Asm.assemble a

let test_cpi_ipc () =
  let s =
    {
      Perf_counters.cpu_cycles = 200.0;
      instructions = 100;
      cache_references = 10;
      cache_misses = 5;
      branch_instructions = 20;
      branch_misses = 2;
      task_clock_seconds = 1.0;
    }
  in
  Alcotest.(check (float 1e-9)) "cpi" 2.0 (Perf_counters.cpi s);
  Alcotest.(check (float 1e-9)) "ipc" 0.5 (Perf_counters.ipc s);
  let zero = { s with Perf_counters.instructions = 0; cpu_cycles = 0.0 } in
  Alcotest.(check (float 0.0)) "cpi zero insns" 0.0 (Perf_counters.cpi zero);
  Alcotest.(check (float 0.0)) "ipc zero cycles" 0.0 (Perf_counters.ipc zero)

let test_pp_sample () =
  let prog = small_program () in
  let s = Native.run prog in
  let rendered = Format.asprintf "%a" Perf_counters.pp s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Astring_contains.contains rendered needle))
    [ "cpu-cycles"; "instructions"; "branch-misses"; "task-clock" ]

let test_native_run_deterministic () =
  let prog = small_program () in
  let a = Native.run ~run_index:0 prog in
  let b = Native.run ~run_index:0 prog in
  Alcotest.(check (float 0.0)) "same run same cycles" a.Perf_counters.cpu_cycles
    b.Perf_counters.cpu_cycles

let test_native_runs_vary () =
  let prog = small_program () in
  let a = Native.run ~run_index:0 prog in
  let b = Native.run ~run_index:1 prog in
  Alcotest.(check bool) "noise differs across runs" true
    (a.Perf_counters.cpu_cycles <> b.Perf_counters.cpu_cycles);
  Alcotest.(check int) "instruction count exact" a.Perf_counters.instructions
    b.Perf_counters.instructions;
  (* noise is small: within a few percent *)
  let rel =
    Float.abs (a.Perf_counters.cpu_cycles -. b.Perf_counters.cpu_cycles)
    /. a.Perf_counters.cpu_cycles
  in
  Alcotest.(check bool) "noise bounded" true (rel < 0.15)

let test_native_tracks_model () =
  let prog = small_program () in
  let core = Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim prog in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks:(Sp_cpu.Interval_core.hooks core) prog m);
  let sample = Native.run prog in
  let err =
    Float.abs (Perf_counters.cpi sample -. Sp_cpu.Interval_core.cpi core)
    /. Sp_cpu.Interval_core.cpi core
  in
  (* noise + startup overhead stay within ~15% on a run this size *)
  Alcotest.(check bool) (Printf.sprintf "err %.3f" err) true (err < 0.15)

let test_sample_of_stats_consistency () =
  let prog = small_program () in
  let core = Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim prog in
  let m = Interp.create ~entry:prog.Program.entry () in
  ignore (Interp.run ~hooks:(Sp_cpu.Interval_core.hooks core) prog m);
  let stats = Sp_cpu.Interval_core.stats core in
  let s = Native.sample_of_stats ~name:"perf-test" stats in
  Alcotest.(check int) "instructions preserved" stats.Sp_cpu.Interval_core.instructions
    s.Perf_counters.instructions;
  Alcotest.(check int) "branch counters preserved"
    stats.Sp_cpu.Interval_core.branch_mispredicts s.Perf_counters.branch_misses;
  Alcotest.(check int) "LLC misses = memory-level hits"
    stats.Sp_cpu.Interval_core.level_hits.(3)
    s.Perf_counters.cache_misses

let suite =
  [
    Alcotest.test_case "cpi/ipc" `Quick test_cpi_ipc;
    Alcotest.test_case "pp sample" `Quick test_pp_sample;
    Alcotest.test_case "native deterministic" `Quick test_native_run_deterministic;
    Alcotest.test_case "native runs vary" `Quick test_native_runs_vary;
    Alcotest.test_case "native tracks model" `Quick test_native_tracks_model;
    Alcotest.test_case "sample_of_stats" `Quick test_sample_of_stats_consistency;
  ]
