(** Per-run statistics and their aggregation.

    A [point_stats] is what replaying one Regional Pinball under the
    paper's pintools yields.  A [run_stats] is the aggregate the paper
    reports for a run kind (Whole / Regional / Reduced Regional / Warmup
    Regional): rate-like metrics are combined as weighted averages over
    simulation points — the aggregation rule Section IV-D mandates for
    statistics normalised by instruction counts — while count-like
    metrics (executed instructions, L3 accesses) are plain sums. *)

type point_stats = {
  cluster : int;
  weight : float;
  insns : int;
  mix : Sp_pin.Mix.t;
  cache : Sp_cache.Hierarchy.stats;
  cpi : float;
}

type run_stats = {
  label : string;
  insns : float;          (** executed instructions (sum) *)
  mix : Sp_pin.Mix.t;     (** weighted *)
  l1i_miss : float;       (** weighted miss rates, [0,1] *)
  l1d_miss : float;
  l2_miss : float;
  l3_miss : float;
  l1d_accesses : float;   (** sums, for pooled (suite-level) rates *)
  l2_accesses : float;
  l3_accesses : float;
  cpi : float;            (** weighted *)
}

val of_points : label:string -> point_stats list -> run_stats
(** Weighted aggregation over simulation points (weights renormalised,
    so the same function serves full and percentile-reduced sets). *)

val of_whole :
  label:string ->
  insns:int ->
  mix:Sp_pin.Mix.t ->
  cache:Sp_cache.Hierarchy.stats ->
  cpi:float ->
  run_stats

val miss_rate_error_pct : reference:run_stats -> run_stats -> float * float * float
(** Relative errors (percent) of (L1D, L2, L3) miss rates against a
    reference run — the quantities behind Figure 8's error statements. *)

val mix_error_pp : reference:run_stats -> run_stats -> float
(** Largest instruction-class deviation in percentage points (Fig. 7). *)
