lib/core/pipeline.mli: Runstats Sp_cache Sp_cpu Sp_perf Sp_pin Sp_pinball Sp_simpoint Sp_workloads
