lib/core/runstats.ml: List Sp_cache Sp_pin Sp_util
