lib/core/experiments.mli: Pipeline Sp_util Sp_workloads Table
