lib/core/runstats.mli: Sp_cache Sp_pin
