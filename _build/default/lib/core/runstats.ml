type point_stats = {
  cluster : int;
  weight : float;
  insns : int;
  mix : Sp_pin.Mix.t;
  cache : Sp_cache.Hierarchy.stats;
  cpi : float;
}

type run_stats = {
  label : string;
  insns : float;
  mix : Sp_pin.Mix.t;
  l1i_miss : float;
  l1d_miss : float;
  l2_miss : float;
  l3_miss : float;
  l1d_accesses : float;
  l2_accesses : float;
  l3_accesses : float;
  cpi : float;
}

let of_points ~label points =
  if points = [] then invalid_arg "Runstats.of_points: no points";
  let wsum = Sp_util.Stats.fsum (fun p -> p.weight) points in
  let wavg f =
    if wsum <= 0.0 then 0.0
    else Sp_util.Stats.fsum (fun p -> p.weight *. f p) points /. wsum
  in
  let sum f = Sp_util.Stats.fsum f points in
  (* Only instruction-normalised statistics may be weight-averaged (the
     paper's rule).  A miss *rate* is normalised by accesses, not
     instructions, so each level's rate is reconstructed from the
     weighted per-instruction miss and access densities — the weighted
     analogue of the whole run's global misses/accesses ratio. *)
  let miss_rate level =
    let density f (p : point_stats) =
      if p.insns = 0 then 0.0
      else float_of_int (f p.cache) /. float_of_int p.insns
    in
    let misses =
      wavg (density (fun c -> (level c).Sp_cache.Hierarchy.misses))
    in
    let accesses =
      wavg (density (fun c -> (level c).Sp_cache.Hierarchy.accesses))
    in
    if accesses <= 0.0 then 0.0 else misses /. accesses
  in
  {
    label;
    insns = sum (fun p -> float_of_int p.insns);
    mix = Sp_pin.Mix.weighted (List.map (fun p -> (p.weight, p.mix)) points);
    l1i_miss = miss_rate (fun (c : Sp_cache.Hierarchy.stats) -> c.l1i);
    l1d_miss = miss_rate (fun (c : Sp_cache.Hierarchy.stats) -> c.l1d);
    l2_miss = miss_rate (fun (c : Sp_cache.Hierarchy.stats) -> c.l2);
    l3_miss = miss_rate (fun (c : Sp_cache.Hierarchy.stats) -> c.l3);
    l1d_accesses =
      sum (fun p -> float_of_int p.cache.Sp_cache.Hierarchy.l1d.accesses);
    l2_accesses =
      sum (fun p -> float_of_int p.cache.Sp_cache.Hierarchy.l2.accesses);
    l3_accesses =
      sum (fun p -> float_of_int p.cache.Sp_cache.Hierarchy.l3.accesses);
    cpi = wavg (fun p -> p.cpi);
  }

let of_whole ~label ~insns ~mix ~(cache : Sp_cache.Hierarchy.stats) ~cpi =
  {
    label;
    insns = float_of_int insns;
    mix;
    l1i_miss = cache.l1i.miss_rate;
    l1d_miss = cache.l1d.miss_rate;
    l2_miss = cache.l2.miss_rate;
    l3_miss = cache.l3.miss_rate;
    l1d_accesses = float_of_int cache.l1d.accesses;
    l2_accesses = float_of_int cache.l2.accesses;
    l3_accesses = float_of_int cache.l3.accesses;
    cpi;
  }

let miss_rate_error_pct ~reference t =
  let e ref x = Sp_util.Stats.rel_error_pct ~reference:ref x in
  ( e reference.l1d_miss t.l1d_miss,
    e reference.l2_miss t.l2_miss,
    e reference.l3_miss t.l3_miss )

let mix_error_pp ~reference t =
  Sp_pin.Mix.max_abs_error_pp ~reference:reference.mix t.mix
