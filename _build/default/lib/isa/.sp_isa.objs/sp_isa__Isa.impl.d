lib/isa/isa.ml: Format List Option Printf String
