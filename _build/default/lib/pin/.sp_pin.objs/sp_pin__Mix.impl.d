lib/pin/mix.ml: Float Format Isa List Sp_isa Sp_util
