lib/pin/trace_io.mli: Hooks Sp_vm
