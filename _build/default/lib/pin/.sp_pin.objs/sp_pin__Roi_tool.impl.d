lib/pin/roi_tool.ml: Hooks Sp_vm
