lib/pin/bbv_tool.ml: Array Hooks List Program Sp_vm
