lib/pin/tracer.ml: Array Hooks Sp_isa Sp_vm
