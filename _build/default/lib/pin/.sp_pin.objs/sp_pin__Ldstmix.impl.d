lib/pin/ldstmix.ml: Array Hooks Isa Mix Sp_isa Sp_vm
