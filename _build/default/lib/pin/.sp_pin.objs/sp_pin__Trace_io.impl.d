lib/pin/trace_io.ml: Hooks List Printf Sp_vm String
