lib/pin/mix.mli: Format Sp_isa
