lib/pin/roi_tool.mli: Hooks Sp_vm
