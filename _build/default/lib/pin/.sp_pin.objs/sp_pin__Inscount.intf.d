lib/pin/inscount.mli: Hooks Sp_isa Sp_vm
