lib/pin/inscount.ml: Array Hooks Isa Sp_isa Sp_vm
