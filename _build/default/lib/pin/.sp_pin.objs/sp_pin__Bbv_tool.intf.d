lib/pin/bbv_tool.mli: Hooks Program Sp_vm
