lib/pin/pin.ml: Hooks Interp Program Sp_vm
