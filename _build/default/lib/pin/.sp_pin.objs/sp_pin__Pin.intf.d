lib/pin/pin.mli: Hooks Interp Program Sp_vm
