lib/pin/tracer.mli: Hooks Sp_isa Sp_vm
