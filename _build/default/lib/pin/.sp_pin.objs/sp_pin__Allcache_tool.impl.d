lib/pin/allcache_tool.ml: Config Hierarchy Hooks Program Sp_cache Sp_isa Sp_vm Tlb
