lib/pin/ldstmix.mli: Hooks Mix Sp_isa Sp_vm
