lib/pin/allcache_tool.mli: Hooks Program Sp_cache Sp_vm
