open Sp_isa

type t = { no_mem : float; mem_r : float; mem_w : float; mem_rw : float }

let zero = { no_mem = 0.0; mem_r = 0.0; mem_w = 0.0; mem_rw = 0.0 }

let of_counts ~no_mem ~mem_r ~mem_w ~mem_rw =
  let total = no_mem + mem_r + mem_w + mem_rw in
  if total = 0 then zero
  else
    let f n = float_of_int n /. float_of_int total in
    { no_mem = f no_mem; mem_r = f mem_r; mem_w = f mem_w; mem_rw = f mem_rw }

let get t = function
  | Isa.No_mem -> t.no_mem
  | Isa.Mem_r -> t.mem_r
  | Isa.Mem_w -> t.mem_w
  | Isa.Mem_rw -> t.mem_rw

let weighted parts =
  let wsum = Sp_util.Stats.fsum fst parts in
  if wsum <= 0.0 then zero
  else
    let comp f =
      Sp_util.Stats.fsum (fun (w, m) -> w *. f m) parts /. wsum
    in
    {
      no_mem = comp (fun m -> m.no_mem);
      mem_r = comp (fun m -> m.mem_r);
      mem_w = comp (fun m -> m.mem_w);
      mem_rw = comp (fun m -> m.mem_rw);
    }

let l1_distance a b =
  Float.abs (a.no_mem -. b.no_mem)
  +. Float.abs (a.mem_r -. b.mem_r)
  +. Float.abs (a.mem_w -. b.mem_w)
  +. Float.abs (a.mem_rw -. b.mem_rw)

let max_abs_error_pp ~reference t =
  List.fold_left
    (fun acc cls ->
      Float.max acc (Float.abs (get t cls -. get reference cls) *. 100.0))
    0.0 Isa.all_mem_classes

let pp ppf t =
  Format.fprintf ppf "NO_MEM %.1f%% | MEM_R %.1f%% | MEM_W %.1f%% | MEM_RW %.1f%%"
    (t.no_mem *. 100.0) (t.mem_r *. 100.0) (t.mem_w *. 100.0) (t.mem_rw *. 100.0)
