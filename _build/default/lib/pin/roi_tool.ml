open Sp_vm

type t = {
  target_pc : int;
  mutable count : int;
  mutable reached : int option;
}

let create ~target_pc = { target_pc; count = 0; reached = None }

let hooks t =
  {
    Hooks.nil with
    on_instr =
      (fun pc _kind ->
        (match t.reached with
        | None when pc = t.target_pc -> t.reached <- Some t.count
        | _ -> ());
        t.count <- t.count + 1);
  }

let reached_at t = t.reached
