open Sp_vm

(** Region-of-interest detection: records the dynamic instruction count
    at which execution first reaches a given pc.

    Real PinPoints runs often bracket the workload proper with SSC
    marks so initialisation is excluded from profiling; our benchmarks
    expose the equivalent boundary statically
    ({!Sp_workloads.Benchspec.built.roi_start_pc}), and this pintool
    turns it into a dynamic instruction offset during the profiling
    pass. *)

type t

val create : target_pc:int -> t

val hooks : t -> Hooks.t

val reached_at : t -> int option
(** Instruction count at first arrival (the count *before* the target
    instruction retires), or [None] if never reached. *)
