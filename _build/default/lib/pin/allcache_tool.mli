open Sp_vm

(** The [allcache] pintool: a functional simulator of the
    instruction+data cache hierarchy (Table I by default), fed by the
    instrumented instruction and data reference streams. *)

type t

val create :
  ?config:Sp_cache.Config.hierarchy -> ?prefetch:bool -> Program.t -> t
(** The program is needed to turn PCs into instruction-fetch addresses.
    [prefetch] enables the hierarchy's next-line prefetcher. *)

val prefetches : t -> int

val hooks : t -> Hooks.t

val hierarchy : t -> Sp_cache.Hierarchy.t

val stats : t -> Sp_cache.Hierarchy.stats

val itlb_stats : t -> Sp_cache.Tlb.stats
(** Instruction-TLB statistics (the [allcache] pintool simulates
    instruction+data TLBs alongside the caches). *)

val dtlb_stats : t -> Sp_cache.Tlb.stats

val set_warming : t -> bool -> unit
(** Forwarded to the hierarchy: accesses update state but not stats. *)

val reset_stats : t -> unit
val reset_state : t -> unit
