open Sp_vm

type slice = {
  index : int;
  start_icount : int;
  length : int;
  bbv : (int * int) array;
}

type t = {
  slice_len : int;
  bb_of_pc : int array;
  counts : int array;          (* per block, current slice *)
  mutable touched : int list;  (* blocks with non-zero count *)
  mutable cur_len : int;
  mutable start_icount : int;
  mutable closed : slice list; (* reversed *)
  mutable num_closed : int;
}

let create ~slice_len (prog : Program.t) =
  if slice_len <= 0 then invalid_arg "Bbv_tool.create: slice_len <= 0";
  {
    slice_len;
    bb_of_pc = prog.bb_of_pc;
    counts = Array.make (Program.num_blocks prog) 0;
    touched = [];
    cur_len = 0;
    start_icount = 0;
    closed = [];
    num_closed = 0;
  }

let close_slice t =
  let pairs =
    List.rev_map
      (fun bb ->
        let c = t.counts.(bb) in
        t.counts.(bb) <- 0;
        (bb, c))
      t.touched
  in
  let bbv = Array.of_list pairs in
  Array.sort (fun (a, _) (b, _) -> compare a b) bbv;
  let s =
    {
      index = t.num_closed;
      start_icount = t.start_icount;
      length = t.cur_len;
      bbv;
    }
  in
  t.closed <- s :: t.closed;
  t.num_closed <- t.num_closed + 1;
  t.touched <- [];
  t.start_icount <- t.start_icount + t.cur_len;
  t.cur_len <- 0

let hooks t =
  let counts = t.counts in
  let bb_of_pc = t.bb_of_pc in
  {
    Hooks.nil with
    on_instr =
      (fun pc _kind ->
        let bb = Array.unsafe_get bb_of_pc pc in
        let c = Array.unsafe_get counts bb in
        if c = 0 then t.touched <- bb :: t.touched;
        Array.unsafe_set counts bb (c + 1);
        t.cur_len <- t.cur_len + 1;
        if t.cur_len >= t.slice_len then close_slice t);
  }

let finish t = if t.cur_len > 0 then close_slice t

let slices t = Array.of_list (List.rev t.closed)

let num_slices t = t.num_closed

let slice_len t = t.slice_len
