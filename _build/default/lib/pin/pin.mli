open Sp_vm

(** The instrumentation engine: runs a program with a set of pintools
    attached, mirroring how Pin launches a binary under tools.

    A pintool is any value exposing a {!Sp_vm.Hooks.t}; this module
    composes them and drives the interpreter.  The individual tools
    shipped with this library mirror the ones the paper uses from the
    Pin kit: {!Inscount}, {!Ldstmix}, {!Allcache_tool}, {!Bbv_tool} and
    {!Tracer}. *)

type run = {
  status : Interp.status;
  retired : int;  (** instructions retired during this run *)
}

val run :
  ?tools:Hooks.t list ->
  ?syscall:(int -> int) ->
  ?fuel:int ->
  Program.t ->
  Interp.machine ->
  run
(** Execute [prog] on [machine] with all tools attached. *)

val run_fresh :
  ?tools:Hooks.t list ->
  ?syscall:(int -> int) ->
  ?fuel:int ->
  Program.t ->
  run
(** {!run} on a brand-new machine starting at the program entry. *)
