open Sp_vm

(** The [inscount0] pintool: dynamic instruction counting, overall and
    per micro-operation kind. *)

type t

val create : unit -> t
val hooks : t -> Hooks.t

val total : t -> int
val by_kind : t -> Sp_isa.Isa.kind -> int
val reset : t -> unit
