(** Instruction-distribution vectors: the paper's four-way breakdown into
    NO_MEM / MEM_R / MEM_W / MEM_RW, as fractions of retired
    instructions.  Used for Figures 3 and 7. *)

type t = { no_mem : float; mem_r : float; mem_w : float; mem_rw : float }

val of_counts : no_mem:int -> mem_r:int -> mem_w:int -> mem_rw:int -> t
(** Fractions from raw counts (all zero yields the zero vector). *)

val zero : t

val get : t -> Sp_isa.Isa.mem_class -> float

val weighted : (float * t) list -> t
(** Weighted combination (weights renormalised): the paper's rule for
    aggregating per-simulation-point distributions. *)

val l1_distance : t -> t -> float
(** Sum of absolute per-class differences (in fraction units). *)

val max_abs_error_pp : reference:t -> t -> float
(** Largest per-class deviation, in percentage points — the "<1%%
    variance in instruction distribution" metric of the abstract. *)

val pp : Format.formatter -> t -> unit
