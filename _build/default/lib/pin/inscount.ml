open Sp_isa
open Sp_vm

type t = { counts : int array; mutable total : int }

let create () = { counts = Array.make Isa.num_kinds 0; total = 0 }

let hooks t =
  {
    Hooks.nil with
    on_instr =
      (fun _pc kind ->
        t.total <- t.total + 1;
        t.counts.(kind) <- t.counts.(kind) + 1);
  }

let total t = t.total
let by_kind t k = t.counts.(Isa.kind_code k)

let reset t =
  t.total <- 0;
  Array.fill t.counts 0 (Array.length t.counts) 0
