open Sp_vm

type run = { status : Interp.status; retired : int }

let run ?(tools = []) ?syscall ?fuel prog machine =
  let hooks = Hooks.seq_all tools in
  let before = machine.Interp.icount in
  let status = Interp.run ~hooks ?syscall ?fuel prog machine in
  { status; retired = machine.Interp.icount - before }

let run_fresh ?tools ?syscall ?fuel (prog : Program.t) =
  let machine = Interp.create ~entry:prog.entry () in
  run ?tools ?syscall ?fuel prog machine
