open Sp_vm
open Sp_cache

type t = {
  hier : Hierarchy.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  code_base : int;
  mutable warming : bool;
}

let create ?(config = Config.allcache_table1) ?(prefetch = false)
    (prog : Program.t) =
  {
    hier = Hierarchy.create ~next_line_prefetch:prefetch config;
    itlb = Tlb.create ~level2:Tlb.stlb_default Tlb.itlb_default;
    dtlb = Tlb.create ~level2:Tlb.stlb_default Tlb.dtlb_default;
    code_base = prog.code_base;
    warming = false;
  }

let hooks t =
  let hier = t.hier in
  let code_base = t.code_base in
  let data t addr =
    if t.warming then Tlb.warm t.dtlb addr else Tlb.access t.dtlb addr
  in
  {
    Hooks.nil with
    on_instr =
      (fun pc _kind ->
        let addr = code_base + (pc * Sp_isa.Isa.bytes_per_instr) in
        if t.warming then Tlb.warm t.itlb addr else Tlb.access t.itlb addr;
        Hierarchy.fetch hier addr);
    on_read =
      (fun addr ->
        data t addr;
        Hierarchy.read hier addr);
    on_write =
      (fun addr ->
        data t addr;
        Hierarchy.write hier addr);
  }

let hierarchy t = t.hier
let stats t = Hierarchy.stats t.hier
let prefetches t = Hierarchy.prefetches t.hier
let itlb_stats t = Tlb.stats t.itlb
let dtlb_stats t = Tlb.stats t.dtlb

let set_warming t b =
  t.warming <- b;
  Hierarchy.set_warming t.hier b

let reset_stats t =
  Hierarchy.reset_stats t.hier;
  Tlb.reset_stats t.itlb;
  Tlb.reset_stats t.dtlb

let reset_state t =
  Hierarchy.reset_state t.hier;
  Tlb.reset_state t.itlb;
  Tlb.reset_state t.dtlb
