(** Cache-hierarchy configurations, including the paper's Table I
    ([allcache] pintool) and Table III (Sniper / i7-3770) hierarchies. *)

type level = {
  name : string;
  size_bytes : int;
  assoc : int;        (** 1 = direct-mapped *)
  line_bytes : int;
}

type hierarchy = { l1i : level; l1d : level; l2 : level; l3 : level }

val level : name:string -> size_kb:int -> assoc:int -> line_bytes:int -> level
(** Constructor with validation: sizes must be powers of two and evenly
    divisible into sets.
    @raise Invalid_argument on inconsistent geometry. *)

val num_sets : level -> int
val num_lines : level -> int

val allcache_table1 : hierarchy
(** Table I: L1I/L1D 32-way 32 kB 32 B lines; L2 2 MB direct-mapped;
    L3 16 MB direct-mapped; 32 B lines throughout. *)

val i7_3770 : hierarchy
(** Table III cache side: L1I/L1D 32 kB 8-way; L2 256 kB 8-way;
    L3 8 MB 16-way; 64 B lines. *)

val sim_scale : int
(** Capacity scale factor for simulated hierarchies (32).

    The project simulates instruction streams scaled down from the
    paper's (a 30 M-instruction slice maps to 1,200 simulated
    instructions), so cache capacities must shrink by a comparable
    factor to preserve the ratios that drive every cache result: lines
    touched per slice vs cache size, and working-set size vs cache
    size.  Experiment tables print the nominal (paper) configurations;
    simulations run the scaled ones. *)

val scaled : hierarchy -> hierarchy
(** Divide every level's capacity by {!sim_scale}, clamping
    associativity to the resulting line count. *)

val allcache_sim : hierarchy
(** [scaled allcache_table1] — what the pipeline actually simulates. *)

val i7_3770_sim : hierarchy
(** [scaled i7_3770]. *)

val pp_level : Format.formatter -> level -> unit
val pp_hierarchy : Format.formatter -> hierarchy -> unit
