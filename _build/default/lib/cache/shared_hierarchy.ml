type t = {
  l1d : Cache.t array;
  l2 : Cache.t array;
  l3 : Cache.t;
  offset_bits : int;
  l3_accesses : int array;
  l3_misses : int array;
}

let create ~cores (cfg : Config.hierarchy) =
  if cores < 1 then invalid_arg "Shared_hierarchy.create";
  {
    l1d = Array.init cores (fun _ -> Cache.create cfg.l1d);
    l2 = Array.init cores (fun _ -> Cache.create cfg.l2);
    l3 = Cache.create cfg.l3;
    (* cores live 64 GB apart in physical space *)
    offset_bits = 36;
    l3_accesses = Array.make cores 0;
    l3_misses = Array.make cores 0;
  }

let walk t ~core ~write addr =
  let addr = addr + (core lsl t.offset_bits) in
  if not (Cache.access_rw t.l1d.(core) ~write addr) then
    if not (Cache.access t.l2.(core) addr) then begin
      t.l3_accesses.(core) <- t.l3_accesses.(core) + 1;
      if not (Cache.access t.l3 addr) then
        t.l3_misses.(core) <- t.l3_misses.(core) + 1
    end

let read (t : t) ~core addr = walk t ~core ~write:false addr
let write t ~core addr = walk t ~core ~write:true addr

type core_stats = {
  l1d : Hierarchy.level_stats;
  l2 : Hierarchy.level_stats;
  l3_accesses : int;
  l3_misses : int;
}

let level c =
  {
    Hierarchy.accesses = Cache.accesses c;
    misses = Cache.misses c;
    miss_rate = Cache.miss_rate c;
  }

let core_stats (t : t) core =
  {
    l1d = level t.l1d.(core);
    l2 = level t.l2.(core);
    l3_accesses = t.l3_accesses.(core);
    l3_misses = t.l3_misses.(core);
  }

let shared_l3 (t : t) = level t.l3

let reset_stats (t : t) =
  Array.iter Cache.reset_stats t.l1d;
  Array.iter Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  Array.fill t.l3_accesses 0 (Array.length t.l3_accesses) 0;
  Array.fill t.l3_misses 0 (Array.length t.l3_misses) 0

let reset_state (t : t) =
  Array.iter Cache.reset_state t.l1d;
  Array.iter Cache.reset_state t.l2;
  Cache.reset_state t.l3;
  Array.fill t.l3_accesses 0 (Array.length t.l3_accesses) 0;
  Array.fill t.l3_misses 0 (Array.length t.l3_misses) 0
