(** A multi-core cache hierarchy: private L1D/L2 per core, one shared
    L3 — the structure SPECrate throughput runs exercise when several
    copies of a benchmark compete for the last level.

    Each core's addresses are offset into a disjoint region of the
    physical space (distinct copies of a rate run own distinct pages),
    so identical programs conflict in the shared L3 through *capacity*,
    not through accidental line sharing. *)

type t

val create : cores:int -> Config.hierarchy -> t
(** Private L1D and L2 per core (the hierarchy's L1I is unused here:
    rate interference studies are about data), shared L3. *)

val read : t -> core:int -> int -> unit
val write : t -> core:int -> int -> unit

type core_stats = {
  l1d : Hierarchy.level_stats;
  l2 : Hierarchy.level_stats;
  l3_accesses : int;  (** this core's share of shared-L3 traffic *)
  l3_misses : int;
}

val core_stats : t -> int -> core_stats

val shared_l3 : t -> Hierarchy.level_stats
(** Aggregate statistics of the shared L3. *)

val reset_stats : t -> unit
val reset_state : t -> unit
