(** Reuse-distance profiling and statistical cache modelling.

    The paper's related work (Nikoleris et al., CoolSim/StatCache)
    replaces explicit cache warming with a statistical model built from
    the workload's memory-reuse information.  This module provides the
    substrate: an exact Olken-style stack-distance profiler (Fenwick
    tree over access time) producing a reuse-distance histogram, plus
    the classic LRU miss-rate estimator P(distance >= capacity).

    Distances are measured in distinct cache *lines* between consecutive
    touches of the same line. *)

type t

val create : ?line_bytes:int -> ?max_accesses:int -> unit -> t
(** [line_bytes] defaults to 64.  [max_accesses] bounds the profile (the
    Fenwick tree is O(accesses) memory): accesses beyond the cap are
    ignored, making the profile a prefix sample (default: 4 M). *)

val capped : t -> bool
(** True if the access cap cut the stream short. *)

val access : t -> int -> unit
(** Record a memory access (byte address). *)

val hooks_of : t -> Sp_vm.Hooks.t
(** Hooks recording both reads and writes into the profiler. *)

val total : t -> int
(** Accesses recorded. *)

val cold : t -> int
(** First-touch accesses (infinite reuse distance). *)

val histogram : t -> (int * int) array
(** [(bucket_upper_bound, count)] pairs in ascending order: bucket [b]
    counts accesses with reuse distance in [(prev, b]]; power-of-two
    bounds.  Cold accesses are not included. *)

val miss_rate_estimate : t -> cache_lines:int -> float
(** Estimated steady-state miss rate of a fully-associative LRU cache
    with [cache_lines] lines: (accesses with distance >= capacity +
    cold) / total.  0 when nothing was recorded. *)

val cdf_at : t -> int -> float
(** Fraction of non-cold accesses with reuse distance <= the given
    number of lines (bucket-resolution). *)
