lib/cache/tlb.ml: Cache Config Option
