lib/cache/shared_hierarchy.mli: Config Hierarchy
