lib/cache/config.ml: Format Printf
