lib/cache/reuse.ml: Array Hashtbl List Sp_vm
