lib/cache/reuse.mli: Sp_vm
