lib/cache/hierarchy.mli: Cache Config Format
