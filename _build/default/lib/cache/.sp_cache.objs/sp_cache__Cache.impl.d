lib/cache/cache.ml: Array Config Sp_util
