lib/cache/shared_hierarchy.ml: Array Cache Config Hierarchy
