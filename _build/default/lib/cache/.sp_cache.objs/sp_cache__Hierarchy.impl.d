lib/cache/hierarchy.ml: Cache Config Format
