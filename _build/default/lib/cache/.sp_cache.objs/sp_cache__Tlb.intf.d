lib/cache/tlb.mli:
