(* Olken's algorithm: keep, for every line, the time of its last access;
   a Fenwick tree over time marks which times are "most recent" for some
   line.  The stack distance of an access is the number of marked times
   after the line's previous access. *)

let buckets = 44 (* log2 buckets up to 2^43 *)

type t = {
  line_shift : int;
  last_access : (int, int) Hashtbl.t; (* line -> time *)
  mutable bit : int array;            (* Fenwick, 1-based, grows *)
  mutable time : int;                 (* accesses so far *)
  hist : int array;                   (* per log2 bucket *)
  mutable cold : int;
  max_accesses : int;
  mutable capped : bool;
}

let log2_line b =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 b

let create ?(line_bytes = 64) ?(max_accesses = 4_000_000) () =
  {
    line_shift = log2_line line_bytes;
    last_access = Hashtbl.create 4096;
    bit = Array.make 4096 0;
    time = 0;
    hist = Array.make buckets 0;
    cold = 0;
    max_accesses;
    capped = false;
  }

let capped t = t.capped

let grow t needed =
  if needed >= Array.length t.bit then begin
    let n = ref (Array.length t.bit) in
    while needed >= !n do
      n := !n * 2
    done;
    let nb = Array.make !n 0 in
    Array.blit t.bit 0 nb 0 (Array.length t.bit);
    t.bit <- nb
  end

let bit_add t i delta =
  let i = ref i in
  let n = Array.length t.bit in
  while !i < n do
    t.bit.(!i) <- t.bit.(!i) + delta;
    i := !i + (!i land - !i)
  done

let bit_sum t i =
  (* prefix sum [1..i] *)
  let s = ref 0 in
  let i = ref i in
  while !i > 0 do
    s := !s + t.bit.(!i);
    i := !i - (!i land - !i)
  done;
  !s

let bucket_of_distance d =
  let rec go b bound = if d <= bound || b = buckets - 1 then b else go (b + 1) (bound * 2) in
  go 0 1

let access t addr =
  if t.time >= t.max_accesses then t.capped <- true
  else begin
  let line = addr lsr t.line_shift in
  t.time <- t.time + 1;
  grow t (t.time + 1);
  (match Hashtbl.find_opt t.last_access line with
  | None -> t.cold <- t.cold + 1
  | Some t0 ->
      (* distinct lines touched strictly after t0 = marked times in (t0, now) *)
      let marked_after = bit_sum t t.time - bit_sum t t0 in
      let d = max 1 marked_after in
      t.hist.(bucket_of_distance d) <- t.hist.(bucket_of_distance d) + 1;
      bit_add t t0 (-1));
  bit_add t t.time 1;
  Hashtbl.replace t.last_access line t.time
  end

let hooks_of t =
  {
    Sp_vm.Hooks.nil with
    on_read = (fun a -> access t a);
    on_write = (fun a -> access t a);
  }

let total t = t.time

let cold t = t.cold

let histogram t =
  let out = ref [] in
  let bound = ref 1 in
  for b = 0 to buckets - 1 do
    if t.hist.(b) > 0 then out := (!bound, t.hist.(b)) :: !out;
    bound := !bound * 2
  done;
  Array.of_list (List.rev !out)

let cdf_at t lines =
  let non_cold = t.time - t.cold in
  if non_cold <= 0 then 0.0
  else begin
    let acc = ref 0 in
    let bound = ref 1 in
    for b = 0 to buckets - 1 do
      if !bound <= lines then acc := !acc + t.hist.(b);
      bound := !bound * 2
    done;
    float_of_int !acc /. float_of_int non_cold
  end

let miss_rate_estimate t ~cache_lines =
  if t.time = 0 then 0.0
  else begin
    let hits = ref 0 in
    let bound = ref 1 in
    for b = 0 to buckets - 1 do
      if !bound <= cache_lines then hits := !hits + t.hist.(b);
      bound := !bound * 2
    done;
    float_of_int (t.time - !hits) /. float_of_int t.time
  end
