type level = { name : string; size_bytes : int; assoc : int; line_bytes : int }

type hierarchy = { l1i : level; l1d : level; l2 : level; l3 : level }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let level ~name ~size_kb ~assoc ~line_bytes =
  let size_bytes = size_kb * 1024 in
  if not (is_pow2 size_bytes) then
    invalid_arg (name ^ ": size must be a power of two");
  if not (is_pow2 line_bytes) then
    invalid_arg (name ^ ": line size must be a power of two");
  if assoc < 1 then invalid_arg (name ^ ": assoc must be >= 1");
  let lines = size_bytes / line_bytes in
  if lines mod assoc <> 0 then
    invalid_arg (name ^ ": lines not divisible by associativity");
  if not (is_pow2 (lines / assoc)) then
    invalid_arg (name ^ ": set count must be a power of two");
  { name; size_bytes; assoc; line_bytes }

let num_lines l = l.size_bytes / l.line_bytes

let num_sets l = num_lines l / l.assoc

(* Table I of the paper. *)
let allcache_table1 =
  {
    l1i = level ~name:"L1I" ~size_kb:32 ~assoc:32 ~line_bytes:32;
    l1d = level ~name:"L1D" ~size_kb:32 ~assoc:32 ~line_bytes:32;
    l2 = level ~name:"L2" ~size_kb:2048 ~assoc:1 ~line_bytes:32;
    l3 = level ~name:"L3" ~size_kb:16384 ~assoc:1 ~line_bytes:32;
  }

(* Cache side of Table III (Intel i7-3770 as modelled in Sniper). *)
let i7_3770 =
  {
    l1i = level ~name:"L1I" ~size_kb:32 ~assoc:8 ~line_bytes:64;
    l1d = level ~name:"L1D" ~size_kb:32 ~assoc:8 ~line_bytes:64;
    l2 = level ~name:"L2" ~size_kb:256 ~assoc:8 ~line_bytes:64;
    l3 = level ~name:"L3" ~size_kb:8192 ~assoc:16 ~line_bytes:64;
  }

let pp_level ppf l =
  let assoc =
    if l.assoc = 1 then "direct-mapped" else Printf.sprintf "%d-way" l.assoc
  in
  Format.fprintf ppf "%s: %s, %dkB, %dB linesize" l.name assoc
    (l.size_bytes / 1024) l.line_bytes

let pp_hierarchy ppf h =
  Format.fprintf ppf "%a@.%a@.%a@.%a" pp_level h.l1i pp_level h.l1d pp_level
    h.l2 pp_level h.l3

let sim_scale = 32

let scaled_level (l : level) =
  let size_bytes = max (l.line_bytes * 2) (l.size_bytes / sim_scale) in
  let lines = size_bytes / l.line_bytes in
  { l with size_bytes; assoc = min l.assoc lines }

let scaled h =
  {
    l1i = scaled_level h.l1i;
    l1d = scaled_level h.l1d;
    l2 = scaled_level h.l2;
    l3 = scaled_level h.l3;
  }

let allcache_sim = scaled allcache_table1

let i7_3770_sim = scaled i7_3770
