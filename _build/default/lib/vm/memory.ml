let page_words_log2 = 12
let page_words = 1 lsl page_words_log2
let word_bytes = 8
let page_bytes = page_words * word_bytes
let offset_mask = page_words - 1

(* 38-bit byte address space; keeps indices positive even on buggy input. *)
let addr_mask = (1 lsl 38) - 1

type t = {
  int_pages : (int, int array) Hashtbl.t;
  float_pages : (int, float array) Hashtbl.t;
}

let create () = { int_pages = Hashtbl.create 64; float_pages = Hashtbl.create 16 }

let int_page t idx =
  match Hashtbl.find_opt t.int_pages idx with
  | Some p -> p
  | None ->
      let p = Array.make page_words 0 in
      Hashtbl.add t.int_pages idx p;
      p

let float_page t idx =
  match Hashtbl.find_opt t.float_pages idx with
  | Some p -> p
  | None ->
      let p = Array.make page_words 0.0 in
      Hashtbl.add t.float_pages idx p;
      p

let load t addr =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  match Hashtbl.find_opt t.int_pages idx with
  | Some p -> Array.unsafe_get p (w land offset_mask)
  | None -> 0

let store t addr v =
  let w = (addr land addr_mask) lsr 3 in
  let p = int_page t (w lsr page_words_log2) in
  Array.unsafe_set p (w land offset_mask) v

let loadf t addr =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  match Hashtbl.find_opt t.float_pages idx with
  | Some p -> Array.unsafe_get p (w land offset_mask)
  | None -> 0.0

let storef t addr v =
  let w = (addr land addr_mask) lsr 3 in
  let p = float_page t (w lsr page_words_log2) in
  Array.unsafe_set p (w land offset_mask) v

let footprint_bytes t =
  (Hashtbl.length t.int_pages + Hashtbl.length t.float_pages) * page_bytes

let copy t =
  let dup tbl = Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) tbl [] in
  let restore pairs =
    let tbl = Hashtbl.create (List.length pairs * 2) in
    List.iter (fun (k, v) -> Hashtbl.add tbl k v) pairs;
    tbl
  in
  {
    int_pages = restore (dup t.int_pages);
    float_pages = restore (dup t.float_pages);
  }

let clear t =
  Hashtbl.reset t.int_pages;
  Hashtbl.reset t.float_pages
