(** Instrumentation hooks: the VM-side half of the Pin-style API.

    The interpreter invokes these callbacks while executing; the
    {!Sp_pin} framework builds hook records out of pintools.  Callbacks
    are plain (non-labelled) closures so the dispatch cost in the
    interpreter's hot loop stays at one indirect call each. *)

type t = {
  on_block : int -> unit;
      (** block id, at entry to each dynamic basic block *)
  on_instr : int -> int -> unit;
      (** [pc, kind_code] for every retired instruction *)
  on_read : int -> unit;  (** data byte address of each memory read *)
  on_write : int -> unit;  (** data byte address of each memory write *)
  on_branch : int -> bool -> unit;
      (** [pc, taken] for every conditional branch *)
}

val nil : t
(** No-op hooks; the interpreter runs at full speed. *)

val seq : t -> t -> t
(** Run both hook sets, first argument first. *)

val seq_all : t list -> t
