type core = {
  program : Program.t;
  machine : Interp.machine;
  hooks : Hooks.t;
  mutable halted : bool;
}

type t = { cores : core array }

let create specs =
  if specs = [] then invalid_arg "Multicore.create: no cores";
  {
    cores =
      Array.of_list
        (List.map
           (fun ((prog : Program.t), hooks) ->
             {
               program = prog;
               machine = Interp.create ~entry:prog.Program.entry ();
               hooks;
               halted = false;
             })
           specs);
  }

let run ?(quantum = 1000) ?syscall ?(fuel = max_int) t =
  if quantum < 1 then invalid_arg "Multicore.run: quantum < 1";
  let live = ref (Array.length t.cores) in
  while !live > 0 do
    live := 0;
    Array.iter
      (fun core ->
        if (not core.halted) && core.machine.Interp.icount < fuel then begin
          let budget = min quantum (fuel - core.machine.Interp.icount) in
          (match
             Interp.run ~hooks:core.hooks ?syscall ~fuel:budget core.program
               core.machine
           with
          | Interp.Halted -> core.halted <- true
          | Interp.Out_of_fuel -> ());
          if (not core.halted) && core.machine.Interp.icount < fuel then
            incr live
        end)
      t.cores
  done

let cores t = Array.length t.cores

let retired t = Array.map (fun c -> c.machine.Interp.icount) t.cores

let halted t = Array.map (fun c -> c.halted) t.cores

let machine t i = t.cores.(i).machine
