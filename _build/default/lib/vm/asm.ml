open Sp_isa

type label = int

(* Emitted instructions carry either a resolved instruction (non-control)
   or a control instruction whose int target field holds a label id. *)
type t = {
  name : string;
  buf : Isa.instr array ref;
  mutable len : int;
  mutable next_label : int;
  positions : (label, int) Hashtbl.t;
  mutable uses_label : bool array;  (* per emitted pc: target is a label *)
}

let create ?(name = "anon") () =
  {
    name;
    buf = ref (Array.make 256 Isa.Halt);
    len = 0;
    next_label = 0;
    positions = Hashtbl.create 32;
    uses_label = Array.make 256 false;
  }

let grow t =
  let cap = Array.length !(t.buf) in
  if t.len >= cap then begin
    let nbuf = Array.make (cap * 2) Isa.Halt in
    Array.blit !(t.buf) 0 nbuf 0 cap;
    t.buf := nbuf;
    let nuses = Array.make (cap * 2) false in
    Array.blit t.uses_label 0 nuses 0 cap;
    t.uses_label <- nuses
  end

let push t ?(uses_label = false) i =
  grow t;
  !(t.buf).(t.len) <- i;
  t.uses_label.(t.len) <- uses_label;
  t.len <- t.len + 1

let new_label t =
  let l = t.next_label in
  t.next_label <- l + 1;
  l

let place t l =
  if Hashtbl.mem t.positions l then
    invalid_arg (Printf.sprintf "Asm.place(%s): label %d placed twice" t.name l);
  Hashtbl.add t.positions l t.len

let position t = t.len

let here t =
  let l = new_label t in
  place t l;
  l

let instr t i =
  if Isa.is_control i && i <> Isa.Halt then
    invalid_arg "Asm.instr: control instruction; use branch/jump/call/ret";
  push t i

let branch t c r1 r2 l = push t ~uses_label:true (Isa.Branch (c, r1, r2, l))
let jump t l = push t ~uses_label:true (Isa.Jump l)
let call t l = push t ~uses_label:true (Isa.Call l)
let ret t = push t Isa.Ret
let halt t = push t Isa.Halt

let resolve t l =
  match Hashtbl.find_opt t.positions l with
  | Some pos -> pos
  | None ->
      invalid_arg (Printf.sprintf "Asm.assemble(%s): unplaced label %d" t.name l)

let assemble ?entry t =
  let instrs =
    Array.init t.len (fun pc ->
        let i = !(t.buf).(pc) in
        if t.uses_label.(pc) then Isa.map_target (resolve t) i else i)
  in
  let entry = match entry with Some l -> resolve t l | None -> 0 in
  Program.of_instrs ~name:t.name ~entry instrs

let li t rd imm = instr t (Isa.Li (rd, imm))
let mov t rd rs = instr t (Isa.Mov (rd, rs))
let alu t op rd r1 r2 = instr t (Isa.Alu (op, rd, r1, r2))
let alui t op rd r1 imm = instr t (Isa.Alui (op, rd, r1, imm))
let load t rd rs off = instr t (Isa.Load (rd, rs, off))
let store t rv rb off = instr t (Isa.Store (rv, rb, off))
let movs t rd rs = instr t (Isa.Movs (rd, rs))
let falu t op fd f1 f2 = instr t (Isa.Falu (op, fd, f1, f2))
let fload t fd rs off = instr t (Isa.Fload (fd, rs, off))
let fstore t fv rb off = instr t (Isa.Fstore (fv, rb, off))
let fmovi t fd x = instr t (Isa.Fmovi (fd, x))
let sys t n rd = instr t (Isa.Sys (n, rd))

let loop_down t ~counter ~from body =
  li t counter from;
  let top = here t in
  body ();
  alui t Isa.Sub counter counter 1;
  (* loop while counter > 0: compare against r0-as-zero is not available,
     so compare with an immediate via a scratch-free trick: bgt counter, rz
     needs a zero register.  We reserve r15 as an always-zero register by
     convention (kernels must not clobber it). *)
  branch t Isa.Gt counter 15 top
