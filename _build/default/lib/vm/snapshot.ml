type t = {
  regs : int array;
  fregs : float array;
  pc : int;
  callstack : int array;
  sp : int;
  mem : Memory.t;
  icount : int;
}

let capture (m : Interp.machine) =
  {
    regs = Array.copy m.regs;
    fregs = Array.copy m.fregs;
    pc = m.pc;
    callstack = Array.copy m.callstack;
    sp = m.sp;
    mem = Memory.copy m.mem;
    icount = m.icount;
  }

let restore t : Interp.machine =
  {
    regs = Array.copy t.regs;
    fregs = Array.copy t.fregs;
    pc = t.pc;
    callstack = Array.copy t.callstack;
    sp = t.sp;
    mem = Memory.copy t.mem;
    icount = t.icount;
  }

let icount t = t.icount
let pc t = t.pc
let mem_bytes t = Memory.footprint_bytes t.mem
