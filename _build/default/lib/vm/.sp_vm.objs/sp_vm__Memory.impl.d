lib/vm/memory.ml: Array Hashtbl List
