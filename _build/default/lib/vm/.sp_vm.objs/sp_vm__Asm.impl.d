lib/vm/asm.ml: Array Hashtbl Isa Printf Program Sp_isa
