lib/vm/snapshot.ml: Array Interp Memory
