lib/vm/hooks.mli:
