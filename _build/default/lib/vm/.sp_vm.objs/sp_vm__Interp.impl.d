lib/vm/interp.ml: Array Hooks Isa Memory Printf Program Sp_isa Sp_util
