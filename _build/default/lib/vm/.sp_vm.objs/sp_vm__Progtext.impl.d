lib/vm/progtext.ml: Array Buffer Filename List Printf Program Sp_isa String
