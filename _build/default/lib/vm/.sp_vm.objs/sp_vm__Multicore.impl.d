lib/vm/multicore.ml: Array Hooks Interp List Program
