lib/vm/program.ml: Array Format Isa List Printf Sp_isa
