lib/vm/program.mli: Format Isa Sp_isa
