lib/vm/progtext.mli: Program
