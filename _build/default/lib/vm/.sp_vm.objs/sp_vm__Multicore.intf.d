lib/vm/multicore.mli: Hooks Interp Program
