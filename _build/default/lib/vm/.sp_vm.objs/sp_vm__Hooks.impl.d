lib/vm/hooks.ml: List
