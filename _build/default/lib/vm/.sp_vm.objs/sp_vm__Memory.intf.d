lib/vm/memory.mli:
