lib/vm/interp.mli: Hooks Memory Program
