lib/vm/snapshot.mli: Interp
