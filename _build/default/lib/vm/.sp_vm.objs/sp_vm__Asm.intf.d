lib/vm/asm.mli: Isa Program Sp_isa
