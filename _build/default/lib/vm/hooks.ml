type t = {
  on_block : int -> unit;
  on_instr : int -> int -> unit;
  on_read : int -> unit;
  on_write : int -> unit;
  on_branch : int -> bool -> unit;
}

let ignore1 (_ : int) = ()
let ignore2 (_ : int) (_ : int) = ()
let ignore_branch (_ : int) (_ : bool) = ()

let nil =
  {
    on_block = ignore1;
    on_instr = ignore2;
    on_read = ignore1;
    on_write = ignore1;
    on_branch = ignore_branch;
  }

let seq a b =
  let pick1 fa fb =
    if fa == ignore1 then fb
    else if fb == ignore1 then fa
    else fun x -> fa x; fb x
  in
  {
    on_block = pick1 a.on_block b.on_block;
    on_instr =
      (if a.on_instr == ignore2 then b.on_instr
       else if b.on_instr == ignore2 then a.on_instr
       else fun x y -> a.on_instr x y; b.on_instr x y);
    on_read = pick1 a.on_read b.on_read;
    on_write = pick1 a.on_write b.on_write;
    on_branch =
      (if a.on_branch == ignore_branch then b.on_branch
       else if b.on_branch == ignore_branch then a.on_branch
       else fun x y -> a.on_branch x y; b.on_branch x y);
  }

let seq_all = function
  | [] -> nil
  | h :: tl -> List.fold_left seq h tl
