(** Round-robin multi-program execution: the substrate for SPECrate-
    style throughput runs (N concurrent copies of a benchmark) and, more
    generally, for any study that interleaves independent instruction
    streams over shared resources.

    Cores are plain {!Interp} machines with their own programs, memories
    and hooks; the scheduler rotates between live cores every [quantum]
    retired instructions.  There is no inter-core communication — rate
    copies are share-nothing by construction. *)

type t

val create : (Program.t * Hooks.t) list -> t
(** One core per (program, hooks) pair, each on a fresh machine at its
    program's entry.
    @raise Invalid_argument on an empty list. *)

val run : ?quantum:int -> ?syscall:(int -> int) -> ?fuel:int -> t -> unit
(** Interleave execution until every core halts (or each has retired
    [fuel] instructions).  [quantum] defaults to 1000 instructions. *)

val cores : t -> int

val retired : t -> int array
(** Instructions retired per core. *)

val halted : t -> bool array

val machine : t -> int -> Interp.machine
