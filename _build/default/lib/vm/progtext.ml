let print (p : Program.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# program %s\n" p.Program.name);
  Array.iter
    (fun i ->
      Buffer.add_string buf (Sp_isa.Isa.to_string i);
      Buffer.add_char buf '\n')
    p.Program.instrs;
  Buffer.contents buf

let parse ?(name = "text") source =
  let lines = String.split_on_char '\n' source in
  let instrs = ref [] in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then begin
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line <> "" then
          match Sp_isa.Isa.of_string line with
          | Some i -> instrs := i :: !instrs
          | None ->
              error := Some (Printf.sprintf "line %d: cannot parse %S" (lineno + 1) line)
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      let instrs = Array.of_list (List.rev !instrs) in
      if Array.length instrs = 0 then Error "empty program"
      else
        match Program.of_instrs ~name instrs with
        | p -> Ok p
        | exception Invalid_argument msg -> Error msg)

let load path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      let n = in_channel_length ic in
      let source = really_input_string ic n in
      close_in ic;
      parse ~name:(Filename.basename path) source
