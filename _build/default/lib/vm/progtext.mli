(** Whole-program text format: one instruction per line in the
    {!Sp_isa.Isa.to_string} syntax, with ['#'] comments and blank lines
    ignored.  Control-flow targets are absolute instruction indices
    (["@12"]), counting only instruction lines.

    This makes the VM usable as a standalone tool: write a program by
    hand, run it under any pintool, checkpoint it — without going
    through the OCaml assembler API. *)

val print : Program.t -> string
(** One instruction per line, with a comment header. *)

val parse : ?name:string -> string -> (Program.t, string) result
(** Parse a whole program.  Errors carry the offending line number. *)

val load : string -> (Program.t, string) result
(** [parse] the contents of a file. *)
