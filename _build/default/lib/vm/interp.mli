(** The interpreter: executes a {!Program.t} against a machine state,
    firing {!Hooks.t} callbacks for instrumentation.

    Execution is resumable: [run] with a [fuel] bound leaves the machine
    at the next unexecuted instruction, so callers (slicers, regional
    replayers) can execute exact instruction intervals. *)

type machine = {
  regs : int array;       (** 16 integer registers; r15 is zero by convention *)
  fregs : float array;    (** 16 FP registers *)
  mutable pc : int;
  callstack : int array;
  mutable sp : int;       (** next free call-stack slot *)
  mem : Memory.t;
  mutable icount : int;   (** instructions retired since creation *)
}

type status =
  | Halted       (** executed a [Halt] *)
  | Out_of_fuel  (** fuel exhausted; machine is resumable *)

val create : ?mem:Memory.t -> entry:int -> unit -> machine
(** Fresh machine with zeroed registers, positioned at [entry]. *)

val default_syscall : int -> int
(** Deterministic syscall used when none is supplied: channel [n] returns
    a fixed hash of [n] — the "recorded input" of a default environment. *)

val run :
  ?hooks:Hooks.t ->
  ?syscall:(int -> int) ->
  ?fuel:int ->
  Program.t ->
  machine ->
  status
(** Execute until [Halt] or until [fuel] instructions have retired.

    Semantics notes: integer division/remainder by zero yields 0 (the
    machine never traps); shift counts are masked to 6 bits; call-stack
    depth is bounded (overflow raises [Failure]). *)

exception Stack_error of string
