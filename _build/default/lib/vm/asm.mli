open Sp_isa

(** Assembler DSL used by the workload kernels.

    Control-flow targets are symbolic labels resolved at {!assemble}
    time, so kernels can branch forward.  The emitters mirror the ISA;
    control instructions take labels instead of raw indices. *)

type t

type label

val create : ?name:string -> unit -> t

val new_label : t -> label
(** A fresh, not-yet-placed label. *)

val place : t -> label -> unit
(** Bind a label to the current position.
    @raise Invalid_argument if already placed. *)

val here : t -> label
(** [new_label] + [place] at the current position. *)

val position : t -> int
(** Current emission position (the pc the next instruction gets). *)

val instr : t -> Isa.instr -> unit
(** Emit a non-control instruction verbatim.
    @raise Invalid_argument for control instructions (use the dedicated
    emitters so their targets are labels). *)

val branch : t -> Isa.cond -> Isa.reg -> Isa.reg -> label -> unit
val jump : t -> label -> unit
val call : t -> label -> unit
val ret : t -> unit
val halt : t -> unit

val assemble : ?entry:label -> t -> Program.t
(** Resolve labels and build the program.
    @raise Invalid_argument if any referenced label is unplaced. *)

(** Convenience emitters (all forward to {!instr}). *)

val li : t -> Isa.reg -> int -> unit
val mov : t -> Isa.reg -> Isa.reg -> unit
val alu : t -> Isa.alu_op -> Isa.reg -> Isa.reg -> Isa.reg -> unit
val alui : t -> Isa.alu_op -> Isa.reg -> Isa.reg -> int -> unit
val load : t -> Isa.reg -> Isa.reg -> int -> unit
val store : t -> Isa.reg -> Isa.reg -> int -> unit
val movs : t -> Isa.reg -> Isa.reg -> unit
val falu : t -> Isa.falu_op -> Isa.freg -> Isa.freg -> Isa.freg -> unit
val fload : t -> Isa.freg -> Isa.reg -> int -> unit
val fstore : t -> Isa.freg -> Isa.reg -> int -> unit
val fmovi : t -> Isa.freg -> float -> unit
val sys : t -> int -> Isa.reg -> unit

val loop_down : t -> counter:Isa.reg -> from:int -> (unit -> unit) -> unit
(** [loop_down t ~counter ~from body] emits a counted loop running [body]
    [from] times, decrementing [counter] from [from] to 1.  [body] must
    preserve [counter]. *)
