open Sp_vm

type t = {
  config : Sp_cpu.Core_config.t;
  noise_sigma : float;
  startup_cycles : float;
  seed : int;
}

let default =
  {
    config = Sp_cpu.Core_config.i7_3770;
    noise_sigma = 0.015;
    startup_cycles = 1.0e4;
    seed = 0xF00D;
  }

let sample_of_stats ?(machine = default) ?(run_index = 0) ~name
    (stats : Sp_cpu.Interval_core.stats) =
  let rng =
    Sp_util.Rng.create
      (machine.seed
      + (Sp_util.Rng.hash_string name land 0xFFFF)
      + (run_index * 7919))
  in
  let noise = Sp_util.Rng.gaussian rng ~mu:1.0 ~sigma:machine.noise_sigma in
  let cycles =
    (stats.Sp_cpu.Interval_core.cycles *. Float.max 0.5 noise)
    +. machine.startup_cycles
  in
  let post_l1 =
    stats.Sp_cpu.Interval_core.level_hits.(1)
    + stats.Sp_cpu.Interval_core.level_hits.(2)
    + stats.Sp_cpu.Interval_core.level_hits.(3)
  in
  {
    Perf_counters.cpu_cycles = cycles;
    instructions = stats.Sp_cpu.Interval_core.instructions;
    cache_references = post_l1;
    cache_misses = stats.Sp_cpu.Interval_core.level_hits.(3);
    branch_instructions = stats.Sp_cpu.Interval_core.branch_lookups;
    branch_misses = stats.Sp_cpu.Interval_core.branch_mispredicts;
    task_clock_seconds =
      cycles /. (machine.config.Sp_cpu.Core_config.freq_ghz *. 1e9);
  }

let run ?(machine = default) ?run_index ?syscall (prog : Program.t) =
  let core = Sp_cpu.Interval_core.create ~config:machine.config prog in
  let vm = Interp.create ~entry:prog.Program.entry () in
  let status =
    Interp.run ~hooks:(Sp_cpu.Interval_core.hooks core) ?syscall prog vm
  in
  (match status with
  | Interp.Halted -> ()
  | Interp.Out_of_fuel -> assert false);
  sample_of_stats ~machine ?run_index ~name:prog.Program.name
    (Sp_cpu.Interval_core.stats core)
