(** Hardware-performance-counter samples, in the vocabulary of
    [perf stat].  The paper validates its Sniper results against the
    [cpu-cycles] and [instructions] events of native runs; this record
    carries those plus the usual companions. *)

type sample = {
  cpu_cycles : float;
  instructions : int;
  cache_references : int;  (** accesses that left the core (post-L1) *)
  cache_misses : int;      (** LLC misses *)
  branch_instructions : int;
  branch_misses : int;
  task_clock_seconds : float;
}

val cpi : sample -> float
(** cpu-cycles / instructions — the paper's comparison metric. *)

val ipc : sample -> float

val pp : Format.formatter -> sample -> unit
(** Rendered like a [perf stat] report. *)
