open Sp_vm

(** The "real hardware" substrate: native execution of a workload on an
    i7-3770-class machine, observed through performance counters.

    The paper's ground truth is a native run measured with [perf].  Our
    stand-in executes the same program under the same micro-architectural
    model as the Sniper substrate ({!Sp_cpu.Interval_core} with the Table
    III configuration) and then adds what distinguishes hardware
    measurement from simulation: run-to-run non-determinism — frequency
    jitter, interrupts and other-tenant interference — as seeded
    multiplicative noise plus a fixed startup overhead.  The Figure 12
    comparison thus exercises exactly the error sources the paper's
    does: sampling error (SimPoints) on one side, measurement noise and
    model/configuration drift on the other. *)

type t = {
  config : Sp_cpu.Core_config.t;
  noise_sigma : float;      (** relative cycle noise per run (~1.5%) *)
  startup_cycles : float;   (** process startup / OS overhead (scaled) *)
  seed : int;
}

val default : t

val run :
  ?machine:t -> ?run_index:int -> ?syscall:(int -> int) -> Program.t ->
  Perf_counters.sample
(** Execute the program natively (fresh machine, to completion) and
    return its counter sample.  [run_index] distinguishes repeated runs
    of the same binary: each gets a different noise draw, like real
    back-to-back [perf] invocations. *)

val sample_of_stats :
  ?machine:t -> ?run_index:int -> name:string ->
  Sp_cpu.Interval_core.stats -> Perf_counters.sample
(** Turn already-collected core statistics into a noisy counter sample —
    used when a pipeline has run the timing model during another pass
    and only needs the measurement-noise layer applied. *)
