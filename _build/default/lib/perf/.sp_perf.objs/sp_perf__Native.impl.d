lib/perf/native.ml: Array Float Interp Perf_counters Program Sp_cpu Sp_util Sp_vm
