lib/perf/perf_counters.mli: Format
