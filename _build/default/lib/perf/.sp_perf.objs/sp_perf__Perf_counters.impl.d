lib/perf/perf_counters.ml: Format
