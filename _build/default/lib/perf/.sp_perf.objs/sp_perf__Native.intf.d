lib/perf/native.mli: Perf_counters Program Sp_cpu Sp_vm
