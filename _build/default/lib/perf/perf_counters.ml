type sample = {
  cpu_cycles : float;
  instructions : int;
  cache_references : int;
  cache_misses : int;
  branch_instructions : int;
  branch_misses : int;
  task_clock_seconds : float;
}

let cpi s =
  if s.instructions = 0 then 0.0
  else s.cpu_cycles /. float_of_int s.instructions

let ipc s = if s.cpu_cycles = 0.0 then 0.0 else float_of_int s.instructions /. s.cpu_cycles

let pp ppf s =
  let line fmt = Format.fprintf ppf fmt in
  line "  %18.2f      task-clock (msec)@." (s.task_clock_seconds *. 1e3);
  line "  %18.0f      cpu-cycles@." s.cpu_cycles;
  line "  %18d      instructions              # %.2f  insn per cycle@."
    s.instructions (ipc s);
  line "  %18d      cache-references@." s.cache_references;
  line "  %18d      cache-misses@." s.cache_misses;
  line "  %18d      branch-instructions@." s.branch_instructions;
  line "  %18d      branch-misses             # %.2f%% of all branches@."
    s.branch_misses
    (if s.branch_instructions = 0 then 0.0
     else
       float_of_int s.branch_misses
       /. float_of_int s.branch_instructions
       *. 100.0)
