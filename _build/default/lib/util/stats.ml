let sum xs = Array.fold_left ( +. ) 0.0 xs

let fsum f xs = List.fold_left (fun acc x -> acc +. f x) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    acc /. float_of_int n

let stddev xs = sqrt (variance xs)

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    Array.iter (fun x -> assert (x > 0.0)) xs;
    exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int n)
  end

let weighted_mean ~weights xs =
  let n = Array.length xs in
  assert (Array.length weights = n);
  let wsum = sum weights in
  if wsum <= 0.0 then mean xs
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (weights.(i) *. xs.(i))
    done;
    !acc /. wsum
  end

let percentile xs p =
  let n = Array.length xs in
  assert (n > 0 && p >= 0.0 && p <= 100.0);
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let abs_error ~reference x = Float.abs (x -. reference)

let rel_error_pct ~reference x =
  if reference = 0.0 then if x = 0.0 then 0.0 else 100.0
  else Float.abs ((x -. reference) /. reference) *. 100.0

let mean_abs_error_pct ~reference xs =
  let n = Array.length xs in
  assert (Array.length reference = n && n > 0);
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. rel_error_pct ~reference:reference.(i) xs.(i)
  done;
  !acc /. float_of_int n

let pearson xs ys =
  let n = Array.length xs in
  assert (Array.length ys = n);
  if n = 0 then 0.0
  else
    let mx = mean xs and my = mean ys in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = xs.(i) -. mx and dy = ys.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx = 0.0 || !syy = 0.0 then 0.0 else !sxy /. sqrt (!sxx *. !syy)

let normalize xs =
  let s = sum xs in
  let n = Array.length xs in
  if s <= 0.0 then Array.make n (if n = 0 then 0.0 else 1.0 /. float_of_int n)
  else Array.map (fun x -> x /. s) xs
