(** Deterministic pseudo-random number generation.

    All randomness in the system flows through this module so that every
    experiment is reproducible bit-for-bit from a seed.  The generator is
    SplitMix64 (Steele et al., OOPSLA 2014): tiny state, excellent
    statistical quality for simulation purposes, and cheap splitting, which
    lets each benchmark, kernel and tool own an independent stream derived
    from a master seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives a statistically independent generator; [t] advances. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future outputs). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits30 : t -> int
(** 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val hash_string : string -> int
(** FNV-1a hash of a string, for deriving per-name seeds. *)
