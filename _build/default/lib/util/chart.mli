(** Terminal charts for the figure reproductions.

    The paper's results are figures; alongside the numeric tables the
    bench renders their *shapes* as ASCII charts — horizontal bars for
    categorical comparisons and multi-series line plots for sweeps. *)

val bar : ?width:int -> ?unit_label:string -> (string * float) list -> string
(** Horizontal bar chart; bars scale to the maximum value.
    Non-finite/negative values render as empty bars. *)

val series :
  ?height:int -> ?width:int -> labels:string list -> float array list -> string
(** Multi-series plot: each series is drawn with its own glyph over a
    shared y-scale; x is the sample index scaled to [width].  A legend
    line maps glyphs to [labels].
    @raise Invalid_argument if series and labels differ in count, or if
    any series is empty. *)
