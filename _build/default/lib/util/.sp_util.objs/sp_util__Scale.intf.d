lib/util/scale.mli: Format
