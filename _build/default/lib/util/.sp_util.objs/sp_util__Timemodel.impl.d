lib/util/timemodel.ml: Format
