lib/util/stats.mli:
