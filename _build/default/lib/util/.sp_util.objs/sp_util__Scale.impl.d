lib/util/scale.ml: Format
