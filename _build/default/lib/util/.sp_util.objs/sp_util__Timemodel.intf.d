lib/util/timemodel.mli: Format
