lib/util/table.mli:
