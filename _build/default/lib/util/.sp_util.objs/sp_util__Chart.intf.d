lib/util/chart.mli:
