lib/util/rng.mli:
