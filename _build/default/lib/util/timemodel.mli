(** Execution-time model for the paper's runtime-reduction claims.

    The paper reports wall-clock times measured on the authors' Xeon
    machines: logging a Whole Pinball is 100-200x slower than native,
    replaying a Whole Pinball under pintools averaged 213.2 hours per
    benchmark, and Regional replays averaged 17.17 minutes.  Those times
    are a function of (a) the dynamic instruction count of the run and
    (b) a per-run-kind processing rate.  We cannot measure the authors'
    hardware, so we reproduce the *model*: rates calibrated from the
    paper's own reported figures, applied to instruction counts that we
    measure in our pipeline.  Our bench additionally reports the real
    wall-clock time of our own simulated runs. *)

type run_kind =
  | Native       (** direct execution of the binary on hardware *)
  | Logging      (** PinPlay logger creating a Whole Pinball *)
  | Whole        (** replaying a Whole Pinball under pintools *)
  | Regional     (** replaying Regional Pinballs under pintools *)

val replay_rate : run_kind -> float
(** Instructions per second processed for a run kind.  Regional replay is
    slightly faster than Whole replay (smaller resident footprint, better
    host-cache locality), matching the paper's 750x time reduction against
    its 650x instruction reduction. *)

val seconds : run_kind -> paper_insns:float -> float
(** Wall-clock seconds to process [paper_insns] instructions. *)

val native_seconds : paper_insns:float -> cpi:float -> ghz:float -> float
(** Native execution time derived from a timing model's CPI. *)

val pp_duration : Format.formatter -> float -> unit
(** Render seconds as a human duration ("213.2 h", "17.2 min", "3.1 s"). *)
