let bar ?(width = 60) ?(unit_label = "") rows =
  let vmax =
    List.fold_left
      (fun m (_, v) -> if Float.is_finite v then Float.max m v else m)
      0.0 rows
  in
  let lmax =
    List.fold_left (fun m (l, _) -> max m (String.length l)) 0 rows
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let n =
        if vmax <= 0.0 || (not (Float.is_finite v)) || v < 0.0 then 0
        else int_of_float (Float.round (v /. vmax *. float_of_int width))
      in
      Buffer.add_string buf
        (Printf.sprintf "%-*s | %s %.3g%s\n" lmax label (String.make n '#') v
           unit_label))
    rows;
  Buffer.contents buf

let glyphs = [| '*'; 'o'; '+'; 'x'; '@'; '%' |]

let series ?(height = 12) ?(width = 60) ~labels seriess =
  if List.length labels <> List.length seriess then
    invalid_arg "Chart.series: labels/series mismatch";
  List.iter
    (fun s -> if Array.length s = 0 then invalid_arg "Chart.series: empty series")
    seriess;
  let vmax =
    List.fold_left
      (fun m s -> Array.fold_left Float.max m s)
      neg_infinity seriess
  in
  let vmin =
    List.fold_left
      (fun m s -> Array.fold_left Float.min m s)
      infinity seriess
  in
  let vmin = if vmin = vmax then vmin -. 1.0 else vmin in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun si s ->
      let g = glyphs.(si mod Array.length glyphs) in
      let n = Array.length s in
      for x = 0 to width - 1 do
        let i =
          if n = 1 then 0
          else
            int_of_float
              (Float.round
                 (float_of_int x /. float_of_int (width - 1) *. float_of_int (n - 1)))
        in
        let v = s.(i) in
        if Float.is_finite v then begin
          let y =
            int_of_float
              (Float.round
                 ((v -. vmin) /. (vmax -. vmin) *. float_of_int (height - 1)))
          in
          let y = max 0 (min (height - 1) y) in
          grid.(height - 1 - y).(x) <- g
        end
      done)
    seriess;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%10.3g +\n" vmax);
  Array.iter
    (fun row ->
      Buffer.add_string buf "           |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (Printf.sprintf "%10.3g +%s\n" vmin (String.make width '-'));
  Buffer.add_string buf "            ";
  List.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf "%c=%s  " glyphs.(i mod Array.length glyphs) l))
    labels;
  Buffer.add_char buf '\n';
  Buffer.contents buf
