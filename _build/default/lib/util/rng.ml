type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* SplitMix64 output mix. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t = mix64 (next_seed t)

let split t = { state = int64 t }

let copy t = { state = t.state }

let bits30 t = Int64.to_int (Int64.shift_right_logical (int64 t) 34)

let int t bound =
  assert (bound > 0);
  if bound <= 1 lsl 30 then bits30 t mod bound
  else
    (* 60 bits, enough for any simulated address space we use. *)
    let hi = bits30 t and lo = bits30 t in
    ((hi lsl 30) lor lo) mod bound

let float t bound =
  let x = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  x /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let hash_string s =
  let h = ref 0x0bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    s;
  !h
