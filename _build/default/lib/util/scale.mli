(** Scaling between paper-reported instruction counts and simulated
    instruction counts.

    SPEC CPU2017 reference runs execute trillions of instructions; our
    synthetic workloads cannot (and need not) match those absolute counts.
    We keep every *structural* quantity at paper scale — number of slices
    per benchmark, number of simulation points, slice-size ratios — and
    scale only the number of simulated instructions that stand in for one
    paper "M instructions" (Minsn).  All experiment reports show both the
    simulated count and the paper-equivalent count derived from this
    scale. *)

val sim_insns_per_minsn : int
(** Simulated instructions representing one million paper instructions. *)

val of_minsn : int -> int
(** [of_minsn m] is the simulated-instruction length of a slice quoted in
    the paper as [m] million instructions. *)

val paper_insns_of_sim : int -> float
(** Paper-equivalent (absolute) instruction count of a simulated count. *)

val micro_slice_minsn : int
(** BBV collection granularity in paper-Minsn.  It divides every slice
    size used in the paper's sweep (15, 25, 30, 50, 100 M), letting the
    slice-size sweep re-aggregate micro-slices instead of re-running. *)

val default_slice_minsn : int
(** The paper's chosen slice size: 30 M instructions. *)

val default_max_k : int
(** The paper's chosen MaxK: 35 clusters. *)

val pp_paper_insns : Format.formatter -> float -> unit
(** Human formatting of paper-equivalent counts (e.g. ["6873.9 B"]). *)
