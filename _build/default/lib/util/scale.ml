let sim_insns_per_minsn = 40

let of_minsn m = m * sim_insns_per_minsn

let paper_insns_of_sim n = float_of_int n /. float_of_int sim_insns_per_minsn *. 1e6

let micro_slice_minsn = 5

let default_slice_minsn = 30

let default_max_k = 35

let pp_paper_insns ppf x =
  if x >= 1e12 then Format.fprintf ppf "%.1f T" (x /. 1e12)
  else if x >= 1e9 then Format.fprintf ppf "%.1f B" (x /. 1e9)
  else if x >= 1e6 then Format.fprintf ppf "%.1f M" (x /. 1e6)
  else Format.fprintf ppf "%.0f" x
