type run_kind = Native | Logging | Whole | Regional

(* Rates calibrated from the paper's own reported figures:
   - Whole replay: 6873.9 B insns in 213.2 h -> 8.96 M insn/s.
   - Regional replay: 10.4 B insns in 17.17 min -> 10.09 M insn/s.
   - Logging: 100-200x slower than native (we use 150x on a 2.5 G insn/s
     native machine).
   - Native: nominal single-thread throughput of the paper's Xeon host. *)
let replay_rate = function
  | Native -> 2.5e9
  | Logging -> 2.5e9 /. 150.0
  | Whole -> 8.956e6
  | Regional -> 10.09e6

let seconds kind ~paper_insns = paper_insns /. replay_rate kind

let native_seconds ~paper_insns ~cpi ~ghz = paper_insns *. cpi /. (ghz *. 1e9)

let pp_duration ppf s =
  if s >= 3600.0 then Format.fprintf ppf "%.1f h" (s /. 3600.0)
  else if s >= 60.0 then Format.fprintf ppf "%.2f min" (s /. 60.0)
  else if s >= 1.0 then Format.fprintf ppf "%.2f s" s
  else Format.fprintf ppf "%.1f ms" (s *. 1000.0)
