(** Descriptive statistics and error metrics used throughout the
    experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val variance : float array -> float
(** Population variance; 0 for fewer than two samples. *)

val stddev : float array -> float

val geomean : float array -> float
(** Geometric mean of strictly positive samples. *)

val weighted_mean : weights:float array -> float array -> float
(** [weighted_mean ~weights xs] with weights summing to anything positive;
    they are renormalised internally.  This is the aggregation rule the
    paper mandates for per-simulation-point statistics ("the weighted
    average should be taken only for statistics normalized by
    instructions"). *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0,100\]], linear interpolation. *)

val abs_error : reference:float -> float -> float
(** [abs_error ~reference x] = |x - reference|. *)

val rel_error_pct : reference:float -> float -> float
(** Relative error in percent; 0 if the reference is 0 and x is 0,
    100 if the reference is 0 and x is not. *)

val mean_abs_error_pct : reference:float array -> float array -> float
(** Mean of pairwise relative errors (percent). *)

val pearson : float array -> float array -> float
(** Pearson correlation coefficient; 0 when either side is constant. *)

val sum : float array -> float
val fsum : ('a -> float) -> 'a list -> float
val normalize : float array -> float array
(** Scale a non-negative vector to sum to 1; uniform if the sum is 0. *)
