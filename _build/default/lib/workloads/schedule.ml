type segment = { phase : int; slices : int }

let max_segments = 8

let make ~seed ~total_slices ~weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Schedule.make: no weights";
  if total_slices < 1 then invalid_arg "Schedule.make: total_slices < 1";
  let rng = Sp_util.Rng.create (seed lxor 0x5EED5) in
  let budget =
    Array.map
      (fun w ->
        max 1 (int_of_float (Float.round (w *. float_of_int total_slices))))
      weights
  in
  let segments = ref [] in
  Array.iteri
    (fun phase slices ->
      let nseg =
        max 1 (min max_segments (int_of_float (sqrt (float_of_int slices))))
      in
      let base = slices / nseg and rem = slices mod nseg in
      for s = 0 to nseg - 1 do
        let len = base + (if s < rem then 1 else 0) in
        if len > 0 then segments := { phase; slices = len } :: !segments
      done)
    budget;
  let arr = Array.of_list !segments in
  Sp_util.Rng.shuffle rng arr;
  Array.to_list arr

let total segs = List.fold_left (fun acc s -> acc + s.slices) 0 segs

let slices_of_phase segs phase =
  List.fold_left
    (fun acc s -> if s.phase = phase then acc + s.slices else acc)
    0 segs
