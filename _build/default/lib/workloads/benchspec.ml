open Sp_vm

type suite_class = Int_rate | Int_speed | Fp_rate | Fp_speed

let suite_class_name = function
  | Int_rate -> "SPECrate INT"
  | Int_speed -> "SPECspeed INT"
  | Fp_rate -> "SPECrate FP"
  | Fp_speed -> "SPECspeed FP"

type footprint = Small | Medium | Large | Xlarge

(* Sized against the *scaled* simulation hierarchy (Table I / 32:
   L1 1 kB, L2 64 kB, L3 512 kB); see Sp_cache.Config.sim_scale. *)
let footprint_bytes = function
  | Small -> 512
  | Medium -> 16 * 1024
  | Large -> 160 * 1024
  | Xlarge -> 640 * 1024

type t = {
  name : string;
  suite_class : suite_class;
  planted_phases : int;
  planted_n90 : int;
  reduction_hint : float;
  palette : Kernel.t list;
  footprints : footprint list;
  weight_override : float array option;
  seed : int;
}

type phase = {
  index : int;
  kernel : Kernel.t;
  params : Kernel.params;
  weight : float;
  call_cost : float;
      (** dynamic instructions per driver call, including the call/loop
          overhead; analytic for most kernels, measured for kernels with
          data-dependent inner loops *)
}

type built = {
  spec : t;
  program : Program.t;
  phases : phase array;
  schedule : Schedule.segment list;
  total_slices : int;
  slice_insns : int;
  expected_insns : float;
  phase_of_pc : int array;
  roi_start_pc : int;
}

let default_slice_insns =
  Sp_util.Scale.of_minsn Sp_util.Scale.default_slice_minsn

let data_base = 0x2000_0000

let round_up n align = (n + align - 1) / align * align

(* Pointer-chasing kernels space entries one cache line apart so the
   footprint translates into distinct lines. *)
let stride_for (kernel : Kernel.t) =
  if kernel.Kernel.name = "pointer_chase" then 4 else 1

(* Approximate per-work-item dynamic cost, from the kernel's own model. *)
let per_item_cost (kernel : Kernel.t) params =
  let at chunk = kernel.Kernel.body_insns { params with Kernel.chunk } in
  Float.max 0.5 ((at 1028 -. at 4) /. 1024.0)

let target_body_insns = 280.0

(* Per-call cost measured empirically: assemble the phase in isolation
   and difference the dynamic counts of a 1-call and a 3-call run. *)
let measure_call_cost (kernel : Kernel.t) params =
  let run calls =
    let a = Asm.create () in
    Asm.li a 15 0;
    let rtl = Rtl.emit a in
    kernel.Kernel.emit_init a rtl params;
    let fn = Asm.new_label a in
    Asm.li a 12 calls;
    let top = Asm.here a in
    Asm.call a fn;
    Asm.alui a Sub 12 12 1;
    Asm.branch a Gt 12 15 top;
    Asm.halt a;
    Asm.place a fn;
    kernel.Kernel.emit_body a params;
    Asm.ret a;
    let prog = Asm.assemble a in
    let m = Interp.create ~entry:prog.Program.entry () in
    ignore (Interp.run ~fuel:50_000_000 prog m);
    m.Interp.icount
  in
  float_of_int (run 3 - run 1) /. 2.0

let elaborate_phases spec ~weights =
  let rng = Sp_util.Rng.create (spec.seed lxor 0xBE9C) in
  let palette = Array.of_list spec.palette in
  let footprints = Array.of_list spec.footprints in
  assert (Array.length palette > 0 && Array.length footprints > 0);
  let base = ref data_base in
  Array.mapi
    (fun i w ->
      let kernel = palette.(i mod Array.length palette) in
      let fp = footprints.(i mod Array.length footprints) in
      let jitter = 0.75 +. Sp_util.Rng.float rng 0.6 in
      let stride = stride_for kernel in
      let bytes =
        int_of_float (float_of_int (footprint_bytes fp) *. jitter)
      in
      (* btree_search initialises its full (sorted) array, so its
         footprint is bounded to keep init cost negligible *)
      let bytes =
        if kernel.Kernel.name = "btree_search" then min bytes (8 * 1024)
        else bytes
      in
      let elems = max 64 (bytes / (8 * stride)) in
      let params =
        Kernel.normalize
          {
            Kernel.base = !base;
            elems;
            stride;
            chunk = 64;
            seed = spec.seed + (i * 7919) + 13;
          }
      in
      let per_item = per_item_cost kernel params in
      let chunk =
        min 4096 (max 4 (int_of_float (target_body_insns /. per_item)))
      in
      let params = Kernel.normalize { params with Kernel.chunk } in
      base :=
        round_up (!base + Kernel.footprint_bytes params) (64 * 1024)
        + (64 * 1024);
      let call_cost =
        if kernel.Kernel.calibrate then measure_call_cost kernel params
        else kernel.Kernel.body_insns params +. 4.0
      in
      { index = i; kernel; params; weight = w; call_cost })
    weights

let phase_fn_cost (p : phase) = p.call_cost

let build ?(slice_insns = default_slice_insns) ?(slices_scale = 1.0) spec =
  if spec.planted_phases < 1 then invalid_arg "Benchspec.build: no phases";
  if spec.planted_n90 < 1 || spec.planted_n90 > spec.planted_phases then
    invalid_arg "Benchspec.build: bad n90";
  let weights =
    match spec.weight_override with
    | Some w ->
        if Array.length w <> spec.planted_phases then
          invalid_arg "Benchspec.build: override length mismatch";
        Weights.explicit (Array.to_list w)
    | None -> Weights.fit ~n:spec.planted_phases ~n90:spec.planted_n90
  in
  let phases = elaborate_phases spec ~weights in
  (* Benchmarks with very few phases still run long whole executions
     (that is what makes their reduction factors so large), so the
     driver length is floored at eight phases' worth of slices. *)
  let total_slices =
    max spec.planted_phases
      (int_of_float
         (Float.round
            (spec.reduction_hint
            *. float_of_int (max 8 spec.planted_phases)
            *. slices_scale)))
  in
  let schedule =
    Schedule.make ~seed:spec.seed ~total_slices ~weights
  in
  let a = Asm.create ~name:spec.name () in
  (* entry: r15 is the conventional zero register (machines start zeroed,
     but make the invariant explicit) *)
  Asm.li a 15 0;
  (* the shared runtime library (guarded by an internal jump) *)
  let rtl = Rtl.emit a in
  (* phase initialisation, in phase order *)
  Array.iter (fun p -> p.kernel.Kernel.emit_init a rtl p.params) phases;
  (* driver: one counted call-loop per schedule segment.  The first
     driver instruction is the region-of-interest start: everything
     before it is initialisation (what real PinPoints skips via SSC
     markers). *)
  let roi_start_pc = Asm.position a in
  let fn_labels = Array.map (fun _ -> Asm.new_label a) phases in
  List.iter
    (fun (seg : Schedule.segment) ->
      let p = phases.(seg.Schedule.phase) in
      let seg_insns = float_of_int (seg.Schedule.slices * slice_insns) in
      let reps =
        max 1 (int_of_float (Float.round (seg_insns /. phase_fn_cost p)))
      in
      (* each segment consumes one external input (think gettimeofday or
         a read of segment metadata): exercises PinPlay's record/replay
         of non-deterministic events inside captured regions *)
      Asm.sys a 0 13;
      Asm.li a 12 reps;
      let top = Asm.here a in
      Asm.call a fn_labels.(seg.Schedule.phase);
      Asm.alui a Sub 12 12 1;
      Asm.branch a Gt 12 15 top)
    schedule;
  Asm.halt a;
  (* phase functions, recording each one's pc range for attribution *)
  let ranges =
    Array.map
      (fun p ->
        Asm.place a fn_labels.(p.index);
        let start = Asm.position a in
        p.kernel.Kernel.emit_body a p.params;
        Asm.ret a;
        (start, Asm.position a))
      phases
  in
  let program = Asm.assemble a in
  let phase_of_pc =
    Array.init (Array.length program.Program.instrs) (fun pc ->
        let found = ref (-1) in
        Array.iteri
          (fun i (lo, hi) -> if pc >= lo && pc < hi then found := i)
          ranges;
        !found)
  in
  let init_total =
    Array.fold_left
      (fun acc p -> acc +. p.kernel.Kernel.init_insns p.params)
      0.0 phases
  in
  let driver_total =
    List.fold_left
      (fun acc (seg : Schedule.segment) ->
        let p = phases.(seg.Schedule.phase) in
        let seg_insns = float_of_int (seg.Schedule.slices * slice_insns) in
        let reps =
          max 1 (int_of_float (Float.round (seg_insns /. phase_fn_cost p)))
        in
        acc +. 2.0 +. (float_of_int reps *. phase_fn_cost p))
      0.0 schedule
  in
  {
    spec;
    program;
    phases;
    schedule;
    total_slices;
    slice_insns;
    expected_insns = init_total +. driver_total +. 2.0;
    phase_of_pc;
    roi_start_pc;
  }
