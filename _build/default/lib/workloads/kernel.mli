open Sp_vm

(** The computational-kernel catalogue.

    Every synthetic SPEC CPU2017 benchmark is assembled from these
    kernels: each planted phase of a benchmark instantiates one kernel
    with its own data region and parameters, and emits its own copy of
    the kernel's code (so phases have disjoint basic blocks, exactly the
    property SimPoint clusters on).

    A kernel contributes three things: initialisation code (run once in
    the benchmark prologue), a function body (called repeatedly by the
    benchmark driver; each call performs [chunk] work items), and static
    metadata (approximate dynamic instructions per call, footprint).

    Register conventions: [r15] is always zero; [r12]-[r14] belong to
    the driver and are preserved; kernel bodies and init code may use
    [r0]-[r11] and all FP registers.  Each phase owns a state word in
    its data region so successive calls continue where the previous call
    stopped (cursors, LCG states, chase pointers). *)

type params = {
  base : int;   (** byte address of the phase's data region *)
  elems : int;  (** number of data elements (8-byte words) *)
  stride : int; (** element spacing in words (sparse layouts); >= 1 *)
  chunk : int;  (** work items per body call *)
  seed : int;   (** per-phase constant randomising data *)
}

val normalize : params -> params
(** Round [elems] to the even multiple of four the emitters assume, and
    enforce minima.  Applied by {!Benchspec}; emitters require it. *)

val span_words : params -> int
(** Data words covered by the region ([elems * stride]). *)

val state_addr : params -> int
(** Address of the phase's persistent state word (just past the data). *)

val aux_addr : params -> int
(** Start of the phase's auxiliary area (e.g. recursion stacks). *)

val footprint_bytes : params -> int
(** Bytes of address space the phase may touch, including state/aux. *)

type t = {
  name : string;
  is_fp : bool;  (** uses the FP pipeline (for FP-suite benchmarks) *)
  emit_init : Asm.t -> Rtl.t -> params -> unit;
      (** per-phase init stub: loads arguments and calls the shared
          {!Rtl} routines, then initialises the phase's state word *)
  emit_body : Asm.t -> params -> unit;
      (** the function body, without the trailing [ret] *)
  body_insns : params -> float;
      (** approximate dynamic instructions per body call *)
  init_insns : params -> float;
  calibrate : bool;
      (** true when [body_insns] is approximate enough that the builder
          should measure the real per-call cost empirically *)
}

(** {1 Integer kernels} *)

val stream_sum : t      (** sequential unrolled loads; streaming reads *)

val stride_walk : t     (** strided loads; poor spatial locality *)

val pointer_chase : t   (** dependent load chain around a pointer ring *)

val random_access : t   (** LCG-indexed read-modify-write gather/scatter *)

val store_stream : t    (** sequential unrolled stores *)

val memcpy_movs : t     (** memory-to-memory copy; MEM_RW instructions *)

val hash_mix : t        (** load + integer mixing + conditional stores *)

val btree_search : t    (** binary search; data-dependent branches *)

val branchy : t         (** bit-test ladders over loaded data *)

val recursive_calls : t (** binary recursion with an explicit memory stack *)

val alu_mix : t         (** pure register arithmetic *)

val matrix_traverse : t (** row-major sweep with per-row writebacks *)

(** {1 Floating-point kernels} *)

val daxpy : t           (** y \[i\] += a * x\[i\] *)

val stencil3 : t        (** 1-D 3-point stencil *)

val fp_reduce : t       (** dot-product reduction *)

val fp_poly : t         (** Horner polynomial; compute-dense *)

val stencil2d : t       (** 2-D 5-point stencil over a square grid *)

(** {1 Additional kernels} (used by the extended suite) *)

val selection_sort : t  (** fixed-window selection sort; exact cost *)

val priority_queue : t  (** heapsort churn (discrete-event-queue flavour) *)

val sparse_matvec : t   (** CSR-style float gather via integer indices *)

val histogram : t       (** streaming reads + read-modify-write table *)

val all : t list
val by_name : string -> t
(** @raise Not_found for an unknown kernel name. *)
