open Sp_vm

(** The benchmarks' shared runtime library: parameterised data-
    initialisation routines emitted once per program and called by every
    phase's init stub.

    Sharing matters for fidelity, not just size: if each phase emitted
    its own fill loop, a 20-phase benchmark would plant ~20 extra
    initialisation code signatures and SimPoint would dutifully report
    them all as phases.  With one shared routine, initialisation shows
    up as (at most) a couple of low-weight clusters, like the startup
    phases of real benchmarks.

    Calling conventions (callee clobbers its argument registers and
    r0-r6 / f0-f1):
    - [fill_int]: r0 = base, r1 = word count / 4, r2 = seed
    - [fill_float]: r0 = base, r1 = word count / 4, r2 = seed
    - [fill_sorted]: r0 = base, r1 = word count / 4, r2 = value step
    - [ring]: r0 = base, r1 = entries (power of two), r2 = entry
      bytes, r3 = LCG multiplier, r4 = LCG increment *)

type t = {
  fill_int : Asm.label;
  fill_float : Asm.label;
  fill_sorted : Asm.label;
  ring : Asm.label;
}

val emit : Asm.t -> t
(** Emit the four routines at the current position, guarded by a jump
    over them, and return their entry labels. *)

val lcg_mul : int
val lcg_add : int
val lcg_mask : int
(** The shared linear-congruential generator constants (kernels use the
    same recurrence inline for per-item index generation). *)

val insns_per_fill_group : float
val insns_per_ring_entry : float
(** Cost-model constants for the routines, used by kernel
    [init_insns] estimates. *)
