open Sp_vm

type params = {
  base : int;
  elems : int;
  stride : int;
  chunk : int;
  seed : int;
}

let normalize p =
  let elems = max 16 (p.elems + 3) / 4 * 4 in
  let elems = max 16 (elems land lnot 3) in
  {
    p with
    elems;
    stride = max 1 p.stride;
    chunk = max 4 (p.chunk + 3) / 4 * 4;
  }

let span_words p = p.elems * p.stride

let state_addr p = p.base + (span_words p * 8)

let aux_addr p = state_addr p + 64

let footprint_bytes p = (span_words p * 8) + 1024

type t = {
  name : string;
  is_fp : bool;
  emit_init : Asm.t -> Rtl.t -> params -> unit;
  emit_body : Asm.t -> params -> unit;
  body_insns : params -> float;
  init_insns : params -> float;
  calibrate : bool;
      (** the analytic [body_insns] is approximate (data-dependent inner
          loops): measure the real per-call cost when building *)
}

(* ------------------------------------------------------------------ *)
(* Shared emission helpers.  Register conventions: r15 is zero; bodies
   and init code use r0-r11 and f0-f7 freely. *)

let lcg_mul = Rtl.lcg_mul
let lcg_add = Rtl.lcg_add
let lcg_mask = Rtl.lcg_mask

(* r <- lcg(r) *)
let emit_lcg a r =
  Asm.alui a Mul r r lcg_mul;
  Asm.alui a Add r r lcg_add;
  Asm.alui a And r r lcg_mask

(* if cur >= limit then cur <- cur - limit   (both registers) *)
let emit_wrap a ~cur ~limit =
  let no_wrap = Asm.new_label a in
  Asm.branch a Lt cur limit no_wrap;
  Asm.alu a Sub cur cur limit;
  Asm.place a no_wrap

(* if cur >= limit then cur <- reset_imm *)
let emit_wrap_to a ~cur ~limit ~reset =
  let no_wrap = Asm.new_label a in
  Asm.branch a Lt cur limit no_wrap;
  Asm.li a cur reset;
  Asm.place a no_wrap

(* Bulk data fills are capped: cache behaviour depends only on the
   address stream, and reading never-written words simply yields zero,
   so initialising a bounded prefix preserves every phase signature
   while keeping init cost and resident memory proportional to the cap
   rather than to multi-MB footprints.  Kernels whose *values* shape
   control flow (btree_search's sorted array) fill their full arrays and
   are assigned bounded footprints by the suite. *)
let fill_cap = 65536

(* Call one of the shared fill routines: r0 = base, r1 = groups of four
   words, r2 = third argument (seed or step). *)
let emit_call_fill a label ~base ~words ~arg =
  Asm.li a 0 base;
  Asm.li a 1 (max 1 ((words + 3) / 4));
  Asm.li a 2 arg;
  Asm.call a label

(* Store [value] (immediate) at the phase's state word. Clobbers r0, r1. *)
let emit_set_state a p value =
  Asm.li a 0 (state_addr p);
  Asm.li a 1 value;
  Asm.store a 1 0 0

let fill_int_cost words = (3.0 *. float_of_int (min words fill_cap)) +. 10.0
let fill_float_cost words = (3.25 *. float_of_int (min words fill_cap)) +. 12.0

(* Pointer ring over the largest power-of-two prefix of [elems] entries,
   spaced [stride] words apart; successors follow a full-period LCG
   permutation, so the chase jumps pseudo-randomly over the footprint. *)
let ring_entries p =
  let rec pow2 n = if n * 2 > p.elems then n else pow2 (n * 2) in
  pow2 16

let emit_ring_init a (rtl : Rtl.t) p =
  Asm.li a 0 p.base;
  Asm.li a 1 (ring_entries p);
  Asm.li a 2 (p.stride * 8);
  Asm.li a 3 165;
  Asm.li a 4 (p.seed lor 1);
  Asm.call a rtl.Rtl.ring;
  emit_set_state a p p.base

(* Standard body prologue: r0 = state address, r1 = loaded state,
   r2 = iteration count. *)
let emit_state_prologue a p ~iters =
  Asm.li a 0 (state_addr p);
  Asm.load a 1 0 0;
  Asm.li a 2 iters

(* Store the state register r1 back through a freshly materialised state
   address (r0 may have been clobbered by the body). *)
let emit_store_state a p =
  Asm.li a 0 (state_addr p);
  Asm.store a 1 0 0

(* Counted loop on r2 ending with the back-branch. *)
let emit_count_loop a body =
  let top = Asm.here a in
  body ();
  Asm.alui a Sub 2 2 1;
  Asm.branch a Gt 2 15 top

(* ------------------------------------------------------------------ *)
(* Integer kernels *)

let stream_sum =
  let emit_body a p =
    let iters = max 1 (p.chunk / 4) in
    emit_state_prologue a p ~iters;
    Asm.li a 3 p.base;
    Asm.li a 7 (p.elems * 8);
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        for u = 0 to 3 do
          Asm.load a 5 4 (u * 8);
          Asm.alu a Add 6 6 5
        done;
        Asm.alui a Add 1 1 32;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "stream_sum";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int (max 1 (p.chunk / 4)) *. 13.1));
    init_insns = (fun p -> 8.0 +. fill_int_cost p.elems);
    calibrate = false;
  }

let stride_walk =
  let emit_body a p =
    let iters = max 1 (p.chunk / 2) in
    let step = 2 * p.stride * 8 in
    emit_state_prologue a p ~iters;
    Asm.li a 3 p.base;
    Asm.li a 7 (span_words p * 8);
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        Asm.load a 5 4 0;
        Asm.alu a Add 6 6 5;
        Asm.load a 5 4 (p.stride * 8);
        Asm.alu a Add 6 6 5;
        Asm.alui a Add 1 1 step;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base
      ~words:(min (span_words p) fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "stride_walk";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int (max 1 (p.chunk / 2)) *. 9.1));
    init_insns = (fun p -> 8.0 +. fill_int_cost (span_words p));
    calibrate = false;
  }

let pointer_chase =
  let emit_body a p =
    emit_state_prologue a p ~iters:p.chunk;
    emit_count_loop a (fun () -> Asm.load a 1 1 0);
    emit_store_state a p
  in
  {
    name = "pointer_chase";
    is_fp = false;
    emit_init = emit_ring_init;
    emit_body;
    body_insns = (fun p -> 6.0 +. (float_of_int p.chunk *. 3.0));
    init_insns = (fun p -> 10.0 +. (float_of_int (ring_entries p) *. 11.0));
    calibrate = false;
  }

let random_access =
  let emit_body a p =
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 p.elems;
    emit_count_loop a (fun () ->
        emit_lcg a 1;
        Asm.alu a Rem 4 1 7;
        Asm.alui a Mul 4 4 (p.stride * 8);
        Asm.alu a Add 4 4 3;
        Asm.load a 5 4 0;
        Asm.alui a Add 5 5 1;
        Asm.store a 5 4 0);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base
      ~words:(min (span_words p) fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p (p.seed land lcg_mask lor 1)
  in
  {
    name = "random_access";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int p.chunk *. 11.0));
    init_insns = (fun p -> 8.0 +. fill_int_cost (span_words p));
    calibrate = false;
  }

let store_stream =
  let emit_body a p =
    let iters = max 1 (p.chunk / 4) in
    emit_state_prologue a p ~iters;
    Asm.li a 3 p.base;
    Asm.li a 7 (p.elems * 8);
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        for u = 0 to 3 do
          Asm.store a 2 4 (u * 8)
        done;
        Asm.alui a Add 1 1 32;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  {
    name = "store_stream";
    is_fp = false;
    emit_init = (fun a _rtl p -> emit_set_state a p 0);
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int (max 1 (p.chunk / 4)) *. 9.1));
    init_insns = (fun _ -> 3.0);
    calibrate = false;
  }

let memcpy_movs =
  let emit_body a p =
    let half = p.elems / 2 * 8 in
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 4 (p.base + half);
    Asm.li a 7 half;
    emit_count_loop a (fun () ->
        Asm.alu a Add 5 3 1;
        Asm.alu a Add 6 4 1;
        Asm.movs a 6 5;
        Asm.alui a Add 1 1 8;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base
      ~words:(min (p.elems / 2) fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "memcpy_movs";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns = (fun p -> 9.0 +. (float_of_int p.chunk *. 8.1));
    init_insns = (fun p -> 8.0 +. fill_int_cost (p.elems / 2));
    calibrate = false;
  }

let hash_mix =
  let emit_body a p =
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 (p.elems * 8);
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        Asm.load a 5 4 0;
        Asm.alui a Mul 5 5 0x9E3779B1;
        Asm.alui a Shr 6 5 13;
        Asm.alu a Xor 5 5 6;
        (* hashed table lookup: a recurring address within the footprint,
           giving the phase real temporal locality across slices.  The
           multiply may overflow negative; mask before Rem (OCaml's mod
           keeps the dividend's sign) so the offset stays in-region *)
        Asm.alui a And 8 5 lcg_mask;
        Asm.alu a Rem 8 8 7;
        Asm.alui a And 8 8 (lnot 7);
        Asm.alu a Add 8 8 3;
        Asm.load a 6 8 0;
        Asm.alu a Xor 5 5 6;
        Asm.alui a Mul 5 5 97;
        Asm.alui a And 6 2 1;
        let skip = Asm.new_label a in
        Asm.branch a Eq 6 15 skip;
        Asm.store a 5 8 0;
        Asm.place a skip;
        Asm.alui a Add 1 1 8;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "hash_mix";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int p.chunk *. 16.1));
    init_insns = (fun p -> 8.0 +. fill_int_cost p.elems);
    calibrate = false;
  }

let btree_search =
  let emit_body a p =
    (* keys restart from the phase seed every call: calls are identical,
       so per-slice BBVs within the phase are stable at any slice size *)
    Asm.li a 1 (p.seed land lcg_mask lor 1);
    Asm.li a 2 p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 p.elems;
    Asm.li a 8 (p.elems * 13);
    emit_count_loop a (fun () ->
        emit_lcg a 1;
        Asm.alu a Rem 4 1 8;
        Asm.mov a 5 15;
        Asm.mov a 6 7;
        let inner = Asm.here a in
        Asm.alu a Add 9 5 6;
        Asm.alui a Shr 9 9 1;
        Asm.alui a Mul 10 9 8;
        Asm.alu a Add 10 10 3;
        Asm.load a 11 10 0;
        Asm.load a 10 10 8;
        Asm.alu a Add 10 10 11;
        let go_hi = Asm.new_label a in
        let cont = Asm.new_label a in
        Asm.branch a Gt 11 4 go_hi;
        Asm.alui a Add 5 9 1;
        Asm.jump a cont;
        Asm.place a go_hi;
        Asm.mov a 6 9;
        Asm.place a cont;
        Asm.branch a Lt 5 6 inner)
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_sorted ~base:p.base ~words:p.elems ~arg:13;
    emit_set_state a p 0
  in
  let log2f n = log (float_of_int (max 2 n)) /. log 2.0 in
  {
    name = "btree_search";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns =
      (fun p ->
        8.0 +. (float_of_int p.chunk *. (7.0 +. (log2f p.elems *. 12.0))));
    init_insns = (fun p -> 8.0 +. (float_of_int p.elems *. 3.0));
    calibrate = false;
  }

let branchy =
  let emit_body a p =
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 (p.elems * 8);
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        Asm.load a 5 4 0;
        Asm.alu a Add 9 9 5;
        (* a recurring lookup keyed on the loaded value: revisits the
           footprint with a short reuse distance, like real table code *)
        Asm.alui a Mul 8 5 0x9E3779B1;
        Asm.alui a And 8 8 lcg_mask;
        Asm.alu a Rem 8 8 7;
        Asm.alui a And 8 8 (lnot 7);
        Asm.alu a Add 8 8 3;
        Asm.load a 8 8 0;
        Asm.alu a Add 9 9 8;
        for bit = 0 to 3 do
          let else_b = Asm.new_label a in
          let end_b = Asm.new_label a in
          Asm.alui a And 6 2 (1 lsl bit);
          Asm.branch a Eq 6 15 else_b;
          Asm.alui a Add 9 9 3;
          Asm.jump a end_b;
          Asm.place a else_b;
          Asm.alui a Sub 9 9 1;
          Asm.place a end_b
        done;
        Asm.alui a Add 1 1 8;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "branchy";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int p.chunk *. 28.5));
    init_insns = (fun p -> 8.0 +. fill_int_cost p.elems);
    calibrate = false;
  }

(* Binary recursion rec(n) = rec(n-1); rec(n-2) with an explicit memory
   stack in the aux area.  The recursion depth is [6 + seed mod 3]. *)
let rec_depth p = 6 + (p.seed mod 3)

let recursive_calls =
  let emit_body a p =
    let depth = rec_depth p in
    let after_rec = Asm.new_label a in
    let rec_fn = Asm.new_label a in
    Asm.jump a after_rec;
    Asm.place a rec_fn;
    (* rec: n in r0, const 1 in r1, stack ptr in r2; clobbers r4, r5 *)
    let nonleaf = Asm.new_label a in
    Asm.branch a Gt 0 1 nonleaf;
    Asm.alui a Mul 4 0 17;
    Asm.alui a Add 4 4 3;
    Asm.ret a;
    Asm.place a nonleaf;
    Asm.store a 0 2 0;
    Asm.alui a Add 2 2 8;
    Asm.alui a Sub 0 0 1;
    Asm.call a rec_fn;
    Asm.alui a Sub 2 2 8;
    Asm.load a 0 2 0;
    Asm.store a 0 2 0;
    Asm.alui a Add 2 2 8;
    Asm.alui a Sub 0 0 2;
    let skip2 = Asm.new_label a in
    Asm.branch a Le 0 15 skip2;
    Asm.call a rec_fn;
    Asm.place a skip2;
    Asm.alui a Sub 2 2 8;
    Asm.load a 0 2 0;
    Asm.ret a;
    Asm.place a after_rec;
    Asm.li a 3 p.chunk;
    Asm.li a 1 1;
    let outer = Asm.here a in
    Asm.li a 2 (aux_addr p);
    Asm.li a 0 depth;
    Asm.call a rec_fn;
    Asm.alui a Sub 3 3 1;
    Asm.branch a Gt 3 15 outer
  in
  let cost_per_call p =
    let depth = rec_depth p in
    let memo = Array.make (depth + 1) 0.0 in
    for n = 0 to depth do
      if n <= 1 then memo.(n) <- 4.0
      else begin
        let second = if n - 2 >= 1 then memo.(n - 2) +. 1.0 else 1.0 in
        memo.(n) <- 13.0 +. memo.(n - 1) +. second
      end
    done;
    memo.(depth)
  in
  {
    name = "recursive_calls";
    is_fp = false;
    emit_init = (fun a _rtl p -> emit_set_state a p 0);
    emit_body;
    body_insns =
      (fun p -> 4.0 +. (float_of_int p.chunk *. (5.0 +. cost_per_call p)));
    init_insns = (fun _ -> 3.0);
    calibrate = false;
  }

let alu_mix =
  let emit_body a p =
    Asm.li a 2 p.chunk;
    Asm.li a 4 (p.seed land lcg_mask lor 1);
    emit_count_loop a (fun () ->
        Asm.alui a Mul 4 4 29;
        Asm.alui a Add 4 4 7;
        Asm.alui a Xor 5 4 12345;
        Asm.alui a Shr 6 5 3;
        Asm.alu a Add 4 4 6;
        Asm.alui a Mul 5 5 13;
        Asm.alu a Xor 4 4 5;
        Asm.alui a And 4 4 lcg_mask)
  in
  {
    name = "alu_mix";
    is_fp = false;
    emit_init = (fun a _rtl p -> emit_set_state a p 0);
    emit_body;
    body_insns = (fun p -> 2.0 +. (float_of_int p.chunk *. 10.0));
    init_insns = (fun _ -> 3.0);
    calibrate = false;
  }

let matrix_traverse =
  let dim_of p = max 8 (int_of_float (sqrt (float_of_int p.elems))) in
  let emit_body a p =
    let dim = dim_of p in
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 dim;
    emit_count_loop a (fun () ->
        Asm.alui a Mul 4 1 (dim * 8);
        Asm.alu a Add 4 4 3;
        Asm.mov a 5 15;
        Asm.mov a 6 15;
        let inner = Asm.here a in
        Asm.load a 8 4 0;
        Asm.alu a Add 6 6 8;
        Asm.alui a Add 4 4 8;
        Asm.alui a Add 5 5 1;
        Asm.branch a Lt 5 7 inner;
        Asm.alui a Sub 4 4 (dim * 8);
        Asm.store a 6 4 0;
        Asm.alui a Add 1 1 1;
        let no_row = Asm.new_label a in
        Asm.branch a Lt 1 7 no_row;
        Asm.mov a 1 15;
        Asm.place a no_row);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    let dim = dim_of p in
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base
      ~words:(min (dim * dim) fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "matrix_traverse";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns =
      (fun p ->
        let dim = float_of_int (dim_of p) in
        8.0 +. (float_of_int p.chunk *. (11.0 +. (dim *. 5.0))));
    init_insns = (fun p -> 8.0 +. fill_int_cost (dim_of p * dim_of p));
    calibrate = false;
  }

(* ------------------------------------------------------------------ *)
(* Floating-point kernels *)

let daxpy =
  let emit_body a p =
    let half = p.elems / 2 * 8 in
    let iters = max 1 (p.chunk / 2) in
    emit_state_prologue a p ~iters;
    Asm.li a 3 p.base;
    Asm.li a 4 (p.base + half);
    Asm.li a 7 half;
    Asm.fmovi a 0 1.000001;
    emit_count_loop a (fun () ->
        Asm.alu a Add 5 3 1;
        Asm.alu a Add 6 4 1;
        for u = 0 to 1 do
          Asm.fload a 1 5 (u * 8);
          Asm.fload a 2 6 (u * 8);
          Asm.falu a Fmul 3 1 0;
          Asm.falu a Fadd 2 2 3;
          Asm.fstore a 2 6 (u * 8)
        done;
        Asm.alui a Add 1 1 16;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_float ~base:p.base
      ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "daxpy";
    is_fp = true;
    emit_init;
    emit_body;
    body_insns = (fun p -> 9.0 +. (float_of_int (max 1 (p.chunk / 2)) *. 17.1));
    init_insns = (fun p -> 8.0 +. fill_float_cost p.elems);
    calibrate = false;
  }

let stencil3 =
  let emit_body a p =
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 ((p.elems - 1) * 8);
    Asm.fmovi a 0 (1.0 /. 3.0);
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        Asm.fload a 1 4 (-8);
        Asm.fload a 2 4 0;
        Asm.fload a 3 4 8;
        Asm.falu a Fadd 1 1 2;
        Asm.falu a Fadd 1 1 3;
        Asm.falu a Fmul 1 1 0;
        Asm.fstore a 1 4 0;
        Asm.alui a Add 1 1 8;
        emit_wrap_to a ~cur:1 ~limit:7 ~reset:8);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_float ~base:p.base
      ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 8
  in
  {
    name = "stencil3";
    is_fp = true;
    emit_init;
    emit_body;
    body_insns = (fun p -> 9.0 +. (float_of_int p.chunk *. 13.1));
    init_insns = (fun p -> 8.0 +. fill_float_cost p.elems);
    calibrate = false;
  }

let fp_reduce =
  let emit_body a p =
    let half = p.elems / 2 * 8 in
    let iters = max 1 (p.chunk / 2) in
    emit_state_prologue a p ~iters;
    Asm.li a 3 p.base;
    Asm.li a 4 (p.base + half);
    Asm.li a 7 half;
    emit_count_loop a (fun () ->
        Asm.alu a Add 5 3 1;
        Asm.alu a Add 6 4 1;
        for u = 0 to 1 do
          Asm.fload a 1 5 (u * 8);
          Asm.fload a 2 6 (u * 8);
          Asm.falu a Fmul 3 1 2;
          Asm.falu a Fadd 4 4 3
        done;
        Asm.alui a Add 1 1 16;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_float ~base:p.base
      ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "fp_reduce";
    is_fp = true;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int (max 1 (p.chunk / 2)) *. 15.1));
    init_insns = (fun p -> 8.0 +. fill_float_cost p.elems);
    calibrate = false;
  }

let fp_poly =
  let emit_body a p =
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 (p.elems * 8);
    Asm.fmovi a 1 0.9231;
    Asm.fmovi a 2 (-0.3171);
    Asm.fmovi a 3 0.0871;
    Asm.fmovi a 4 1.1113;
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        Asm.fload a 0 4 0;
        Asm.falu a Fadd 5 0 1;
        for step = 0 to 5 do
          Asm.falu a Fmul 5 5 0;
          Asm.falu a Fadd 5 5 (1 + (step mod 4))
        done;
        Asm.alui a Add 1 1 8;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_float ~base:p.base
      ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "fp_poly";
    is_fp = true;
    emit_init;
    emit_body;
    body_insns = (fun p -> 12.0 +. (float_of_int p.chunk *. 19.1));
    init_insns = (fun p -> 8.0 +. fill_float_cost p.elems);
    calibrate = false;
  }

let stencil2d =
  let dim_of p = max 8 (int_of_float (sqrt (float_of_int p.elems))) in
  let emit_body a p =
    let dim = dim_of p in
    let row_bytes = dim * 8 in
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 7 (((dim * dim) - dim - 1) * 8);
    Asm.fmovi a 0 0.2;
    emit_count_loop a (fun () ->
        Asm.alu a Add 4 3 1;
        Asm.fload a 1 4 (-row_bytes);
        Asm.fload a 2 4 (-8);
        Asm.fload a 3 4 0;
        Asm.fload a 4 4 8;
        Asm.fload a 5 4 row_bytes;
        Asm.falu a Fadd 1 1 2;
        Asm.falu a Fadd 1 1 3;
        Asm.falu a Fadd 1 1 4;
        Asm.falu a Fadd 1 1 5;
        Asm.falu a Fmul 1 1 0;
        Asm.fstore a 1 4 0;
        Asm.alui a Add 1 1 8;
        emit_wrap_to a ~cur:1 ~limit:7 ~reset:((dim + 1) * 8));
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    let dim = dim_of p in
    emit_call_fill a rtl.Rtl.fill_float ~base:p.base
      ~words:(min (dim * dim) fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p ((dim + 1) * 8)
  in
  {
    name = "stencil2d";
    is_fp = true;
    emit_init;
    emit_body;
    body_insns = (fun p -> 10.0 +. (float_of_int p.chunk *. 18.1));
    init_insns = (fun p -> 8.0 +. fill_float_cost (dim_of p * dim_of p));
    calibrate = false;
  }


(* ------------------------------------------------------------------ *)
(* Additional kernels (used by the extended suite) *)

(* Selection sort of a fixed window copied out of the data region:
   exactly (K^2)/2 comparisons regardless of values, so the cost model
   is exact and every call is identical. *)
let sort_window = 24

let selection_sort =
  let k = sort_window in
  let emit_body a p =
    let scratch = aux_addr p + 128 in
    (* copy K words from the region start into scratch *)
    Asm.li a 0 p.base;
    Asm.li a 1 scratch;
    Asm.li a 2 k;
    emit_count_loop a (fun () ->
        Asm.load a 3 0 0;
        Asm.store a 3 1 0;
        Asm.alui a Add 0 0 8;
        Asm.alui a Add 1 1 8);
    (* selection sort scratch[0..k-1]:
       r0 = i addr, r1 = j addr, r2 = min addr, r3..r5 scratch *)
    Asm.li a 0 scratch;
    Asm.li a 7 (scratch + ((k - 1) * 8));
    let outer = Asm.here a in
    Asm.mov a 2 0;
    Asm.alui a Add 1 0 8;
    let inner = Asm.here a in
    Asm.load a 3 1 0;
    Asm.load a 4 2 0;
    let no_new_min = Asm.new_label a in
    Asm.branch a Ge 3 4 no_new_min;
    Asm.mov a 2 1;
    Asm.place a no_new_min;
    Asm.alui a Add 1 1 8;
    Asm.li a 5 (scratch + (k * 8));
    Asm.branch a Lt 1 5 inner;
    (* swap a[i] <-> a[min] *)
    Asm.load a 3 0 0;
    Asm.load a 4 2 0;
    Asm.store a 4 0 0;
    Asm.store a 3 2 0;
    Asm.alui a Add 0 0 8;
    Asm.branch a Lt 0 7 outer
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "selection_sort";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns =
      (fun _ ->
        let kf = float_of_int k in
        (* copy: 4 + 6K; outer: K * ~10; inner: K(K-1)/2 * ~7 *)
        4.0 +. (6.0 *. kf) +. (10.0 *. kf)
        +. (kf *. (kf -. 1.0) /. 2.0 *. 7.0));
    init_insns = (fun p -> 8.0 +. fill_int_cost p.elems);
    calibrate = true;
  }

(* Heapsort of a fixed window: build a max-heap with sift-downs, then
   pop repeatedly — priority-queue churn like discrete-event simulators.
   The comparison count is data-dependent, so the kernel is calibrated
   empirically at build time. *)
let heap_window = 32

let priority_queue =
  let k = heap_window in
  let emit_body a p =
    let heap = aux_addr p + 128 in
    (* copy k words from the region start into the heap area *)
    Asm.li a 0 p.base;
    Asm.li a 1 heap;
    Asm.li a 2 k;
    emit_count_loop a (fun () ->
        Asm.load a 3 0 0;
        Asm.store a 3 1 0;
        Asm.alui a Add 0 0 8;
        Asm.alui a Add 1 1 8);
    (* sift_down(start=r0 index, end=r1 index); indices are word offsets.
       registers: r0 root, r1 end, r2 child, r3/r4 values, r5/r6 addrs *)
    let sift = Asm.new_label a in
    let after_sift = Asm.new_label a in
    Asm.jump a after_sift;
    Asm.place a sift;
    let sift_loop = Asm.here a in
    let sift_done = Asm.new_label a in
    (* child = 2*root + 1 *)
    Asm.alui a Mul 2 0 2;
    Asm.alui a Add 2 2 1;
    Asm.branch a Gt 2 1 sift_done;
    (* pick the larger child *)
    Asm.alui a Mul 5 2 8;
    Asm.alui a Add 5 5 heap;
    Asm.load a 3 5 0;
    let no_right = Asm.new_label a in
    Asm.branch a Ge 2 1 no_right;
    Asm.load a 4 5 8;
    Asm.branch a Ge 3 4 no_right;
    Asm.alui a Add 2 2 1;
    Asm.alui a Add 5 5 8;
    Asm.mov a 3 4;
    Asm.place a no_right;
    (* compare root value with child value *)
    Asm.alui a Mul 6 0 8;
    Asm.alui a Add 6 6 heap;
    Asm.load a 4 6 0;
    Asm.branch a Ge 4 3 sift_done;
    (* swap and descend *)
    Asm.store a 3 6 0;
    Asm.store a 4 5 0;
    Asm.mov a 0 2;
    Asm.jump a sift_loop;
    Asm.place a sift_done;
    Asm.ret a;
    Asm.place a after_sift;
    (* heapify: for i = k/2 - 1 downto 0: sift(i, k-1) *)
    Asm.li a 8 ((k / 2) - 1);
    let heapify = Asm.here a in
    Asm.mov a 0 8;
    Asm.li a 1 (k - 1);
    Asm.call a sift;
    Asm.alui a Sub 8 8 1;
    Asm.branch a Ge 8 15 heapify;
    (* drain: for e = k-1 downto 1: swap a[0], a[e]; sift(0, e-1) *)
    Asm.li a 8 (k - 1);
    let drain = Asm.here a in
    Asm.alui a Mul 5 8 8;
    Asm.alui a Add 5 5 heap;
    Asm.li a 6 heap;
    Asm.load a 3 5 0;
    Asm.load a 4 6 0;
    Asm.store a 4 5 0;
    Asm.store a 3 6 0;
    Asm.mov a 0 15;
    Asm.alui a Sub 1 8 1;
    Asm.call a sift;
    Asm.alui a Sub 8 8 1;
    Asm.branch a Gt 8 15 drain
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "priority_queue";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns =
      (fun _ ->
        let kf = float_of_int k in
        (* rough: copy 6K + ~1.5 K log2 K sift steps x ~14 *)
        4.0 +. (6.0 *. kf)
        +. (1.5 *. kf *. (log kf /. log 2.0) *. 14.0));
    init_insns = (fun p -> 8.0 +. fill_int_cost p.elems);
    calibrate = true;
  }

(* CSR-flavoured sparse gather: integer column indices drive float
   gathers — the access pattern of sparse linear algebra (parest). *)
let sparse_matvec =
  let emit_body a p =
    let half = p.elems / 2 * 8 in
    let xmask =
      (* power-of-two bound below elems/2 for masked column indices *)
      let rec pow2 n = if n * 2 > p.elems / 2 then n else pow2 (n * 2) in
      pow2 16 - 1
    in
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 p.base;
    Asm.li a 4 (p.base + half);
    Asm.li a 7 half;
    emit_count_loop a (fun () ->
        Asm.alu a Add 5 3 1;
        Asm.load a 6 5 0;
        (* column index *)
        Asm.alui a And 6 6 xmask;
        Asm.alui a Mul 6 6 8;
        Asm.alu a Add 6 6 4;
        Asm.fload a 1 5 0;
        (* value (float view of the same stream) *)
        Asm.fload a 2 6 0;
        (* x[col] *)
        Asm.falu a Fmul 3 1 2;
        Asm.falu a Fadd 4 4 3;
        Asm.alui a Add 1 1 8;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    let half = p.elems / 2 in
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base ~words:(min half fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_call_fill a rtl.Rtl.fill_float ~base:(p.base + (half * 8))
      ~words:(min half fill_cap)
      ~arg:(p.seed land lcg_mask lor 3);
    emit_set_state a p 0
  in
  {
    name = "sparse_matvec";
    is_fp = true;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int p.chunk *. 13.1));
    init_insns =
      (fun p ->
        10.0 +. fill_int_cost (p.elems / 2) +. fill_float_cost (p.elems / 2));
    calibrate = false;
  }

(* Streaming histogram: read-modify-write into a small table indexed by
   the data (imagick-style): streaming reads plus correlated scattered
   updates. *)
let histogram_buckets = 1024

let histogram =
  let emit_body a p =
    let table = p.base in
    let stream = p.base + (histogram_buckets * 8) in
    let stream_words = max 256 (p.elems - histogram_buckets) in
    emit_state_prologue a p ~iters:p.chunk;
    Asm.li a 3 stream;
    Asm.li a 4 table;
    Asm.li a 7 (stream_words * 8);
    emit_count_loop a (fun () ->
        Asm.alu a Add 5 3 1;
        Asm.load a 6 5 0;
        Asm.alui a Shr 6 6 4;
        Asm.alui a And 6 6 (histogram_buckets - 1);
        Asm.alui a Mul 6 6 8;
        Asm.alu a Add 6 6 4;
        Asm.load a 8 6 0;
        Asm.alui a Add 8 8 1;
        Asm.store a 8 6 0;
        Asm.alui a Add 1 1 8;
        emit_wrap a ~cur:1 ~limit:7);
    emit_store_state a p
  in
  let emit_init a (rtl : Rtl.t) p =
    emit_call_fill a rtl.Rtl.fill_int ~base:p.base ~words:(min p.elems fill_cap)
      ~arg:(p.seed land lcg_mask lor 1);
    emit_set_state a p 0
  in
  {
    name = "histogram";
    is_fp = false;
    emit_init;
    emit_body;
    body_insns = (fun p -> 8.0 +. (float_of_int p.chunk *. 12.1));
    init_insns = (fun p -> 8.0 +. fill_int_cost p.elems);
    calibrate = false;
  }

let all =
  [
    stream_sum;
    stride_walk;
    pointer_chase;
    random_access;
    store_stream;
    memcpy_movs;
    hash_mix;
    btree_search;
    branchy;
    recursive_calls;
    alu_mix;
    matrix_traverse;
    daxpy;
    stencil3;
    fp_reduce;
    fp_poly;
    stencil2d;
    selection_sort;
    priority_queue;
    sparse_matvec;
    histogram;
  ]

let by_name name = List.find (fun k -> k.name = name) all
