(** Phase-weight calibration.

    Table II of the paper reports, per benchmark, both the total number
    of simulation points and how many of them cover 90%% of execution.
    The ratio of the two pins down how skewed the phase-weight
    distribution must be.  This module fits a floored geometric
    distribution to those two targets, so each synthetic benchmark's
    planted phases reproduce its row of Table II. *)

val fit : n:int -> n90:int -> float array
(** [fit ~n ~n90] returns [n] weights, sorted descending, summing to 1,
    such that the minimal number of highest-weight entries whose sum
    reaches 0.9 is exactly [n90] (or as close as the discrete family
    allows).  Every weight is at least {!min_weight} up to the final
    renormalisation (within a percent of the floor).
    @raise Invalid_argument unless [1 <= n90 <= n]. *)

val min_weight : float
(** Floor guaranteeing every phase occupies at least a few slices. *)

val coverage_count : float array -> float -> int
(** [coverage_count weights c]: minimal number of largest weights whose
    sum reaches [c] (weights need not be sorted). *)

val explicit : float list -> float array
(** Normalise an explicit weight list (used for benchmarks the paper
    singles out, like 503.bwaves_r's 60%%-dominant phase).
    @raise Invalid_argument if empty or non-positive. *)
