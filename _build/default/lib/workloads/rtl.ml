open Sp_isa
open Sp_vm

type t = {
  fill_int : Asm.label;
  fill_float : Asm.label;
  fill_sorted : Asm.label;
  ring : Asm.label;
}

let lcg_mul = 1103515245
let lcg_add = 12345
let lcg_mask = 0x3FFFFFFF

let insns_per_fill_group = 12.0
let insns_per_ring_entry = 11.0

let emit_lcg a r =
  Asm.alui a Mul r r lcg_mul;
  Asm.alui a Add r r lcg_add;
  Asm.alui a And r r lcg_mask

let emit a =
  let skip = Asm.new_label a in
  Asm.jump a skip;
  (* fill_int: r0 = base, r1 = groups of 4 words, r2 = seed *)
  let fill_int = Asm.here a in
  let top = Asm.here a in
  emit_lcg a 2;
  Asm.store a 2 0 0;
  Asm.alui a Xor 3 2 0x55;
  Asm.store a 3 0 8;
  Asm.alui a Add 3 2 0x1234;
  Asm.store a 3 0 16;
  Asm.alui a Xor 3 2 0x0F0F;
  Asm.store a 3 0 24;
  Asm.alui a Add 0 0 32;
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.ret a;
  (* fill_float: r0 = base, r1 = groups, r2 = seed *)
  let fill_float = Asm.here a in
  Asm.fmovi a 1 (1.0 /. float_of_int (lcg_mask + 1));
  let top = Asm.here a in
  emit_lcg a 2;
  Asm.instr a (Isa.Cvtif (0, 2));
  Asm.falu a Fmul 0 0 1;
  Asm.fstore a 0 0 0;
  Asm.fstore a 0 0 8;
  Asm.falu a Fadd 0 0 1;
  Asm.fstore a 0 0 16;
  Asm.fstore a 0 0 24;
  Asm.alui a Add 0 0 32;
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.ret a;
  (* fill_sorted: r0 = base, r1 = groups, r2 = step *)
  let fill_sorted = Asm.here a in
  Asm.mov a 3 15;
  let top = Asm.here a in
  Asm.store a 3 0 0;
  Asm.alu a Add 3 3 2;
  Asm.store a 3 0 8;
  Asm.alu a Add 3 3 2;
  Asm.store a 3 0 16;
  Asm.alu a Add 3 3 2;
  Asm.store a 3 0 24;
  Asm.alu a Add 3 3 2;
  Asm.alui a Add 0 0 32;
  Asm.alui a Sub 1 1 1;
  Asm.branch a Gt 1 15 top;
  Asm.ret a;
  (* ring: r0 = base, r1 = entries (a power of two), r2 = entry bytes,
     r3 = LCG multiplier (=1 mod 4), r4 = LCG increment (odd);
     entry i <- address of entry (a*i + c) mod entries.  A full-period
     LCG permutation scatters successors pseudo-randomly — a fixed-hop
     ring would degenerate into strided streams the caches love. *)
  let ring = Asm.here a in
  Asm.alui a Sub 5 1 1;
  Asm.mov a 6 15;
  let top = Asm.here a in
  Asm.alu a Mul 7 6 3;
  Asm.alu a Add 7 7 4;
  Asm.alu a And 7 7 5;
  Asm.alu a Mul 8 7 2;
  Asm.alu a Add 8 8 0;
  Asm.alu a Mul 9 6 2;
  Asm.alu a Add 9 9 0;
  Asm.store a 8 9 0;
  Asm.alui a Add 6 6 1;
  Asm.branch a Lt 6 1 top;
  Asm.ret a;
  Asm.place a skip;
  { fill_int; fill_float; fill_sorted; ring }
