let min_weight = 0.0015

let coverage_count weights c =
  let sorted = Array.copy weights in
  Array.sort (fun a b -> compare b a) sorted;
  let rec go i acc =
    if i >= Array.length sorted then i
    else if acc >= c then i
    else go (i + 1) (acc +. sorted.(i))
  in
  go 0 0.0

(* Floored geometric weights with ratio r, normalised and sorted
   descending. *)
let geometric n r =
  let raw = Array.init n (fun i -> Float.max (r ** float_of_int i) 1e-9) in
  let w = Sp_util.Stats.normalize raw in
  let w = Array.map (Float.max min_weight) w in
  let w = Sp_util.Stats.normalize w in
  Array.sort (fun a b -> compare b a) w;
  w

let fit ~n ~n90 =
  if n90 < 1 || n90 > n then invalid_arg "Weights.fit: need 1 <= n90 <= n";
  if n = 1 then [| 1.0 |]
  else begin
    (* coverage_count(geometric n r) is non-decreasing in r: flatter
       distributions need more entries to reach 0.9.  Binary-search the
       boundary where the count first exceeds n90, then take the flattest
       ratio still achieving n90 (flatter = healthier tail weights). *)
    let count r = coverage_count (geometric n r) 0.9 in
    let lo = ref 0.01 and hi = ref 0.9999 in
    if count !lo > n90 then geometric n !lo
    else if count !hi <= n90 then geometric n !hi
    else begin
      for _ = 1 to 60 do
        let mid = (!lo +. !hi) /. 2.0 in
        if count mid <= n90 then lo := mid else hi := mid
      done;
      geometric n !lo
    end
  end

let explicit ws =
  if ws = [] then invalid_arg "Weights.explicit: empty";
  List.iter (fun w -> if w <= 0.0 then invalid_arg "Weights.explicit: w <= 0") ws;
  let w = Sp_util.Stats.normalize (Array.of_list ws) in
  Array.sort (fun a b -> compare b a) w;
  w
