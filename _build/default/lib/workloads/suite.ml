open Benchspec

(* Per-benchmark whole-run length, in slices per planted phase.  The
   paper reports a suite-average ~650x instruction reduction from Whole
   to Regional runs (i.e. ~650 executed slices per simulation point);
   individual benchmarks spread around that, derived here from the
   benchmark name so the spread is stable. *)
let hint name =
  let h = Sp_util.Rng.hash_string name in
  450.0 +. float_of_int (h mod 401)

let seed_of name = Sp_util.Rng.hash_string name land 0xFFFFF

let spec ?override name suite_class planted_phases planted_n90 palette
    footprints =
  {
    name;
    suite_class;
    planted_phases;
    planted_n90;
    reduction_hint = hint name;
    palette;
    footprints;
    weight_override = override;
    seed = seed_of name;
  }

(* Kernel palettes modelled on each benchmark's documented character. *)

let perlbench = Kernel.[ hash_mix; btree_search; branchy; alu_mix; matrix_traverse ]
let gcc = Kernel.[ matrix_traverse; btree_search; branchy; hash_mix; alu_mix; stream_sum ]
let mcf = Kernel.[ pointer_chase; random_access; stream_sum; stride_walk ]
let omnetpp = Kernel.[ btree_search; pointer_chase; hash_mix ]
let x264 = Kernel.[ stream_sum; stride_walk; alu_mix; store_stream; matrix_traverse ]
let deepsjeng = Kernel.[ btree_search; branchy; recursive_calls; alu_mix; hash_mix ]
let leela = Kernel.[ btree_search; recursive_calls; branchy; alu_mix ]
let exchange2 = Kernel.[ recursive_calls; alu_mix; branchy ]
let xz = Kernel.[ hash_mix; random_access; memcpy_movs; stream_sum ]
let xalancbmk = Kernel.[ btree_search; hash_mix; stream_sum; branchy; matrix_traverse ]
let bwaves = Kernel.[ stencil2d; daxpy; fp_reduce ]
let cactu = Kernel.[ stencil3; fp_poly; stencil2d; daxpy ]
let namd = Kernel.[ fp_reduce; fp_poly; daxpy ]
let parest = Kernel.[ fp_reduce; daxpy; stencil3; matrix_traverse ]
let povray = Kernel.[ fp_poly; branchy; alu_mix; fp_reduce ]
let lbm = Kernel.[ stencil2d; daxpy; store_stream ]
let blender = Kernel.[ fp_poly; stream_sum; branchy; stencil3 ]
let imagick = Kernel.[ stencil3; stream_sum; alu_mix; fp_poly ]
let nab = Kernel.[ fp_reduce; fp_poly; daxpy; stencil3 ]
let fotonik = Kernel.[ stencil2d; daxpy; stencil3 ]

(* Footprint profiles (cycled over phases).  Every profile includes some
   L3-resident working set: even compute-bound benchmarks keep a trickle
   of recurring last-level traffic (code, periodic tables), and without
   it a whole run's L3 statistics degenerate to compulsory misses. *)
let compute = [ Small; Medium; Small; Large; Small ]
let mixed = [ Medium; Small; Large; Small; Medium; Large ]
let memory = [ Xlarge; Medium; Small; Large; Medium; Xlarge ]
let fp_grid = [ Large; Medium; Small; Large; Medium ]

(* 503.bwaves_r: the paper singles it out — one phase is ~60% of
   execution and the top three reach ~80%, with a long insignificant
   tail; 7 points cover the 90th percentile. *)
let bwaves_weights =
  Array.of_list
    ([ 0.60; 0.12; 0.08; 0.028; 0.027; 0.026; 0.025 ]
    @ List.init 19 (fun _ -> 0.094 /. 19.0))

let all =
  [
    spec "500.perlbench_r" Int_rate 18 11 perlbench compute;
    spec "502.gcc_r" Int_rate 27 15 gcc mixed;
    spec "505.mcf_r" Int_rate 18 9 mcf memory;
    spec "520.omnetpp_r" Int_rate 4 3 omnetpp [ Large; Medium; Large ];
    spec "525.x264_r" Int_rate 23 15 x264 mixed;
    spec "531.deepsjeng_r" Int_rate 20 15 deepsjeng compute;
    spec "541.leela_r" Int_rate 19 12 leela compute;
    spec "548.exchange2_r" Int_rate 21 16 exchange2 [ Small; Small ];
    spec "557.xz_r" Int_rate 13 7 xz memory;
    spec "600.perlbench_s" Int_speed 21 13 perlbench compute;
    spec "602.gcc_s" Int_speed 15 5 gcc mixed;
    spec "605.mcf_s" Int_speed 28 14 mcf memory;
    spec "620.omnetpp_s" Int_speed 3 2 omnetpp [ Large; Medium; Large ];
    spec "623.xalancbmk_s" Int_speed 25 19 xalancbmk mixed;
    spec "625.x264_s" Int_speed 19 13 x264 mixed;
    spec "631.deepsjeng_s" Int_speed 12 10 deepsjeng compute;
    spec "641.leela_s" Int_speed 20 13 leela compute;
    spec "648.exchange2_s" Int_speed 19 15 exchange2 [ Small; Small ];
    spec "657.xz_s" Int_speed 18 10 xz memory;
    spec ~override:bwaves_weights "503.bwaves_r" Fp_rate 26 7 bwaves fp_grid;
    spec "507.cactuBSSN_r" Fp_rate 25 4 cactu fp_grid;
    spec "508.namd_r" Fp_rate 26 17 namd compute;
    spec "510.parest_r" Fp_rate 23 14 parest mixed;
    spec "511.povray_r" Fp_rate 23 19 povray compute;
    spec "519.lbm_r" Fp_rate 22 8 lbm memory;
    spec "526.blender_r" Fp_rate 22 14 blender mixed;
    spec "538.imagick_r" Fp_rate 14 7 imagick mixed;
    spec "544.nab_r" Fp_rate 22 10 nab compute;
    spec "549.fotonik3d_r" Fp_rate 27 11 fotonik fp_grid;
  ]

let names = List.map (fun s -> s.name) all

let find_in pool name =
  let matches s =
    s.name = name
    ||
    match String.index_opt s.name '.' with
    | Some i -> String.sub s.name (i + 1) (String.length s.name - i - 1) = name
    | None -> false
  in
  List.find matches pool

let table2_reference =
  List.map (fun s -> (s.name, s.planted_phases, s.planted_n90)) all

(* ------------------------------------------------------------------ *)
(* The paper's future work: the remaining 14 CPU2017 workloads (mostly
   FP speed), which could not finish Whole-Pinball logging on the
   authors' machines.  Our logger has no such constraint.  Phase counts
   mirror each benchmark's rate/speed counterpart where one exists. *)

let wrf = Kernel.[ stencil3; stencil2d; fp_poly; sparse_matvec ]
let cam4 = Kernel.[ stencil2d; fp_reduce; histogram; daxpy ]
let pop2 = Kernel.[ stencil2d; daxpy; fp_reduce; sparse_matvec ]
let roms = Kernel.[ stencil2d; sparse_matvec; daxpy ]
let xalanc_r = Kernel.[ btree_search; hash_mix; stream_sum; selection_sort; matrix_traverse ]

let extended =
  [
    spec "523.xalancbmk_r" Int_rate 24 18 xalanc_r mixed;
    spec "521.wrf_r" Fp_rate 30 14 wrf fp_grid;
    spec "527.cam4_r" Fp_rate 26 12 cam4 fp_grid;
    spec "554.roms_r" Fp_rate 25 9 roms memory;
    spec "603.bwaves_s" Fp_speed 26 7 bwaves fp_grid;
    spec "607.cactuBSSN_s" Fp_speed 25 4 cactu fp_grid;
    spec "619.lbm_s" Fp_speed 22 8 lbm memory;
    spec "621.wrf_s" Fp_speed 30 14 wrf fp_grid;
    spec "627.cam4_s" Fp_speed 26 12 cam4 fp_grid;
    spec "628.pop2_s" Fp_speed 24 10 pop2 mixed;
    spec "638.imagick_s" Fp_speed 14 7 imagick mixed;
    spec "644.nab_s" Fp_speed 22 10 nab compute;
    spec "649.fotonik3d_s" Fp_speed 27 11 fotonik fp_grid;
    spec "654.roms_s" Fp_speed 25 9 roms memory;
  ]

let full = all @ extended

let find name = try find_in all name with Not_found -> find_in extended name

let int_benchmarks =
  List.filter (fun s -> s.suite_class = Int_rate || s.suite_class = Int_speed) all

let fp_benchmarks =
  List.filter (fun s -> s.suite_class = Fp_rate || s.suite_class = Fp_speed) all
