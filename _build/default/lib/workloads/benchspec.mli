open Sp_vm

(** Benchmark descriptors and the program builder.

    A spec captures everything that defines one synthetic SPEC CPU2017
    workload: its Table II targets (planted phase count and
    90th-percentile count), its kernel palette and footprint profile,
    and its seed.  {!build} elaborates the spec into planted phases and
    assembles the complete executable program (initialisation, the
    interleaved phase driver, and one function per phase). *)

type suite_class = Int_rate | Int_speed | Fp_rate | Fp_speed

val suite_class_name : suite_class -> string

(** Data-footprint classes, sized against the capacity-scaled
    simulation hierarchy ({!Sp_cache.Config.allcache_sim}: L1 1 kB,
    L2 64 kB, L3 512 kB): [Small] fits L1, [Medium] exceeds L1 but fits
    L2, [Large] exceeds L2 but fits L3, [Xlarge] exceeds L3, so its
    whole-run L3 hits become regional-run cold misses. *)
type footprint = Small | Medium | Large | Xlarge

val footprint_bytes : footprint -> int

type t = {
  name : string;            (** e.g. ["623.xalancbmk_s"] *)
  suite_class : suite_class;
  planted_phases : int;     (** Table II, column 2 *)
  planted_n90 : int;        (** Table II, column 3 *)
  reduction_hint : float;
      (** whole-run length in slices per planted phase; the paper's suite
          averages ~650 executed slices per simulation point *)
  palette : Kernel.t list;  (** kernels cycled across phases *)
  footprints : footprint list; (** footprint classes cycled across phases *)
  weight_override : float array option;
      (** explicit phase weights (e.g. bwaves' 60%%-dominant phase) *)
  seed : int;
}

type phase = {
  index : int;
  kernel : Kernel.t;
  params : Kernel.params;
  weight : float;  (** planted weight (share of driver slices) *)
  call_cost : float;
      (** dynamic instructions per driver call (analytic, or measured
          for kernels whose inner loops are data-dependent) *)
}

type built = {
  spec : t;
  program : Program.t;
  phases : phase array;
  schedule : Schedule.segment list;
  total_slices : int;    (** driver slices (excludes initialisation) *)
  slice_insns : int;     (** simulated instructions per slice *)
  expected_insns : float; (** analytic estimate of the dynamic count *)
  phase_of_pc : int array;
      (** planted phase index per pc; -1 for driver/init/library code.
          Used by validation to attribute clusters back to phases *)
  roi_start_pc : int;
      (** pc of the first driver instruction: the region-of-interest
          boundary separating initialisation from the workload proper *)
}

val default_slice_insns : int
(** The paper's 30 M-instruction slice at the project scale. *)

val build : ?slice_insns:int -> ?slices_scale:float -> t -> built
(** Elaborate and assemble.  [slices_scale] scales the whole-run length
    (used by tests and fast mode to shrink executions while keeping the
    phase structure). *)

val data_base : int
(** Byte address where the first phase's data region starts. *)
