lib/workloads/kernel.mli: Asm Rtl Sp_vm
