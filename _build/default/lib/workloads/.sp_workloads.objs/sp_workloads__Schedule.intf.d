lib/workloads/schedule.mli:
