lib/workloads/rtl.ml: Asm Isa Sp_isa Sp_vm
