lib/workloads/schedule.ml: Array Float List Sp_util
