lib/workloads/kernel.ml: Array Asm List Rtl Sp_vm
