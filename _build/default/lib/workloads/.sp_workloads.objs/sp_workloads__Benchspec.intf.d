lib/workloads/benchspec.mli: Kernel Program Schedule Sp_vm
