lib/workloads/suite.mli: Benchspec
