lib/workloads/suite.ml: Array Benchspec Kernel List Sp_util String
