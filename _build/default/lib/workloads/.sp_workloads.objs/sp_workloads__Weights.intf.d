lib/workloads/weights.mli:
