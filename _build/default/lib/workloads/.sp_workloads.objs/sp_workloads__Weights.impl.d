lib/workloads/weights.ml: Array Float List Sp_util
