lib/workloads/benchspec.ml: Array Asm Float Interp Kernel List Program Rtl Schedule Sp_util Sp_vm Weights
