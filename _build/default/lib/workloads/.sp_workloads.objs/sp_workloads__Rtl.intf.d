lib/workloads/rtl.mli: Asm Sp_vm
