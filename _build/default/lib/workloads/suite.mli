(** The synthetic SPEC CPU2017 suite: the 29 workloads of the paper's
    Table II, each calibrated to its reported simulation-point counts.

    The paper profiles 19 INT workloads (rate and speed) and 10 FP rate
    workloads; the remaining CPU2017 FP benchmarks could not finish
    Whole-Pinball logging on the authors' machines and are likewise out
    of scope here. *)

val all : Benchspec.t list
(** All 29 specs, in Table II order. *)

val names : string list

val find : string -> Benchspec.t
(** Lookup by full name ("505.mcf_r") or short name ("mcf_r").
    @raise Not_found for unknown names. *)

val table2_reference : (string * int * int) list
(** The paper's Table II rows: (benchmark, simulation points,
    90th-percentile simulation points).  Used by EXPERIMENTS.md
    comparisons and tests. *)

val int_benchmarks : Benchspec.t list
val fp_benchmarks : Benchspec.t list

val extended : Benchspec.t list
(** The 14 CPU2017 workloads the paper could not finish logging
    ("we present a subset ... and keep the rest for future work"):
    523.xalancbmk_r, 521.wrf_r, 527.cam4_r, 554.roms_r and the ten
    SPECspeed FP benchmarks.  Their phase counts have no Table II
    reference; they are set from their rate/speed counterparts or from
    the domain character the paper describes. *)

val full : Benchspec.t list
(** [all @ extended]: all 43 CPU2017 workloads. *)
