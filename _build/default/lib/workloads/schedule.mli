(** Phase schedules: how a benchmark's planted phases are laid out over
    its execution.

    SimPoint exploits the fact that real programs revisit phases; a
    schedule therefore splits each phase's slice budget into several
    contiguous segments and interleaves segments of different phases
    deterministically (per-benchmark seed). *)

type segment = { phase : int; slices : int }

val make :
  seed:int -> total_slices:int -> weights:float array -> segment list
(** [make ~seed ~total_slices ~weights] allots
    [round (weights.(i) *. total_slices)] slices to phase [i] (at least
    one), splits each allotment into up to {!max_segments} segments and
    shuffles the segment order.
    @raise Invalid_argument if [weights] is empty or [total_slices < 1]. *)

val max_segments : int
(** Cap on segments per phase. *)

val total : segment list -> int
(** Total slices across segments. *)

val slices_of_phase : segment list -> int -> int
