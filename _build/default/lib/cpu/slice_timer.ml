open Sp_vm

type t = {
  slice_len : int;
  core : Interval_core.t;
  mutable count : int;
  mutable last_cycles : float;
  mutable cpis : float list;  (* reversed *)
  mutable n : int;
}

let create ~slice_len core =
  if slice_len <= 0 then invalid_arg "Slice_timer.create";
  { slice_len; core; count = 0; last_cycles = 0.0; cpis = []; n = 0 }

let close t len =
  let c = Interval_core.cycles t.core in
  t.cpis <- ((c -. t.last_cycles) /. float_of_int len) :: t.cpis;
  t.n <- t.n + 1;
  t.last_cycles <- c;
  t.count <- 0

let hooks t =
  {
    Hooks.nil with
    on_instr =
      (fun _pc _kind ->
        t.count <- t.count + 1;
        if t.count >= t.slice_len then close t t.slice_len);
  }

let finish t = if t.count >= t.slice_len / 2 then close t t.count

let slice_cpis t = Array.of_list (List.rev t.cpis)

let num_slices t = t.n
