type t = {
  name : string;
  freq_ghz : float;
  fetch_width : int;
  decode_width : int;
  dispatch_width : int;
  commit_width : int;
  rob_entries : int;
  branch_rob_entries : int;
  branch_penalty : int;
  pipeline_stages : int;
  caches : Sp_cache.Config.hierarchy;
  l1_latency : int;
  l2_latency : int;
  l3_latency : int;
  memory_latency : int;
}

let i7_3770 =
  {
    name = "8-core Intel i7-3770";
    freq_ghz = 3.4;
    fetch_width = 6;
    decode_width = 4;
    dispatch_width = 4;
    commit_width = 4;
    rob_entries = 168;
    branch_rob_entries = 48;
    branch_penalty = 8;
    pipeline_stages = 19;
    caches = Sp_cache.Config.i7_3770;
    l1_latency = 4;
    l2_latency = 10;
    l3_latency = 30;
    memory_latency = 180;
  }

let with_caches t caches = { t with caches }

let i7_3770_sim = with_caches i7_3770 Sp_cache.Config.i7_3770_sim

let pp ppf t =
  let row label value = Format.fprintf ppf "%-30s %s@." label value in
  row "Model" t.name;
  row "CPU Frequency" (Printf.sprintf "%.1fGHz" t.freq_ghz);
  row "Pipeline" (Printf.sprintf "%d stage Out-of-Order" t.pipeline_stages);
  row "Fetch Width" (Printf.sprintf "%d instructions per cycle" t.fetch_width);
  row "Decode Width" (Printf.sprintf "%d-7 fused u-ops per cycle" t.decode_width);
  row "Rename width and Issue width"
    (Printf.sprintf "%d fused u-ops per cycle" t.dispatch_width);
  row "Dispatch width" "6 u-ops per cycle";
  row "Commit width" (Printf.sprintf "%d fused u-ops per cycle" t.commit_width);
  row "Reorder buffer" (Printf.sprintf "%d entries" t.rob_entries);
  row "Branch Reorder Buffer" (Printf.sprintf "%d entries" t.branch_rob_entries);
  row "Branch misprediction penalty" (Printf.sprintf "%d cycles" t.branch_penalty);
  let cache (l : Sp_cache.Config.level) latency =
    Printf.sprintf "%d KB, %d-way & %d cycles" (l.size_bytes / 1024) l.assoc
      latency
  in
  row "L1-I cache & latency" (cache t.caches.l1i t.l1_latency);
  row "L1-D cache & latency" (cache t.caches.l1d t.l1_latency);
  row "L2 cache & latency" (cache t.caches.l2 t.l2_latency);
  row "L3 cache & latency"
    (Printf.sprintf "%d MB, %d-way & %d cycles"
       (t.caches.l3.size_bytes / 1024 / 1024)
       t.caches.l3.assoc t.l3_latency);
  row "Cache line size" (Printf.sprintf "%d Bytes" t.caches.l1d.line_bytes)
