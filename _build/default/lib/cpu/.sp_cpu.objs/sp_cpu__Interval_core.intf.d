lib/cpu/interval_core.mli: Core_config Hooks Program Sp_vm
