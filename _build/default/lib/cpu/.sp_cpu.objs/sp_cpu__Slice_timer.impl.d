lib/cpu/slice_timer.ml: Array Hooks Interval_core List Sp_vm
