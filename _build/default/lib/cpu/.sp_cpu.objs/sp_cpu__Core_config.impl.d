lib/cpu/core_config.ml: Format Printf Sp_cache
