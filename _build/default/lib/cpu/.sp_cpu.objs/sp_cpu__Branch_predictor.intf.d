lib/cpu/branch_predictor.mli:
