lib/cpu/branch_predictor.ml: Bool Bytes Char
