lib/cpu/slice_timer.mli: Hooks Interval_core Sp_vm
