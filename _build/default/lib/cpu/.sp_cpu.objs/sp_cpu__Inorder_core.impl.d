lib/cpu/inorder_core.ml: Array Branch_predictor Core_config Hierarchy Hooks Isa Program Sp_cache Sp_isa Sp_vm
