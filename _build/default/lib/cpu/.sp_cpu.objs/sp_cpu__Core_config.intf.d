lib/cpu/core_config.mli: Format Sp_cache
