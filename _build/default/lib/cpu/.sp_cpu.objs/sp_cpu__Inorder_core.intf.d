lib/cpu/inorder_core.mli: Core_config Hooks Program Sp_vm
