lib/cpu/interval_core.ml: Array Branch_predictor Core_config Hierarchy Hooks Isa Program Sp_cache Sp_isa Sp_vm
