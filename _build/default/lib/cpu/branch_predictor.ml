type t = {
  table : Bytes.t;        (* 2-bit counters, one byte each *)
  mask : int;
  history_mask : int;
  mutable history : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(history_bits = 12) ?(table_bits = 12) () =
  {
    table = Bytes.make (1 lsl table_bits) '\002';
    mask = (1 lsl table_bits) - 1;
    history_mask = (1 lsl history_bits) - 1;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

let index t pc = (pc lxor t.history) land t.mask

let step t ~pc ~taken =
  let i = index t pc in
  let counter = Char.code (Bytes.unsafe_get t.table i) in
  let predicted = counter >= 2 in
  let counter' =
    if taken then min 3 (counter + 1) else max 0 (counter - 1)
  in
  Bytes.unsafe_set t.table i (Char.unsafe_chr counter');
  t.history <- ((t.history lsl 1) lor Bool.to_int taken) land t.history_mask;
  predicted = taken

let predict_and_update t ~pc ~taken =
  let correct = step t ~pc ~taken in
  t.lookups <- t.lookups + 1;
  if not correct then t.mispredicts <- t.mispredicts + 1;
  correct

let observe t ~pc ~taken = ignore (step t ~pc ~taken)

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let mispredict_rate t =
  if t.lookups = 0 then 0.0
  else float_of_int t.mispredicts /. float_of_int t.lookups

let reset_stats t =
  t.lookups <- 0;
  t.mispredicts <- 0

let reset_state t =
  Bytes.fill t.table 0 (Bytes.length t.table) '\002';
  t.history <- 0;
  reset_stats t
