(** Out-of-order core configurations, including the paper's Table III
    machine (the Intel i7-3770 as modelled in Sniper). *)

type t = {
  name : string;
  freq_ghz : float;
  fetch_width : int;
  decode_width : int;
  dispatch_width : int;
  commit_width : int;
  rob_entries : int;
  branch_rob_entries : int;
  branch_penalty : int;     (** cycles per mispredicted branch *)
  pipeline_stages : int;
  caches : Sp_cache.Config.hierarchy;
  l1_latency : int;
  l2_latency : int;
  l3_latency : int;
  memory_latency : int;     (** DRAM access, cycles *)
}

val i7_3770 : t
(** Table III: 3.4 GHz, 19-stage OoO, 4-wide, 168-entry ROB, 8-cycle
    mispredict penalty, 32 kB/256 kB/8 MB caches at 4/10/30 cycles. *)

val i7_3770_sim : t
(** The same core over the capacity-scaled hierarchy
    ({!Sp_cache.Config.i7_3770_sim}) — what simulations run; [i7_3770]
    itself is the nominal configuration the reports print. *)

val with_caches : t -> Sp_cache.Config.hierarchy -> t
(** The same core over a different hierarchy (used by the warmup study,
    which times the Table I [allcache] hierarchy inside Sniper). *)

val pp : Format.formatter -> t -> unit
(** Renders the configuration as the paper's Table III rows. *)
