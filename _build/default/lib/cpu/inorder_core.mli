open Sp_vm

(** A simple in-order, blocking-cache timing model.

    The counterpart to {!Interval_core}: a scalar pipeline that issues
    one instruction per cycle, stalls for the full latency of whichever
    cache level serves each memory access, and pays the mispredict
    penalty on every wrong branch.  It exists to demonstrate (and test)
    that simulation-point selection is *model-independent*: the same
    regions that predict out-of-order CPI also predict in-order CPI,
    because SimPoint samples code signatures, not timing. *)

type t

val create : ?config:Core_config.t -> Program.t -> t

val hooks : t -> Hooks.t

val cpi : t -> float
val cycles : t -> float
val instructions : t -> int

val set_warming : t -> bool -> unit
val reset_stats : t -> unit
val reset_state : t -> unit
