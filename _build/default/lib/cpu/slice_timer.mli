open Sp_vm

(** Per-slice CPI recording on top of an {!Interval_core}.

    Attach these hooks *after* the core's own hooks (hook sets run in
    composition order), and the timer snapshots the core's cycle counter
    at every slice boundary, yielding a CPI time-series aligned with the
    BBV slicing.  Used by the systematic-sampling comparison and
    available for time-varying-behaviour studies. *)

type t

val create : slice_len:int -> Interval_core.t -> t

val hooks : t -> Hooks.t

val finish : t -> unit
(** Close the trailing partial slice (if at least half a slice long). *)

val slice_cpis : t -> float array
(** CPI of each completed slice, in execution order. *)

val num_slices : t -> int
