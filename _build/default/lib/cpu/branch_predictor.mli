(** Gshare branch predictor: global history XOR PC indexing a table of
    2-bit saturating counters. *)

type t

val create : ?history_bits:int -> ?table_bits:int -> unit -> t
(** Defaults: 12 history bits, 4096-entry table. *)

val predict_and_update : t -> pc:int -> taken:bool -> bool
(** Returns [true] when the prediction was correct; always trains. *)

val observe : t -> pc:int -> taken:bool -> unit
(** Train without counting statistics (warmup). *)

val lookups : t -> int
val mispredicts : t -> int

val mispredict_rate : t -> float
(** Mispredicts per lookup; 0 before any lookup. *)

val reset_stats : t -> unit
val reset_state : t -> unit
