(** Random projection of sparse Basic Block Vectors.

    SimPoint reduces BBVs (one dimension per static basic block) to a
    small dense space — 15 dimensions by default — before clustering, via
    a random linear projection.  The projection matrix is never
    materialised: entry (block, dim) is a deterministic hash of its
    coordinates and a seed, so projecting is reproducible and costs
    nothing in memory even for programs with many blocks. *)

val default_dim : int
(** 15, as in SimPoint 3.0. *)

val matrix_entry : seed:int -> block:int -> dim:int -> float
(** The (block, dim) projection coefficient, uniform in [\[-1, 1\]]. *)

val project :
  ?dim:int -> seed:int -> Sp_pin.Bbv_tool.slice array -> float array array
(** [project ~seed slices] L1-normalises each slice's BBV (so slices of
    different lengths are comparable) and projects it, yielding one
    [dim]-vector per slice. *)
