(** Bayesian Information Criterion scoring of k-means clusterings,
    following the spherical-Gaussian formulation of Pelleg & Moore
    (X-means) that SimPoint 3.0 uses for model selection. *)

val score : Kmeans.result -> float array array -> float
(** [score result points] is the BIC of the clustering: data
    log-likelihood minus the parameter penalty [(p/2) log n] with
    [p = k*(d+1)].  Higher is better. *)

val pick_k :
  threshold:float -> (int * float) list -> int
(** [pick_k ~threshold scored] selects the smallest k whose
    range-normalised BIC reaches [threshold] (SimPoint's default policy
    with threshold 0.9).  [scored] is a non-empty [(k, bic)] list.
    @raise Invalid_argument on an empty list. *)
