(** Agglomerative hierarchical clustering with average linkage, as used
    by the benchmark-subsetting studies in the paper's related work to
    group similar benchmarks and pick subset representatives. *)

type step = {
  left : int;   (** cluster id merged (leaves are [0..n-1]) *)
  right : int;
  dist : float; (** average-linkage distance at the merge *)
  id : int;     (** id of the merged cluster ([n + step index]) *)
}

val linkage : float array array -> step list
(** [linkage points] builds the full dendrogram over the rows of
    [points] (Euclidean distance, average linkage), n-1 steps.
    @raise Invalid_argument on an empty input. *)

val cut : n:int -> step list -> k:int -> int array
(** [cut ~n steps ~k] stops the merging at [k] clusters and returns a
    dense assignment (cluster indices [0..k-1]) for the [n] leaves.
    [k] is clamped to [\[1, n\]]. *)

val medoids : float array array -> int array -> int array
(** [medoids points assignment] picks, per cluster, the row minimising
    the total distance to its cluster-mates — the subset
    representative.  Returns one row index per cluster index. *)
