let default_dim = 15

(* SplitMix64-style finaliser over the packed coordinates. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let matrix_entry ~seed ~block ~dim =
  let packed =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.of_int ((block * 1024) + dim))
  in
  let bits = Int64.shift_right_logical (mix packed) 11 in
  (Int64.to_float bits /. 9007199254740992.0 *. 2.0) -. 1.0

let project ?(dim = default_dim) ~seed (slices : Sp_pin.Bbv_tool.slice array) =
  Array.map
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      let v = Array.make dim 0.0 in
      let total = float_of_int s.length in
      if total > 0.0 then
        Array.iter
          (fun (block, count) ->
            let w = float_of_int count /. total in
            for d = 0 to dim - 1 do
              v.(d) <- v.(d) +. (w *. matrix_entry ~seed ~block ~dim:d)
            done)
          s.bbv;
      v)
    slices
