(** Principal Components Analysis, as used by the CPU2017
    characterisation studies the paper builds on (Limaye & Adegbija
    ISPASS'18, Panda et al. HPCA'18, Joshua et al. IISWC'06) to reduce
    per-benchmark feature vectors before subsetting.

    Dimensionality here is small (a dozen features), so the
    implementation is the classical one: z-score standardisation,
    covariance matrix, Jacobi eigen-decomposition. *)

type result = {
  components : float array array;  (** [k x d] eigenvectors, by eigenvalue desc *)
  eigenvalues : float array;       (** descending *)
  explained : float array;         (** fraction of variance per component *)
  scores : float array array;      (** [n x k] projected (standardised) data *)
  means : float array;
  stddevs : float array;
}

val standardize : float array array -> float array array
(** Column z-scores; constant columns map to zeros.
    @raise Invalid_argument on an empty or ragged matrix. *)

val fit : ?components:int -> float array array -> result
(** [fit ~components data] on an [n x d] matrix ([components] defaults
    to [d]).  @raise Invalid_argument on empty/ragged input. *)

val jacobi_eigen : float array array -> float array * float array array
(** [jacobi_eigen m] for a symmetric matrix: (eigenvalues, eigenvectors
    as rows), unsorted.  Exposed for testing. *)
