let score (r : Kmeans.result) points =
  let n = Array.length points in
  let d = if n = 0 then 0 else Array.length points.(0) in
  let nf = float_of_int n and df = float_of_int d in
  (* pooled per-dimension variance of the spherical model *)
  let denom = float_of_int (max 1 (n - r.k)) *. df in
  let sigma2 = Float.max (r.distortion /. denom) 1e-12 in
  let log_n = log nf in
  let likelihood = ref 0.0 in
  Array.iter
    (fun size ->
      if size > 0 then begin
        let sf = float_of_int size in
        likelihood := !likelihood +. (sf *. (log sf -. log_n))
      end)
    r.sizes;
  likelihood :=
    !likelihood
    -. (nf *. df /. 2.0 *. log (2.0 *. Float.pi *. sigma2))
    -. (float_of_int (n - r.k) *. df /. 2.0);
  let params = float_of_int (r.k * (d + 1)) in
  !likelihood -. (params /. 2.0 *. log_n)

let pick_k ~threshold scored =
  match scored with
  | [] -> invalid_arg "Bic.pick_k: empty"
  | (k0, s0) :: _ ->
      let lo, hi =
        List.fold_left
          (fun (lo, hi) (_, s) -> (Float.min lo s, Float.max hi s))
          (s0, s0) scored
      in
      let range = hi -. lo in
      if range <= 0.0 then
        List.fold_left (fun acc (k, _) -> min acc k) k0 scored
      else
        let qualifying =
          List.filter (fun (_, s) -> (s -. lo) /. range >= threshold) scored
        in
        List.fold_left (fun acc (k, _) -> min acc k) max_int qualifying
