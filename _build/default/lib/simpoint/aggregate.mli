(** Re-aggregation of micro-slices into coarser slices.

    BBVs are collected once at a fine granularity (5 paper-Minsn); the
    slice-size sensitivity sweep of Figure 3(b) then builds 15/25/30/50/
    100-Minsn slices by merging consecutive micro-slices, instead of
    re-running the workload once per slice size. *)

val merge : factor:int -> Sp_pin.Bbv_tool.slice array ->
  Sp_pin.Bbv_tool.slice array
(** [merge ~factor micro] combines each run of [factor] consecutive
    micro-slices into one slice (summing BBVs); a trailing partial group
    becomes a final shorter slice.
    @raise Invalid_argument if [factor < 1]. *)

val merge_slices : index:int -> Sp_pin.Bbv_tool.slice list ->
  Sp_pin.Bbv_tool.slice
(** Combine consecutive slices into one (summed BBV, summed length,
    earliest start).  Exposed for the variable-length-interval
    segmentation.
    @raise Invalid_argument on an empty list. *)
