let merge_group index group =
  let tbl = Hashtbl.create 64 in
  let start = ref max_int in
  let length = ref 0 in
  List.iter
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      start := min !start s.start_icount;
      length := !length + s.length;
      Array.iter
        (fun (bb, c) ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt tbl bb) in
          Hashtbl.replace tbl bb (prev + c))
        s.bbv)
    group;
  let bbv =
    Hashtbl.fold (fun bb c acc -> (bb, c) :: acc) tbl [] |> Array.of_list
  in
  Array.sort (fun (a, _) (b, _) -> compare a b) bbv;
  { Sp_pin.Bbv_tool.index; start_icount = !start; length = !length; bbv }

let merge_slices ~index group =
  if group = [] then invalid_arg "Aggregate.merge_slices: empty";
  merge_group index group

let merge ~factor micro =
  if factor < 1 then invalid_arg "Aggregate.merge: factor < 1";
  if factor = 1 then micro
  else begin
    let out = ref [] in
    let group = ref [] in
    let n_out = ref 0 in
    let flush () =
      if !group <> [] then begin
        out := merge_group !n_out (List.rev !group) :: !out;
        incr n_out;
        group := []
      end
    in
    Array.iteri
      (fun i s ->
        group := s :: !group;
        if (i + 1) mod factor = 0 then flush ())
      micro;
    flush ();
    Array.of_list (List.rev !out)
  end
