type step = { left : int; right : int; dist : float; id : int }

let euclid a b = sqrt (Kmeans.sq_distance a b)

let linkage points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Hcluster.linkage: empty";
  (* members.(id) = leaf list of active cluster id; ids grow as merges
     happen.  n is small in our uses (29 benchmarks), so the O(n^3)
     textbook algorithm is fine. *)
  let members = Hashtbl.create (2 * n) in
  for i = 0 to n - 1 do
    Hashtbl.replace members i [ i ]
  done;
  let avg_dist a b =
    let la = Hashtbl.find members a and lb = Hashtbl.find members b in
    let s = ref 0.0 in
    List.iter
      (fun i -> List.iter (fun j -> s := !s +. euclid points.(i) points.(j)) lb)
      la;
    !s /. float_of_int (List.length la * List.length lb)
  in
  let active = ref (List.init n (fun i -> i)) in
  let steps = ref [] in
  let next_id = ref n in
  while List.length !active > 1 do
    let best = ref None in
    List.iter
      (fun a ->
        List.iter
          (fun b ->
            if a < b then begin
              let d = avg_dist a b in
              match !best with
              | Some (_, _, bd) when bd <= d -> ()
              | _ -> best := Some (a, b, d)
            end)
          !active)
      !active;
    match !best with
    | None -> assert false
    | Some (a, b, d) ->
        let id = !next_id in
        incr next_id;
        Hashtbl.replace members id (Hashtbl.find members a @ Hashtbl.find members b);
        active := id :: List.filter (fun x -> x <> a && x <> b) !active;
        steps := { left = a; right = b; dist = d; id } :: !steps
  done;
  List.rev !steps

let cut ~n steps ~k =
  let k = max 1 (min n k) in
  (* apply the first n-k merges with a union-find *)
  let parent = Array.init (n + List.length steps) (fun i -> i) in
  let rec find i = if parent.(i) = i then i else find parent.(i) in
  List.iteri
    (fun idx (s : step) ->
      if idx < n - k then begin
        parent.(find s.left) <- s.id;
        parent.(find s.right) <- s.id
      end)
    steps;
  let roots = Hashtbl.create k in
  Array.init n (fun i ->
      let r = find i in
      match Hashtbl.find_opt roots r with
      | Some c -> c
      | None ->
          let c = Hashtbl.length roots in
          Hashtbl.replace roots r c;
          c)

let medoids points assignment =
  let k = Array.fold_left (fun m c -> max m (c + 1)) 0 assignment in
  Array.init k (fun c ->
      let members =
        Array.to_list
          (Array.of_seq
             (Seq.filter_map
                (fun i -> if assignment.(i) = c then Some i else None)
                (Seq.init (Array.length assignment) (fun i -> i))))
      in
      let cost i =
        List.fold_left (fun acc j -> acc +. euclid points.(i) points.(j)) 0.0 members
      in
      match members with
      | [] -> 0
      | first :: _ ->
          List.fold_left
            (fun best i -> if cost i < cost best then i else best)
            first members)
