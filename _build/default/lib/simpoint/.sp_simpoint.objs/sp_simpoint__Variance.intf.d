lib/simpoint/variance.mli: Simpoints Sp_pin
