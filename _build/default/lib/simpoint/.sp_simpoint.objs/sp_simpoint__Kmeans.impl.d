lib/simpoint/kmeans.ml: Array Sp_util
