lib/simpoint/systematic.ml: Array Float Sp_util
