lib/simpoint/projection.mli: Sp_pin
