lib/simpoint/kmeans.mli:
