lib/simpoint/hcluster.ml: Array Hashtbl Kmeans List Seq
