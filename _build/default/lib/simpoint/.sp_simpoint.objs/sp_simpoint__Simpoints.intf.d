lib/simpoint/simpoints.mli: Format Sp_pin
