lib/simpoint/bic.ml: Array Float Kmeans List
