lib/simpoint/aggregate.mli: Sp_pin
