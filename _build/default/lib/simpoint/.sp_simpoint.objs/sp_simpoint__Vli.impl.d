lib/simpoint/vli.ml: Aggregate Array Hashtbl Kmeans List Option Projection Simpoints Sp_pin
