lib/simpoint/aggregate.ml: Array Hashtbl List Option Sp_pin
