lib/simpoint/hcluster.mli:
