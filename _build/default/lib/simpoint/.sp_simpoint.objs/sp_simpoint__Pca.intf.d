lib/simpoint/pca.mli:
