lib/simpoint/variance.ml: Array Float Kmeans List Simpoints Sp_util
