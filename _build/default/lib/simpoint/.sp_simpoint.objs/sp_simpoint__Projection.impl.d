lib/simpoint/projection.ml: Array Int64 Sp_pin
