lib/simpoint/systematic.mli:
