lib/simpoint/simpoints.ml: Array Bic Format Hashtbl Kmeans List Projection Sp_pin
