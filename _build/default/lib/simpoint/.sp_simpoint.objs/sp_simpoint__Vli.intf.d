lib/simpoint/vli.mli: Simpoints Sp_pin
