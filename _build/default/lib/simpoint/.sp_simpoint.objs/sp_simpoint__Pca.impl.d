lib/simpoint/pca.ml: Array Float Option
