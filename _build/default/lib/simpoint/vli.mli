(** Variable-Length Intervals (Hamerly et al., "SimPoint 3.0: Faster
    and more flexible program phase analysis" — the extension the
    paper's related-work section highlights).

    Instead of slicing the execution into fixed-size chunks, VLI merges
    consecutive micro-slices while the program stays in the same phase
    (projected-BBV distance below a threshold), producing long intervals
    inside stable phases and short ones at transitions.  Intervals are
    then clustered like ordinary slices, but weighted by instruction
    count rather than interval count. *)

val segment :
  ?threshold:float ->
  ?max_len:int ->
  ?seed:int ->
  Sp_pin.Bbv_tool.slice array ->
  Sp_pin.Bbv_tool.slice array
(** [segment micro] greedily merges consecutive micro-slices whose
    projected BBVs stay within [threshold] (Euclidean, in the 15-dim
    projection) of the running interval mean, up to [max_len]
    instructions per interval.  The result is a valid slice array
    (contiguous [start_icount], summed BBVs).
    @raise Invalid_argument on an empty input. *)

val select :
  ?config:Simpoints.config ->
  ?threshold:float ->
  ?max_len:int ->
  micro_len:int ->
  Sp_pin.Bbv_tool.slice array ->
  Simpoints.t
(** VLI end-to-end: segment, then run simulation-point selection over
    the intervals with instruction-weighted cluster weights.  The
    returned points' weights sum to 1 over *instructions*. *)
