let default_threshold = 0.25

let segment ?(threshold = default_threshold) ?(max_len = max_int)
    ?(seed = Simpoints.default_config.Simpoints.seed) micro =
  let n = Array.length micro in
  if n = 0 then invalid_arg "Vli.segment: empty";
  let projected = Projection.project ~seed micro in
  let dim = Array.length projected.(0) in
  let out = ref [] in
  let group = ref [] in
  let group_n = ref 0 in
  let group_len = ref 0 in
  let mean = Array.make dim 0.0 in
  let n_out = ref 0 in
  let flush () =
    if !group <> [] then begin
      out := Aggregate.merge_slices ~index:!n_out (List.rev !group) :: !out;
      incr n_out;
      group := [];
      group_n := 0;
      group_len := 0;
      Array.fill mean 0 dim 0.0
    end
  in
  let add i (s : Sp_pin.Bbv_tool.slice) =
    group := s :: !group;
    incr group_n;
    group_len := !group_len + s.Sp_pin.Bbv_tool.length;
    let w = 1.0 /. float_of_int !group_n in
    for d = 0 to dim - 1 do
      mean.(d) <- mean.(d) +. ((projected.(i).(d) -. mean.(d)) *. w)
    done
  in
  Array.iteri
    (fun i s ->
      let fits =
        !group_n > 0
        && !group_len + s.Sp_pin.Bbv_tool.length <= max_len
        && sqrt (Kmeans.sq_distance mean projected.(i)) <= threshold
      in
      if not fits then flush ();
      add i s)
    micro;
  flush ();
  Array.of_list (List.rev !out)

let select ?config ?threshold ?max_len ~micro_len micro =
  let intervals = segment ?threshold ?max_len micro in
  let sel = Simpoints.select ?config ~slice_len:micro_len intervals in
  (* re-weight clusters by instructions rather than interval count *)
  let total =
    Array.fold_left
      (fun acc (s : Sp_pin.Bbv_tool.slice) -> acc + s.Sp_pin.Bbv_tool.length)
      0 intervals
  in
  let per_cluster = Hashtbl.create 16 in
  Array.iteri
    (fun i c ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt per_cluster c) in
      Hashtbl.replace per_cluster c
        (prev + intervals.(i).Sp_pin.Bbv_tool.length))
    sel.Simpoints.assignment;
  let points =
    Array.map
      (fun (p : Simpoints.point) ->
        let insns =
          Option.value ~default:0 (Hashtbl.find_opt per_cluster p.cluster)
        in
        { p with Simpoints.weight = float_of_int insns /. float_of_int total })
      sel.Simpoints.points
  in
  { sel with Simpoints.points }
