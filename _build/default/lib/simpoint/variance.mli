(** Within-cluster variance analysis: reproduces the quantity plotted in
    the paper's Figure 4 — how the average phase-similarity variance
    inside clusters grows as the number of available clusters shrinks. *)

type sweep_point = {
  k : int;
  avg_variance : float;  (** mean over clusters of within-cluster variance *)
  max_variance : float;
  distortion : float;
}

val at_k :
  ?config:Simpoints.config -> k:int -> Sp_pin.Bbv_tool.slice array -> sweep_point
(** Cluster at exactly [k] and measure variance. *)

val sweep :
  ?config:Simpoints.config -> ks:int list -> Sp_pin.Bbv_tool.slice array ->
  sweep_point list
(** Variance at each cluster count in [ks] (Figure 4's x-axis). *)
