open Sp_vm

type kind = Whole | Region of { cluster : int; weight : float }

type t = {
  benchmark : string;
  kind : kind;
  program : Program.t;
  snapshot : Snapshot.t;
  length : int option;
  syscalls : (int * int) array;
}

let start_icount t = Snapshot.icount t.snapshot

let weight t = match t.kind with Whole -> 1.0 | Region r -> r.weight

let syscalls_in_range t ~start ~len =
  Array.of_list
    (List.filter
       (fun (ic, _) -> ic >= start && ic < start + len)
       (Array.to_list t.syscalls))

let describe t =
  match t.kind with
  | Whole -> Printf.sprintf "%s.whole" t.benchmark
  | Region r ->
      Printf.sprintf "%s.region%d(w=%.4f)@%d" t.benchmark r.cluster r.weight
        (start_icount t)
