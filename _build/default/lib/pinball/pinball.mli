open Sp_vm

(** Pinballs: self-contained, replayable checkpoints of an execution,
    mirroring PinPlay's format in role.

    A pinball carries everything replay needs — the program, the
    architectural snapshot at its start, the recorded values of every
    non-deterministic input ([Sys] instructions) it will consume, and a
    length.  Replaying therefore needs neither the original inputs nor
    the original environment, and any pinball can be replayed
    independently and repeatedly (the property the paper exploits to
    parallelise Regional runs). *)

type kind =
  | Whole
      (** checkpoint of a complete execution (start to [Halt]) *)
  | Region of { cluster : int; weight : float }
      (** checkpoint of one simulation point *)

type t = {
  benchmark : string;
  kind : kind;
  program : Program.t;
  snapshot : Snapshot.t;     (** state at the pinball's first instruction *)
  length : int option;       (** instructions to replay; [None] = to [Halt] *)
  syscalls : (int * int) array;
      (** (absolute icount, value) of recorded non-deterministic inputs
          consumed at or after the snapshot, in consumption order *)
}

val start_icount : t -> int
(** Dynamic-instruction offset of the pinball's first instruction. *)

val weight : t -> float
(** 1.0 for a whole pinball; the phase weight for a region. *)

val syscalls_in_range : t -> start:int -> len:int -> (int * int) array
(** Recorded inputs whose icount falls in [\[start, start+len)]. *)

val describe : t -> string
