(** On-disk pinball store.

    Pinballs are self-contained, so serialising one file per pinball
    gives the same portability PinPlay's format provides: a regional
    pinball can be copied to another machine (or another process) and
    replayed without the benchmark's inputs.  The format is OCaml
    [Marshal] framed with a magic string and version. *)

val save : dir:string -> Pinball.t -> string
(** Write the pinball under [dir] (created if missing); returns the file
    path.  File names encode benchmark and kind. *)

val load : string -> Pinball.t
(** @raise Failure on a missing file, bad magic or version mismatch. *)

val list_dir : dir:string -> string list
(** Paths of all pinball files under [dir], sorted. *)

val filename : Pinball.t -> string
(** The basename {!save} would use. *)
