open Sp_vm

(** The replayer pintool: runs a pinball, optionally with tools
    attached, repeating the captured execution exactly. *)

exception Divergence of string
(** Raised when the replayed execution consumes non-deterministic inputs
    differently from the recorded ones — replay is supposed to be
    deterministic, so this signals a corrupted pinball or a bug. *)

type result = {
  status : Interp.status;
  retired : int;           (** instructions retired during the replay *)
  machine : Interp.machine; (** final machine state *)
}

val replay : ?tools:Hooks.t list -> Pinball.t -> result
(** Restore the snapshot and execute the pinball's interval with the
    recorded inputs injected. *)

val replay_with :
  ?tools:Hooks.t list -> ?fuel:int -> Pinball.t -> result
(** Replay at most [fuel] instructions of the pinball (defaults to the
    pinball's own length). *)

val recorded_syscall : Pinball.t -> int -> int
(** A stateful handler that plays back the pinball's recorded inputs in
    order; raises {!Divergence} when the recording is exhausted.  Exposed
    for callers that drive the interpreter directly (e.g. the logger's
    fast-forward pass). *)
