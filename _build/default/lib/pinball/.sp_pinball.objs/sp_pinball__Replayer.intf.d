lib/pinball/replayer.mli: Hooks Interp Pinball Sp_vm
