lib/pinball/logger.ml: Array Hooks Interp List Pinball Program Replayer Snapshot Sp_simpoint Sp_vm
