lib/pinball/store.ml: Array Filename Fun List Marshal Pinball Printf String Sys
