lib/pinball/pinball.mli: Program Snapshot Sp_vm
