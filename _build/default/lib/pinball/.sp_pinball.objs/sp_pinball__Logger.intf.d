lib/pinball/logger.mli: Hooks Pinball Program Sp_simpoint Sp_vm
