lib/pinball/replayer.ml: Array Hooks Interp Pinball Printf Snapshot Sp_vm
