lib/pinball/store.mli: Pinball
