lib/pinball/pinball.ml: Array List Printf Program Snapshot Sp_vm
