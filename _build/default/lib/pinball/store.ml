let magic = "SPREPRO-PINBALL"
let version = 1

let filename (pb : Pinball.t) =
  match pb.kind with
  | Pinball.Whole -> Printf.sprintf "%s.whole.pb" pb.benchmark
  | Pinball.Region r -> Printf.sprintf "%s.region%03d.pb" pb.benchmark r.cluster

let save ~dir pb =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (filename pb) in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc pb []);
  path

let load path =
  if not (Sys.file_exists path) then failwith ("Store.load: no such file " ^ path);
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith ("Store.load: bad magic in " ^ path);
      let v = input_binary_int ic in
      if v <> version then
        failwith (Printf.sprintf "Store.load: version %d, expected %d" v version);
      (Marshal.from_channel ic : Pinball.t))

let list_dir ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pb")
    |> List.map (Filename.concat dir)
    |> List.sort compare
