open Sp_vm

exception Divergence of string

type result = {
  status : Interp.status;
  retired : int;
  machine : Interp.machine;
}

let recorded_syscall (pb : Pinball.t) =
  let idx = ref 0 in
  fun (_channel : int) ->
    if !idx >= Array.length pb.syscalls then
      raise
        (Divergence
           (Printf.sprintf "%s: replay consumed more inputs than recorded"
              (Pinball.describe pb)))
    else begin
      let _, v = pb.syscalls.(!idx) in
      incr idx;
      v
    end

let replay_with ?(tools = []) ?fuel (pb : Pinball.t) =
  let machine = Snapshot.restore pb.snapshot in
  let fuel =
    match (fuel, pb.length) with
    | Some f, Some l -> Some (min f l)
    | Some f, None -> Some f
    | None, l -> l
  in
  let hooks = Hooks.seq_all tools in
  let syscall = recorded_syscall pb in
  let before = machine.Interp.icount in
  let status =
    match fuel with
    | Some f -> Interp.run ~hooks ~syscall ~fuel:f pb.program machine
    | None -> Interp.run ~hooks ~syscall pb.program machine
  in
  (match (status, pb.length, fuel) with
  | Interp.Halted, Some l, Some f when f = l ->
      (* a region must not halt early: that would mean the recorded
         interval ran past program end *)
      if machine.Interp.icount - before < l then
        raise
          (Divergence
             (Printf.sprintf "%s: halted after %d of %d instructions"
                (Pinball.describe pb)
                (machine.Interp.icount - before)
                l))
  | _ -> ());
  { status; retired = machine.Interp.icount - before; machine }

let replay ?tools pb = replay_with ?tools pb
