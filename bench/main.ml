(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section, plus ablation studies and Bechamel
   microbenchmarks of the core primitives.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- table2 fig8  # a subset
     dune exec bench/main.exe -- --fast ...   # shorter whole runs
     dune exec bench/main.exe -- micro        # microbenchmarks only *)

open Specrepro

let all_experiments =
  [
    "table1";
    "table2";
    "table2x";
    "table3";
    "fig3a";
    "fig3b";
    "fig4";
    "fig5";
    "fig6";
    "fig7";
    "fig8";
    "fig9";
    "fig10";
    "fig12";
    "ablation-bic";
    "ablation-proj";
    "ablation-warmup";
    "ablation-prefetch";
    "ablation-roi";
    "sampling";
    "samplers";
    "smarts";
    "vli";
    "subset";
    "statcache";
    "cpistack";
    "timevary";
    "models";
    "rate";
    "headlines";
    "micro";
  ]

let usage () =
  Printf.printf
    "usage: main.exe [--fast] [--quiet] [--csv DIR] [--jobs N] \
     [--trace-out FILE] [--gate NAME:MAXRATIO] [--gate-all MAXRATIO] \
     [experiment...]\n";
  Printf.printf "experiments: %s\n" (String.concat " " all_experiments);
  Printf.printf
    "--jobs N: worker domains for the parallel stages (suite fan-out, cold\n\
    \  regional replays, k-means); 1 = sequential, 0 = hardware default.\n\
    \  Falls back to $SPECREPRO_JOBS.  Results are identical for every N.\n";
  Printf.printf
    "--gate NAME:MAXRATIO (repeatable, implies micro): fail if micro NAME\n\
    \  measures more than MAXRATIO x its recorded BENCH_micro.json value.\n";
  Printf.printf
    "--gate-all MAXRATIO (implies micro): gate every micro recorded in\n\
    \  BENCH_micro.json at MAXRATIO; explicit --gate flags override the\n\
    \  ratio for the micros they name.\n";
  Printf.printf
    "exit codes: 0 ok; 1 bad input (unknown experiment, malformed or\n\
    \  missing gate/baseline); 2 a gate failed.\n";
  exit 0

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks *)

let micro ?(gates = []) ?gate_all () =
  let open Bechamel in
  let open Toolkit in
  (* recorded baseline, read before this run overwrites the file; [None]
     when absent or unreadable (deltas are skipped, gates fail loudly) *)
  let json_file = "BENCH_micro.json" in
  let baseline =
    match Sp_obs.Json.parse_file json_file with
    | Ok (Sp_obs.Json.Obj kvs) ->
        Some
          (List.filter_map
             (fun (k, v) ->
               Option.map (fun f -> (k, f)) (Sp_obs.Json.to_float v))
             kvs)
    | Ok _ | Error _ -> None
  in
  (* fixtures *)
  let spec = Sp_workloads.Suite.find "620.omnetpp_s" in
  let built = Sp_workloads.Benchspec.build ~slices_scale:0.02 spec in
  let prog = built.Sp_workloads.Benchspec.program in
  let rng = Sp_util.Rng.create 7 in
  let points =
    Array.init 2000 (fun _ ->
        Array.init 15 (fun _ -> Sp_util.Rng.float rng 1.0))
  in
  let cache = Sp_cache.Cache.create Sp_cache.Config.allcache_table1.l1d in
  let addr = ref 0 in
  (* A pointer-chase style kernel where 4 of every 7 instructions touch
     memory, walking a 1 MiB working set: the worst case for the
     per-access page lookup in [Memory] and the best case for its TLB. *)
  let ldst_kernel =
    let a = Sp_vm.Asm.create ~name:"ldst-kernel" () in
    Sp_vm.Asm.li a 1 0;
    let top = Sp_vm.Asm.here a in
    Sp_vm.Asm.store a 1 1 0;
    Sp_vm.Asm.load a 2 1 64;
    Sp_vm.Asm.store a 2 1 128;
    Sp_vm.Asm.load a 3 1 192;
    Sp_vm.Asm.alui a Sp_isa.Isa.Add 1 1 8;
    Sp_vm.Asm.alui a Sp_isa.Isa.And 1 1 0xFFFFF;
    Sp_vm.Asm.jump a top;
    Sp_vm.Asm.assemble a
  in
  (* 40k-instruction kernel with loads, stores and a recorded input
     every iteration, logged once as a whole pinball; 4 points of 2000
     instructions with 1500-instruction warm prefixes then drive the
     whole warm-replay stage (prefix capture + prefixed replay) per
     run — the path [warm_replay_points] parallelises *)
  let warm_whole, warm_points =
    let a = Sp_vm.Asm.create ~name:"warm-replay-4pt" () in
    Sp_vm.Asm.li a 1 0;
    (* init phase: touch one word in each of 32 pages (a 1 MiB image),
       so the regional snapshots the warm stage captures and restores
       carry a realistically sized memory image rather than the single
       page the main loop's working set fits in *)
    Sp_vm.Asm.li a 6 0;
    Sp_vm.Asm.loop_down a ~counter:7 ~from:256 (fun () ->
        Sp_vm.Asm.store a 7 6 0;
        Sp_vm.Asm.alui a Sp_isa.Isa.Add 6 6 4_096);
    Sp_vm.Asm.loop_down a ~counter:5 ~from:4_000 (fun () ->
        Sp_vm.Asm.store a 2 1 0;
        Sp_vm.Asm.load a 3 1 64;
        Sp_vm.Asm.alui a Sp_isa.Isa.Add 1 1 8;
        Sp_vm.Asm.alui a Sp_isa.Isa.And 1 1 0xFFFFF;
        Sp_vm.Asm.alu a Sp_isa.Isa.Add 4 4 3;
        Sp_vm.Asm.sys a 0 6;
        Sp_vm.Asm.alu a Sp_isa.Isa.Xor 4 4 6;
        Sp_vm.Asm.store a 4 1 128);
    Sp_vm.Asm.halt a;
    let kernel = Sp_vm.Asm.assemble a in
    let whole =
      Sp_pinball.Logger.log_whole ~benchmark:"warm-replay-4pt" kernel
    in
    let points =
      Array.init 4 (fun i ->
          {
            Sp_simpoint.Simpoints.cluster = i;
            slice_index = i;
            (* past the init phase, inside the main loop *)
            start_icount = (8_000 * (i + 1)) + 2_000;
            length = 2_000;
            weight = 0.25;
          })
    in
    (whole, points)
  in
  (* a 64-page (2 MiB image) whole pinball over the ldst kernel: the
     artifact-I/O and snapshot micros below share it.  Page contents are
     pseudo-random so the CRC and the encoder see realistic entropy. *)
  let pb64, snap64, encoded64 =
    let m = Sp_vm.Interp.create ~entry:ldst_kernel.Sp_vm.Program.entry () in
    let r = Sp_util.Rng.create 42 in
    for p = 0 to 63 do
      for w = 0 to 4095 do
        Sp_vm.Memory.store m.Sp_vm.Interp.mem (((p * 4096) + w) * 8)
          (Sp_util.Rng.bits30 r)
      done
    done;
    let snap = Sp_vm.Snapshot.capture m in
    let pb =
      {
        Sp_pinball.Pinball.benchmark = "micro-64p";
        kind = Sp_pinball.Pinball.Whole;
        program = ldst_kernel;
        snapshot = snap;
        length = Some 0;
        syscalls = [||];
      }
    in
    (pb, snap, Sp_pinball.Store.encode pb)
  in
  let mb_string =
    let r = Sp_util.Rng.create 43 in
    String.init (1 lsl 20) (fun _ -> Char.chr (Sp_util.Rng.int r 256))
  in
  let tests =
    [
      (* pinned to the per-instruction reference tier: this micro tracks
         the decode-dispatch loop itself and must stay comparable to its
         recorded history from before the compiled tier existed *)
      Test.make ~name:"interp-10k-insns"
        (Staged.stage (fun () ->
             let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
             ignore
               (Sp_vm.Interp.run ~engine:Sp_vm.Interp.Reference ~fuel:10_000
                  prog m)));
      (* same replay on the compiled-block tier: straight-line closures,
         no per-instruction decode (program compilation is cached, so
         only the first run pays it) *)
      Test.make ~name:"interp-10k-compiled"
        (Staged.stage (fun () ->
             let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
             ignore
               (Sp_vm.Interp.run ~engine:Sp_vm.Interp.Compiled ~fuel:10_000
                  prog m)));
      (* hook-dispatch cost in isolation: a seq_all of nil hook sets must
         collapse onto the interpreter's zero-dispatch fast path... *)
      Test.make ~name:"hook-dispatch-nil-10k"
        (Staged.stage
           (let hooks = Sp_vm.Hooks.seq_all [ Sp_vm.Hooks.nil; Sp_vm.Hooks.nil ] in
            fun () ->
              let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
              ignore (Sp_vm.Interp.run ~hooks ~fuel:10_000 prog m)));
      (* ...while the cheapest real tool pays for dispatch on every
         retired instruction (the delta over the nil case is the
         per-instruction hook overhead the fast path avoids) *)
      Test.make ~name:"hook-dispatch-inscount-10k"
        (Staged.stage
           (let tool = Sp_pin.Inscount.create () in
            let hooks = Sp_vm.Hooks.seq_all [ Sp_pin.Inscount.hooks tool ] in
            fun () ->
              let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
              ignore (Sp_vm.Interp.run ~hooks ~fuel:10_000 prog m)));
      (* the instrumented path BBV collection actually runs on: block-level
         hooks only, so the interpreter may block-step *)
      Test.make ~name:"interp-10k-bbv"
        (Staged.stage (fun () ->
             let bbv = Sp_pin.Bbv_tool.create ~slice_len:1_000 prog in
             let hooks = Sp_vm.Hooks.seq_all [ Sp_pin.Bbv_tool.hooks bbv ] in
             let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
             ignore (Sp_vm.Interp.run ~hooks ~fuel:10_000 prog m);
             Sp_pin.Bbv_tool.finish bbv));
      (* the single-pass profile stage: BBV + ldst-mix + instruction mix
         from one combined block-level consumer — what the pipeline's
         log+profile stage pays per retired span *)
      Test.make ~name:"interp-10k-profile-combined"
        (Staged.stage (fun () ->
             let t = Sp_pin.Profile_tool.create ~slice_len:1_000 prog in
             let hooks = Sp_vm.Hooks.seq_all [ Sp_pin.Profile_tool.hooks t ] in
             let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
             ignore (Sp_vm.Interp.run ~hooks ~fuel:10_000 prog m);
             Sp_pin.Profile_tool.finish t));
      Test.make ~name:"interp-10k-ldst"
        (Staged.stage
           (* one persistent machine: the kernel never halts, so each run
              resumes it for another 10k instructions over a stable page
              set — pure load/store throughput, no page-allocation noise *)
           (let m =
              Sp_vm.Interp.create ~entry:ldst_kernel.Sp_vm.Program.entry ()
            in
            fun () -> ignore (Sp_vm.Interp.run ~fuel:10_000 ldst_kernel m)));
      Test.make ~name:"interp-10k-insns+allcache"
        (Staged.stage
           (let tool = Sp_pin.Allcache_tool.create prog in
            let hooks = Sp_pin.Allcache_tool.hooks tool in
            fun () ->
              let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
              ignore (Sp_vm.Interp.run ~hooks ~fuel:10_000 prog m)));
      Test.make ~name:"kmeans-k20-2000x15"
        (Staged.stage (fun () ->
             ignore (Sp_simpoint.Kmeans.fit ~max_iters:10 ~k:20 points)));
      (* cold variant: the points (and the fit's internal flat copies
         and bound arrays) are freshly allocated every run, so the cost
         of warming those pages is inside the measurement *)
      Test.make ~name:"kmeans-k20-2000x15-cold"
        (Staged.stage (fun () ->
             let rng = Sp_util.Rng.create 7 in
             let pts =
               Array.init 2000 (fun _ ->
                   Array.init 15 (fun _ -> Sp_util.Rng.float rng 1.0))
             in
             ignore (Sp_simpoint.Kmeans.fit ~max_iters:10 ~k:20 pts)));
      Test.make ~name:"cache-access"
        (Staged.stage (fun () ->
             addr := (!addr + 4096) land 0xFFFFF;
             ignore (Sp_cache.Cache.access cache !addr)));
      (* 1 KiB stride = sets * line_bytes on the 32-set L1D: every
         access lands in set 0, and cycling 64 tags through 32 ways
         makes every access an eviction — the replacement-policy slow
         path, where the MRU short-circuit can never fire *)
      Test.make ~name:"cache-access-miss"
        (Staged.stage
           (let miss_cache =
              Sp_cache.Cache.create Sp_cache.Config.allcache_table1.l1d
            in
            let miss_addr = ref 0 in
            fun () ->
              miss_addr := (!miss_addr + 1024) land 0xFFFF;
              ignore (Sp_cache.Cache.access miss_cache !miss_addr)));
      (* 4 KiB stride over a 32 MiB cycle: distinct line every access,
         revisited only after the tags in its set have rotated out of
         L1D, L2 and L3 alike — every access walks the full hierarchy
         to memory *)
      Test.make ~name:"cache-hier-walk"
        (Staged.stage
           (let hier =
              Sp_cache.Hierarchy.create Sp_cache.Config.allcache_table1
            in
            let walk_addr = ref 0 in
            fun () ->
              walk_addr := (!walk_addr + 4096) land 0x1FF_FFFF;
              Sp_cache.Hierarchy.read hier !walk_addr));
      (* the full warm-replay stage over the 40k-insn fixture: carve
         four warm-prefixed regional pinballs, replay each (1500 warm +
         2000 measured insns) with fresh per-point tools — what the
         pipeline pays per warm point, capture included *)
      Test.make ~name:"warm-replay-4pt"
        (Staged.stage (fun () ->
             ignore
               (Pipeline.warm_replay_points Pipeline.default_options
                  ~warmup_insns:1_500 warm_whole warm_points)));
      (* full pinball encode of the 64-page image: what one artifact
         save pays before the bytes hit the filesystem *)
      Test.make ~name:"pinball-save-64p"
        (Staged.stage (fun () -> ignore (Sp_pinball.Store.encode pb64)));
      (* full validated decode (framing + CRC + every field) of the same
         bytes: what one cold artifact-cache hit pays *)
      Test.make ~name:"pinball-load-64p"
        (Staged.stage (fun () ->
             match Sp_pinball.Store.of_bytes encoded64 with
             | Ok _ -> ()
             | Error _ -> assert false));
      (* restore the 64-page snapshot and dirty every 10th page (the
         typical warm-replay write footprint): with copy-on-write
         snapshots the restore costs O(pages written), not O(image) *)
      Test.make ~name:"snapshot-restore-touch10"
        (Staged.stage (fun () ->
             let m = Sp_vm.Snapshot.restore snap64 in
             let p = ref 0 in
             while !p < 64 do
               Sp_vm.Memory.store m.Sp_vm.Interp.mem (!p * 4096 * 8) !p;
               p := !p + 10
             done));
      Test.make ~name:"crc32-1mb"
        (Staged.stage (fun () ->
             ignore (Sp_util.Crc32.string mb_string)));
      Test.make ~name:"projection-2000-slices"
        (Staged.stage
           (let slices =
              Array.init 2000 (fun i ->
                  {
                    Sp_pin.Bbv_tool.index = i;
                    start_icount = i * 100;
                    length = 100;
                    bbv = Array.init 20 (fun b -> (b * 3, 5));
                  })
            in
            fun () -> ignore (Sp_simpoint.Projection.project ~seed:1 slices)));
      (* the full stratified select tier over 2000 slices with five
         planted phases: projection + pilot k-means + Neyman allocation
         + within-stratum systematic draws — what `--sampler stratified`
         pays at the select stage *)
      Test.make ~name:"select-stratified-2000-slices"
        (Staged.stage
           (let slices =
              Array.init 2000 (fun i ->
                  {
                    Sp_pin.Bbv_tool.index = i;
                    start_icount = i * 100;
                    length = 100;
                    bbv =
                      Array.init 20 (fun b ->
                          ((b * 3) + (60 * (i mod 5)), 5));
                  })
            in
            fun () ->
              ignore
                (Sp_simpoint.Sampler.select Sp_simpoint.Sampler.Stratified
                   ~slice_len:100 slices)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances test in
    Analyze.all ols Instance.monotonic_clock raw
  in
  print_endline "Microbenchmarks (Bechamel, monotonic clock):";
  let strip_group name =
    match String.index_opt name '/' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let measured = ref [] in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ t ] ->
              let short = strip_group name in
              let delta =
                match
                  Option.bind baseline (fun b -> List.assoc_opt short b)
                with
                | Some old when old > 0.0 ->
                    Printf.sprintf "  (%+.1f%% vs recorded)"
                      ((t -. old) /. old *. 100.0)
                | Some _ | None -> ""
              in
              Printf.printf "  %-28s %12.1f ns/run%s\n%!" name t delta;
              measured := (short, t) :: !measured
          | _ -> Printf.printf "  %-28s (no estimate)\n%!" name)
        results)
    tests;
  (* --gate-all RATIO expands to one gate per micro in the recorded
     baseline (so micros added this run are gated from their next
     recording); explicit --gate flags keep their own ratio *)
  let gates =
    match gate_all with
    | None -> gates
    | Some ratio -> (
        match baseline with
        | None ->
            Printf.eprintf
              "[bench] --gate-all %g cannot run: no recorded baseline (%s \
               missing or unreadable); run `main.exe micro` on a known-good \
               tree and commit the file\n\
               %!"
              ratio json_file;
            exit 1
        | Some b ->
            gates
            @ List.filter_map
                (fun (name, _) ->
                  if List.mem_assoc name gates then None
                  else Some (name, ratio))
                b)
  in
  (* regression gates: each compares this run against the recorded
     baseline.  Exit codes follow the repo-wide convention: a missing
     baseline file or micro is bad input (exit 1, with a message naming
     what to fix); a measurement past its gate is a gate failure
     (exit 2). *)
  List.iter
    (fun (gname, ratio) ->
      let fail msg =
        Printf.eprintf "[bench] gate %s:%g cannot run: %s\n%!" gname ratio msg;
        exit 1
      in
      let b =
        match baseline with
        | None ->
            fail
              (Printf.sprintf
                 "no recorded baseline (%s missing or unreadable); run \
                  `main.exe micro` on a known-good tree and commit the file"
                 json_file)
        | Some b -> b
      in
      let old =
        match List.assoc_opt gname b with
        | None ->
            fail
              (Printf.sprintf "micro %S is not recorded in %s" gname json_file)
        | Some o -> o
      in
      let cur =
        match List.assoc_opt gname !measured with
        | None -> fail (Printf.sprintf "micro %S was not measured" gname)
        | Some c -> c
      in
      if cur > old *. ratio then begin
        Printf.eprintf
          "[bench] gate %s FAILED: %.1f ns/run vs recorded %.1f ns/run \
           (%.2fx, allowed %.2fx)\n\
           %!"
          gname cur old (cur /. old) ratio;
        exit 2
      end
      else
        Printf.printf "  gate %-21s OK: %.1f ns/run vs recorded %.1f (%.2fx \
                       <= %.2fx)\n%!"
          gname cur old (cur /. old) ratio)
    gates;
  (* machine-readable mirror of the report, so the perf trajectory of
     the interp/BBV/memory micros can be tracked across PRs *)
  let oc = open_out json_file in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "  %S: %.1f%s\n" name ns
        (if i = List.length !measured - 1 then "" else ","))
    (List.rev !measured);
  Printf.fprintf oc "}\n";
  close_out oc;
  Printf.printf "  (wrote %s: name -> ns/run)\n%!" json_file

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--help" args then usage ();
  let fast = List.mem "--fast" args in
  let quiet = List.mem "--quiet" args in
  let rec csv_dir = function
    | "--csv" :: dir :: _ -> Some dir
    | _ :: rest -> csv_dir rest
    | [] -> None
  in
  let csv_dir = csv_dir args in
  let rec trace_out = function
    | "--trace-out" :: file :: _ -> Some file
    | _ :: rest -> trace_out rest
    | [] -> None
  in
  let trace_out = trace_out args in
  let rec gates = function
    | "--gate" :: spec :: rest -> (
        let bad () =
          Printf.eprintf "bad --gate %S (want NAME:MAXRATIO, e.g. %s)\n" spec
            "interp-10k-insns:1.5";
          exit 1
        in
        match String.index_opt spec ':' with
        | None -> bad ()
        | Some i -> (
            let name = String.sub spec 0 i in
            let r = String.sub spec (i + 1) (String.length spec - i - 1) in
            match float_of_string_opt r with
            | Some ratio when ratio > 0.0 && name <> "" ->
                (name, ratio) :: gates rest
            | _ -> bad ()))
    | _ :: rest -> gates rest
    | [] -> []
  in
  let gates = gates args in
  let rec gate_all = function
    | "--gate-all" :: r :: _ -> (
        match float_of_string_opt r with
        | Some ratio when ratio > 0.0 -> Some ratio
        | _ ->
            Printf.eprintf "bad --gate-all %S (want MAXRATIO > 0, e.g. 1.5)\n"
              r;
            exit 1)
    | _ :: rest -> gate_all rest
    | [] -> None
  in
  let gate_all = gate_all args in
  let jobs =
    let rec from_args = function
      | "--jobs" :: n :: _ -> int_of_string_opt n
      | _ :: rest -> from_args rest
      | [] -> None
    in
    let from_env () =
      Option.bind (Sys.getenv_opt "SPECREPRO_JOBS") int_of_string_opt
    in
    match (from_args args, from_env ()) with
    | Some n, _ | None, Some n ->
        if n <= 0 then Sp_util.Pool.default_jobs () else n
    | None, None -> 1
  in
  let wanted =
    let rec strip = function
      | "--csv" :: _ :: rest | "--jobs" :: _ :: rest
      | "--trace-out" :: _ :: rest | "--gate" :: _ :: rest
      | "--gate-all" :: _ :: rest ->
          strip rest
      | a :: rest when String.length a > 1 && a.[0] = '-' -> strip rest
      | a :: rest -> a :: strip rest
      | [] -> []
    in
    strip args
  in
  let wanted =
    if wanted = [] then
      if gates <> [] || gate_all <> None then [ "micro" ]
      else all_experiments
    else wanted
  in
  List.iter
    (fun w ->
      if not (List.mem w all_experiments) then begin
        Printf.eprintf "unknown experiment %S\n" w;
        exit 1
      end)
    wanted;
  let options =
    {
      Pipeline.default_options with
      slices_scale = (if fast then 0.25 else 1.0);
      progress = not quiet;
      jobs;
    }
  in
  let suite_results = lazy (Pipeline.run_suite ~options ()) in
  let t0 = Unix.gettimeofday () in
  (* print each table; optionally also write it as CSV under --csv DIR *)
  let emit name tables =
    List.iteri
      (fun i table ->
        Sp_util.Table.print table;
        match csv_dir with
        | None -> ()
        | Some dir ->
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let file =
              if i = 0 then name ^ ".csv"
              else Printf.sprintf "%s-%d.csv" name (i + 1)
            in
            let oc = open_out (Filename.concat dir file) in
            output_string oc (Sp_util.Table.to_csv table);
            close_out oc)
      tables
  in
  if trace_out <> None then Sp_obs.Tracer.enable ();
  List.iter
    (fun name ->
      print_newline ();
      Sp_obs.Tracer.with_span ~cat:"experiment" name @@ fun () ->
      (match name with
      | "table1" -> emit name [ Experiments.table1 () ]
      | "table2" -> emit name [ Experiments.table2 (Lazy.force suite_results) ]
      | "table2x" -> emit name [ Experiments.table2_extended ~options () ]
      | "table3" -> print_endline (Experiments.table3 ())
      | "fig3a" -> emit name [ Experiments.fig3a ~options () ]
      | "fig3b" -> emit name [ Experiments.fig3b ~options () ]
      | "fig4" ->
          emit name [ Experiments.fig4 (Lazy.force suite_results) ];
          print_endline (Experiments.fig4_chart (Lazy.force suite_results))
      | "fig5" -> emit name [ Experiments.fig5 (Lazy.force suite_results) ]
      | "fig6" -> emit name [ Experiments.fig6 (Lazy.force suite_results) ]
      | "fig7" -> emit name [ Experiments.fig7 (Lazy.force suite_results) ]
      | "fig8" -> emit name [ Experiments.fig8 (Lazy.force suite_results) ]
      | "fig9" ->
          emit name [ Experiments.fig9 (Lazy.force suite_results) ];
          print_endline (Experiments.fig9_chart (Lazy.force suite_results))
      | "fig10" -> emit name [ Experiments.fig10 (Lazy.force suite_results) ]
      | "fig12" -> emit name [ Experiments.fig12 (Lazy.force suite_results) ]
      | "ablation-bic" -> emit name [ Experiments.ablation_bic ~options () ]
      | "ablation-proj" ->
          emit name [ Experiments.ablation_projection ~options () ]
      | "ablation-warmup" ->
          emit name
            [ Experiments.ablation_warmup ~options (Lazy.force suite_results) ]
      | "ablation-prefetch" ->
          emit name [ Experiments.ablation_prefetch ~options () ]
      | "ablation-roi" -> emit name [ Experiments.ablation_roi ~options () ]
      | "sampling" -> emit name [ Experiments.sampling ~options () ]
      | "samplers" -> emit name [ Experiments.samplers ~options () ]
      | "smarts" -> emit name [ Experiments.smarts ~options () ]
      | "vli" -> emit name [ Experiments.vli ~options () ]
      | "subset" ->
          let vars, clusters = Experiments.subset (Lazy.force suite_results) in
          emit name [ vars; clusters ]
      | "statcache" -> emit name [ Experiments.statcache ~options () ]
      | "cpistack" ->
          emit name [ Experiments.cpistack (Lazy.force suite_results) ]
      | "timevary" -> print_endline (Experiments.timevary ~options ())
      | "models" -> emit name [ Experiments.models ~options () ]
      | "rate" -> emit name [ Experiments.rate ~options () ]
      | "headlines" ->
          let t =
            Sp_util.Table.create
              ~title:"Headline claims: paper vs this reproduction"
              [
                ("Metric", Sp_util.Table.Left);
                ("Paper", Sp_util.Table.Right);
                ("Measured", Sp_util.Table.Right);
              ]
          in
          List.iter
            (fun (h : Experiments.headline) ->
              Sp_util.Table.add_row t [ h.metric; h.paper; h.measured ])
            (Experiments.headlines (Lazy.force suite_results));
          emit name [ t ]
      | "micro" -> micro ~gates ?gate_all ()
      | _ -> assert false))
    wanted;
  (match trace_out with
  | None -> ()
  | Some file ->
      Sp_obs.Tracer.write file;
      if not quiet then
        Printf.eprintf "[bench] wrote %d spans to %s\n%!"
          (Sp_obs.Tracer.span_count ()) file);
  if not quiet then
    Printf.eprintf "\n[bench] total wall time %.1fs\n%!"
      (Unix.gettimeofday () -. t0)
