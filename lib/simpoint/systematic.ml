type design = { period : int; offset : int }

let design_for_budget ~num_slices ~budget =
  if budget < 1 || num_slices < 1 then
    invalid_arg "Systematic.design_for_budget";
  (* ceiling division: a floor period of num_slices/budget realises up
     to budget + period - 1 samples (10 slices at budget 4 gave period 2
     and 5 samples), overshooting the requested budget *)
  let period = max 1 ((num_slices + budget - 1) / budget) in
  { period; offset = period / 2 }

let sample_indices d ~num_slices =
  let rec count acc i = if i >= num_slices then acc else count (acc + 1) (i + d.period) in
  let n = count 0 d.offset in
  Array.init n (fun k -> d.offset + (k * d.period))

type estimate = {
  samples : int;
  mean : float;
  std_error : float;
  ci95_half : float;
  rel_ci95 : float;
}

let estimate xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Systematic.estimate: empty sample";
  let mean = Sp_util.Stats.mean xs in
  let var =
    (* unbiased sample variance *)
    if n < 2 then 0.0
    else Sp_util.Stats.variance xs *. float_of_int n /. float_of_int (n - 1)
  in
  let std_error = sqrt (var /. float_of_int n) in
  let ci95_half = 1.96 *. std_error in
  {
    samples = n;
    mean;
    std_error;
    ci95_half;
    rel_ci95 = (if mean = 0.0 then 0.0 else ci95_half /. Float.abs mean);
  }

let required_samples ~cv ~target_rel_ci =
  if target_rel_ci <= 0.0 then invalid_arg "Systematic.required_samples";
  max 1 (int_of_float (Float.ceil ((1.96 *. cv /. target_rel_ci) ** 2.0)))
