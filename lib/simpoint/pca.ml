type result = {
  components : float array array;
  eigenvalues : float array;
  explained : float array;
  scores : float array array;
  means : float array;
  stddevs : float array;
}

let check_matrix data =
  let n = Array.length data in
  if n = 0 then invalid_arg "Pca: empty matrix";
  let d = Array.length data.(0) in
  if d = 0 then invalid_arg "Pca: empty rows";
  Array.iter
    (fun row -> if Array.length row <> d then invalid_arg "Pca: ragged matrix")
    data;
  (n, d)

let column_stats data =
  let n, d = check_matrix data in
  let nf = float_of_int n in
  let means = Array.make d 0.0 in
  Array.iter (fun row -> Array.iteri (fun j x -> means.(j) <- means.(j) +. x) row) data;
  Array.iteri (fun j s -> means.(j) <- s /. nf) means;
  let vars = Array.make d 0.0 in
  Array.iter
    (fun row ->
      Array.iteri
        (fun j x ->
          let dx = x -. means.(j) in
          vars.(j) <- vars.(j) +. (dx *. dx))
        row)
    data;
  let stddevs = Array.map (fun v -> sqrt (v /. nf)) vars in
  (means, stddevs)

let standardize data =
  let means, stddevs = column_stats data in
  Array.map
    (fun row ->
      Array.mapi
        (fun j x ->
          if stddevs.(j) <= 0.0 then 0.0 else (x -. means.(j)) /. stddevs.(j))
        row)
    data

(* Cyclic Jacobi rotations; d is small (~10), convergence is fast. *)
let jacobi_eigen m =
  let d = Array.length m in
  let a = Array.map Array.copy m in
  let v = Array.init d (fun i -> Array.init d (fun j -> if i = j then 1.0 else 0.0)) in
  let off () =
    let s = ref 0.0 in
    for i = 0 to d - 1 do
      for j = 0 to d - 1 do
        if i <> j then s := !s +. (a.(i).(j) *. a.(i).(j))
      done
    done;
    !s
  in
  let sweeps = ref 0 in
  while off () > 1e-18 && !sweeps < 100 do
    incr sweeps;
    for p = 0 to d - 2 do
      for q = p + 1 to d - 1 do
        if Float.abs a.(p).(q) > 1e-20 then begin
          let theta = (a.(q).(q) -. a.(p).(p)) /. (2.0 *. a.(p).(q)) in
          let t =
            let s = if theta >= 0.0 then 1.0 else -1.0 in
            s /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          for k = 0 to d - 1 do
            let akp = a.(k).(p) and akq = a.(k).(q) in
            a.(k).(p) <- (c *. akp) -. (s *. akq);
            a.(k).(q) <- (s *. akp) +. (c *. akq)
          done;
          for k = 0 to d - 1 do
            let apk = a.(p).(k) and aqk = a.(q).(k) in
            a.(p).(k) <- (c *. apk) -. (s *. aqk);
            a.(q).(k) <- (s *. apk) +. (c *. aqk)
          done;
          for k = 0 to d - 1 do
            let vkp = v.(k).(p) and vkq = v.(k).(q) in
            v.(k).(p) <- (c *. vkp) -. (s *. vkq);
            v.(k).(q) <- (s *. vkp) +. (c *. vkq)
          done
        end
      done
    done
  done;
  let eigenvalues = Array.init d (fun i -> a.(i).(i)) in
  (* eigenvectors as rows *)
  let vectors = Array.init d (fun i -> Array.init d (fun k -> v.(k).(i))) in
  (eigenvalues, vectors)

let fit ?components data =
  let n, d = check_matrix data in
  let k = min d (Option.value ~default:d components) in
  let means, stddevs = column_stats data in
  let z = standardize data in
  let nf = float_of_int n in
  (* The O(n*d^2) covariance accumulation walks the standardised matrix
     once per (i, j) pair; a flat row-major copy keeps those walks on
     sequential cache lines instead of chasing row pointers.  Summation
     stays in row order (and IEEE multiplication commutes exactly), so
     filling j >= i and mirroring yields bit-identical entries to the
     full nested scan. *)
  let zf = Array.make (n * d) 0.0 in
  for r = 0 to n - 1 do
    Array.blit z.(r) 0 zf (r * d) d
  done;
  let cov = Array.init d (fun _ -> Array.make d 0.0) in
  for i = 0 to d - 1 do
    for j = i to d - 1 do
      let s = ref 0.0 in
      for r = 0 to n - 1 do
        s :=
          !s +. (Array.unsafe_get zf ((r * d) + i) *. Array.unsafe_get zf ((r * d) + j))
      done;
      let c = !s /. nf in
      cov.(i).(j) <- c;
      cov.(j).(i) <- c
    done
  done;
  let eigenvalues, vectors = jacobi_eigen cov in
  let order = Array.init d (fun i -> i) in
  Array.sort (fun a b -> compare eigenvalues.(b) eigenvalues.(a)) order;
  let eigenvalues = Array.init k (fun i -> Float.max 0.0 eigenvalues.(order.(i))) in
  let components = Array.init k (fun i -> vectors.(order.(i))) in
  (* trace of the covariance = total variance of the standardised data *)
  let total =
    let tr = ref 0.0 in
    for i = 0 to d - 1 do
      tr := !tr +. cov.(i).(i)
    done;
    Float.max 1e-12 !tr
  in
  let explained = Array.map (fun e -> e /. total) eigenvalues in
  let scores =
    Array.map
      (fun row ->
        Array.map
          (fun comp ->
            let s = ref 0.0 in
            Array.iteri (fun j c -> s := !s +. (c *. row.(j))) comp;
            !s)
          components)
      z
  in
  { components; eigenvalues; explained; scores; means; stddevs }
