(** Simulation-point selection: the SimPoint methodology end-to-end.

    Input: the per-slice Basic Block Vectors of a whole execution.
    Output: a set of representative slices (simulation points), each
    with the weight of its phase (cluster population share), plus the
    clustering metadata the experiments inspect. *)

type config = {
  max_k : int;          (** maximum number of clusters (paper: 35) *)
  proj_dim : int;       (** random-projection dimensionality (15) *)
  bic_threshold : float;(** BIC range fraction for choosing k (0.7 here; see simpoints.ml) *)
  kmeans_iters : int;   (** Lloyd iteration cap *)
  sample_cap : int;     (** max slices used to fit centroids; the full
                            set is always assigned and weighted *)
  seed : int;           (** master seed for projection and seeding *)
  jobs : int;           (** domain-pool width for k-means and the BIC
                            sweep (1 = sequential; results are
                            identical for every value) *)
}

val default_config : config

type point = {
  cluster : int;
  slice_index : int;    (** index of the representative slice *)
  start_icount : int;   (** dynamic-instruction offset of that slice *)
  length : int;         (** slice length in instructions *)
  weight : float;       (** fraction of all slices in this cluster *)
}

type t = {
  config : config;
  slice_len : int;
  num_slices : int;
  chosen_k : int;
  points : point array;     (** one per non-empty cluster, by cluster id *)
  assignment : int array;   (** cluster id per slice *)
  projected : float array array; (** projected slice vectors (for variance) *)
  bic_curve : (int * float) list; (** (k, BIC) at each evaluated k *)
}

val select : ?config:config -> ?projected:float array array ->
  slice_len:int -> Sp_pin.Bbv_tool.slice array -> t
(** Run projection, the BIC-guided search for k, and representative
    selection.  [projected] short-circuits the projection step with a
    precomputed matrix (it must be the deterministic
    {!Projection.project} of [slices] under [config]; the {!Sampler}
    driver uses this to project once and share the matrix across
    sampler implementations without changing any result).
    @raise Invalid_argument if there are no slices. *)

val select_with_k : ?config:config -> ?projected:float array array ->
  slice_len:int -> k:int -> Sp_pin.Bbv_tool.slice array -> t
(** Like {!select} but with a forced cluster count (used by the MaxK
    sensitivity sweep). *)

val subsample : int -> 'a array -> 'a array
(** [subsample cap xs] is [xs] when it has at most [cap] elements, and
    otherwise [cap] elements picked by the exact integer stride
    [i * n / cap] — indices strictly increasing, in bounds, with the
    last pick falling inside the final stride.  (Used to bound the
    k-means fitting set; exposed for the property tests.) *)

val reduce : t -> coverage:float -> point array
(** Highest-weight points whose cumulative weight reaches [coverage]
    (e.g. 0.9 for the paper's "90th percentile" runs), sorted by
    descending weight. *)

val total_weight : point array -> float

val pp_point : Format.formatter -> point -> unit
