let default_dim = 15

(* SplitMix64-style finaliser over the packed coordinates. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let matrix_entry ~seed ~block ~dim =
  let packed =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.of_int ((block * 1024) + dim))
  in
  let bits = Int64.shift_right_logical (mix packed) 11 in
  (Int64.to_float bits /. 9007199254740992.0 *. 2.0) -. 1.0

let project ?(dim = default_dim) ~seed (slices : Sp_pin.Bbv_tool.slice array) =
  (* The same static block appears in most slices, so hashing the
     matrix entries per (slice, block) visit recomputes each row
     hundreds of times.  Memoise rows in one flat array, filled lazily
     on first touch; the accumulation loop below is unchanged (same
     visit order, same adds), so the output is bit-identical to
     hashing inline. *)
  let max_block = ref (-1) in
  Array.iter
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      Array.iter
        (fun (block, _) -> if block > !max_block then max_block := block)
        s.bbv)
    slices;
  let rows = Array.make ((!max_block + 1) * dim) 0.0 in
  let have = Array.make (!max_block + 1) false in
  Array.map
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      let v = Array.make dim 0.0 in
      let total = float_of_int s.length in
      if total > 0.0 then
        Array.iter
          (fun (block, count) ->
            let w = float_of_int count /. total in
            let base = block * dim in
            if not (Array.unsafe_get have block) then begin
              for d = 0 to dim - 1 do
                Array.unsafe_set rows (base + d)
                  (matrix_entry ~seed ~block ~dim:d)
              done;
              Array.unsafe_set have block true
            end;
            for d = 0 to dim - 1 do
              Array.unsafe_set v d
                (Array.unsafe_get v d
                +. (w *. Array.unsafe_get rows (base + d)))
            done)
          s.bbv;
      v)
    slices
