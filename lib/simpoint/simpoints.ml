type config = {
  max_k : int;
  proj_dim : int;
  bic_threshold : float;
  kmeans_iters : int;
  sample_cap : int;
  seed : int;
  jobs : int;
}

let default_config =
  {
    max_k = 35;
    proj_dim = Projection.default_dim;
    (* SimPoint 3.0 ships with 0.9; our scaled-down slices carry far less
       within-phase BBV noise than 30M-instruction slices, which keeps
       the BIC curve rising gently long after the true phase count, so
       the knee sits lower in the range.  0.7 reproduces the paper's
       Table II cluster counts across the suite. *)
    bic_threshold = 0.7;
    kmeans_iters = 50;
    sample_cap = 3000;
    seed = 20190101;
    jobs = 1;
  }

type point = {
  cluster : int;
  slice_index : int;
  start_icount : int;
  length : int;
  weight : float;
}

type t = {
  config : config;
  slice_len : int;
  num_slices : int;
  chosen_k : int;
  points : point array;
  assignment : int array;
  projected : float array array;
  bic_curve : (int * float) list;
}

(* Exact integer arithmetic: i * n / cap for i < cap yields cap strictly
   increasing in-bounds indices whose last pick falls in the final stride
   [(cap-1) * n / cap, n).  The float-stride form this replaces could
   round two picks onto the same index and never reached the tail. *)
let subsample cap points =
  let n = Array.length points in
  if n <= cap then points else Array.init cap (fun i -> points.(i * n / cap))

(* Fit on the (sub)sample, then produce a full-set clustering result. *)
let cluster config ~k projected sample =
  let fitted =
    Kmeans.fit ~max_iters:config.kmeans_iters ~seed:(config.seed + k)
      ~jobs:config.jobs ~k sample
  in
  if sample == projected then fitted
  else begin
    let assignment =
      Kmeans.assign ~jobs:config.jobs ~centroids:fitted.centroids projected
    in
    let sizes = Array.make fitted.k 0 in
    let distortion = ref 0.0 in
    Array.iteri
      (fun i j ->
        sizes.(j) <- sizes.(j) + 1;
        distortion :=
          !distortion +. Kmeans.sq_distance projected.(i) fitted.centroids.(j))
      assignment;
    { fitted with assignment; sizes; distortion = !distortion }
  end

let representatives (slices : Sp_pin.Bbv_tool.slice array) projected
    (r : Kmeans.result) =
  let n = Array.length projected in
  let best = Array.make r.k (-1) in
  let best_d = Array.make r.k infinity in
  for i = 0 to n - 1 do
    let j = r.assignment.(i) in
    let d = Kmeans.sq_distance projected.(i) r.centroids.(j) in
    if d < best_d.(j) then begin
      best_d.(j) <- d;
      best.(j) <- i
    end
  done;
  let nf = float_of_int n in
  let points = ref [] in
  for j = r.k - 1 downto 0 do
    if best.(j) >= 0 then begin
      let s = slices.(best.(j)) in
      points :=
        {
          cluster = j;
          slice_index = best.(j);
          start_icount = s.Sp_pin.Bbv_tool.start_icount;
          length = s.Sp_pin.Bbv_tool.length;
          weight = float_of_int r.sizes.(j) /. nf;
        }
        :: !points
    end
  done;
  Array.of_list !points

let build config ~slice_len slices projected result bic_curve =
  {
    config;
    slice_len;
    num_slices = Array.length slices;
    chosen_k = result.Kmeans.k;
    points = representatives slices projected result;
    assignment = result.Kmeans.assignment;
    projected;
    bic_curve;
  }

let project_or ~config projected slices =
  match projected with
  | Some p -> p
  | None -> Projection.project ~dim:config.proj_dim ~seed:config.seed slices

let select_with_k ?(config = default_config) ?projected ~slice_len ~k slices =
  if Array.length slices = 0 then invalid_arg "Simpoints.select_with_k: no slices";
  let projected = project_or ~config projected slices in
  let sample = subsample config.sample_cap projected in
  let result = cluster config ~k projected sample in
  let bic = Bic.score result projected in
  build config ~slice_len slices projected result [ (k, bic) ]

(* SimPoint 3.0's policy: score k=1 and k=maxK, then binary-search the
   smallest k whose BIC reaches threshold of the [low, high] range. *)
let select ?(config = default_config) ?projected ~slice_len slices =
  if Array.length slices = 0 then invalid_arg "Simpoints.select: no slices";
  let projected = project_or ~config projected slices in
  let sample = subsample config.sample_cap projected in
  let max_k = min config.max_k (Array.length slices) in
  let cache = Hashtbl.create 16 in
  let compute k =
    let result = cluster config ~k projected sample in
    (result, Bic.score result projected)
  in
  (* [demanded] records the ks the sequential search logic actually
     asked for, as opposed to ks whose fits were merely precomputed
     speculatively.  The published BIC curve is built from the demanded
     set only, so selection output is bit-identical at every job
     count. *)
  let demanded = Hashtbl.create 16 in
  let eval k =
    Hashtbl.replace demanded k ();
    match Hashtbl.find_opt cache k with
    | Some v -> v
    | None ->
        let v = compute k in
        Hashtbl.add cache k v;
        v
  in
  (* Warm the cache for [ks] through the pool.  Each [compute] is
     deterministic in k alone, so precomputing a fit (whether it ends
     up demanded or not) changes nothing downstream. *)
  let warm ks =
    match
      List.sort_uniq compare
        (List.filter (fun k -> not (Hashtbl.mem cache k)) ks)
    with
    | [] -> ()
    | ks ->
        Sp_util.Pool.parallel_map ~jobs:config.jobs
          (fun k -> (k, compute k))
          (Array.of_list ks)
        |> Array.iter (fun (k, v) -> Hashtbl.replace cache k v)
  in
  (* The binary search's probes are data-dependent (each depends on the
     previous BIC), but its two anchors k=1 and k=max_k are
     independent: dispatch them through the pool. *)
  if config.jobs > 1 && max_k > 1 then warm [ 1; max_k ];
  let _, bic_lo = eval 1 in
  let _, bic_hi = eval max_k in
  let target = bic_lo +. (config.bic_threshold *. (bic_hi -. bic_lo)) in
  let rec search lo hi =
    (* invariant: bic(hi) >= target, lo < hi means candidates remain *)
    if lo >= hi then hi
    else begin
      let mid = (lo + hi) / 2 in
      (* Speculative probes: this round needs bic(mid), and the next
         round needs one of the two possible midpoints of the halved
         interval.  Fitting all three concurrently hides the next
         round's fit behind this one; the probe that goes unused only
         warmed the cache. *)
      if config.jobs > 1 then
        warm [ mid; (lo + mid) / 2; (mid + 1 + hi) / 2 ];
      let _, bic = eval mid in
      if bic >= target then search lo mid else search (mid + 1) hi
    end
  in
  let chosen = if bic_hi <= bic_lo then 1 else search 1 max_k in
  let result, _ = eval chosen in
  let curve =
    Hashtbl.fold
      (fun k () acc -> (k, snd (Hashtbl.find cache k)) :: acc)
      demanded []
    |> List.sort compare
  in
  build config ~slice_len slices projected result curve

let total_weight points = Array.fold_left (fun acc p -> acc +. p.weight) 0.0 points

let reduce t ~coverage =
  let sorted = Array.copy t.points in
  Array.sort (fun a b -> compare b.weight a.weight) sorted;
  let acc = ref 0.0 in
  let keep = ref [] in
  (try
     Array.iter
       (fun p ->
         if !acc >= coverage then raise Exit;
         keep := p :: !keep;
         acc := !acc +. p.weight)
       sorted
   with Exit -> ());
  Array.of_list (List.rev !keep)

let pp_point ppf p =
  Format.fprintf ppf "cluster %d: slice %d @%d (+%d insns), weight %.4f"
    p.cluster p.slice_index p.start_icount p.length p.weight
