type sweep_point = {
  k : int;
  avg_variance : float;
  max_variance : float;
  distortion : float;
}

let at_k ?(config = Simpoints.default_config) ~k slices =
  let t = Simpoints.select_with_k ~config ~slice_len:1 ~k slices in
  let result : Kmeans.result =
    (* rebuild a Kmeans.result view from the selection for variance *)
    let k' = t.Simpoints.chosen_k in
    let centroids =
      (* centroid = mean of member points *)
      let dim = Array.length t.Simpoints.projected.(0) in
      let sums = Array.init k' (fun _ -> Array.make dim 0.0) in
      let sizes = Array.make k' 0 in
      Array.iteri
        (fun i j ->
          sizes.(j) <- sizes.(j) + 1;
          let p = t.Simpoints.projected.(i) in
          let s = sums.(j) in
          for x = 0 to dim - 1 do
            s.(x) <- s.(x) +. p.(x)
          done)
        t.Simpoints.assignment;
      Array.mapi
        (fun j s ->
          if sizes.(j) = 0 then s
          else Array.map (fun x -> x /. float_of_int sizes.(j)) s)
        sums
    in
    let sizes = Array.make k' 0 in
    Array.iter (fun j -> sizes.(j) <- sizes.(j) + 1) t.Simpoints.assignment;
    let distortion = ref 0.0 in
    Array.iteri
      (fun i j ->
        distortion :=
          !distortion +. Kmeans.sq_distance t.Simpoints.projected.(i) centroids.(j))
      t.Simpoints.assignment;
    {
      Kmeans.k = k';
      assignment = t.Simpoints.assignment;
      centroids;
      sizes;
      distortion = !distortion;
    }
  in
  let variances = Kmeans.within_cluster_variance result t.Simpoints.projected in
  let nonempty = Array.of_list (List.filter (fun v -> v >= 0.0) (Array.to_list variances)) in
  {
    k = result.Kmeans.k;
    avg_variance = Sp_util.Stats.mean nonempty;
    max_variance = Array.fold_left Float.max 0.0 variances;
    distortion = result.Kmeans.distortion;
  }

(* Each k is an independent clustering problem; fan the sweep out
   across the domain pool (input order is preserved). *)
let sweep ?(config = Simpoints.default_config) ~ks slices =
  Sp_util.Pool.parallel_map ~jobs:config.Simpoints.jobs
    (fun k -> at_k ~config ~k slices)
    (Array.of_list ks)
  |> Array.to_list
