(** Pluggable simulation-point samplers.

    The pipeline's select stage asks one question — "which slices do we
    simulate, and with what weights?" — and the paper's verdict on
    statistical sampling depends on which methodology answers it.  This
    module abstracts that choice behind a single signature so SimPoint
    clustering, SMARTS-style systematic sampling and Ekman's two
    survey-sampling refinements (two-phase stratified sampling,
    arXiv:2603.22605; ranked-set sampling with repeated subsampling,
    arXiv:2603.22598) are interchangeable tiers: every implementation
    consumes the same projected BBV slice matrix and produces weighted
    points plus method-specific diagnostics, and everything downstream
    of select (replay, warm replay, aggregation) is sampler-agnostic.

    All four built-in implementations are registered at module-load
    time; {!register} lets out-of-tree methodologies join the same
    registry.  Every implementation is deterministic in (input, seed)
    and bit-identical for every [jobs] value. *)

type kind =
  | Simpoint  (** k-means phase clustering with BIC-guided k (the default) *)
  | Systematic  (** periodic SMARTS/SimFlex design via {!Systematic} *)
  | Stratified
      (** Ekman two-phase stratified sampling: a cheap pilot clustering
          stratifies the slices, the budget is Neyman-allocated across
          strata, and each stratum is sampled systematically *)
  | Rss
      (** ranked-set sampling: candidate sets are ranked by an auxiliary
          phase variable and rank-representative slices selected; the
          draw is repeated to attach an empirical variance estimate *)

val all_kinds : kind list
(** The four built-in samplers, in registration order. *)

val name : kind -> string
(** CLI name: ["simpoint"], ["systematic"], ["stratified"], ["rss"]. *)

val of_name : string -> (kind, string) result
(** Inverse of {!name}; [Error] carries a human-readable message
    listing the valid names. *)

val kind_enum : (string * kind) list
(** [(name, kind)] pairs for a cmdliner [Arg.enum]. *)

type input = {
  slices : Sp_pin.Bbv_tool.slice array;  (** per-slice metadata *)
  projected : float array array;
      (** random-projected BBV matrix, one row per slice (computed once
          by {!select} and shared by every implementation) *)
  slice_weights : float array;
      (** per-slice share of retired instructions; sums to 1 *)
  slice_len : int;  (** nominal slice length in instructions *)
  budget : int;
      (** maximum number of simulation points the sampler may select
          (SimPoint treats it as its cluster cap [max_k]) *)
  config : Simpoints.config;  (** seed / jobs / clustering knobs *)
}

type output = {
  kind : kind;
  points : Simpoints.point array;
      (** selected slices; in-bounds, deduplicated, weights sum to 1 *)
  groups : int;
      (** method-specific group count: clusters (SimPoint), realised
          samples (systematic), strata (stratified), rank positions
          (RSS) — surfaced as [chosen_k] in pipeline summaries *)
  bic_curve : (int * float) list;
      (** (k, BIC) pairs; non-empty only for the SimPoint path *)
  diagnostics : (string * float) list;
      (** method-specific named diagnostics (period, strata sizes,
          repeated-subsampling variance, ...) in a fixed order *)
}

module type S = sig
  val kind : kind
  val run : input -> output
end

val register : (module S) -> unit
(** Register (or replace) the implementation for a kind. *)

val implementation : kind -> (module S)
(** Look up the registered implementation.
    @raise Invalid_argument if none is registered. *)

val select :
  ?config:Simpoints.config ->
  ?budget:int ->
  kind ->
  slice_len:int ->
  Sp_pin.Bbv_tool.slice array ->
  output
(** Project the slices once ({!Projection.project} under [config]) and
    run the registered implementation for [kind].  [budget] defaults to
    [config.max_k], making every sampler comparable to SimPoint's
    cluster cap; it is clamped to [1, num_slices].  The [Simpoint] path
    is bit-identical to calling {!Simpoints.select} directly.
    @raise Invalid_argument if there are no slices. *)
