type result = {
  k : int;
  assignment : int array;
  centroids : float array array;
  sizes : int array;
  distortion : float;
}

let sq_distance a b =
  let d = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let x = Array.unsafe_get a i -. Array.unsafe_get b i in
    d := !d +. (x *. x)
  done;
  !d

(* Points and centroids live row-major in flat float arrays ([i*dim ..
   i*dim+dim-1] is row [i]): one allocation, no per-row indirection, and
   the Lloyd inner loops walk memory sequentially.

   All distance computations below accumulate coordinate squares in
   index order with the exact operation sequence of {!sq_distance}, so
   every produced value is bit-identical to the nested-array code. *)

let flatten rows dim =
  let n = Array.length rows in
  let flat = Array.make (if n * dim = 0 then 1 else n * dim) 0.0 in
  for i = 0 to n - 1 do
    Array.blit rows.(i) 0 flat (i * dim) dim
  done;
  flat

let sqd_flat a ao b bo dim =
  let d = ref 0.0 in
  for x = 0 to dim - 1 do
    let v = Array.unsafe_get a (ao + x) -. Array.unsafe_get b (bo + x) in
    d := !d +. (v *. v)
  done;
  !d

(* Exhaustive nearest-centroid scan over flat rows: candidates in index
   order under a strict [<] update, so ties keep the lowest index —
   the selection contract every pruned path below must reproduce. *)
let nearest_flat cents k pts po dim =
  let best = ref 0 in
  let best_d = ref (sqd_flat pts po cents 0 dim) in
  for j = 1 to k - 1 do
    let d = sqd_flat pts po cents (j * dim) dim in
    if d < !best_d then begin
      best_d := d;
      best := j
    end
  done;
  (!best, !best_d)

let assign ?jobs ~centroids points =
  let n = Array.length points in
  if n = 0 then [||]
  else begin
    let k = Array.length centroids in
    if k = 0 then Array.make n 0
    else begin
      let dim = Array.length points.(0) in
      let pts = flatten points dim in
      let cents = flatten centroids dim in
      let out = Array.make n 0 in
      Sp_util.Pool.parallel_for ?jobs ~n (fun lo hi ->
          for i = lo to hi - 1 do
            out.(i) <- fst (nearest_flat cents k pts (i * dim) dim)
          done);
      out
    end
  end

(* Smallest [i] with [prefix.(i) >= target], or [n-1] when the target
   overshoots the last entry — exactly the index the linear
   accumulate-and-compare scan picks, because [prefix] holds that scan's
   accumulator values (same summation order) and they are non-decreasing
   (float addition of non-negative weights is monotone), which is what
   makes the binary search sound. *)
let weighted_pick prefix target =
  let n = Array.length prefix in
  if n = 0 then invalid_arg "Kmeans.weighted_pick: empty prefix";
  if prefix.(n - 1) < target then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: prefix.(hi) >= target, and prefix.(lo-1) < target *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if prefix.(mid) >= target then hi := mid else lo := mid + 1
    done;
    !lo
  end

(* k-means++ seeding: first centroid uniform, then each next centroid
   drawn with probability proportional to squared distance to the
   nearest chosen centroid.  [total] tracks the sum of [d2]
   incrementally: entries only ever shrink when a new centroid gets
   closer, so the running total is adjusted by each delta instead of
   re-summing the whole array per centroid.  The draw itself builds the
   prefix-sum of [d2] (same accumulation order as the old linear scan)
   and binary-searches it, selecting the same index for the same RNG
   draw. *)
let seed_plus_plus rng k pts n dim =
  let cents = Array.make (k * dim) 0.0 in
  let first = Sp_util.Rng.int rng n in
  Array.blit pts (first * dim) cents 0 dim;
  let total = ref 0.0 in
  let d2 = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let d = sqd_flat pts (i * dim) cents 0 dim in
    total := !total +. d;
    d2.(i) <- d
  done;
  let prefix = Array.make n 0.0 in
  for j = 1 to k - 1 do
    (* the running total can drift a hair below zero once all
       distances collapse; treat that as exhausted *)
    let mass = Float.max 0.0 !total in
    let chosen =
      if mass <= 0.0 then Sp_util.Rng.int rng n
      else begin
        let target = Sp_util.Rng.float rng mass in
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          acc := !acc +. d2.(i);
          prefix.(i) <- !acc
        done;
        weighted_pick prefix target
      end
    in
    Array.blit pts (chosen * dim) cents (j * dim) dim;
    let cj = j * dim in
    for i = 0 to n - 1 do
      let d = sqd_flat pts (i * dim) cents cj dim in
      if d < d2.(i) then begin
        total := !total -. (d2.(i) -. d);
        d2.(i) <- d
      end
    done
  done;
  cents

let fit ?(max_iters = 50) ?(seed = 42) ?(jobs = 1) ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.fit: no points";
  if k < 1 then invalid_arg "Kmeans.fit: k < 1";
  let k = min k n in
  let dim = Array.length points.(0) in
  let pts = flatten points dim in
  let rng = Sp_util.Rng.create seed in
  let cents = seed_plus_plus rng k pts n dim in
  let assignment = Array.make n (-1) in
  let sizes = Array.make k 0 in
  let sums = Array.make (k * dim) 0.0 in
  let distortion = ref 0.0 in
  let changed = ref true in
  let iters = ref 0 in
  (* The O(n*k*dim) nearest-centroid search dominates a Lloyd round and
     is pure per point, so it fans out across the domain pool into
     per-point [best_j]/[best_d] slots.  The O(n*dim) accumulation of
     sizes/sums/distortion stays sequential in point order: summing
     per-domain float partials would round differently per job count,
     and simulation-point selection must be bit-for-bit identical
     whether jobs is 1 or 16. *)
  let best_j = Array.make n 0 in
  let best_d = Array.make n 0.0 in
  (* Elkan-style lower-bound pruning state (invariants in DESIGN.md
     §5g).  [lsq.(i*k+j)] is the exact squared distance from point [i]
     to centroid [j] as last computed, and [dbase.(i*k+j)] the value of
     [cum.(j)] at that moment; [cum.(j)] is a running over-estimate of
     centroid [j]'s total Euclidean drift (each per-round displacement
     is inflated by 1e-7 before accumulating, swamping every rounding
     error in the sqrt and the sum).  By the triangle inequality the
     current distance is at least [sqrt lsq - (cum - dbase)], so a
     candidate with [lsq > (s + delta)^2 * 1.000001] (where [s] is the
     running best distance, unsquared) is *strictly* farther than the
     running best and can never win the naive scan's strict [<] update
     nor tie it — skipping it leaves argmin and best distance
     bit-identical.  Candidates that survive are measured with the full
     {!sqd_flat} operation sequence, in index order, exactly as
     {!nearest_flat} would. *)
  let lsq = Array.make (n * k) 0.0 in
  let dbase = Array.make (n * k) 0.0 in
  let cum = Array.make k 0.0 in
  let prev = Array.make (k * dim) 0.0 in
  let first_search = ref true in
  let search () =
    if !first_search then first_search := false
    else
      for j = 0 to k - 1 do
        let step = sqrt (sqd_flat cents (j * dim) prev (j * dim) dim) in
        cum.(j) <- cum.(j) +. (step *. 1.0000001)
      done;
    Array.blit cents 0 prev 0 (k * dim);
    Sp_util.Pool.parallel_for ~jobs ~n (fun lo hi ->
        for i = lo to hi - 1 do
          let po = i * dim in
          let lrow = i * k in
          (* measure last round's winner first: its distance is usually
             already the minimum, so the bound test rejects almost every
             other candidate.  Scan order doesn't affect the result: the
             update below keeps the lowest index among computed
             equal-minimum candidates, and a skipped candidate is
             strictly above the running best, hence above the minimum. *)
          let b0 =
            let a = Array.unsafe_get assignment i in
            if a >= 0 then a else 0
          in
          let d0 = sqd_flat pts po cents (b0 * dim) dim in
          Array.unsafe_set lsq (lrow + b0) d0;
          Array.unsafe_set dbase (lrow + b0) (Array.unsafe_get cum b0);
          let best = ref b0 in
          let bd = ref d0 in
          let s = ref (sqrt d0) in
          for j = 0 to k - 1 do
            if j <> b0 then begin
              let delta =
                Array.unsafe_get cum j -. Array.unsafe_get dbase (lrow + j)
              in
              let t = !s +. delta in
              if not (Array.unsafe_get lsq (lrow + j) > t *. t *. 1.000001)
              then begin
                let d = sqd_flat pts po cents (j * dim) dim in
                Array.unsafe_set lsq (lrow + j) d;
                Array.unsafe_set dbase (lrow + j) (Array.unsafe_get cum j);
                if d < !bd then begin
                  bd := d;
                  best := j;
                  s := sqrt d
                end
                else if d = !bd && j < !best then best := j
              end
            end
          done;
          best_j.(i) <- !best;
          best_d.(i) <- !bd
        done)
  in
  while !changed && !iters < max_iters do
    changed := false;
    incr iters;
    distortion := 0.0;
    Array.fill sizes 0 k 0;
    Array.fill sums 0 (k * dim) 0.0;
    search ();
    for i = 0 to n - 1 do
      let j = best_j.(i) in
      if assignment.(i) <> j then begin
        assignment.(i) <- j;
        changed := true
      end;
      distortion := !distortion +. best_d.(i);
      sizes.(j) <- sizes.(j) + 1;
      let s = j * dim and p = i * dim in
      for x = 0 to dim - 1 do
        Array.unsafe_set sums (s + x)
          (Array.unsafe_get sums (s + x) +. Array.unsafe_get pts (p + x))
      done
    done;
    (* recompute centroids; re-seed empty clusters on the farthest point.
       [best_d] already holds each point's squared distance to its
       nearest centroid from this round's search — reusing it avoids an
       O(n*dim) rescan and keeps the reseed anchored to the centroids the
       assignment was actually made against (the rescan measured against
       centroids partially overwritten earlier in this very loop). *)
    for j = 0 to k - 1 do
      if sizes.(j) = 0 then begin
        let far = ref 0 and far_d = ref neg_infinity in
        for i = 0 to n - 1 do
          if best_d.(i) > !far_d then begin
            far_d := best_d.(i);
            far := i
          end
        done;
        Array.blit pts (!far * dim) cents (j * dim) dim;
        changed := true
      end
      else begin
        let s = j * dim and inv = 1.0 /. float_of_int sizes.(j) in
        for x = 0 to dim - 1 do
          cents.(s + x) <- sums.(s + x) *. inv
        done
      end
    done
  done;
  (* final consistent assignment pass *)
  Array.fill sizes 0 k 0;
  distortion := 0.0;
  search ();
  for i = 0 to n - 1 do
    let j = best_j.(i) in
    assignment.(i) <- j;
    sizes.(j) <- sizes.(j) + 1;
    distortion := !distortion +. best_d.(i)
  done;
  let centroids = Array.init k (fun j -> Array.sub cents (j * dim) dim) in
  { k; assignment; centroids; sizes; distortion = !distortion }

let within_cluster_variance result points =
  let acc = Array.make result.k 0.0 in
  Array.iteri
    (fun i p ->
      let j = result.assignment.(i) in
      acc.(j) <- acc.(j) +. sq_distance p result.centroids.(j))
    points;
  Array.mapi
    (fun j total ->
      if result.sizes.(j) = 0 then 0.0 else total /. float_of_int result.sizes.(j))
    acc
