type result = {
  k : int;
  assignment : int array;
  centroids : float array array;
  sizes : int array;
  distortion : float;
}

let sq_distance a b =
  let d = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let x = Array.unsafe_get a i -. Array.unsafe_get b i in
    d := !d +. (x *. x)
  done;
  !d

let nearest centroids p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun j c ->
      let d = sq_distance p c in
      if d < !best_d then begin
        best_d := d;
        best := j
      end)
    centroids;
  (!best, !best_d)

let assign ?jobs ~centroids points =
  if Array.length points = 0 then [||]
  else begin
    let out = Array.make (Array.length points) 0 in
    Sp_util.Pool.parallel_for ?jobs ~n:(Array.length points) (fun lo hi ->
        for i = lo to hi - 1 do
          out.(i) <- fst (nearest centroids points.(i))
        done);
    out
  end

(* k-means++ seeding: first centroid uniform, then each next centroid
   drawn with probability proportional to squared distance to the
   nearest chosen centroid.  [total] tracks the sum of [d2]
   incrementally: entries only ever shrink when a new centroid gets
   closer, so the running total is adjusted by each delta instead of
   re-summing the whole array per centroid. *)
let seed_plus_plus rng k points =
  let n = Array.length points in
  let centroids = Array.make k points.(0) in
  centroids.(0) <- points.(Sp_util.Rng.int rng n);
  let total = ref 0.0 in
  let d2 =
    Array.map
      (fun p ->
        let d = sq_distance p centroids.(0) in
        total := !total +. d;
        d)
      points
  in
  for j = 1 to k - 1 do
    (* the running total can drift a hair below zero once all
       distances collapse; treat that as exhausted *)
    let mass = Float.max 0.0 !total in
    let chosen =
      if mass <= 0.0 then Sp_util.Rng.int rng n
      else begin
        let target = Sp_util.Rng.float rng mass in
        let acc = ref 0.0 and pick = ref (n - 1) in
        (try
           for i = 0 to n - 1 do
             acc := !acc +. d2.(i);
             if !acc >= target then begin
               pick := i;
               raise Exit
             end
           done
         with Exit -> ());
        !pick
      end
    in
    centroids.(j) <- points.(chosen);
    for i = 0 to n - 1 do
      let d = sq_distance points.(i) centroids.(j) in
      if d < d2.(i) then begin
        total := !total -. (d2.(i) -. d);
        d2.(i) <- d
      end
    done
  done;
  Array.map Array.copy centroids

let fit ?(max_iters = 50) ?(seed = 42) ?(jobs = 1) ~k points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.fit: no points";
  if k < 1 then invalid_arg "Kmeans.fit: k < 1";
  let k = min k n in
  let dim = Array.length points.(0) in
  let rng = Sp_util.Rng.create seed in
  let centroids = seed_plus_plus rng k points in
  let assignment = Array.make n (-1) in
  let sizes = Array.make k 0 in
  let sums = Array.init k (fun _ -> Array.make dim 0.0) in
  let distortion = ref 0.0 in
  let changed = ref true in
  let iters = ref 0 in
  (* The O(n*k*dim) nearest-centroid search dominates a Lloyd round and
     is pure per point, so it fans out across the domain pool into
     per-point [best_j]/[best_d] slots.  The O(n*dim) accumulation of
     sizes/sums/distortion stays sequential in point order: summing
     per-domain float partials would round differently per job count,
     and simulation-point selection must be bit-for-bit identical
     whether jobs is 1 or 16. *)
  let best_j = Array.make n 0 in
  let best_d = Array.make n 0.0 in
  let search () =
    Sp_util.Pool.parallel_for ~jobs ~n (fun lo hi ->
        for i = lo to hi - 1 do
          let j, d = nearest centroids points.(i) in
          best_j.(i) <- j;
          best_d.(i) <- d
        done)
  in
  while !changed && !iters < max_iters do
    changed := false;
    incr iters;
    distortion := 0.0;
    Array.fill sizes 0 k 0;
    Array.iter (fun s -> Array.fill s 0 dim 0.0) sums;
    search ();
    for i = 0 to n - 1 do
      let j = best_j.(i) in
      if assignment.(i) <> j then begin
        assignment.(i) <- j;
        changed := true
      end;
      distortion := !distortion +. best_d.(i);
      sizes.(j) <- sizes.(j) + 1;
      let s = sums.(j) and p = points.(i) in
      for x = 0 to dim - 1 do
        s.(x) <- s.(x) +. p.(x)
      done
    done;
    (* recompute centroids; re-seed empty clusters on the farthest point.
       [best_d] already holds each point's squared distance to its
       nearest centroid from this round's search — reusing it avoids an
       O(n*dim) rescan and keeps the reseed anchored to the centroids the
       assignment was actually made against (the rescan measured against
       centroids partially overwritten earlier in this very loop). *)
    for j = 0 to k - 1 do
      if sizes.(j) = 0 then begin
        let far = ref 0 and far_d = ref neg_infinity in
        for i = 0 to n - 1 do
          if best_d.(i) > !far_d then begin
            far_d := best_d.(i);
            far := i
          end
        done;
        centroids.(j) <- Array.copy points.(!far);
        changed := true
      end
      else begin
        let s = sums.(j) and inv = 1.0 /. float_of_int sizes.(j) in
        centroids.(j) <- Array.map (fun x -> x *. inv) s
      end
    done
  done;
  (* final consistent assignment pass *)
  Array.fill sizes 0 k 0;
  distortion := 0.0;
  search ();
  for i = 0 to n - 1 do
    let j = best_j.(i) in
    assignment.(i) <- j;
    sizes.(j) <- sizes.(j) + 1;
    distortion := !distortion +. best_d.(i)
  done;
  { k; assignment; centroids; sizes; distortion = !distortion }

let within_cluster_variance result points =
  let acc = Array.make result.k 0.0 in
  Array.iteri
    (fun i p ->
      let j = result.assignment.(i) in
      acc.(j) <- acc.(j) +. sq_distance p result.centroids.(j))
    points;
  Array.mapi
    (fun j total ->
      if result.sizes.(j) = 0 then 0.0 else total /. float_of_int result.sizes.(j))
    acc
