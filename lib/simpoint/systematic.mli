(** Systematic (SMARTS/SimFlex-style) statistical sampling, the main
    alternative to SimPoint that the paper's related-work section
    discusses (Wenisch et al., IEEE Micro 2006).

    Instead of clustering phases, systematic sampling measures every
    k-th slice and reports the sample mean with a confidence interval
    from sampling theory.  This module provides the sample-design
    arithmetic; the [sampling] experiment in {!Specrepro.Experiments}
    compares it against SimPoint selection on the same workloads. *)

type design = {
  period : int;  (** measure every [period]-th slice *)
  offset : int;  (** index of the first measured slice *)
}

val design_for_budget : num_slices:int -> budget:int -> design
(** A design measuring at most [budget] slices spread uniformly (the
    period is the ceiling of [num_slices / budget], so the realised
    sample count never exceeds the budget).
    @raise Invalid_argument if [budget < 1] or [num_slices < 1]. *)

val sample_indices : design -> num_slices:int -> int array
(** Indices of the measured slices, ascending. *)

type estimate = {
  samples : int;
  mean : float;
  std_error : float;   (** of the mean *)
  ci95_half : float;   (** 1.96 x std_error *)
  rel_ci95 : float;    (** ci95_half / mean; 0 when the mean is 0 *)
}

val estimate : float array -> estimate
(** Sample mean and its confidence interval.

    Approximation note: the interval uses the simple-random-sampling
    (SRS) variance formula [s^2 / n] even though the sample is
    systematic (periodic).  When slice behaviour is positively
    autocorrelated — the common case for phased workloads — a periodic
    design spreads samples across phases and the SRS formula
    {e overstates} the variance, so the reported CI is conservative.
    It is only misleading if the workload is itself periodic at a
    multiple of the sampling period.  The stratified sampler
    ({!Sampler.Stratified}) reports a within-stratum variance estimate
    where strata exist.
    @raise Invalid_argument on an empty sample. *)

val required_samples : cv:float -> target_rel_ci:float -> int
(** SMARTS' sample-size rule: the number of measurements needed for a
    95%% confidence interval of [target_rel_ci] (e.g. 0.03) given a
    coefficient of variation [cv] — ceil((1.96 cv / eps)^2), clamped
    to at least one sample (a zero [cv] still needs one measurement
    to observe the mean). *)
