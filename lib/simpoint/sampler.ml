type kind = Simpoint | Systematic | Stratified | Rss

let all_kinds = [ Simpoint; Systematic; Stratified; Rss ]

let name = function
  | Simpoint -> "simpoint"
  | Systematic -> "systematic"
  | Stratified -> "stratified"
  | Rss -> "rss"

let kind_enum = List.map (fun k -> (name k, k)) all_kinds

let of_name s =
  match List.assoc_opt (String.lowercase_ascii s) kind_enum with
  | Some k -> Ok k
  | None ->
      Error
        (Printf.sprintf "unknown sampler %S (expected %s)" s
           (String.concat "|" (List.map name all_kinds)))

type input = {
  slices : Sp_pin.Bbv_tool.slice array;
  projected : float array array;
  slice_weights : float array;
  slice_len : int;
  budget : int;
  config : Simpoints.config;
}

type output = {
  kind : kind;
  points : Simpoints.point array;
  groups : int;
  bic_curve : (int * float) list;
  diagnostics : (string * float) list;
}

module type S = sig
  val kind : kind

  val run : input -> output
end

let point_of_slice inp ~cluster ~weight i =
  let s = inp.slices.(i) in
  {
    Simpoints.cluster;
    slice_index = i;
    start_icount = s.Sp_pin.Bbv_tool.start_icount;
    length = s.Sp_pin.Bbv_tool.length;
    weight;
  }

(* Auxiliary ranking variable shared by the survey samplers: each
   slice's distance from the mean projected vector, a cheap scalar
   proxy for how far its phase behaviour sits from the average. *)
let aux_variable projected =
  let n = Array.length projected in
  let dim = Array.length projected.(0) in
  let mean = Array.make dim 0.0 in
  Array.iter (Array.iteri (fun d x -> mean.(d) <- mean.(d) +. x)) projected;
  let nf = float_of_int n in
  Array.iteri (fun d x -> mean.(d) <- x /. nf) mean;
  Array.map (fun v -> sqrt (Kmeans.sq_distance v mean)) projected

(* -- SimPoint: the existing BIC-guided k-means path, verbatim ------- *)

module Simpoint_impl = struct
  let kind = Simpoint

  let run inp =
    let config = { inp.config with max_k = min inp.config.max_k inp.budget } in
    let sel =
      Simpoints.select ~config ~projected:inp.projected
        ~slice_len:inp.slice_len inp.slices
    in
    {
      kind;
      points = sel.Simpoints.points;
      groups = sel.Simpoints.chosen_k;
      bic_curve = sel.Simpoints.bic_curve;
      diagnostics =
        [
          ("chosen_k", float_of_int sel.Simpoints.chosen_k);
          ("points", float_of_int (Array.length sel.Simpoints.points));
        ];
    }
end

(* -- Systematic: periodic SMARTS design, equal weights -------------- *)

module Systematic_impl = struct
  let kind = Systematic

  let run inp =
    let n = Array.length inp.slices in
    let d = Systematic.design_for_budget ~num_slices:n ~budget:inp.budget in
    let idx = Systematic.sample_indices d ~num_slices:n in
    let m = Array.length idx in
    let w = 1.0 /. float_of_int m in
    let points =
      Array.mapi (fun j i -> point_of_slice inp ~cluster:j ~weight:w i) idx
    in
    {
      kind;
      points;
      groups = m;
      bic_curve = [];
      diagnostics =
        [
          ("period", float_of_int d.Systematic.period);
          ("offset", float_of_int d.Systematic.offset);
          ("samples", float_of_int m);
        ];
    }
end

(* -- Two-phase stratified sampling (Ekman, arXiv:2603.22605) -------- *)

module Stratified_impl = struct
  let kind = Stratified

  (* Neyman allocation with largest-remainder rounding: n_h proportional
     to N_h * S_h, every non-empty stratum keeps at least one sample
     when the budget allows, and no stratum exceeds its population. *)
  let allocate ~budget ~sizes ~scores =
    let h = Array.length sizes in
    let alloc = Array.make h 0 in
    let nonempty =
      Array.to_list (Array.init h Fun.id)
      |> List.filter (fun j -> sizes.(j) > 0)
    in
    let live = List.length nonempty in
    if budget < live then begin
      (* too tight for one-per-stratum: fund the highest-scoring strata *)
      let ranked =
        List.sort
          (fun a b ->
            match compare scores.(b) scores.(a) with 0 -> compare a b | c -> c)
          nonempty
      in
      List.iteri (fun r j -> if r < budget then alloc.(j) <- 1) ranked
    end
    else begin
      List.iter (fun j -> alloc.(j) <- 1) nonempty;
      let remaining = ref (budget - live) in
      let total = List.fold_left (fun acc j -> acc +. scores.(j)) 0.0 nonempty in
      let frac = Array.make h 0.0 in
      if total > 0.0 && !remaining > 0 then begin
        List.iter
          (fun j ->
            let room = sizes.(j) - alloc.(j) in
            let raw = float_of_int !remaining *. scores.(j) /. total in
            let extra = min room (int_of_float raw) in
            alloc.(j) <- alloc.(j) + extra;
            frac.(j) <- raw -. float_of_int extra)
          nonempty;
        let spent =
          List.fold_left (fun acc j -> acc + alloc.(j)) 0 nonempty - live
        in
        remaining := !remaining - spent
      end;
      (* hand out the rounding leftovers by largest remainder *)
      while !remaining > 0 do
        let best = ref (-1) in
        List.iter
          (fun j ->
            if
              alloc.(j) < sizes.(j)
              && (!best < 0 || frac.(j) > frac.(!best))
            then best := j)
          nonempty;
        match !best with
        | -1 -> remaining := 0 (* every stratum is saturated *)
        | j ->
            alloc.(j) <- alloc.(j) + 1;
            frac.(j) <- frac.(j) -. 1.0;
            decr remaining
      done
    end;
    alloc

  let run inp =
    let n = Array.length inp.slices in
    let budget = inp.budget in
    (* phase 1: a cheap pilot clustering of the projected matrix is the
       stratification feature; sqrt(budget) strata is the usual pilot
       size for a two-phase design *)
    let strata_k =
      max 1
        (min n (int_of_float (Float.round (sqrt (float_of_int budget)))))
    in
    let pilot =
      Kmeans.fit ~max_iters:inp.config.kmeans_iters
        ~seed:(inp.config.seed + 7919) ~jobs:inp.config.jobs ~k:strata_k
        inp.projected
    in
    let members = Array.make pilot.Kmeans.k [] in
    for i = n - 1 downto 0 do
      let h = pilot.Kmeans.assignment.(i) in
      members.(h) <- i :: members.(h)
    done;
    let members = Array.map Array.of_list members in
    let sizes = Array.map Array.length members in
    (* within-stratum spread S_h: RMS distance to the stratum centroid *)
    let s_h =
      Array.mapi
        (fun h ms ->
          if Array.length ms = 0 then 0.0
          else
            let c = pilot.Kmeans.centroids.(h) in
            let acc =
              Array.fold_left
                (fun acc i -> acc +. Kmeans.sq_distance inp.projected.(i) c)
                0.0 ms
            in
            sqrt (acc /. float_of_int (Array.length ms)))
        members
    in
    let scores =
      Array.mapi (fun h sz -> float_of_int sz *. s_h.(h)) sizes
    in
    let scores =
      if Array.fold_left ( +. ) 0.0 scores > 0.0 then scores
      else Array.map float_of_int sizes (* zero spread: proportional *)
    in
    let alloc = allocate ~budget ~sizes ~scores in
    let nf = float_of_int n in
    let points = ref [] in
    for h = pilot.Kmeans.k - 1 downto 0 do
      let n_h = alloc.(h) in
      if n_h > 0 then begin
        let ms = members.(h) in
        let sz = Array.length ms in
        let w = float_of_int sz /. nf /. float_of_int n_h in
        (* systematic within-stratum draw via the exact-integer stride *)
        for j = n_h - 1 downto 0 do
          points :=
            point_of_slice inp ~cluster:h ~weight:w ms.(j * sz / n_h)
            :: !points
        done
      end
    done;
    let points = Array.of_list !points in
    let samples = Array.length points in
    (* variance-reduction proxy on the auxiliary variable: fraction of
       total variance that survives within strata (lower is better) *)
    let aux = aux_variable inp.projected in
    let var_total = Sp_util.Stats.variance aux in
    let var_within =
      Array.to_list (Array.init pilot.Kmeans.k Fun.id)
      |> Sp_util.Stats.fsum (fun h ->
             let ms = members.(h) in
             if Array.length ms < 2 then 0.0
             else
               let xs = Array.map (fun i -> aux.(i)) ms in
               float_of_int (Array.length ms) /. nf
               *. Sp_util.Stats.variance xs)
    in
    {
      kind;
      points;
      groups = strata_k;
      bic_curve = [];
      diagnostics =
        [
          ("strata", float_of_int strata_k);
          ("samples", float_of_int samples);
          ( "var_within_frac",
            if var_total > 0.0 then var_within /. var_total else 0.0 );
        ];
    }
end

(* -- Ranked-set sampling with repeated subsampling (arXiv:2603.22598) *)

module Rss_impl = struct
  let kind = Rss

  let repeats = 8

  (* Draw [set_size] distinct slice indices.  A full Fisher-Yates pass
     is cheapest when the pool is small relative to the set; rejection
     sampling otherwise.  Both consume the rng sequentially, so the
     draw is deterministic in the seed. *)
  let draw_set rng ~n ~set_size =
    if n <= 4 * set_size then begin
      let pool = Array.init n Fun.id in
      Sp_util.Rng.shuffle rng pool;
      Array.sub pool 0 (min set_size n)
    end
    else begin
      let seen = Hashtbl.create set_size in
      let out = Array.make set_size 0 in
      let filled = ref 0 in
      while !filled < set_size do
        let i = Sp_util.Rng.int rng n in
        if not (Hashtbl.mem seen i) then begin
          Hashtbl.add seen i ();
          out.(!filled) <- i;
          incr filled
        end
      done;
      out
    end

  (* One full draw of [budget] samples: for sample t, draw a ranked set
     of [set_size] candidates, order it by the auxiliary variable and
     keep the element of rank [t mod set_size].  Cycling the rank keeps
     the draw balanced across order statistics. *)
  let draw rng aux ~n ~set_size ~budget =
    Array.init budget (fun t ->
        let set = draw_set rng ~n ~set_size in
        Array.sort
          (fun a b ->
            match compare aux.(a) aux.(b) with 0 -> compare a b | c -> c)
          set;
        let r = t mod Array.length set in
        (r, set.(r)))

  let run inp =
    let n = Array.length inp.slices in
    let budget = inp.budget in
    let set_size =
      max 1 (min n (int_of_float (Float.round (sqrt (float_of_int budget)))))
    in
    let aux = aux_variable inp.projected in
    (* repeated subsampling: re-draw the whole selection [repeats]
       times; draw 0 is the selection we return, the spread of the
       per-draw auxiliary means is the empirical variance estimate *)
    let draws =
      Array.init repeats (fun rep ->
          let rng = Sp_util.Rng.create (inp.config.seed + (1009 * rep)) in
          draw rng aux ~n ~set_size ~budget)
    in
    let draw_means =
      Array.map
        (fun d ->
          Sp_util.Stats.mean (Array.map (fun (_, i) -> aux.(i)) d))
        draws
    in
    (* deduplicate draw 0 by slice, merging weights; cluster records the
       rank position that first selected the slice *)
    let w = 1.0 /. float_of_int budget in
    let tbl = Hashtbl.create budget in
    Array.iter
      (fun (rank, i) ->
        match Hashtbl.find_opt tbl i with
        | Some (r, acc) -> Hashtbl.replace tbl i (r, acc +. w)
        | None -> Hashtbl.add tbl i (rank, w))
      draws.(0);
    let points =
      Hashtbl.fold
        (fun i (rank, weight) acc ->
          point_of_slice inp ~cluster:rank ~weight i :: acc)
        tbl []
      |> List.sort (fun a b ->
             compare a.Simpoints.slice_index b.Simpoints.slice_index)
      |> Array.of_list
    in
    let var_between = Sp_util.Stats.variance draw_means in
    {
      kind;
      points;
      groups = set_size;
      bic_curve = [];
      diagnostics =
        [
          ("set_size", float_of_int set_size);
          ("samples", float_of_int (Array.length points));
          ("repeats", float_of_int repeats);
          ("aux_mean", Sp_util.Stats.mean draw_means);
          ("aux_draw_var", var_between);
          ( "aux_draw_se",
            sqrt (var_between /. float_of_int repeats) );
        ];
    }
end

(* -- registry ------------------------------------------------------- *)

let registry : (kind, (module S)) Hashtbl.t = Hashtbl.create 8

let register (module I : S) = Hashtbl.replace registry I.kind (module I : S)

let implementation k =
  match Hashtbl.find_opt registry k with
  | Some i -> i
  | None -> invalid_arg ("Sampler.implementation: " ^ name k)

let () =
  register (module Simpoint_impl);
  register (module Systematic_impl);
  register (module Stratified_impl);
  register (module Rss_impl)

let select ?(config = Simpoints.default_config) ?budget k ~slice_len slices =
  let n = Array.length slices in
  if n = 0 then invalid_arg "Sampler.select: no slices";
  let budget =
    max 1 (min n (match budget with Some b -> b | None -> config.max_k))
  in
  let projected =
    Projection.project ~dim:config.proj_dim ~seed:config.seed slices
  in
  let total =
    Array.fold_left (fun acc s -> acc + s.Sp_pin.Bbv_tool.length) 0 slices
  in
  let slice_weights =
    Array.map
      (fun s ->
        float_of_int s.Sp_pin.Bbv_tool.length /. float_of_int (max 1 total))
      slices
  in
  let (module I : S) = implementation k in
  I.run { slices; projected; slice_weights; slice_len; budget; config }
