(** K-means clustering with k-means++ seeding and Lloyd iterations —
    the engine behind simulation-point selection. *)

type result = {
  k : int;
  assignment : int array;        (** cluster id per point *)
  centroids : float array array; (** [k] centroids *)
  sizes : int array;             (** points per cluster *)
  distortion : float;            (** sum of squared point-centroid distances *)
}

val fit :
  ?max_iters:int -> ?seed:int -> ?jobs:int -> k:int -> float array array ->
  result
(** [fit ~k points] clusters [points] (each a dense vector of equal
    dimension).  [k] is clamped to the number of points.  Empty clusters
    are repaired by re-seeding on the farthest point.  [jobs] (default
    1) fans the nearest-centroid search of each Lloyd round across the
    {!Sp_util.Pool} domain pool; the result is bit-for-bit identical
    for every job count because the floating-point accumulation stays
    in point order.
    @raise Invalid_argument if [points] is empty or [k < 1]. *)

val assign :
  ?jobs:int -> centroids:float array array -> float array array -> int array
(** Nearest-centroid assignment for a (possibly different) point set —
    used when centroids were fitted on a subsample. *)

val sq_distance : float array -> float array -> float

val weighted_pick : float array -> float -> int
(** [weighted_pick prefix target] returns the smallest index [i] with
    [prefix.(i) >= target], or [Array.length prefix - 1] when [target]
    exceeds the final entry — by binary search, valid because a prefix
    sum of non-negative weights is non-decreasing.  This is exactly the
    index a linear accumulate-and-compare scan over the underlying
    weights picks, for any [target]; the k-means++ seeding draw relies
    on that equivalence.
    @raise Invalid_argument if [prefix] is empty. *)

val within_cluster_variance : result -> float array array -> float array
(** Mean squared distance to the centroid, per cluster (the paper's
    Figure 4 "variance in phase similarity"). *)
