(* A domain-safe metrics registry: counters, gauges and histograms,
   sharded per domain and merged at report time.

   Design constraints, in order:

   1. Recording must be cheap enough to sit inside the pipeline's hot
      layers (one Domain.DLS lookup plus an array update — no locks, no
      atomics on the record path), because the interpreter flushes
      counters at the end of every [Interp.run].

   2. Recording must never perturb pipeline *outputs*: metrics are
      write-only side channels, accumulated in per-domain shards that
      workers never read, so `--jobs N` stays bit-identical for every
      statistic the paper's evaluation consumes.

   3. Metrics whose value is a pure function of the executed work (not
      of scheduling) are registered [stable] and are themselves
      identical across job counts; timing and scheduling metrics are
      registered unstable.  test_obs.ml enforces the stable contract.

   Merging: counters sum across shards; gauges take the most recently
   written value (a global sequence number orders writes); histograms
   sum bucket-by-bucket.  Shards belonging to completed pool domains
   stay registered, so nothing recorded is ever lost. *)

type kind = Counter | Gauge | Histogram

type meta = { id : int; name : string; kind : kind; stable : bool }

(* registry of metric definitions; newest first *)
let registry_mutex = Mutex.create ()
let metas : meta list ref = ref []
let next_id = ref 0

(* ------------------------------------------------------------------ *)
(* histograms: power-of-two buckets over the value's binary exponent,
   covering ~1e-10 .. 1e9 with the offset below.  Enough resolution for
   quantile estimates of durations (each bucket spans one octave);
   exact count, sum, min and max ride along. *)

let num_buckets = 64
let bucket_offset = 33

type hist = {
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  buckets : int array;
}

let new_hist () =
  {
    hcount = 0;
    hsum = 0.0;
    hmin = infinity;
    hmax = neg_infinity;
    buckets = Array.make num_buckets 0;
  }

(* bucket [i] covers [2^(i-33), 2^(i-32)); bucket 0 also absorbs
   non-positive values *)
let bucket_of v =
  if v <= 0.0 then 0
  else
    let _, e = Float.frexp v in
    max 0 (min (num_buckets - 1) (e + bucket_offset - 1))

let bucket_lo i = if i = 0 then 0.0 else Float.ldexp 1.0 (i - bucket_offset)
let bucket_hi i = Float.ldexp 1.0 (i - bucket_offset + 1)

(* ------------------------------------------------------------------ *)
(* per-domain shards *)

type shard = {
  mutable cells : float array;      (* counter sums / gauge values, by id *)
  mutable gseq : int array;         (* gauge write sequence, 0 = never *)
  mutable hists : hist option array;
}

let shards_mutex = Mutex.create ()
let shards : shard list ref = ref []

let new_shard () =
  let n = max 8 !next_id in
  let s =
    {
      cells = Array.make n 0.0;
      gseq = Array.make n 0;
      hists = Array.make n None;
    }
  in
  Mutex.lock shards_mutex;
  shards := s :: !shards;
  Mutex.unlock shards_mutex;
  s

let shard_key : shard Domain.DLS.key = Domain.DLS.new_key new_shard

let grow_float arr n =
  let a = Array.make (max n (2 * Array.length arr)) 0.0 in
  Array.blit arr 0 a 0 (Array.length arr);
  a

let grow_int arr n =
  let a = Array.make (max n (2 * Array.length arr)) 0 in
  Array.blit arr 0 a 0 (Array.length arr);
  a

let grow_hist arr n =
  let a = Array.make (max n (2 * Array.length arr)) None in
  Array.blit arr 0 a 0 (Array.length arr);
  a

(* metrics are normally registered at module-initialisation time,
   before any shard exists; growing covers late registration anyway *)
let ensure s id =
  if id >= Array.length s.cells then begin
    s.cells <- grow_float s.cells (id + 1);
    s.gseq <- grow_int s.gseq (id + 1);
    s.hists <- grow_hist s.hists (id + 1)
  end

(* ------------------------------------------------------------------ *)
(* registration *)

type counter = int
type gauge = int
type histogram = int

let register ~kind ~stable name =
  Mutex.lock registry_mutex;
  let result =
    match List.find_opt (fun m -> m.name = name) !metas with
    | Some m -> if m.kind = kind then Ok m.id else Error m
    | None ->
        let id = !next_id in
        incr next_id;
        metas := { id; name; kind; stable } :: !metas;
        Ok id
  in
  Mutex.unlock registry_mutex;
  match result with
  | Ok id -> id
  | Error _ ->
      invalid_arg
        (Printf.sprintf "Sp_obs.Metrics: %S already registered with another kind"
           name)

let counter ?(stable = true) name = register ~kind:Counter ~stable name
let gauge ?(stable = false) name = register ~kind:Gauge ~stable name
let histogram ?(stable = false) name = register ~kind:Histogram ~stable name

(* ------------------------------------------------------------------ *)
(* recording *)

let add c n =
  if n <> 0 then begin
    let s = Domain.DLS.get shard_key in
    ensure s c;
    Array.unsafe_set s.cells c (Array.unsafe_get s.cells c +. float_of_int n)
  end

let incr c = add c 1

let addf c x =
  if x <> 0.0 then begin
    let s = Domain.DLS.get shard_key in
    ensure s c;
    Array.unsafe_set s.cells c (Array.unsafe_get s.cells c +. x)
  end

let gauge_seq = Atomic.make 1

let set g v =
  let s = Domain.DLS.get shard_key in
  ensure s g;
  s.cells.(g) <- v;
  s.gseq.(g) <- Atomic.fetch_and_add gauge_seq 1

let observe h v =
  let s = Domain.DLS.get shard_key in
  ensure s h;
  let hb =
    match s.hists.(h) with
    | Some hb -> hb
    | None ->
        let hb = new_hist () in
        s.hists.(h) <- Some hb;
        hb
  in
  hb.hcount <- hb.hcount + 1;
  hb.hsum <- hb.hsum +. v;
  if v < hb.hmin then hb.hmin <- v;
  if v > hb.hmax then hb.hmax <- v;
  let b = bucket_of v in
  hb.buckets.(b) <- hb.buckets.(b) + 1

(* ------------------------------------------------------------------ *)
(* report-time merge *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
}

type value =
  | Counter_value of float
  | Gauge_value of float
  | Histogram_value of hist_snapshot

type sample = { name : string; stable : bool; value : value }

let snapshot () =
  Mutex.lock registry_mutex;
  let metas = !metas in
  Mutex.unlock registry_mutex;
  Mutex.lock shards_mutex;
  let shards = !shards in
  Mutex.unlock shards_mutex;
  (* Reads race benignly with concurrent recording on other domains:
     cells are word-sized and the merge is advisory while work is in
     flight.  Snapshots taken at quiescence (how the pipeline and the
     tests use them) are exact. *)
  let cell s id = if id < Array.length s.cells then s.cells.(id) else 0.0 in
  let seq s id = if id < Array.length s.gseq then s.gseq.(id) else 0 in
  let hist s id =
    if id < Array.length s.hists then s.hists.(id) else None
  in
  let merge (m : meta) =
    let value =
      match m.kind with
      | Counter ->
          Counter_value
            (List.fold_left (fun acc s -> acc +. cell s m.id) 0.0 shards)
      | Gauge ->
          let _, v =
            List.fold_left
              (fun ((best_seq, _) as best) s ->
                let sq = seq s m.id in
                if sq > best_seq then (sq, cell s m.id) else best)
              (0, 0.0) shards
          in
          Gauge_value v
      | Histogram ->
          let acc =
            {
              count = 0;
              sum = 0.0;
              min = infinity;
              max = neg_infinity;
              buckets = Array.make num_buckets 0;
            }
          in
          let acc =
            List.fold_left
              (fun acc s ->
                match hist s m.id with
                | None -> acc
                | Some hb ->
                    Array.iteri
                      (fun i n -> acc.buckets.(i) <- acc.buckets.(i) + n)
                      hb.buckets;
                    {
                      acc with
                      count = acc.count + hb.hcount;
                      sum = acc.sum +. hb.hsum;
                      min = Float.min acc.min hb.hmin;
                      max = Float.max acc.max hb.hmax;
                    })
              acc shards
          in
          Histogram_value acc
    in
    { name = m.name; stable = m.stable; value }
  in
  List.map merge metas
  |> List.sort (fun a b -> compare a.name b.name)

let stable_snapshot () = List.filter (fun s -> s.stable) (snapshot ())

let find name samples = List.find_opt (fun s -> s.name = name) samples

let counter_value samples name =
  match find name samples with
  | Some { value = Counter_value v; _ } -> Some v
  | _ -> None

(* Quantile estimate from the merged buckets: find the bucket holding
   the q'th observation and interpolate linearly inside it, clamped to
   the recorded min/max (which tightens the estimate for distributions
   narrower than a bucket). *)
let quantile (h : hist_snapshot) q =
  if h.count = 0 then nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target = q *. float_of_int h.count in
    let rec go i cum =
      if i >= num_buckets then h.max
      else
        let n = h.buckets.(i) in
        let cum' = cum +. float_of_int n in
        if cum' >= target && n > 0 then begin
          let frac = if n = 0 then 0.0 else (target -. cum) /. float_of_int n in
          let lo = bucket_lo i and hi = bucket_hi i in
          lo +. (frac *. (hi -. lo))
        end
        else go (i + 1) cum'
    in
    let v = go 0 0.0 in
    Float.max h.min (Float.min h.max v)
  end

let reset () =
  Mutex.lock shards_mutex;
  let all = !shards in
  Mutex.unlock shards_mutex;
  List.iter
    (fun s ->
      Array.fill s.cells 0 (Array.length s.cells) 0.0;
      Array.fill s.gseq 0 (Array.length s.gseq) 0;
      Array.iter
        (function
          | None -> ()
          | Some hb ->
              hb.hcount <- 0;
              hb.hsum <- 0.0;
              hb.hmin <- infinity;
              hb.hmax <- neg_infinity;
              Array.fill hb.buckets 0 num_buckets 0)
        s.hists)
    all

(* ------------------------------------------------------------------ *)
(* JSON rendering (shared by `specrepro report` and the tests) *)

let to_json samples =
  Json.List
    (List.map
       (fun s ->
         let common =
           [ ("name", Json.Str s.name); ("stable", Json.Bool s.stable) ]
         in
         match s.value with
         | Counter_value v ->
             Json.Obj
               (common @ [ ("kind", Json.Str "counter"); ("value", Json.Num v) ])
         | Gauge_value v ->
             Json.Obj
               (common @ [ ("kind", Json.Str "gauge"); ("value", Json.Num v) ])
         | Histogram_value h ->
             Json.Obj
               (common
               @ [
                   ("kind", Json.Str "histogram");
                   ("count", Json.Num (float_of_int h.count));
                   ("sum", Json.Num h.sum);
                   ("min", Json.Num (if h.count = 0 then 0.0 else h.min));
                   ("max", Json.Num (if h.count = 0 then 0.0 else h.max));
                   ("p50", Json.Num (if h.count = 0 then 0.0 else quantile h 0.5));
                   ("p90", Json.Num (if h.count = 0 then 0.0 else quantile h 0.9));
                   ("p99", Json.Num (if h.count = 0 then 0.0 else quantile h 0.99));
                 ]))
       samples)
