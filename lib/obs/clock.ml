(* A monotonic nanosecond clock for spans and busy-time accounting.

   The stdlib exposes no monotonic clock, so this wraps
   [Unix.gettimeofday] with two fixes: timestamps are rebased to the
   process start (keeping full float precision at nanosecond scale
   instead of ~256 ns granularity at epoch scale), and a global
   high-water mark makes each reading strictly greater than the last
   across all domains.  Strictness matters beyond clock-step
   protection: gettimeofday only ticks in microseconds, so back-to-back
   span events would otherwise share a timestamp and trace consumers
   could not reconstruct their begin/end order. *)

let epoch = Unix.gettimeofday ()

(* high-water mark shared by every domain *)
let last = Atomic.make 0

let now_ns () =
  let t = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e9) in
  let rec bump () =
    let l = Atomic.get last in
    let t = if t <= l then l + 1 else t in
    if Atomic.compare_and_set last l t then t else bump ()
  in
  bump ()

let seconds_of_ns ns = float_of_int ns /. 1e9
