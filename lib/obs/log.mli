(** Atomic stderr output for progress lines and warnings.

    Messages are formatted first, then written and flushed under a
    single mutex, so concurrent domains never interleave partial lines
    on the terminal. *)

val printf : ('a, unit, string, unit) format4 -> 'a
(** Format, then atomically write to stderr and flush. *)

val printf_if : bool -> ('a, unit, string, unit) format4 -> 'a
(** [printf_if cond fmt ...] is {!printf} when [cond], and skips
    formatting entirely otherwise. *)
