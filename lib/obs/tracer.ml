(* Span-based tracer emitting Chrome trace-event JSON.

   Spans are recorded per domain (a DLS buffer, no cross-domain
   contention) and each carries the nesting depth at which it ran, so
   the writer can order begin/end events that share a timestamp without
   breaking Chrome's per-thread nesting rules.  Tracing is off by
   default; when disabled, [with_span] costs one atomic load. *)

type span = {
  name : string;
  cat : string;
  args : (string * string) list;
  t0 : int;   (* ns, Clock.now_ns *)
  t1 : int;
  depth : int;
}

type buffer = {
  tid : int;
  mutable depth : int;
  mutable spans : span list;  (* completed spans, newest first *)
  mutable count : int;
}

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

let buffers_mutex = Mutex.create ()
let buffers : buffer list ref = ref []
let next_tid = Atomic.make 1

let new_buffer () =
  let b =
    {
      tid = Atomic.fetch_and_add next_tid 1;
      depth = 0;
      spans = [];
      count = 0;
    }
  in
  Mutex.lock buffers_mutex;
  buffers := b :: !buffers;
  Mutex.unlock buffers_mutex;
  b

let buffer_key : buffer Domain.DLS.key = Domain.DLS.new_key new_buffer

let with_span ?(cat = "default") ?(args = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let b = Domain.DLS.get buffer_key in
    let depth = b.depth in
    b.depth <- depth + 1;
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        b.depth <- depth;
        b.spans <- { name; cat; args; t0; t1; depth } :: b.spans;
        b.count <- b.count + 1)
      f
  end

let clear () =
  Mutex.lock buffers_mutex;
  let all = !buffers in
  Mutex.unlock buffers_mutex;
  List.iter
    (fun b ->
      b.spans <- [];
      b.count <- 0)
    all

let span_count () =
  Mutex.lock buffers_mutex;
  let all = !buffers in
  Mutex.unlock buffers_mutex;
  List.fold_left (fun acc b -> acc + b.count) 0 all

(* ------------------------------------------------------------------ *)
(* Chrome trace-event rendering

   Each span becomes a B and an E event on its thread.  Events are
   sorted by timestamp; at equal timestamps ends come before begins,
   deeper ends first and shallower begins first, which preserves proper
   nesting within a thread even for zero-length spans. *)

type event = {
  ets : int;          (* ns *)
  ephase : char;      (* 'B' | 'E' *)
  etid : int;
  ekey : int;         (* tie-break within a timestamp *)
  espan : span;
}

let events_of_buffer b =
  List.fold_left
    (fun acc s ->
      { ets = s.t0; ephase = 'B'; etid = b.tid; ekey = s.depth; espan = s }
      :: { ets = s.t1; ephase = 'E'; etid = b.tid; ekey = -s.depth; espan = s }
      :: acc)
    [] b.spans

let compare_events a b =
  let c = compare a.ets b.ets in
  if c <> 0 then c
  else
    (* ends ('E') sort before begins ('B'): 'B' < 'E' in ASCII, so
       flip; then deeper ends first / shallower begins first via ekey *)
    let c = compare b.ephase a.ephase in
    if c <> 0 then c else compare a.ekey b.ekey

let args_json args =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)

let event_json e =
  let base =
    [
      ("name", Json.Str e.espan.name);
      ("cat", Json.Str e.espan.cat);
      ("ph", Json.Str (String.make 1 e.ephase));
      (* Chrome expects microseconds *)
      ("ts", Json.Num (float_of_int e.ets /. 1e3));
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int e.etid));
    ]
  in
  let base =
    if e.ephase = 'B' && e.espan.args <> [] then
      base @ [ ("args", args_json e.espan.args) ]
    else base
  in
  Json.Obj base

let to_json () =
  Mutex.lock buffers_mutex;
  let all = !buffers in
  Mutex.unlock buffers_mutex;
  let events =
    List.concat_map events_of_buffer all |> List.sort compare_events
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write path =
  let json = to_json () in
  Out_channel.with_open_bin path (fun oc ->
      Json.to_channel oc json;
      Out_channel.output_char oc '\n')
