(* Consume a Chrome trace-event file back into an aggregate report.

   `specrepro report` runs this over a file produced with
   [--trace-out]: it validates that every begin has a matching end
   (per thread, properly nested) and sums durations three ways —
   per pipeline stage, per benchmark, and per category — so CI can
   sanity-check a trace without a human opening Perfetto. *)

type span_sum = { label : string; count : int; total_us : float }

type report = {
  events : int;
  spans : int;
  wall_us : float;        (* last end - first begin *)
  stages : span_sum list; (* cat = "stage", grouped by span name *)
  benches : span_sum list;(* name = "benchmark", grouped by args.bench *)
  categories : span_sum list;
}

(* one parsed trace event *)
type ev = {
  name : string;
  cat : string;
  ph : string;
  ts : float;  (* µs *)
  tid : float;
  bench : string option;
}

let ( let* ) = Result.bind

let ev_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let num k = Option.bind (Json.member k j) Json.to_float in
  match (str "name", str "ph", num "ts") with
  | Some name, Some ph, Some ts ->
      Ok
        {
          name;
          cat = Option.value (str "cat") ~default:"";
          ph;
          ts;
          tid = Option.value (num "tid") ~default:0.0;
          bench =
            Option.bind (Json.member "args" j) (fun a ->
                Option.bind (Json.member "bench" a) Json.to_str);
        }
  | _ -> Error "trace event missing name/ph/ts"

let rec collect_events acc = function
  | [] -> Ok (List.rev acc)
  | j :: rest ->
      let* e = ev_of_json j in
      collect_events (e :: acc) rest

(* Pair begins with ends per thread using a stack; a completed span
   keeps the begin's metadata plus the measured duration. *)
type completed = {
  cname : string;
  ccat : string;
  cbench : string option;
  cdur_us : float;
}

let pair_spans events =
  let stacks : (float, ev list) Hashtbl.t = Hashtbl.create 8 in
  let completed = ref [] in
  let err = ref None in
  List.iter
    (fun e ->
      if !err = None then
        match e.ph with
        | "B" ->
            let st = Option.value (Hashtbl.find_opt stacks e.tid) ~default:[] in
            Hashtbl.replace stacks e.tid (e :: st)
        | "E" -> (
            match Hashtbl.find_opt stacks e.tid with
            | Some (b :: rest) ->
                if b.name <> e.name then
                  err :=
                    Some
                      (Printf.sprintf
                         "unbalanced trace: end %S closes begin %S on tid %g"
                         e.name b.name e.tid)
                else begin
                  Hashtbl.replace stacks e.tid rest;
                  completed :=
                    {
                      cname = b.name;
                      ccat = b.cat;
                      cbench = b.bench;
                      cdur_us = e.ts -. b.ts;
                    }
                    :: !completed
                end
            | _ ->
                err :=
                  Some
                    (Printf.sprintf
                       "unbalanced trace: end %S with no open span on tid %g"
                       e.name e.tid))
        | _ -> ())
    events;
  match !err with
  | Some m -> Error m
  | None ->
      let leftover =
        Hashtbl.fold (fun _ st acc -> acc + List.length st) stacks 0
      in
      if leftover > 0 then
        Error (Printf.sprintf "unbalanced trace: %d span(s) never ended" leftover)
      else Ok (List.rev !completed)

let group key spans =
  let tbl : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c ->
      match key c with
      | None -> ()
      | Some k ->
          let n, t = Option.value (Hashtbl.find_opt tbl k) ~default:(0, 0.0) in
          Hashtbl.replace tbl k (n + 1, t +. c.cdur_us))
    spans;
  Hashtbl.fold
    (fun label (count, total_us) acc -> { label; count; total_us } :: acc)
    tbl []
  |> List.sort (fun a b ->
         let c = compare b.total_us a.total_us in
         if c <> 0 then c else compare a.label b.label)

let of_json j =
  match Json.member "traceEvents" j with
  | None -> Error "not a Chrome trace: missing \"traceEvents\""
  | Some evs -> (
      match Json.to_list evs with
      | None -> Error "\"traceEvents\" is not an array"
      | Some items ->
          let* events = collect_events [] items in
          (* preserve file order for equal timestamps *)
          let events =
            List.stable_sort (fun a b -> compare a.ts b.ts) events
          in
          let* spans = pair_spans events in
          let wall_us =
            match events with
            | [] -> 0.0
            | first :: _ ->
                let last =
                  List.fold_left (fun _ e -> e.ts) first.ts events
                in
                last -. first.ts
          in
          Ok
            {
              events = List.length events;
              spans = List.length spans;
              wall_us;
              stages =
                group
                  (fun c -> if c.ccat = "stage" then Some c.cname else None)
                  spans;
              benches =
                group
                  (fun c -> if c.cname = "benchmark" then c.cbench else None)
                  spans;
              categories = group (fun c -> Some c.ccat) spans;
            })

let of_file path =
  let* j = Json.parse_file path in
  of_json j

(* ------------------------------------------------------------------ *)
(* rendering *)

let sums_json sums =
  Json.List
    (List.map
       (fun s ->
         Json.Obj
           [
             ("name", Json.Str s.label);
             ("count", Json.Num (float_of_int s.count));
             ("total_seconds", Json.Num (s.total_us /. 1e6));
           ])
       sums)

let to_json r =
  Json.Obj
    [
      ("events", Json.Num (float_of_int r.events));
      ("spans", Json.Num (float_of_int r.spans));
      ("wall_seconds", Json.Num (r.wall_us /. 1e6));
      ("stages", sums_json r.stages);
      ("benchmarks", sums_json r.benches);
      ("categories", sums_json r.categories);
    ]

let render r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "trace: %d events, %d spans, %.3f s wall\n" r.events r.spans
    (r.wall_us /. 1e6);
  let section title sums =
    if sums <> [] then begin
      Printf.bprintf b "\n%s\n" title;
      let width =
        List.fold_left (fun w s -> max w (String.length s.label)) 4 sums
      in
      List.iter
        (fun s ->
          Printf.bprintf b "  %-*s  %8.3f s  x%d\n" width s.label
            (s.total_us /. 1e6) s.count)
        sums
    end
  in
  section "per stage" r.stages;
  section "per benchmark" r.benches;
  section "per category" r.categories;
  Buffer.contents b
