(** Domain-safe metrics registry: counters, gauges and histograms.

    Values are recorded into per-domain shards (one [Domain.DLS] lookup
    plus an array update on the hot path — no locks or atomics) and
    merged only when a snapshot is taken.  Metrics are write-only side
    channels: nothing in the pipeline reads them back, so recording can
    never perturb pipeline outputs and [--jobs N] stays bit-identical.

    The [stable] flag declares whether a metric's merged value is a
    pure function of the executed work (identical for any job count) or
    may legitimately vary with scheduling (timings, per-tier run
    counts, pool internals).  [stable_snapshot] filters to the former;
    the observability tests assert their equality across job counts. *)

type counter
type gauge
type histogram

(** {1 Registration}

    Registering the same name twice with the same kind returns the
    existing metric; with a different kind it raises [Invalid_argument].
    Registration is cheap but takes a lock — do it once at module
    initialisation, not per call site. *)

val counter : ?stable:bool -> string -> counter
(** [stable] defaults to [true]: counters usually count work items. *)

val gauge : ?stable:bool -> string -> gauge
(** [stable] defaults to [false]: a merged gauge reports the most
    recently written value, which is scheduling-dependent. *)

val histogram : ?stable:bool -> string -> histogram
(** [stable] defaults to [false]: histograms usually record timings. *)

(** {1 Recording} *)

val incr : counter -> unit
val add : counter -> int -> unit
val addf : counter -> float -> unit

val set : gauge -> float -> unit
(** Last write (globally sequenced) wins at merge time. *)

val observe : histogram -> float -> unit
(** Record one observation.  Buckets are powers of two over the value's
    binary exponent, so quantile estimates have octave resolution;
    count, sum, min and max are exact. *)

(** {1 Report-time merge} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when [count = 0] *)
  max : float;  (** [neg_infinity] when [count = 0] *)
  buckets : int array;
}

type value =
  | Counter_value of float
  | Gauge_value of float
  | Histogram_value of hist_snapshot

type sample = { name : string; stable : bool; value : value }

val snapshot : unit -> sample list
(** Merge all shards.  Sorted by name.  Exact when taken at quiescence
    (no concurrent recording); advisory otherwise. *)

val stable_snapshot : unit -> sample list
(** [snapshot] filtered to metrics registered [~stable:true]. *)

val find : string -> sample list -> sample option
val counter_value : sample list -> string -> float option

val quantile : hist_snapshot -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0..1]) by linear
    interpolation within the containing bucket, clamped to the recorded
    min/max.  [nan] when the histogram is empty. *)

val reset : unit -> unit
(** Zero every shard (all domains).  Call only at quiescence — used by
    tests and by the CLI before starting a traced run. *)

val to_json : sample list -> Json.t
(** Render samples as a JSON array (one object per metric). *)
