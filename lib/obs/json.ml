(* A minimal JSON codec: just enough for the Chrome trace-event files
   the tracer emits, the `--json` outputs of the CLI, and the report
   subcommand that parses traces back.  The repo deliberately avoids a
   yojson dependency (see DESIGN §6); this is the classic recursive
   descent over a string, with full string escaping both ways. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* printing *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let number_to_string x =
  if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
    (* no JSON representation: degrade to null rather than emit an
       unparseable token *)
    "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num x -> Buffer.add_string b (number_to_string x)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 1024 in
  write b v;
  Buffer.contents b

let to_channel oc v =
  let b = Buffer.create 65536 in
  write b v;
  Buffer.output_buffer oc b

(* ------------------------------------------------------------------ *)
(* parsing *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = { s : string; mutable pos : int }

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    st.pos < String.length st.s
    &&
    match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    advance st
  done

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> fail "expected %C at offset %d, found %C" c st.pos d
  | None -> fail "expected %C at offset %d, found end of input" c st.pos

let literal st word v =
  let n = String.length word in
  if
    st.pos + n <= String.length st.s
    && String.sub st.s st.pos n = word
  then begin
    st.pos <- st.pos + n;
    v
  end
  else fail "invalid literal at offset %d" st.pos

(* encode a Unicode code point as UTF-8 bytes *)
let add_utf8 b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let digit c =
    match c with
    | '0' .. '9' -> Char.code c - Char.code '0'
    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
    | _ -> fail "invalid \\u escape at offset %d" st.pos
  in
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c -> v := (!v lsl 4) lor digit c
    | None -> fail "truncated \\u escape at offset %d" st.pos);
    advance st
  done;
  !v

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at offset %d" st.pos
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        (match peek st with
        | Some '"' -> Buffer.add_char b '"'; advance st
        | Some '\\' -> Buffer.add_char b '\\'; advance st
        | Some '/' -> Buffer.add_char b '/'; advance st
        | Some 'n' -> Buffer.add_char b '\n'; advance st
        | Some 'r' -> Buffer.add_char b '\r'; advance st
        | Some 't' -> Buffer.add_char b '\t'; advance st
        | Some 'b' -> Buffer.add_char b '\b'; advance st
        | Some 'f' -> Buffer.add_char b '\012'; advance st
        | Some 'u' ->
            advance st;
            let cp = hex4 st in
            (* combine a surrogate pair when a low surrogate follows *)
            let cp =
              if cp >= 0xD800 && cp <= 0xDBFF
                 && st.pos + 1 < String.length st.s
                 && st.s.[st.pos] = '\\'
                 && st.s.[st.pos + 1] = 'u'
              then begin
                st.pos <- st.pos + 2;
                let lo = hex4 st in
                if lo >= 0xDC00 && lo <= 0xDFFF then
                  0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                else 0xFFFD
              end
              else if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD
              else cp
            in
            add_utf8 b cp
        | _ -> fail "invalid escape at offset %d" st.pos);
        go ())
    | Some c when Char.code c < 0x20 ->
        fail "unescaped control character at offset %d" st.pos
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.s && is_num_char st.s.[st.pos]
  do
    advance st
  done;
  let text = String.sub st.s start (st.pos - start) in
  match float_of_string_opt text with
  | Some x -> Num x
  | None -> fail "invalid number %S at offset %d" text start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at offset %d" st.pos
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then begin
        advance st;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              members ((k, v) :: acc)
          | Some '}' ->
              advance st;
              List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}' at offset %d" st.pos
        in
        Obj (members [])
      end
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then begin
        advance st;
        List []
      end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              advance st;
              elements (v :: acc)
          | Some ']' ->
              advance st;
              List.rev (v :: acc)
          | _ -> fail "expected ',' or ']' at offset %d" st.pos
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length s then
        Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
      else Ok v
  | exception Parse_error m -> Error m

let parse_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> parse s
  | exception Sys_error m -> Error m

(* ------------------------------------------------------------------ *)
(* accessors *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function List vs -> Some vs | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_str = function Str s -> Some s | _ -> None
