(* Atomic progress/diagnostic output.

   Under `--jobs N` several domains report progress concurrently;
   writing to stderr with bare Printf interleaves partial lines.  All
   observability-aware call sites route through here instead: the
   message is formatted first, then written and flushed under one
   mutex, so each message reaches the terminal intact. *)

let mutex = Mutex.create ()

let emit s =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      output_string stderr s;
      flush stderr)

let printf fmt = Printf.ksprintf emit fmt

let printf_if cond fmt =
  if cond then Printf.ksprintf emit fmt
  else (* skip formatting entirely when silenced *)
    Printf.ifprintf () fmt
