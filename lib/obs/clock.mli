(** Monotonic process-relative clock.

    Nanosecond timestamps measured from process start.  Guaranteed
    strictly increasing across all domains (a shared high-water mark
    absorbs wall-clock steps and sub-tick repeats), so span durations
    are never negative and every trace event carries a unique,
    order-preserving timestamp. *)

val now_ns : unit -> int
(** Nanoseconds since process start; each call returns a value strictly
    greater than every previous call in the process. *)

val seconds_of_ns : int -> float
