(** Aggregate report over a Chrome trace-event file.

    Parses a file produced with [--trace-out], validates that begin and
    end events balance (per thread, properly nested), and sums span
    durations per pipeline stage, per benchmark and per category.
    Backs the [specrepro report] subcommand and the CI trace
    validation. *)

type span_sum = {
  label : string;
  count : int;
  total_us : float;  (** summed duration in microseconds *)
}

type report = {
  events : int;
  spans : int;
  wall_us : float;  (** last event timestamp minus first, microseconds *)
  stages : span_sum list;
      (** spans with [cat = "stage"], grouped by span name *)
  benches : span_sum list;
      (** spans named ["benchmark"], grouped by their [args.bench] *)
  categories : span_sum list;  (** all spans, grouped by category *)
}

val of_json : Json.t -> (report, string) result
(** Errors on missing [traceEvents], malformed events, or unbalanced
    begin/end pairs. *)

val of_file : string -> (report, string) result

val to_json : report -> Json.t
val render : report -> string
(** Human-readable multi-section text rendering. *)
