(** Span-based tracer with Chrome trace-event output.

    Wrap stages in {!with_span}; when tracing is enabled (off by
    default) completed spans accumulate in per-domain buffers and
    {!write} renders them as a Chrome trace-event JSON file, viewable
    in [chrome://tracing] or Perfetto.  When disabled, {!with_span}
    costs a single atomic load around the wrapped function. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat ~args name f] runs [f ()], recording a span from
    entry to exit (also on exception).  Spans nest; each records the
    domain it ran on and its nesting depth. *)

val clear : unit -> unit
(** Drop all recorded spans (all domains). *)

val span_count : unit -> int
(** Number of completed spans currently buffered. *)

val to_json : unit -> Json.t
(** Render buffered spans as a Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] with paired
    [ph:"B"]/[ph:"E"] events, timestamps in microseconds, one [tid]
    per domain. *)

val write : string -> unit
(** [write path] writes {!to_json} to [path]. *)
