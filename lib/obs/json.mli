(** A minimal JSON codec.

    Covers exactly what the observability layer needs — emitting Chrome
    trace-event files and [--json] CLI reports, and parsing traces back
    for [specrepro report] — without pulling in an external JSON
    dependency.  Numbers are floats (integral values print without a
    fractional part); non-finite floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering, with full string escaping. *)

val to_channel : out_channel -> t -> unit

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document: rejects trailing garbage,
    unterminated strings and malformed numbers.  Never raises. *)

val parse_file : string -> (t, string) result

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
