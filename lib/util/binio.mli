(** Little-endian binary encoding for the pinball on-disk format.

    Writers append to a [Buffer.t]; the reader walks a string slice.
    Every read is bounds-checked and malformed input raises {!Corrupt}
    (never [End_of_file] or an out-of-bounds access), so a decoder has
    exactly one exception to convert into a typed error at its
    boundary.  Integers are fixed-width little-endian; [i64] carries an
    OCaml [int] in a 64-bit two's-complement slot. *)

exception Corrupt of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises {!Corrupt} with a formatted message; for
    decoders layered on top of this module (codecs, section framing). *)

(** {1 Writers} *)

val w_u8 : Buffer.t -> int -> unit
val w_u32 : Buffer.t -> int -> unit
val w_i64 : Buffer.t -> int -> unit
val w_f64 : Buffer.t -> float -> unit

val w_string : Buffer.t -> string -> unit
(** u32 length prefix + bytes. *)

val w_int_array : Buffer.t -> int array -> unit
val w_float_array : Buffer.t -> float array -> unit

val w_i64s : Buffer.t -> int array -> unit
(** Raw bulk write of every element as an [i64] — no length prefix.
    Byte-identical to [Array.iter (w_i64 b)] but blits whole chunks
    through a scratch buffer; for fixed-size blocks (memory pages). *)

val w_f64s : Buffer.t -> float array -> unit
(** Raw bulk write of every element as an [f64] — no length prefix. *)

(** {1 Reader} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
(** A reader over [data.[pos .. pos+len)] (default: to the end).
    @raise Invalid_argument if the slice is out of range. *)

val pos : reader -> int
val remaining : reader -> int

val skip : reader -> int -> unit
val r_u8 : reader -> int
val r_u32 : reader -> int
val r_i64 : reader -> int
val r_f64 : reader -> float
val r_bytes : reader -> int -> string
val r_string : reader -> string
val r_int_array : reader -> int array
val r_float_array : reader -> float array

val r_i64s : reader -> int -> int array
(** Bulk read of exactly [n] [i64] values (no length prefix): one
    bounds check, then direct loads.  Inverse of {!w_i64s}. *)

val r_f64s : reader -> int -> float array
(** Bulk read of exactly [n] [f64] values.  Inverse of {!w_f64s}. *)

val r_count : reader -> elem_bytes:int -> string -> int
(** Read a u32 element count and reject it unless at least
    [count * elem_bytes] bytes remain — a corrupt length field can
    never trigger a huge allocation. *)

val expect_end : reader -> string -> unit
(** @raise Corrupt if any bytes remain. *)
