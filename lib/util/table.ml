type align = Left | Right

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list;  (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Rule -> ()) rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = width - String.length s in
    if fill <= 0 then s
    else
      match align with
      | Left -> s ^ String.make fill ' '
      | Right -> String.make fill ' ' ^ s
  in
  let emit_cells aligns cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i (a, c) ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad a widths.(i) c))
      (List.combine aligns cells);
    Buffer.add_string buf " |\n"
  in
  let rule_line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule_line ();
  emit_cells (List.map (fun _ -> Left) t.headers) t.headers;
  rule_line ();
  List.iter
    (function
      | Cells c -> emit_cells t.aligns c
      | Rule -> rule_line ())
    rows;
  rule_line ();
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_f ?(dec = 2) x = Printf.sprintf "%.*f" dec x

let fmt_pct ?(dec = 2) x = Printf.sprintf "%.*f%%" dec x

let fmt_x ?(dec = 1) x = Printf.sprintf "%.*fx" dec x

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let csv_cell c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then begin
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else c

let to_csv t =
  let buf = Buffer.create 1024 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter (function Cells c -> emit c | Rule -> ()) (List.rev t.rows);
  Buffer.contents buf

let title t = t.title

let headers t = t.headers

let rows t =
  List.filter_map (function Cells c -> Some c | Rule -> None) (List.rev t.rows)
