(** Plain-text table rendering for experiment reports.

    The bench harness prints every reproduced table/figure as an aligned
    text table; this module owns the layout so all reports look alike. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells. *)

val add_row : t -> string list -> unit
(** Append a data row; must have as many cells as there are columns. *)

val add_rule : t -> unit
(** Append a horizontal separator (used before summary rows). *)

val render : t -> string

val print : t -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val to_csv : t -> string
(** RFC-4180-ish CSV: header row then data rows (rules are skipped);
    cells containing commas/quotes/newlines are quoted. *)

val title : t -> string option

val headers : t -> string list

val rows : t -> string list list
(** Data rows in display order (rules skipped) — for machine-readable
    re-encodings of a report (e.g. the CLI's [--json]). *)

val fmt_f : ?dec:int -> float -> string
(** Fixed-point float cell ([dec] decimals, default 2). *)

val fmt_pct : ?dec:int -> float -> string
(** Percentage cell with a ["%"] suffix. *)

val fmt_x : ?dec:int -> float -> string
(** Speedup cell with an ["x"] suffix. *)

val fmt_int : int -> string
(** Integer cell with thousands separators. *)
