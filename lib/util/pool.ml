(* A fixed-size domain pool over OCaml 5 Domains.

   Callers hand us an array of independent work items; we fan them out
   across [jobs] worker domains and reassemble results in input order,
   so a parallel map is observationally identical to [Array.map] — the
   only difference is wall-clock.  With [jobs <= 1] (or one item) we
   run sequentially on the caller's domain, byte-for-byte the existing
   behaviour.

   Nesting: a [parallel_map] issued from inside a worker (for example a
   per-benchmark replay fan-out while the suite itself is fanned out)
   degrades to sequential execution instead of oversubscribing the
   machine with [jobs * jobs] domains.  The outer fan-out already owns
   the cores. *)

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Pool metrics are all scheduling-dependent (batch and task counts
   change with the sequential fall-backs, busy time with load), so none
   is registered stable. *)
module M = struct
  let batches = Sp_obs.Metrics.counter ~stable:false "pool.batches"
  let tasks = Sp_obs.Metrics.counter ~stable:false "pool.tasks"

  let domains_spawned =
    Sp_obs.Metrics.counter ~stable:false "pool.domains_spawned"

  let busy_seconds =
    Sp_obs.Metrics.histogram ~stable:false "pool.domain_busy_seconds"
end

(* set while executing inside a pool worker; consulted to flatten
   nested parallelism *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

exception Worker_exception of exn * Printexc.raw_backtrace

let () =
  Printexc.register_printer (function
    | Worker_exception (e, _) ->
        Some (Printf.sprintf "Sp_util.Pool worker raised: %s" (Printexc.to_string e))
    | _ -> None)

let sequential_map f arr = Array.map f arr

(* Work-stealing by atomic index: workers race on a shared counter and
   write into a preallocated result slot, so items are load-balanced
   regardless of per-item cost and output order is trivially the input
   order.  The first exception wins; remaining items are abandoned but
   every domain is joined before it is re-raised. *)
let pooled_map ~jobs f arr =
  let n = Array.length arr in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker () =
    Domain.DLS.set inside_worker true;
    let t0 = Sp_obs.Clock.now_ns () in
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n || Atomic.get failure <> None then continue := false
      else
        match
          Sp_obs.Metrics.incr M.tasks;
          f arr.(i)
        with
        | v -> results.(i) <- Some v
        | exception e ->
            let bt = Printexc.get_raw_backtrace () in
            (* keep the first failure only *)
            ignore
              (Atomic.compare_and_set failure None
                 (Some (Worker_exception (e, bt))));
            continue := false
    done;
    Sp_obs.Metrics.observe M.busy_seconds
      (Sp_obs.Clock.seconds_of_ns (Sp_obs.Clock.now_ns () - t0))
  in
  Sp_obs.Metrics.incr M.batches;
  let domains =
    Array.init (min jobs n) (fun _ -> Domain.spawn worker)
  in
  Sp_obs.Metrics.add M.domains_spawned (Array.length domains);
  Array.iter Domain.join domains;
  (match Atomic.get failure with
  | Some (Worker_exception (e, bt)) -> Printexc.raise_with_backtrace e bt
  | Some e -> raise e
  | None -> ());
  Array.map
    (function
      | Some v -> v
      | None -> assert false (* no failure implies every slot was filled *))
    results

let parallel_map ?jobs f arr =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs <= 1 || Array.length arr <= 1 || Domain.DLS.get inside_worker then begin
    Sp_obs.Metrics.incr M.batches;
    Sp_obs.Metrics.add M.tasks (Array.length arr);
    sequential_map f arr
  end
  else pooled_map ~jobs f arr

(* Chunked parallel iteration: [body lo hi] covers [lo, hi).  Chunk
   boundaries depend only on [n] and [chunks], never on [jobs], so any
   per-chunk accumulation a caller does is deterministic across job
   counts. *)
let chunk_bounds ~chunks ~n =
  let chunks = max 1 (min chunks n) in
  let base = n / chunks and rem = n mod chunks in
  Array.init chunks (fun c ->
      let lo = (c * base) + min c rem in
      let hi = lo + base + (if c < rem then 1 else 0) in
      (lo, hi))

let parallel_for ?jobs ?chunks ~n body =
  if n <= 0 then ()
  else begin
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    let jobs =
      if jobs <= 1 || Domain.DLS.get inside_worker then 1 else jobs
    in
    let chunks =
      match chunks with Some c -> max 1 c | None -> max 1 (jobs * 4)
    in
    let bounds = chunk_bounds ~chunks ~n in
    if jobs <= 1 then Array.iter (fun (lo, hi) -> body lo hi) bounds
    else ignore (pooled_map ~jobs (fun (lo, hi) -> body lo hi) bounds)
  end
