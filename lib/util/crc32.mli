(** CRC-32 checksums (IEEE 802.3 / zlib polynomial).

    Used by the pinball store to checksum each on-disk section, so a
    truncated or bit-flipped file is detected before any decoding is
    attempted.  CRC-32 detects all single-bit errors and all burst
    errors up to 32 bits. *)

val string : string -> int
(** Checksum of a whole string, in [0, 2^32). *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of a substring.  @raise Invalid_argument on bad bounds. *)

val update : int -> string -> int -> int -> int
(** [update crc s pos len] extends a running checksum (zlib-style:
    [update 0 s 0 n = string s], and checksums compose by chaining the
    returned value). *)
