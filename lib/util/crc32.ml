(* CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

   The inner loop is slicing-by-8 (Kounavis & Berry): the running CRC
   is xored with the next 8 input bytes, and the new CRC is the xor of
   eight table lookups, one per byte — the same recurrence as the
   classic one-table loop unrolled through 8 steps, so the result is
   identical for every (pos, len, chaining) combination.  On 63-bit
   OCaml ints all intermediate values fit comfortably; the tail that
   does not fill an 8-byte chunk falls back to the one-table step. *)

let polynomial = 0xEDB88320

(* Unchecked native-endian 64-bit load for the sliced loop: [update]
   validates [pos]/[len] once up front, and the chunked loop never reads
   past [stop8], so the per-load bounds check of the safe accessor is
   pure overhead.  Big-endian hosts take the safe LE accessor instead. *)
external unsafe_get_64_ne : string -> int -> int64 = "%caml_string_get64u"

let le_host = not Sys.big_endian

(* tables.(0) is the classic byte table; tables.(k) extends each entry
   of tables.(k-1) by one zero byte, so tables.(k).(b) is the CRC
   contribution of byte [b] seen [k] positions before the end of the
   chunk.  Sixteen tables support the slicing-by-16 main loop; the
   first eight double as the slicing-by-8 mid-tail step. *)
let tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let ts = Array.make 16 t0 in
     for k = 1 to 15 do
       ts.(k) <-
         Array.map (fun v -> (v lsr 8) lxor t0.(v land 0xFF)) ts.(k - 1)
     done;
     ts)

let update crc s pos len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.update";
  let ts = Lazy.force tables in
  let t0 = Array.unsafe_get ts 0
  and t1 = Array.unsafe_get ts 1
  and t2 = Array.unsafe_get ts 2
  and t3 = Array.unsafe_get ts 3
  and t4 = Array.unsafe_get ts 4
  and t5 = Array.unsafe_get ts 5
  and t6 = Array.unsafe_get ts 6
  and t7 = Array.unsafe_get ts 7
  and t8 = Array.unsafe_get ts 8
  and t9 = Array.unsafe_get ts 9
  and t10 = Array.unsafe_get ts 10
  and t11 = Array.unsafe_get ts 11
  and t12 = Array.unsafe_get ts 12
  and t13 = Array.unsafe_get ts 13
  and t14 = Array.unsafe_get ts 14
  and t15 = Array.unsafe_get ts 15 in
  let c = ref (crc lxor 0xFFFF_FFFF) in
  let i = ref pos in
  let stop = pos + len in
  let stop8 = pos + (len land lnot 7) in
  let stop16 = pos + (len land lnot 15) in
  (* slicing-by-16 main loop: two 64-bit loads, sixteen lookups per
     iteration — the same recurrence as the by-8 step applied twice, so
     every (pos, len, chaining) combination yields identical CRCs. *)
  while !i < stop16 do
    let x0 =
      if le_host then unsafe_get_64_ne s !i else String.get_int64_le s !i
    in
    let x1 =
      if le_host then unsafe_get_64_ne s (!i + 8)
      else String.get_int64_le s (!i + 8)
    in
    let lo0 = (!c lxor Int64.to_int x0) land 0xFFFF_FFFF in
    let hi0 = Int64.to_int (Int64.shift_right_logical x0 32) in
    let lo1 = Int64.to_int x1 land 0xFFFF_FFFF in
    let hi1 = Int64.to_int (Int64.shift_right_logical x1 32) in
    c :=
      Array.unsafe_get t15 (lo0 land 0xFF)
      lxor Array.unsafe_get t14 ((lo0 lsr 8) land 0xFF)
      lxor Array.unsafe_get t13 ((lo0 lsr 16) land 0xFF)
      lxor Array.unsafe_get t12 ((lo0 lsr 24) land 0xFF)
      lxor Array.unsafe_get t11 (hi0 land 0xFF)
      lxor Array.unsafe_get t10 ((hi0 lsr 8) land 0xFF)
      lxor Array.unsafe_get t9 ((hi0 lsr 16) land 0xFF)
      lxor Array.unsafe_get t8 ((hi0 lsr 24) land 0xFF)
      lxor Array.unsafe_get t7 (lo1 land 0xFF)
      lxor Array.unsafe_get t6 ((lo1 lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo1 lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo1 lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (hi1 land 0xFF)
      lxor Array.unsafe_get t2 ((hi1 lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi1 lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((hi1 lsr 24) land 0xFF);
    i := !i + 16
  done;
  while !i < stop8 do
    (* unaligned 64-bit load: 8 input bytes, little-endian.  The high
       half is extracted with a logical shift on the [Int64] — a plain
       [Int64.to_int] would silently drop bit 63.  (The [Int64] here
       is unboxed by cmmgen even without flambda; assembling the
       halves from byte loads measures slower.) *)
    let x64 =
      if le_host then unsafe_get_64_ne s !i else String.get_int64_le s !i
    in
    let lo = (!c lxor Int64.to_int x64) land 0xFFFF_FFFF in
    let hi = Int64.to_int (Int64.shift_right_logical x64 32) in
    c :=
      Array.unsafe_get t7 (lo land 0xFF)
      lxor Array.unsafe_get t6 ((lo lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((lo lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((lo lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (hi land 0xFF)
      lxor Array.unsafe_get t2 ((hi lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((hi lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((hi lsr 24) land 0xFF);
    i := !i + 8
  done;
  while !i < stop do
    c :=
      Array.unsafe_get t0
        ((!c lxor Char.code (String.unsafe_get s !i)) land 0xFF)
      lxor (!c lsr 8);
    incr i
  done;
  !c lxor 0xFFFF_FFFF

let sub s ~pos ~len = update 0 s pos len
let string s = update 0 s 0 (String.length s)
