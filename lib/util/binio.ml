(* Little-endian binary encoding helpers for the pinball on-disk format.

   Writers append to a [Buffer.t].  The reader walks a string slice with
   every read bounds-checked: malformed input raises [Corrupt], never a
   raw [End_of_file] / [Invalid_argument] from the depths of the
   runtime, so decoders have a single exception to convert into a typed
   error at their boundary. *)

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Native-endian unchecked 64-bit accessors for the bulk codecs.  Every
   use below sits behind an explicit bounds check on the whole block, so
   the per-element check the safe variants repeat is pure overhead.
   They are native-endian: little-endian hosts use them directly, and
   the (rare) big-endian host falls back to the safe LE accessors. *)
external unsafe_set_64_ne : Bytes.t -> int -> int64 -> unit
  = "%caml_bytes_set64u"

external unsafe_get_64_ne : string -> int -> int64 = "%caml_string_get64u"

let le_host = not Sys.big_endian

(* ------------------------------------------------------------------ *)
(* writers *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xFF)
let w_u32 b v = Buffer.add_int32_le b (Int32.of_int (v land 0xFFFF_FFFF))
let w_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

(* Bulk writers stage up to [scratch_words] values in a scratch [Bytes]
   and append it with a single [Buffer.add_subbytes] per chunk, instead
   of boxing one [Int64] per element through [Buffer.add_int64_le].
   The bytes produced are identical to an element-by-element loop. *)
let scratch_words = 4096

let w_i64s b a =
  let n = Array.length a in
  if n > 0 then begin
    let scratch = Bytes.create (8 * min n scratch_words) in
    let i = ref 0 in
    while !i < n do
      let chunk = min scratch_words (n - !i) in
      if le_host then
        for j = 0 to chunk - 1 do
          unsafe_set_64_ne scratch (j * 8)
            (Int64.of_int (Array.unsafe_get a (!i + j)))
        done
      else
        for j = 0 to chunk - 1 do
          Bytes.set_int64_le scratch (j * 8)
            (Int64.of_int (Array.unsafe_get a (!i + j)))
        done;
      Buffer.add_subbytes b scratch 0 (chunk * 8);
      i := !i + chunk
    done
  end

let w_f64s b a =
  let n = Array.length a in
  if n > 0 then begin
    let scratch = Bytes.create (8 * min n scratch_words) in
    let i = ref 0 in
    while !i < n do
      let chunk = min scratch_words (n - !i) in
      if le_host then
        for j = 0 to chunk - 1 do
          unsafe_set_64_ne scratch (j * 8)
            (Int64.bits_of_float (Array.unsafe_get a (!i + j)))
        done
      else
        for j = 0 to chunk - 1 do
          Bytes.set_int64_le scratch (j * 8)
            (Int64.bits_of_float (Array.unsafe_get a (!i + j)))
        done;
      Buffer.add_subbytes b scratch 0 (chunk * 8);
      i := !i + chunk
    done
  end

let w_int_array b a =
  w_u32 b (Array.length a);
  w_i64s b a

let w_float_array b a =
  w_u32 b (Array.length a);
  w_f64s b a

(* ------------------------------------------------------------------ *)
(* reader *)

type reader = { data : string; limit : int; mutable pos : int }

let reader ?(pos = 0) ?len data =
  let limit =
    match len with Some l -> pos + l | None -> String.length data
  in
  if pos < 0 || limit > String.length data || pos > limit then
    invalid_arg "Binio.reader: bad slice";
  { data; limit; pos }

let pos r = r.pos
let remaining r = r.limit - r.pos

let need r n what =
  if n < 0 || remaining r < n then
    fail "truncated: %s needs %d bytes, %d left" what n (remaining r)

let skip r n =
  need r n "skip";
  r.pos <- r.pos + n

let r_u8 r =
  need r 1 "u8";
  let v = String.get_uint8 r.data r.pos in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFF_FFFF in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8 "i64";
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r =
  need r 8 "f64";
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_bytes r n =
  need r n "bytes";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_string r =
  let n = r_u32 r in
  need r n "string body";
  r_bytes r n

(* Counts are validated against the bytes actually present before any
   array is allocated, so a corrupt length field cannot trigger a
   multi-gigabyte [Array.make]. *)
let r_count r ~elem_bytes what =
  let n = r_u32 r in
  if n * elem_bytes > remaining r then
    fail "truncated: %s claims %d elements, only %d bytes left" what n
      (remaining r);
  n

(* Bulk readers: one bounds check up front, then direct unaligned
   64-bit loads from the backing string — no per-element [need] or
   position update. *)
let r_i64s r n =
  need r (n * 8) "i64 block";
  let data = r.data and base = r.pos in
  let a = Array.make n 0 in
  if le_host then
    for j = 0 to n - 1 do
      Array.unsafe_set a j
        (Int64.to_int (unsafe_get_64_ne data (base + (j * 8))))
    done
  else
    for j = 0 to n - 1 do
      Array.unsafe_set a j
        (Int64.to_int (String.get_int64_le data (base + (j * 8))))
    done;
  r.pos <- base + (n * 8);
  a

let r_f64s r n =
  need r (n * 8) "f64 block";
  let data = r.data and base = r.pos in
  let a = Array.make n 0.0 in
  if le_host then
    for j = 0 to n - 1 do
      Array.unsafe_set a j
        (Int64.float_of_bits (unsafe_get_64_ne data (base + (j * 8))))
    done
  else
    for j = 0 to n - 1 do
      Array.unsafe_set a j
        (Int64.float_of_bits (String.get_int64_le data (base + (j * 8))))
    done;
  r.pos <- base + (n * 8);
  a

let r_int_array r =
  let n = r_count r ~elem_bytes:8 "int array" in
  r_i64s r n

let r_float_array r =
  let n = r_count r ~elem_bytes:8 "float array" in
  r_f64s r n

let expect_end r what =
  if remaining r <> 0 then fail "%s: %d trailing bytes" what (remaining r)
