(* Little-endian binary encoding helpers for the pinball on-disk format.

   Writers append to a [Buffer.t].  The reader walks a string slice with
   every read bounds-checked: malformed input raises [Corrupt], never a
   raw [End_of_file] / [Invalid_argument] from the depths of the
   runtime, so decoders have a single exception to convert into a typed
   error at their boundary. *)

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* ------------------------------------------------------------------ *)
(* writers *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xFF)
let w_u32 b v = Buffer.add_int32_le b (Int32.of_int (v land 0xFFFF_FFFF))
let w_i64 b v = Buffer.add_int64_le b (Int64.of_int v)
let w_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_int_array b a =
  w_u32 b (Array.length a);
  Array.iter (w_i64 b) a

let w_float_array b a =
  w_u32 b (Array.length a);
  Array.iter (w_f64 b) a

(* ------------------------------------------------------------------ *)
(* reader *)

type reader = { data : string; limit : int; mutable pos : int }

let reader ?(pos = 0) ?len data =
  let limit =
    match len with Some l -> pos + l | None -> String.length data
  in
  if pos < 0 || limit > String.length data || pos > limit then
    invalid_arg "Binio.reader: bad slice";
  { data; limit; pos }

let pos r = r.pos
let remaining r = r.limit - r.pos

let need r n what =
  if n < 0 || remaining r < n then
    fail "truncated: %s needs %d bytes, %d left" what n (remaining r)

let skip r n =
  need r n "skip";
  r.pos <- r.pos + n

let r_u8 r =
  need r 1 "u8";
  let v = String.get_uint8 r.data r.pos in
  r.pos <- r.pos + 1;
  v

let r_u32 r =
  need r 4 "u32";
  let v = Int32.to_int (String.get_int32_le r.data r.pos) land 0xFFFF_FFFF in
  r.pos <- r.pos + 4;
  v

let r_i64 r =
  need r 8 "i64";
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r =
  need r 8 "f64";
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_bytes r n =
  need r n "bytes";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_string r =
  let n = r_u32 r in
  need r n "string body";
  r_bytes r n

(* Counts are validated against the bytes actually present before any
   array is allocated, so a corrupt length field cannot trigger a
   multi-gigabyte [Array.make]. *)
let r_count r ~elem_bytes what =
  let n = r_u32 r in
  if n * elem_bytes > remaining r then
    fail "truncated: %s claims %d elements, only %d bytes left" what n
      (remaining r);
  n

let r_int_array r =
  let n = r_count r ~elem_bytes:8 "int array" in
  Array.init n (fun _ -> r_i64 r)

let r_float_array r =
  let n = r_count r ~elem_bytes:8 "float array" in
  Array.init n (fun _ -> r_f64 r)

let expect_end r what =
  if remaining r <> 0 then fail "%s: %d trailing bytes" what (remaining r)
