(** A fixed-size domain pool for embarrassingly parallel batches.

    The pipeline's hot loops (suite fan-out, cold regional replays,
    k-means assignment) are all independent-job batches; this module
    runs them across OCaml 5 domains while keeping results in input
    order, so [jobs = 1] and [jobs = N] are observationally identical.

    Parallel calls issued from {e inside} a pool worker run
    sequentially instead of nesting domains, so composed fan-outs
    (suite over benchmarks, replays within a benchmark) never
    oversubscribe the machine.

    Observability: every batch records [pool.batches], [pool.tasks],
    [pool.domains_spawned] and a [pool.domain_busy_seconds] histogram
    in {!Sp_obs.Metrics}.  All pool metrics are registered unstable —
    their values legitimately vary with [jobs]. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1 — one core is
    left for the coordinating domain. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map ~jobs f arr] is [Array.map f arr] computed on up to
    [jobs] domains.  Results are returned in input order.  Falls back
    to plain sequential [Array.map] when [jobs <= 1], the array has at
    most one element, or the caller is itself a pool worker.  If a
    worker raises, the first exception is re-raised on the calling
    domain after all workers have been joined.  [jobs] defaults to
    {!default_jobs}. *)

val parallel_for : ?jobs:int -> ?chunks:int -> n:int -> (int -> int -> unit) -> unit
(** [parallel_for ~jobs ~chunks ~n body] splits [0, n) into [chunks]
    contiguous ranges and runs [body lo hi] for each, in parallel on up
    to [jobs] domains.  Chunk boundaries depend only on [n] and
    [chunks] (never on [jobs]), so per-chunk accumulations reduce
    identically for every job count.  [chunks] defaults to [4 * jobs]. *)

val chunk_bounds : chunks:int -> n:int -> (int * int) array
(** The [(lo, hi)] ranges {!parallel_for} would use; exposed for
    callers that reduce per-chunk partial results themselves. *)
