(* Length-framed, CRC-checksummed JSON frames (see the .mli for the
   layout).  The reader mirrors the pinball store's defensive
   discipline: every length is bounds-checked before allocation, every
   payload is checksummed before parsing, and every failure is a typed
   [error] — arbitrary bytes can never raise. *)

let magic = "SPRF"
let version = 1
let header_bytes = 4 + 1 + 4 + 4 (* magic, version, len, crc *)
let max_payload = 16 * 1024 * 1024

type error =
  | Closed
  | Truncated of string
  | Bad_magic of string
  | Bad_version of int
  | Oversized of int
  | Bad_crc of { expected : int; found : int }
  | Bad_json of string
  | Transport of string

let error_message = function
  | Closed -> "connection closed"
  | Truncated what -> Printf.sprintf "truncated frame (%s)" what
  | Bad_magic got ->
      Printf.sprintf "bad frame magic %S (want %S)" got magic
  | Bad_version v ->
      Printf.sprintf "unsupported protocol version %d (want %d)" v version
  | Oversized n ->
      Printf.sprintf "oversized frame: %d bytes declared (max %d)" n
        max_payload
  | Bad_crc { expected; found } ->
      Printf.sprintf "frame checksum mismatch: stored %08x, computed %08x"
        expected found
  | Bad_json msg -> Printf.sprintf "frame payload is not valid JSON: %s" msg
  | Transport msg -> Printf.sprintf "transport error: %s" msg

let recoverable = function
  | Bad_crc _ | Bad_json _ -> true
  | Closed | Truncated _ | Bad_magic _ | Bad_version _ | Oversized _
  | Transport _ ->
      false

(* ------------------------------------------------------------------ *)
(* pure codec *)

let encode json =
  let payload = Sp_obs.Json.to_string json in
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_string b magic;
  Sp_util.Binio.w_u8 b version;
  Sp_util.Binio.w_u32 b (String.length payload);
  Sp_util.Binio.w_u32 b (Sp_util.Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

(* Validate a complete header; [payload] fetches [len] bytes (from a
   string or a socket) or reports what ran short. *)
let decode_header header =
  let got_magic = String.sub header 0 4 in
  if got_magic <> magic then Error (Bad_magic got_magic)
  else
    let r = Sp_util.Binio.reader ~pos:4 header in
    let v = Sp_util.Binio.r_u8 r in
    if v <> version then Error (Bad_version v)
    else
      let len = Sp_util.Binio.r_u32 r in
      let crc = Sp_util.Binio.r_u32 r in
      if len > max_payload then Error (Oversized len) else Ok (len, crc)

let decode_payload ~crc payload =
  let found = Sp_util.Crc32.string payload in
  if found <> crc then Error (Bad_crc { expected = crc; found })
  else
    match Sp_obs.Json.parse payload with
    | Ok json -> Ok json
    | Error msg -> Error (Bad_json msg)

let decode_stream s ~pos =
  let remaining = String.length s - pos in
  if remaining = 0 then Error Closed
  else if remaining < header_bytes then Error (Truncated "header")
  else
    match decode_header (String.sub s pos header_bytes) with
    | Error e -> Error e
    | Ok (len, crc) ->
        if remaining - header_bytes < len then Error (Truncated "payload")
        else
          let payload = String.sub s (pos + header_bytes) len in
          Result.map
            (fun json -> (json, pos + header_bytes + len))
            (decode_payload ~crc payload)

let decode s =
  match decode_stream s ~pos:0 with
  | Error e -> Error e
  | Ok (json, next) ->
      if next <> String.length s then
        Error (Truncated "trailing bytes after frame")
      else Ok json

(* ------------------------------------------------------------------ *)
(* socket I/O *)

let rec write_all fd s pos len =
  if len > 0 then begin
    let n =
      try Unix.write_substring fd s pos len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd s (pos + n) (len - n)
  end

let write fd json =
  let frame = encode json in
  write_all fd frame 0 (String.length frame)

(* Read exactly [n] bytes; [`Eof got] reports a short read.  Connection
   resets are surfaced as EOF so a vanished peer degrades to
   [Closed]/[Truncated] like a polite one. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then `Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> `Eof off
      | got -> go (off + got)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          `Eof off
  in
  go 0

let read fd =
  match read_exact fd header_bytes with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Transport (Unix.error_message e))
  | `Eof 0 -> Error Closed
  | `Eof _ -> Error (Truncated "header")
  | `Ok header -> (
      match decode_header header with
      | Error e -> Error e
      | Ok (len, crc) -> (
          match read_exact fd len with
          | exception Unix.Unix_error (e, _, _) ->
              Error (Transport (Unix.error_message e))
          | `Eof _ -> Error (Truncated "payload")
          | `Ok payload ->
              Result.map
                (fun json -> (payload, json))
                (decode_payload ~crc payload)))
