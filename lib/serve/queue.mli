(** Bounded, fair job queue for the serve daemon.

    Jobs are keyed by client; the consumer side drains them
    round-robin across clients (one job per client per turn), so a
    client that floods the queue cannot starve the others — with
    clients A and B each holding pending jobs, pops alternate A, B,
    A, B regardless of arrival order.  Capacity bounds the {e total}
    queued jobs; a full queue refuses the push so the caller can send
    an explicit backpressure reply instead of buffering unboundedly.

    Thread-safe (mutex + condition).  {!close} starts the drain:
    pushes are refused, queued jobs keep coming out of {!pop}, and
    once the queue is empty {!pop} returns [None] forever (blocked
    poppers are woken). *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

type push_result = Pushed | Full | Closed_

val push : 'a t -> client:string -> 'a -> push_result

val pop : 'a t -> 'a option
(** Next job, fair across clients; blocks while the queue is empty and
    open.  [None] once closed and drained. *)

val try_pop : 'a t -> 'a option
(** {!pop} without blocking: [None] when nothing is queued right now. *)

val close : 'a t -> unit
val length : 'a t -> int
