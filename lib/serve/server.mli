(** The [specrepro serve] daemon: benchmark-as-a-service over a
    Unix-domain socket.

    One accept thread hands each connection to a reader thread;
    [submit] requests are enqueued on the bounded fair {!Queue}
    (per-client round-robin) and a scheduler thread drains them in
    batches of up to [parallel] jobs, executing each batch across the
    {!Sp_util.Pool} domain pool.  Every completed run's record is
    appended to the {!Results_store} (when configured) and its
    [specrepro/v2] [run] envelope — built by the same
    {!Specrepro.Api} code path the CLI uses, hence byte-compatible
    with [specrepro run --json] — is sent back on the submitting
    connection.

    Robustness contract:
    - a malformed frame is answered with a typed [bad-frame] error
      reply; payload-level faults (checksum, JSON) keep the
      connection, framing-level faults drop {e that connection only};
    - a full queue is answered immediately with a [backpressure]
      error, never buffered unboundedly;
    - a job past its deadline is answered with a [timeout] error;
    - a client that disconnects mid-job costs nothing but its reply;
    - SIGTERM/SIGINT (or a [shutdown] request) drains: queued and
      running jobs finish and are answered, new submissions are
      refused with [shutting-down], then the daemon exits 0.

    Instrumented with [serve.*] metrics (queue depth, jobs in flight,
    completions, rejects, timeouts, bad frames, per-client throughput,
    job and queue-wait seconds) and [serve.job] trace spans. *)

type config = {
  socket_path : string;
  results_path : string option;  (** append-only results store *)
  queue_capacity : int;  (** bound on queued (not yet running) jobs *)
  parallel : int;  (** max jobs in flight across the domain pool *)
  job_timeout : float;  (** seconds from submit to reply; 0 = none *)
  base_options : Specrepro.Pipeline.options;
      (** defaults for request fields left unset; also carries
          host-local knobs requests cannot set (cache directories) *)
  quiet : bool;
}

type t

val start : config -> t
(** Bind the socket (replacing a stale file at that path) and start
    the accept and scheduler threads.  SIGPIPE is ignored
    process-wide (replies to vanished clients must error, not kill
    the daemon).  @raise Unix.Unix_error if the socket can't be
    bound. *)

val initiate_shutdown : t -> unit
(** Begin the graceful drain (idempotent, async-signal-safe apart
    from the queue wakeup). *)

val wait : t -> unit
(** Block until the daemon has fully drained and every thread has
    been joined.  Only returns after {!initiate_shutdown} (from a
    signal, a [shutdown] request, or {!stop}). *)

val stop : t -> unit
(** {!initiate_shutdown} followed by {!wait} — the test harness's
    clean teardown. *)

val run : config -> unit
(** {!start}, install SIGTERM/SIGINT handlers that initiate the
    drain, and {!wait} — the CLI entry point. *)
