(* Per-client FIFOs plus a rotation of clients that currently have
   pending jobs: push appends to the client's FIFO (entering the
   rotation if it was empty), pop serves the rotation's front client
   one job and moves it to the back.  Strict FIFO per client, one job
   per client per turn across clients. *)

type 'a t = {
  mutex : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
  per_client : (string, 'a Stdlib.Queue.t) Hashtbl.t;
  rotation : string Stdlib.Queue.t;
  mutable size : int;
  mutable closed : bool;
}

type push_result = Pushed | Full | Closed_

let create ~capacity =
  if capacity < 1 then invalid_arg "Queue.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    capacity;
    per_client = Hashtbl.create 16;
    rotation = Stdlib.Queue.create ();
    size = 0;
    closed = false;
  }

let push t ~client x =
  Mutex.protect t.mutex (fun () ->
      if t.closed then Closed_
      else if t.size >= t.capacity then Full
      else begin
        let q =
          match Hashtbl.find_opt t.per_client client with
          | Some q -> q
          | None ->
              let q = Stdlib.Queue.create () in
              Hashtbl.replace t.per_client client q;
              q
        in
        if Stdlib.Queue.is_empty q then Stdlib.Queue.add client t.rotation;
        Stdlib.Queue.add x q;
        t.size <- t.size + 1;
        Condition.signal t.nonempty;
        Pushed
      end)

(* caller holds the mutex and has checked [size > 0] *)
let take_locked t =
  let client = Stdlib.Queue.pop t.rotation in
  let q = Hashtbl.find t.per_client client in
  let x = Stdlib.Queue.pop q in
  if Stdlib.Queue.is_empty q then Hashtbl.remove t.per_client client
  else Stdlib.Queue.add client t.rotation;
  t.size <- t.size - 1;
  x

let pop t =
  Mutex.protect t.mutex (fun () ->
      while t.size = 0 && not t.closed do
        Condition.wait t.nonempty t.mutex
      done;
      if t.size = 0 then None else Some (take_locked t))

let try_pop t =
  Mutex.protect t.mutex (fun () ->
      if t.size = 0 then None else Some (take_locked t))

let close t =
  Mutex.protect t.mutex (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = Mutex.protect t.mutex (fun () -> t.size)
