(** The [specrepro serve] wire protocol: length-framed, CRC-checksummed
    JSON over a Unix-domain stream socket.

    Each frame is

    {v "SPRF" | u8 version (=1) | u32 len | u32 crc32(payload) | payload v}

    (integers little-endian, the {!Sp_util.Binio} discipline; the
    payload is one UTF-8 {!Sp_obs.Json} document — in practice a
    [specrepro/v2] envelope, see {!Specrepro.Api}).  The framing layer
    follows the pinball-store contract: arbitrary bytes can never crash
    a reader — every malformed input maps to a typed {!error}.

    Errors are classified by whether the byte stream is still framed
    afterwards.  A payload-level fault ({!Bad_crc}, {!Bad_json}) was
    fully consumed, so the reader may keep using the connection
    ({!recoverable} = [true]); a framing-level fault ([Bad_magic],
    [Bad_version], [Oversized], [Truncated]) leaves the stream
    unsynchronised and the connection must be dropped. *)

type error =
  | Closed  (** clean EOF at a frame boundary *)
  | Truncated of string  (** EOF mid-frame *)
  | Bad_magic of string
  | Bad_version of int
  | Oversized of int  (** declared length exceeds {!max_payload} *)
  | Bad_crc of { expected : int; found : int }
  | Bad_json of string  (** checksummed payload is not valid JSON *)
  | Transport of string  (** socket-level [Unix] error *)

val error_message : error -> string

val recoverable : error -> bool
(** [true] iff the faulty frame was fully consumed and the stream is
    still framed ({!Bad_crc} and {!Bad_json} only). *)

val max_payload : int
(** Largest accepted payload (16 MiB); a declared length beyond it is
    {!Oversized} and is never allocated. *)

(** {1 Pure codec} (exposed for tests and fuzzing) *)

val encode : Sp_obs.Json.t -> string
(** One complete frame. *)

val decode_stream : string -> pos:int -> (Sp_obs.Json.t * int, error) result
(** Decode the frame starting at [pos]; returns the document and the
    position just past the frame.  Never raises. *)

val decode : string -> (Sp_obs.Json.t, error) result
(** [decode s] is {!decode_stream}[ s ~pos:0] requiring the frame to
    span the whole string (trailing bytes are a [Truncated] error, so
    fuzzers see a typed error for every malformed buffer). *)

(** {1 Socket I/O} *)

val write : Unix.file_descr -> Sp_obs.Json.t -> unit
(** Write one frame.  @raise Unix.Unix_error on transport failure. *)

val read : Unix.file_descr -> (string * Sp_obs.Json.t, error) result
(** Read one frame; returns the raw payload bytes alongside the parsed
    document (the daemon's reply payload is printed verbatim by
    [specrepro submit --json], which is what makes it byte-compatible
    with the CLI path).  Socket-level errors come back as {!Transport}
    (or {!Closed}/{!Truncated} for resets); never raises. *)
