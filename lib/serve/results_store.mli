(** Append-only, checksummed results history.

    Every job the daemon completes is appended as one self-framed
    record — ["SRRC"], a version byte, a u32 length, a u32 CRC-32,
    then a JSON payload ({!record_of_result}) — so the file is a log
    that only ever grows and any prefix of it is a valid store.

    Crash-recovery semantics: a record is appended with a single
    [write] to an [O_APPEND] descriptor, so the only artifact a crash
    can leave is a {e torn tail} — a prefix of one final frame.
    {!read_file} classifies the tail: [Torn] (recoverable; the valid
    prefix is intact and {!append} will truncate the torn bytes away
    before writing), or [Corrupt] (a complete frame whose checksum or
    framing is wrong — bit rot, not a crash; {!append} refuses rather
    than silently discard the unreachable records after it, and
    [specrepro query] reports the damage).  Readers never raise on
    arbitrary bytes and never trust an unchecksummed payload. *)

type tail =
  | Clean
  | Torn of { offset : int; bytes : int }
      (** a prefix of a valid frame at EOF (crash artifact) *)
  | Corrupt of { offset : int; reason : string }
      (** framing or checksum violation that truncation must not
          repair *)

val tail_message : tail -> string option
(** Human-readable description, [None] for [Clean]. *)

val read_file : string -> (Sp_obs.Json.t list * tail, string) result
(** All valid records in append order, plus the tail classification.
    [Error] only for an unreadable file (missing, permissions). *)

val append : path:string -> Sp_obs.Json.t -> (unit, string) result
(** Append one record, creating the file (and directories) as needed.
    Recovers a [Torn] tail by truncating to the last valid record
    first (counted in [results.torn_recovered]); refuses a [Corrupt]
    store.  Maintains [results.appends]. *)

val record_of_result :
  client:string ->
  time:float ->
  Specrepro.Pipeline.bench_result ->
  Sp_obs.Json.t
(** The stored record: benchmark, submitting client, wall-clock time,
    canonical options, point counts, a [metrics] object (wall seconds,
    whole/warm CPI and L3 miss rates, warm-vs-whole CPI and L3
    fidelity errors in percent), the sampler's diagnostics and the
    per-stage timing breakdown. *)

(** {1 Query accessors} *)

val benchmark_of : Sp_obs.Json.t -> string option

val metric : Sp_obs.Json.t -> string -> float option
(** Look up a named value in the record's [metrics] object. *)

val metric_names : Sp_obs.Json.t -> string list
(** The metric names a record carries, in stored order. *)

val benchmarks : Sp_obs.Json.t list -> string list
(** Distinct benchmark names, in order of first appearance. *)

val history : Sp_obs.Json.t list -> benchmark:string -> Sp_obs.Json.t list
(** The records for one benchmark, oldest first. *)
