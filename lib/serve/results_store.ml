(* Append-only results log.  Records are individually framed and
   checksummed (see the .mli); the writer's only mutation beyond
   appending is dropping a torn final frame left by a crash. *)

let magic = "SRRC"
let version = 1
let header_bytes = 4 + 1 + 4 + 4
let max_payload = 64 * 1024 * 1024

let m_appends = Sp_obs.Metrics.counter ~stable:false "results.appends"

let m_torn =
  Sp_obs.Metrics.counter ~stable:false "results.torn_recovered"

type tail =
  | Clean
  | Torn of { offset : int; bytes : int }
  | Corrupt of { offset : int; reason : string }

let tail_message = function
  | Clean -> None
  | Torn { offset; bytes } ->
      Some
        (Printf.sprintf
           "torn tail at offset %d (%d bytes of an unfinished record; \
            recovered on next append)"
           offset bytes)
  | Corrupt { offset; reason } ->
      Some (Printf.sprintf "corrupt record at offset %d: %s" offset reason)

(* Is [s.[pos..]] a prefix of what a valid frame could start with?  A
   torn single-write append is always such a prefix: up to 4 bytes it
   must match the magic, past that the header/payload may end early
   but every complete field must validate. *)
let scan contents =
  let len = String.length contents in
  let rec go pos acc =
    if pos = len then (List.rev acc, Clean, pos)
    else
      let remaining = len - pos in
      let torn bytes = (List.rev acc, Torn { offset = pos; bytes }, pos) in
      let corrupt reason =
        (List.rev acc, Corrupt { offset = pos; reason }, pos)
      in
      let magic_prefix_len = min remaining 4 in
      if
        String.sub contents pos magic_prefix_len
        <> String.sub magic 0 magic_prefix_len
      then corrupt "bad record magic"
      else if remaining < header_bytes then torn remaining
      else
        let r = Sp_util.Binio.reader ~pos:(pos + 4) contents in
        let v = Sp_util.Binio.r_u8 r in
        if v <> version then corrupt (Printf.sprintf "bad version %d" v)
        else
          let plen = Sp_util.Binio.r_u32 r in
          let crc = Sp_util.Binio.r_u32 r in
          if plen > max_payload then
            corrupt (Printf.sprintf "oversized record (%d bytes)" plen)
          else if remaining - header_bytes < plen then
            torn remaining
          else
            let payload = String.sub contents (pos + header_bytes) plen in
            let found = Sp_util.Crc32.string payload in
            if found <> crc then
              corrupt
                (Printf.sprintf "checksum mismatch (stored %08x, computed %08x)"
                   crc found)
            else
              match Sp_obs.Json.parse payload with
              | Error msg -> corrupt (Printf.sprintf "bad JSON: %s" msg)
              | Ok json -> go (pos + header_bytes + plen) (json :: acc)
  in
  go 0 []

let read_contents path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = in_channel_length ic in
          Ok (really_input_string ic n))

let read_file path =
  match read_contents path with
  | Error _ when not (Sys.file_exists path) ->
      Ok ([], Clean) (* an absent store is just an empty history *)
  | Error msg -> Error msg
  | Ok contents ->
      let records, tail, _ = scan contents in
      Ok (records, tail)

let frame json =
  let payload = Sp_obs.Json.to_string json in
  let b = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_string b magic;
  Sp_util.Binio.w_u8 b version;
  Sp_util.Binio.w_u32 b (String.length payload);
  Sp_util.Binio.w_u32 b (Sp_util.Crc32.string payload);
  Buffer.add_string b payload;
  Buffer.contents b

let append ~path json =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "/" then Sp_pinball.Store.mkdir_p dir;
  let recover () =
    if not (Sys.file_exists path) then Ok ()
    else
      match read_contents path with
      | Error msg -> Error msg
      | Ok contents -> (
          let _, tail, valid_end = scan contents in
          match tail with
          | Clean -> Ok ()
          | Corrupt { offset; reason } ->
              Error
                (Printf.sprintf
                   "refusing to append to a corrupt store (%s at offset %d)"
                   reason offset)
          | Torn { offset = _; bytes = _ } ->
              let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
              Fun.protect
                ~finally:(fun () -> Unix.close fd)
                (fun () -> Unix.ftruncate fd valid_end);
              Sp_obs.Metrics.incr m_torn;
              Ok ())
  in
  match recover () with
  | Error _ as e -> e
  | Ok () -> (
      match
        Unix.openfile path
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
          0o644
      with
      | exception Unix.Unix_error (e, _, _) ->
          Error (Unix.error_message e)
      | fd ->
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              let s = frame json in
              (* one write: a crash can only leave a prefix (a torn
                 tail), never interleave with another record *)
              let n = Unix.write_substring fd s 0 (String.length s) in
              if n <> String.length s then
                Error "short write appending record"
              else begin
                Sp_obs.Metrics.incr m_appends;
                Ok ()
              end))

(* ------------------------------------------------------------------ *)
(* the record schema *)

let num x = Sp_obs.Json.Num x
let str s = Sp_obs.Json.Str s
let numi i = Sp_obs.Json.Num (float_of_int i)

let err_pct ~truth ~approx =
  if Float.abs truth < 1e-300 then 0.0
  else Float.abs (approx -. truth) /. truth *. 100.0

let record_of_result ~client ~time (r : Specrepro.Pipeline.bench_result) =
  let open Specrepro in
  let whole = r.Pipeline.whole in
  let warm = Pipeline.warmup_regional r in
  let reduced_warm = Pipeline.reduced_warm r in
  Sp_obs.Json.Obj
    [
      ("time", num time);
      ("client", str client);
      ("benchmark", str r.Pipeline.spec.Sp_workloads.Benchspec.name);
      ("options", Api.options_json r.Pipeline.options);
      ("whole_insns", numi r.Pipeline.whole_insns);
      ("points", numi (Array.length r.Pipeline.selection.Pipeline.points));
      ("reduced_points", numi (Pipeline.reduced_count r));
      ( "metrics",
        Sp_obs.Json.Obj
          [
            ("wall_seconds", num r.Pipeline.wall_seconds);
            ("whole_cpi", num whole.Runstats.cpi);
            ("warm_cpi", num warm.Runstats.cpi);
            ("reduced_warm_cpi", num reduced_warm.Runstats.cpi);
            ("whole_l3_miss", num whole.Runstats.l3_miss);
            ("warm_l3_miss", num warm.Runstats.l3_miss);
            ( "cpi_err_pct",
              num
                (err_pct ~truth:whole.Runstats.cpi ~approx:warm.Runstats.cpi)
            );
            ( "l3_err_pct",
              num
                (err_pct ~truth:whole.Runstats.l3_miss
                   ~approx:warm.Runstats.l3_miss) );
          ] );
      ( "diagnostics",
        Sp_obs.Json.Obj
          (List.map
             (fun (k, v) -> (k, num v))
             r.Pipeline.selection.Pipeline.diagnostics) );
      ( "stages",
        Sp_obs.Json.List
          (List.map
             (fun (t : Pipeline.stage_timing) ->
               Sp_obs.Json.Obj
                 [
                   ("stage", str t.Pipeline.stage);
                   ("seconds", num t.Pipeline.seconds);
                 ])
             r.Pipeline.report.Pipeline.stages) );
    ]

(* ------------------------------------------------------------------ *)
(* query accessors *)

let benchmark_of record =
  Option.bind (Sp_obs.Json.member "benchmark" record) Sp_obs.Json.to_str

let metric record name =
  Option.bind
    (Option.bind (Sp_obs.Json.member "metrics" record)
       (Sp_obs.Json.member name))
    Sp_obs.Json.to_float

let metric_names record =
  match Sp_obs.Json.member "metrics" record with
  | Some (Sp_obs.Json.Obj kvs) -> List.map fst kvs
  | _ -> []

let benchmarks records =
  List.rev
    (List.fold_left
       (fun acc r ->
         match benchmark_of r with
         | Some b when not (List.mem b acc) -> b :: acc
         | _ -> acc)
       [] records)

let history records ~benchmark =
  List.filter (fun r -> benchmark_of r = Some benchmark) records
