type verdict = {
  benchmark : string;
  metric : string;
  runs : int;
  latest : float;
  baseline : float;
  ratio : float;
  regressed : bool;
}

let evaluate ~records ~benchmark ~metric ~gate =
  match Results_store.history records ~benchmark with
  | [] -> Error (Printf.sprintf "no stored runs for %s" benchmark)
  | [ _ ] -> Ok None
  | history -> (
      let values =
        List.map
          (fun r ->
            match Results_store.metric r metric with
            | Some v -> Ok v
            | None ->
                Error
                  (Printf.sprintf "a stored %s run lacks metric %S" benchmark
                     metric))
          history
      in
      match
        List.fold_right
          (fun v acc ->
            Result.bind acc (fun vs -> Result.map (fun v -> v :: vs) v))
          values (Ok [])
      with
      | Error _ as e -> e
      | Ok values ->
          let n = List.length values in
          let latest = List.nth values (n - 1) in
          let priors = List.filteri (fun i _ -> i < n - 1) values in
          let baseline =
            List.fold_left ( +. ) 0.0 priors /. float_of_int (n - 1)
          in
          let ratio =
            if Float.abs baseline > 0.0 then latest /. baseline
            else if Float.abs latest > 0.0 then infinity
            else 1.0
          in
          Ok
            (Some
               {
                 benchmark;
                 metric;
                 runs = n;
                 latest;
                 baseline;
                 ratio;
                 regressed = ratio > gate;
               }))
