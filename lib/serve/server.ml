(* The serve daemon.  Threads (not domains) own the blocking socket
   I/O — one acceptor, one reader per connection, one scheduler — and
   the benchmark work itself runs on the Sp_util.Pool domain pool in
   batches drained fairly from the bounded queue.  Replies are built
   by Specrepro.Api, the same code path as the CLI's [--json], which
   is what keeps the two surfaces byte-compatible. *)

module Json = Sp_obs.Json
module Metrics = Sp_obs.Metrics
module Api = Specrepro.Api
module Pipeline = Specrepro.Pipeline

type config = {
  socket_path : string;
  results_path : string option;
  queue_capacity : int;
  parallel : int;
  job_timeout : float;
  base_options : Pipeline.options;
  quiet : bool;
}

let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_inflight = Metrics.gauge "serve.jobs_inflight"
let m_completed = Metrics.counter ~stable:false "serve.jobs_completed"
let m_rejects = Metrics.counter ~stable:false "serve.rejects"
let m_timeouts = Metrics.counter ~stable:false "serve.timeouts"
let m_bad_frames = Metrics.counter ~stable:false "serve.bad_frames"
let m_job_seconds = Metrics.histogram "serve.job_seconds"
let m_queue_wait = Metrics.histogram "serve.queue_wait_seconds"

type conn = {
  cid : int;
  fd : Unix.file_descr;
  label : string;
  send_mutex : Mutex.t;
  m_jobs : Metrics.counter;  (* per-client throughput *)
  mutable pending : int;  (* jobs queued or running for this conn *)
  mutable gone : bool;  (* reader thread has finished *)
  mutable closed : bool;  (* fd has been closed *)
}

type job = {
  conn : conn;
  spec : Sp_workloads.Benchspec.t;
  options : Pipeline.options;
  submitted : float;
  deadline : float;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  queue : job Queue.t;
  shutdown : bool Atomic.t;
  conns_mutex : Mutex.t;
  conns : (int, conn) Hashtbl.t;
  readers : (int, Thread.t) Hashtbl.t;
  mutable accept_thread : Thread.t option;
  mutable scheduler_thread : Thread.t option;
  next_cid : int Atomic.t;
  inflight : int Atomic.t;
  completed : int Atomic.t;
  rejected : int Atomic.t;
  timed_out : int Atomic.t;
  bad_frames : int Atomic.t;
}

(* ------------------------------------------------------------------ *)
(* connection lifecycle

   [pending]/[gone]/[closed] transitions all happen under
   [conns_mutex]; whoever observes gone && pending = 0 first closes
   the fd, so a reply for a job outlives the reader that accepted it
   and a vanished client costs nothing but its reply. *)

let send conn json =
  Mutex.protect conn.send_mutex (fun () ->
      try
        Protocol.write conn.fd json;
        true
      with Unix.Unix_error _ | Sys_error _ -> false)

let close_if_done t conn =
  Mutex.protect t.conns_mutex (fun () ->
      if conn.gone && conn.pending = 0 && not conn.closed then begin
        conn.closed <- true;
        Hashtbl.remove t.conns conn.cid;
        try Unix.close conn.fd with Unix.Unix_error _ -> ()
      end)

let send_error conn ~code ~message =
  ignore (send conn (Api.error_envelope ~code ~message))

(* ------------------------------------------------------------------ *)
(* request dispatch (runs on the connection's reader thread) *)

let status_result t =
  let num i = Json.Num (float_of_int i) in
  Json.Obj
    [
      ("queue_depth", num (Queue.length t.queue));
      ("jobs_inflight", num (Atomic.get t.inflight));
      ("completed", num (Atomic.get t.completed));
      ("rejected", num (Atomic.get t.rejected));
      ("timed_out", num (Atomic.get t.timed_out));
      ("bad_frames", num (Atomic.get t.bad_frames));
      ( "connections",
        num (Mutex.protect t.conns_mutex (fun () -> Hashtbl.length t.conns))
      );
      ("draining", Json.Bool (Atomic.get t.shutdown));
    ]

let initiate_shutdown t =
  if not (Atomic.exchange t.shutdown true) then Queue.close t.queue

let handle_submit t conn request =
  if Atomic.get t.shutdown then
    send_error conn ~code:"shutting-down" ~message:"daemon is draining"
  else
    let opts_json =
      Option.value (Json.member "options" request) ~default:(Json.Obj [])
    in
    match Api.options_of_json ~base:t.config.base_options opts_json with
    | Error msg -> send_error conn ~code:"bad-request" ~message:msg
    | Ok (None, _) ->
        send_error conn ~code:"bad-request"
          ~message:"submit requires options.benchmark"
    | Ok (Some bench, options) -> (
        match Sp_workloads.Suite.find bench with
        | exception Not_found ->
            send_error conn ~code:"bad-request"
              ~message:(Printf.sprintf "unknown benchmark %s" bench)
        | spec ->
            (* the daemon owns the terminal; jobs never paint progress *)
            let options = { options with Pipeline.progress = false } in
            let submitted = Unix.gettimeofday () in
            let deadline =
              if t.config.job_timeout > 0.0 then
                submitted +. t.config.job_timeout
              else infinity
            in
            let job = { conn; spec; options; submitted; deadline } in
            Mutex.protect t.conns_mutex (fun () ->
                conn.pending <- conn.pending + 1);
            let give_back () =
              Mutex.protect t.conns_mutex (fun () ->
                  conn.pending <- conn.pending - 1)
            in
            (match Queue.push t.queue ~client:conn.label job with
            | Queue.Pushed ->
                Metrics.set m_queue_depth
                  (float_of_int (Queue.length t.queue))
            | Queue.Full ->
                give_back ();
                Atomic.incr t.rejected;
                Metrics.incr m_rejects;
                send_error conn ~code:"backpressure"
                  ~message:
                    (Printf.sprintf "queue full (capacity %d); retry later"
                       t.config.queue_capacity)
            | Queue.Closed_ ->
                give_back ();
                send_error conn ~code:"shutting-down"
                  ~message:"daemon is draining"))

let handle_request t conn request =
  let field name = Option.bind (Json.member name request) Json.to_str in
  match field "schema" with
  | Some s when s <> Api.schema ->
      send_error conn ~code:"bad-request"
        ~message:
          (Printf.sprintf "unsupported schema %S (this daemon speaks %s)" s
             Api.schema)
  | None ->
      send_error conn ~code:"bad-request"
        ~message:(Printf.sprintf "request lacks a schema field (%s)" Api.schema)
  | Some _ -> (
      match field "command" with
      | Some "submit" -> handle_submit t conn request
      | Some "status" ->
          ignore
            (send conn
               (Api.envelope ~command:"status" ~options:Api.no_options
                  ~result:(status_result t)))
      | Some "shutdown" ->
          ignore
            (send conn
               (Api.envelope ~command:"shutdown" ~options:Api.no_options
                  ~result:(Json.Obj [ ("draining", Json.Bool true) ])));
          initiate_shutdown t
      | Some other ->
          send_error conn ~code:"bad-request"
            ~message:(Printf.sprintf "unknown command %S" other)
      | None ->
          send_error conn ~code:"bad-request"
            ~message:"request lacks a command field")

let rec reader_loop t conn =
  match Protocol.read conn.fd with
  | Error Protocol.Closed -> ()
  | Error err ->
      Atomic.incr t.bad_frames;
      Metrics.incr m_bad_frames;
      send_error conn ~code:"bad-frame" ~message:(Protocol.error_message err);
      (* payload-level faults keep the connection; a broken framing
         stream has no resynchronisation point, so drop it *)
      if Protocol.recoverable err then reader_loop t conn
  | Ok (_, request) ->
      handle_request t conn request;
      reader_loop t conn

let reader_main t conn =
  reader_loop t conn;
  Mutex.protect t.conns_mutex (fun () -> conn.gone <- true);
  close_if_done t conn

(* ------------------------------------------------------------------ *)
(* the scheduler: drain a fair batch, fan it across the domain pool *)

let run_job job =
  let start = Unix.gettimeofday () in
  Metrics.observe m_queue_wait (start -. job.submitted);
  let outcome =
    if start > job.deadline then `Timeout
    else
      Sp_obs.Tracer.with_span ~cat:"serve"
        ~args:[ ("benchmark", job.spec.Sp_workloads.Benchspec.name) ]
        "serve.job"
        (fun () ->
          match Pipeline.run_benchmark ~options:job.options job.spec with
          | r -> `Ok r
          | exception e -> `Error (Printexc.to_string e))
  in
  (outcome, Unix.gettimeofday () -. start)

let finish t job (outcome, seconds) =
  let name = job.spec.Sp_workloads.Benchspec.name in
  let reply =
    match outcome with
    | `Ok r ->
        Metrics.observe m_job_seconds seconds;
        Metrics.incr m_completed;
        Metrics.incr job.conn.m_jobs;
        Atomic.incr t.completed;
        (match t.config.results_path with
        | None -> ()
        | Some path -> (
            let record =
              Results_store.record_of_result ~client:job.conn.label
                ~time:(Unix.gettimeofday ()) r
            in
            match Results_store.append ~path record with
            | Ok () -> ()
            | Error msg ->
                Sp_obs.Log.printf "serve: results append failed: %s\n" msg));
        Sp_obs.Log.printf_if (not t.config.quiet)
          "serve: %s %s done (%.2fs)\n" job.conn.label name seconds;
        Api.run_envelope r
    | `Timeout ->
        Atomic.incr t.timed_out;
        Metrics.incr m_timeouts;
        Api.error_envelope ~code:"timeout"
          ~message:
            (Printf.sprintf "%s exceeded the %gs job timeout" name
               t.config.job_timeout)
    | `Error msg ->
        Sp_obs.Log.printf "serve: %s %s failed: %s\n" job.conn.label name msg;
        Api.error_envelope ~code:"internal" ~message:msg
  in
  ignore (send job.conn reply);
  Mutex.protect t.conns_mutex (fun () ->
      job.conn.pending <- job.conn.pending - 1);
  close_if_done t job.conn

let rec scheduler_loop t =
  match Queue.pop t.queue with
  | None -> () (* closed and fully drained *)
  | Some first ->
      let rec fill acc n =
        if n >= t.config.parallel then acc
        else
          match Queue.try_pop t.queue with
          | None -> acc
          | Some j -> fill (j :: acc) (n + 1)
      in
      let batch = Array.of_list (List.rev (fill [ first ] 1)) in
      Metrics.set m_queue_depth (float_of_int (Queue.length t.queue));
      Atomic.set t.inflight (Array.length batch);
      Metrics.set m_inflight (float_of_int (Array.length batch));
      let outcomes =
        Sp_util.Pool.parallel_map ~jobs:t.config.parallel run_job batch
      in
      Atomic.set t.inflight 0;
      Metrics.set m_inflight 0.0;
      Array.iteri (fun i outcome -> finish t batch.(i) outcome) outcomes;
      scheduler_loop t

(* ------------------------------------------------------------------ *)
(* acceptor and lifecycle *)

let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.shutdown) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
              let cid = Atomic.fetch_and_add t.next_cid 1 in
              let label = Printf.sprintf "client-%d" cid in
              let conn =
                {
                  cid;
                  fd;
                  label;
                  send_mutex = Mutex.create ();
                  m_jobs =
                    Metrics.counter ~stable:false
                      (Printf.sprintf "serve.client.%s.jobs" label);
                  pending = 0;
                  gone = false;
                  closed = false;
                }
              in
              let th = Thread.create (fun () -> reader_main t conn) () in
              Mutex.protect t.conns_mutex (fun () ->
                  Hashtbl.replace t.conns cid conn;
                  Hashtbl.replace t.readers cid th)));
      loop ()
    end
  in
  loop ();
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink t.config.socket_path with Unix.Unix_error _ | Sys_error _ -> ()

let start config =
  (* a reply to a vanished client must become an error, not a signal *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir = Filename.dirname config.socket_path in
  if dir <> "." && dir <> "/" then Sp_pinball.Store.mkdir_p dir;
  if Sys.file_exists config.socket_path then (
    try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX config.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      config;
      listen_fd;
      queue = Queue.create ~capacity:config.queue_capacity;
      shutdown = Atomic.make false;
      conns_mutex = Mutex.create ();
      conns = Hashtbl.create 16;
      readers = Hashtbl.create 16;
      accept_thread = None;
      scheduler_thread = None;
      next_cid = Atomic.make 1;
      inflight = Atomic.make 0;
      completed = Atomic.make 0;
      rejected = Atomic.make 0;
      timed_out = Atomic.make 0;
      bad_frames = Atomic.make 0;
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.scheduler_thread <- Some (Thread.create scheduler_loop t);
  Sp_obs.Log.printf_if (not config.quiet)
    "serve: listening on %s (parallel %d, queue capacity %d%s)\n"
    config.socket_path config.parallel config.queue_capacity
    (match config.results_path with
    | Some p -> ", results " ^ p
    | None -> "");
  t

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.scheduler_thread with Some th -> Thread.join th | None -> ());
  (* every queued job has been answered; nudge lingering readers off
     their blocking reads so they observe the close *)
  Mutex.protect t.conns_mutex (fun () ->
      Hashtbl.iter
        (fun _ c ->
          if not c.closed then
            try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ())
        t.conns);
  let readers =
    Mutex.protect t.conns_mutex (fun () ->
        Hashtbl.fold (fun _ th acc -> th :: acc) t.readers [])
  in
  List.iter Thread.join readers;
  Sp_obs.Log.printf_if (not t.config.quiet)
    "serve: drained (%d completed, %d rejected, %d timed out, %d bad frames)\n"
    (Atomic.get t.completed) (Atomic.get t.rejected) (Atomic.get t.timed_out)
    (Atomic.get t.bad_frames)

let stop t =
  initiate_shutdown t;
  wait t

let run config =
  let t = start config in
  let drain = Sys.Signal_handle (fun _ -> initiate_shutdown t) in
  Sys.set_signal Sys.sigterm drain;
  Sys.set_signal Sys.sigint drain;
  wait t
