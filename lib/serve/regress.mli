(** Regression gating over the results store: diff a benchmark's
    latest stored run against its history.

    The baseline is the mean of the metric over every stored run
    {e before} the latest; the verdict compares
    [latest / baseline] against a ratio gate.  Used by
    [specrepro bench-regress] (exit 2 on any regression — the
    gate-failure exit code), so CI can run the tiny suite through the
    daemon, let the store accumulate history, and fail the build when
    a metric drifts past the gate. *)

type verdict = {
  benchmark : string;
  metric : string;
  runs : int;  (** stored runs for this benchmark, including latest *)
  latest : float;
  baseline : float;  (** mean over the [runs - 1] prior runs *)
  ratio : float;
      (** [latest /. baseline]; 1.0 when both are zero, [infinity]
          when only the baseline is *)
  regressed : bool;  (** [ratio > gate] *)
}

val evaluate :
  records:Sp_obs.Json.t list ->
  benchmark:string ->
  metric:string ->
  gate:float ->
  (verdict option, string) result
(** [Ok None] when the benchmark has exactly one stored run (nothing
    to diff against — a first run can never regress); [Error] when the
    store has no runs for the benchmark or a run lacks the metric. *)
