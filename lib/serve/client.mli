(** Client side of the daemon protocol: connect to the Unix socket,
    send one {!Protocol} frame per request, read one frame per reply.

    Replies are returned both parsed and as the raw payload bytes —
    [specrepro submit --json] prints the raw bytes verbatim, which is
    how the CLI guarantees its daemon output is byte-identical to
    what the server sent (and hence to [specrepro run --json]). *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's socket path. *)

val close : t -> unit

val request : t -> Sp_obs.Json.t -> (string * Sp_obs.Json.t, string) result
(** Send one request, block for one reply; [(raw_payload, parsed)].
    Errors cover connect-level failures and malformed reply frames
    ({!Protocol.error_message}). *)

(** {1 Request builders} — the v2 wire vocabulary. *)

val submit : benchmark:string -> Specrepro.Pipeline.options -> Sp_obs.Json.t
(** [{schema; command = "submit"; options}] with the options rendered
    canonically by {!Specrepro.Api.options_json}. *)

val status : Sp_obs.Json.t
val shutdown : Sp_obs.Json.t
