module Json = Sp_obs.Json

type t = { fd : Unix.file_descr }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () -> Ok { fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let request t json =
  match Protocol.write t.fd json with
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message e))
  | () -> (
      match Protocol.read t.fd with
      | Ok (raw, reply) -> Ok (raw, reply)
      | Error err -> Error (Protocol.error_message err))

let plain command =
  Json.Obj
    [
      ("schema", Json.Str Specrepro.Api.schema);
      ("command", Json.Str command);
    ]

let submit ~benchmark options =
  Json.Obj
    [
      ("schema", Json.Str Specrepro.Api.schema);
      ("command", Json.Str "submit");
      ("options", Specrepro.Api.options_json ~benchmark options);
    ]

let status = plain "status"
let shutdown = plain "shutdown"
