type config = { name : string; entries : int; assoc : int; page_bytes : int }

let itlb_default = { name = "ITLB"; entries = 64; assoc = 4; page_bytes = 4096 }
let dtlb_default = { name = "DTLB"; entries = 64; assoc = 4; page_bytes = 4096 }
let stlb_default = { name = "STLB"; entries = 512; assoc = 8; page_bytes = 4096 }

type t = {
  l1 : Cache.t;
  l2 : Cache.t option;
  mutable walks : int;
  mutable warming_walks : int;
}

(* A TLB entry maps one page: reuse the cache machinery with
   line size = page size. *)
let as_level (c : config) =
  Config.level ~name:c.name
    ~size_kb:(c.entries * c.page_bytes / 1024)
    ~assoc:c.assoc ~line_bytes:c.page_bytes

let create ?level2 cfg =
  {
    l1 = Cache.create (as_level cfg);
    l2 = Option.map (fun c -> Cache.create (as_level c)) level2;
    walks = 0;
    warming_walks = 0;
  }

type stats = {
  accesses : int;
  misses : int;
  walks : int;
  miss_rate : float;
  walk_rate : float;
}

let access t addr =
  if not (Cache.access t.l1 addr) then
    let l2_hit =
      match t.l2 with Some l2 -> Cache.access l2 addr | None -> false
    in
    if not l2_hit then t.walks <- t.walks + 1

(* [n] guaranteed first-level hits (repeats of the page just
   translated): counter-only, no replacement-state walk.  Exact for the
   same reason as [Cache.access_bulk] — a first-level hit never reaches
   the second level or the walk counter. *)
let access_bulk t n = Cache.access_bulk t.l1 n

let warm t addr =
  if not (Cache.warm t.l1 addr) then
    let l2_hit =
      match t.l2 with Some l2 -> Cache.warm l2 addr | None -> false
    in
    if not l2_hit then t.warming_walks <- t.warming_walks + 1

let stats t =
  let accesses = Cache.accesses t.l1 in
  let misses = Cache.misses t.l1 in
  {
    accesses;
    misses;
    walks = t.walks;
    miss_rate = Cache.miss_rate t.l1;
    walk_rate =
      (if accesses = 0 then 0.0
       else float_of_int t.walks /. float_of_int accesses);
  }

let reset_stats t =
  Cache.reset_stats t.l1;
  Option.iter Cache.reset_stats t.l2;
  t.walks <- 0

let reset_state t =
  Cache.reset_state t.l1;
  Option.iter Cache.reset_state t.l2;
  t.walks <- 0;
  t.warming_walks <- 0
