(** TLB simulation.

    The paper's [allcache] pintool is "a functional simulator of
    instruction+data TLB+cache hierarchies"; this module supplies the
    TLB half.  A TLB is modelled as a set-associative cache of page
    translations with LRU replacement (reusing {!Cache} at page
    granularity), with an optional unified second level.

    TLB capacities are *not* capacity-scaled like the data caches: a
    page already covers many cache lines, so the reach ratios survive
    the instruction-count scaling unchanged. *)

type config = {
  name : string;
  entries : int;
  assoc : int;
  page_bytes : int;
}

val itlb_default : config
(** 64-entry, 4-way, 4 kB pages. *)

val dtlb_default : config

val stlb_default : config
(** Unified second-level TLB: 512-entry, 8-way. *)

type t

val create : ?level2:config -> config -> t
(** [create ?level2 cfg] builds a TLB; misses in the first level probe
    [level2] when present. *)

type stats = {
  accesses : int;
  misses : int;      (** first-level misses *)
  walks : int;       (** misses in every level: page-table walks *)
  miss_rate : float;
  walk_rate : float;
}

val access : t -> int -> unit
(** Translate the page containing a byte address. *)

val access_bulk : t -> int -> unit
(** [access_bulk t n] counts [n] guaranteed first-level hits without
    walking — only sound for repeats of the page this TLB just
    translated (statistics bit-identical to [n] {!access} calls). *)

val warm : t -> int -> unit
(** Translate without counting statistics. *)

val stats : t -> stats
val reset_stats : t -> unit
val reset_state : t -> unit
