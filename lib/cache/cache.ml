type policy = Lru | Fifo | Random

(* Tags are line addresses shifted right by the set bits: far below bit
   60, so the dirty flag rides in a high bit and moves with its tag. *)
let dirty_bit = 1 lsl 60
let tag_mask = dirty_bit - 1

type t = {
  cfg : Config.level;
  pol : policy;
  line_shift : int;
  set_mask : int;
  set_shift : int;
  assoc : int;
  tags : int array;  (* sets * assoc; recency/insertion-ordered, slot 0 = MRU *)
  rng : Sp_util.Rng.t;
  mutable accesses : int;
  mutable misses : int;
  mutable writebacks : int;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* [log2] floors silently, so a geometry that is not an exact power of
   two would mis-shape the set index and tag without any error.  Reject
   it at construction instead, naming the level. *)
let validate (cfg : Config.level) =
  let fail fmt =
    Printf.ksprintf (fun s -> invalid_arg ("Cache.create: " ^ s)) fmt
  in
  if not (is_pow2 cfg.line_bytes) then
    fail "%s: line_bytes %d is not a positive power of two" cfg.name
      cfg.line_bytes;
  if cfg.assoc < 1 then fail "%s: assoc %d < 1" cfg.name cfg.assoc;
  let sets = Config.num_sets cfg in
  if not (is_pow2 sets) then
    fail "%s: set count %d (= %dB / %dB lines / %d ways) is not a positive \
          power of two"
      cfg.name sets cfg.size_bytes cfg.line_bytes cfg.assoc;
  if sets * cfg.assoc * cfg.line_bytes <> cfg.size_bytes then
    fail "%s: size %dB is not sets * assoc * line_bytes (%d * %d * %d)"
      cfg.name cfg.size_bytes sets cfg.assoc cfg.line_bytes

let create ?(policy = Lru) ?(seed = 0x5CA1AB1E) cfg =
  validate cfg;
  let sets = Config.num_sets cfg in
  {
    cfg;
    pol = policy;
    line_shift = log2 cfg.Config.line_bytes;
    set_mask = sets - 1;
    set_shift = log2 sets;
    assoc = cfg.Config.assoc;
    tags = Array.make (sets * cfg.Config.assoc) (-1);
    rng = Sp_util.Rng.create (seed lxor Sp_util.Rng.hash_string cfg.Config.name);
    accesses = 0;
    misses = 0;
    writebacks = 0;
  }

let config t = t.cfg
let policy t = t.pol

(* Look up [addr]'s line and update replacement state; returns hit. *)
let touch t ~write addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let tag = line lsr t.set_shift in
  let base = set * t.assoc in
  let tags = t.tags in
  (* MRU short-circuit: a hit in way 0 is a replacement-state no-op
     under every policy (LRU would rotate it to the slot it already
     occupies; FIFO/Random never reorder on hit), so the only possible
     state change is a write setting the dirty bit. *)
  let t0 = Array.unsafe_get tags base in
  if t0 >= 0 && t0 land tag_mask = tag then begin
    if write && t0 land dirty_bit = 0 then
      Array.unsafe_set tags base (t0 lor dirty_bit);
    true
  end
  else begin
    let rec find w =
      if w >= t.assoc then -1
      else if Array.unsafe_get tags (base + w) land tag_mask = tag
              && Array.unsafe_get tags (base + w) >= 0
      then w
      else find (w + 1)
    in
    let w = find 1 in
    if w >= 0 then begin
      (* hit: LRU rotates the entry to slot 0; FIFO/Random leave order *)
      let entry = tags.(base + w) lor (if write then dirty_bit else 0) in
      (match t.pol with
      | Lru ->
          for i = w downto 1 do
            Array.unsafe_set tags (base + i)
              (Array.unsafe_get tags (base + i - 1))
          done;
          Array.unsafe_set tags base entry
      | Fifo | Random -> tags.(base + w) <- entry);
      true
    end
    else begin
      let entry = tag lor (if write then dirty_bit else 0) in
      let evict victim =
        let old = tags.(base + victim) in
        if old >= 0 && old land dirty_bit <> 0 then
          t.writebacks <- t.writebacks + 1
      in
      (match t.pol with
      | Lru | Fifo ->
          evict (t.assoc - 1);
          for i = t.assoc - 1 downto 1 do
            Array.unsafe_set tags (base + i)
              (Array.unsafe_get tags (base + i - 1))
          done;
          Array.unsafe_set tags base entry
      | Random ->
          (* fill an invalid way first, else evict a random victim *)
          let rec invalid w =
            if w >= t.assoc then -1
            else if tags.(base + w) < 0 then w
            else invalid (w + 1)
          in
          let victim =
            match invalid 0 with
            | -1 -> Sp_util.Rng.int t.rng t.assoc
            | w -> w
          in
          evict victim;
          tags.(base + victim) <- entry);
      false
    end
  end

let access_rw t ~write addr =
  let hit = touch t ~write addr in
  t.accesses <- t.accesses + 1;
  if not hit then t.misses <- t.misses + 1;
  hit

let access t addr = access_rw t ~write:false addr

(* Fold [n] guaranteed-hit accesses into the counters without walking
   the set.  Only sound when the caller can prove every access would
   hit (e.g. repeats of the line it just touched): a read hit in any
   way changes neither residency, order (the line is already MRU under
   LRU; FIFO/Random never reorder on hit) nor dirty bits, so the whole
   batch is a pure counter bump. *)
let access_bulk t n = t.accesses <- t.accesses + n

let warm t addr = touch t ~write:false addr

let accesses t = t.accesses
let misses t = t.misses
let hits t = t.accesses - t.misses
let writebacks t = t.writebacks

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let reset_state t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  reset_stats t

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
