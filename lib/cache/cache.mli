(** A single set-associative cache with pluggable replacement.

    This is a *functional* cache model in the [allcache]-pintool sense:
    it tracks which lines are resident, their dirty bits, and counts
    hits, misses and write-backs, but carries no data and models no
    timing.  Timing is the business of {!Sp_cpu}. *)

(** Replacement policy.  [Lru] is the default (and what the paper's
    tools model); [Fifo] and [Random] support replacement-policy
    ablations. *)
type policy = Lru | Fifo | Random

type t

val create : ?policy:policy -> ?seed:int -> Config.level -> t
(** [seed] only matters for [Random] replacement (deterministic).
    @raise Invalid_argument (naming the level) if the geometry is
    degenerate: [line_bytes] or the derived set count not a positive
    power of two, [assoc < 1], or a size that is not
    [sets * assoc * line_bytes] — the shift/mask indexing would
    silently mis-shape otherwise. *)

val config : t -> Config.level
val policy : t -> policy

val access : t -> int -> bool
(** [access c addr] touches the line containing byte [addr] as a read;
    returns [true] on hit.  Allocates on miss. *)

val access_rw : t -> write:bool -> int -> bool
(** Like {!access}; a write marks the line dirty, and evicting a dirty
    line counts a write-back. *)

val access_bulk : t -> int -> unit
(** [access_bulk c n] folds [n] guaranteed-hit read accesses into the
    counters without touching replacement state.  Only sound when the
    caller can prove each access would hit — e.g. repeats of the line
    the cache just served, which are hits in place: no residency
    change, no reorder (the line is already MRU under LRU; FIFO/Random
    never reorder on hit), no dirty-bit change.  Statistics then stay
    bit-identical to [n] individual {!access} calls. *)

val warm : t -> int -> bool
(** Like {!access} but does not count statistics — used for the paper's
    cache-warming mitigation. *)

val accesses : t -> int
val misses : t -> int
val hits : t -> int

val writebacks : t -> int
(** Dirty evictions observed (including during warming, since they are
    state, not statistics). *)

val miss_rate : t -> float
(** Misses per access, in [\[0,1\]]; 0 if never accessed. *)

val reset_stats : t -> unit
(** Zero the counters; resident lines are kept. *)

val reset_state : t -> unit
(** Invalidate every line and zero the counters (a cold cache). *)

val resident_lines : t -> int
(** Number of currently valid lines. *)
