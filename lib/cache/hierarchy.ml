type t = {
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  l3 : Cache.t;
  line_bytes : int;
  prefetch : bool;
  mutable prefetches : int;
  mutable warming : bool;
}

type level_stats = { accesses : int; misses : int; miss_rate : float }

type stats = {
  l1i : level_stats;
  l1d : level_stats;
  l2 : level_stats;
  l3 : level_stats;
}

(* Aggregate cache-model activity, fed by [observe_stats] when a
   replay finishes with a hierarchy (the simulation loops themselves
   stay untouched).  Pure functions of the simulated work: stable. *)
module M = struct
  let ctr name = Sp_obs.Metrics.counter ("cache." ^ name)
  let l1i_acc = ctr "l1i.accesses"
  let l1i_miss = ctr "l1i.misses"
  let l1d_acc = ctr "l1d.accesses"
  let l1d_miss = ctr "l1d.misses"
  let l2_acc = ctr "l2.accesses"
  let l2_miss = ctr "l2.misses"
  let l3_acc = ctr "l3.accesses"
  let l3_miss = ctr "l3.misses"
end

let create ?policy ?(next_line_prefetch = false) (cfg : Config.hierarchy) =
  {
    l1i = Cache.create ?policy cfg.l1i;
    l1d = Cache.create ?policy cfg.l1d;
    l2 = Cache.create ?policy cfg.l2;
    l3 = Cache.create ?policy cfg.l3;
    line_bytes = cfg.l2.Config.line_bytes;
    prefetch = next_line_prefetch;
    prefetches = 0;
    warming = false;
  }

let issue_prefetch (t : t) addr =
  if t.prefetch then begin
    let next = addr + t.line_bytes in
    ignore (Cache.warm t.l2 next);
    ignore (Cache.warm t.l3 next);
    t.prefetches <- t.prefetches + 1
  end

let walk (t : t) ~write l1 addr =
  if t.warming then begin
    if not (Cache.warm l1 addr) then
      if not (Cache.warm t.l2 addr) then begin
        ignore (Cache.warm t.l3 addr);
        issue_prefetch t addr
      end
  end
  else if not (Cache.access_rw l1 ~write addr) then
    if not (Cache.access t.l2 addr) then begin
      ignore (Cache.access t.l3 addr);
      issue_prefetch t addr
    end

let fetch (t : t) addr = walk t ~write:false t.l1i addr
let read t addr = walk t ~write:false t.l1d addr
let write t addr = walk t ~write:true t.l1d addr

(* Same-line repeat filters: [n] guaranteed L1 hits folded straight
   into the L1 counters.  A hit in L1 never reaches L2/L3, and a
   repeat of the line L1 just served changes no replacement state, so
   statistics stay bit-identical to [n] full walks.  During warming a
   walk would count nothing and change nothing for a guaranteed hit,
   so the batch is dropped entirely. *)
let fetch_repeats (t : t) n = if not t.warming then Cache.access_bulk t.l1i n
let read_repeats (t : t) n = if not t.warming then Cache.access_bulk t.l1d n

type hit_level = L1 | L2 | L3 | Memory

let latency_class = function L1 -> 0 | L2 -> 1 | L3 -> 2 | Memory -> 3

let walk_where (t : t) ~write l1 addr =
  if t.warming then
    if Cache.warm l1 addr then L1
    else if Cache.warm t.l2 addr then L2
    else begin
      let level = if Cache.warm t.l3 addr then L3 else Memory in
      issue_prefetch t addr;
      level
    end
  else if Cache.access_rw l1 ~write addr then L1
  else if Cache.access t.l2 addr then L2
  else begin
    let level = if Cache.access t.l3 addr then L3 else Memory in
    issue_prefetch t addr;
    level
  end

let read_where (t : t) addr = walk_where t ~write:false t.l1d addr
let write_where (t : t) addr = walk_where t ~write:true t.l1d addr
let fetch_where (t : t) addr = walk_where t ~write:false t.l1i addr

let set_warming t b = t.warming <- b
let warming t = t.warming

let level_stats c =
  {
    accesses = Cache.accesses c;
    misses = Cache.misses c;
    miss_rate = Cache.miss_rate c;
  }

let stats (t : t) =
  {
    l1i = level_stats t.l1i;
    l1d = level_stats t.l1d;
    l2 = level_stats t.l2;
    l3 = level_stats t.l3;
  }

let observe_stats (s : stats) =
  Sp_obs.Metrics.add M.l1i_acc s.l1i.accesses;
  Sp_obs.Metrics.add M.l1i_miss s.l1i.misses;
  Sp_obs.Metrics.add M.l1d_acc s.l1d.accesses;
  Sp_obs.Metrics.add M.l1d_miss s.l1d.misses;
  Sp_obs.Metrics.add M.l2_acc s.l2.accesses;
  Sp_obs.Metrics.add M.l2_miss s.l2.misses;
  Sp_obs.Metrics.add M.l3_acc s.l3.accesses;
  Sp_obs.Metrics.add M.l3_miss s.l3.misses

let prefetches t = t.prefetches

let writebacks (t : t) =
  (Cache.writebacks t.l1d, Cache.writebacks t.l2, Cache.writebacks t.l3)

let reset_stats (t : t) =
  Cache.reset_stats t.l1i;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  Cache.reset_stats t.l3;
  t.prefetches <- 0

let reset_state (t : t) =
  Cache.reset_state t.l1i;
  Cache.reset_state t.l1d;
  Cache.reset_state t.l2;
  Cache.reset_state t.l3

let pp_level_stats ppf name (s : level_stats) =
  Format.fprintf ppf "%s: %d accesses, %d misses (%.2f%%)" name s.accesses
    s.misses (s.miss_rate *. 100.0)

let pp_stats ppf (s : stats) =
  pp_level_stats ppf "L1I" s.l1i;
  Format.pp_print_newline ppf ();
  pp_level_stats ppf "L1D" s.l1d;
  Format.pp_print_newline ppf ();
  pp_level_stats ppf "L2" s.l2;
  Format.pp_print_newline ppf ();
  pp_level_stats ppf "L3" s.l3
