(** Four-level cache hierarchy, matching the structure the [allcache]
    pintool simulates: split L1I/L1D backed by unified L2 and L3.

    Lookups are strictly hierarchical and non-inclusive: a level is
    accessed (and counted) only if the level above missed. *)

type t

type level_stats = { accesses : int; misses : int; miss_rate : float }

type stats = {
  l1i : level_stats;
  l1d : level_stats;
  l2 : level_stats;
  l3 : level_stats;
}

val create :
  ?policy:Cache.policy -> ?next_line_prefetch:bool -> Config.hierarchy -> t
(** [policy] applies to every level (default LRU).
    [next_line_prefetch] adds a simple next-line prefetcher: a miss in
    L2 also installs the following line into L2 and L3 (default off;
    used by the prefetch ablation). *)

val fetch : t -> int -> unit
(** Instruction-fetch access (L1I -> L2 -> L3). *)

val read : t -> int -> unit
(** Data read (L1D -> L2 -> L3). *)

val write : t -> int -> unit
(** Data write; write-allocate, so it walks the same path as a read. *)

val fetch_repeats : t -> int -> unit
(** [fetch_repeats t n] counts [n] instruction fetches that are
    guaranteed L1I hits (repeats of the line the last {!fetch}
    touched) without walking: a repeat hit changes no replacement
    state and never reaches L2/L3, so stats stay bit-identical to [n]
    {!fetch} calls.  No-op while warming, exactly as [n] warmed
    guaranteed hits would be. *)

val read_repeats : t -> int -> unit
(** Same-line filter for data reads: [n] guaranteed L1D hits, counters
    only.  (Writes must still go through {!write} — a repeat write can
    set the dirty bit.) *)

(** The level that served an access — what a timing model needs. *)
type hit_level = L1 | L2 | L3 | Memory

val latency_class : hit_level -> int
(** Stable code 0..3 (L1=0 .. Memory=3). *)

val read_where : t -> int -> hit_level
(** Like {!read}, additionally reporting the serving level. *)

val write_where : t -> int -> hit_level
val fetch_where : t -> int -> hit_level

val set_warming : t -> bool -> unit
(** While warming, accesses update cache state but not statistics —
    the "cache warming before each phase" mitigation of Section IV-D. *)

val warming : t -> bool

val stats : t -> stats

val observe_stats : stats -> unit
(** Fold a finished hierarchy's statistics into the global
    [cache.{l1i,l1d,l2,l3}.{accesses,misses}] metrics
    ({!Sp_obs.Metrics}).  Callers invoke this once per completed
    simulation, so the access loops themselves carry no
    instrumentation. *)

val prefetches : t -> int
(** Next-line prefetches issued (0 unless enabled). *)

val writebacks : t -> int * int * int
(** Dirty evictions from (L1D, L2, L3). *)

val reset_stats : t -> unit
val reset_state : t -> unit

val pp_stats : Format.formatter -> stats -> unit
