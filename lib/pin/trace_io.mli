open Sp_vm

(** Execution-trace export/import.

    Writes the instrumented event stream in a simple line-oriented text
    format, so regions (or whole runs) can be fed to external trace
    consumers — the role Pin trace-logger tools play in practice — and
    read back for analysis.

    Format, one event per line:
    {v
    I <pc> <kind-code>     retired instruction
    R <address>            memory read (decimal byte address)
    W <address>            memory write
    B <pc> <0|1>           conditional branch (taken flag)
    L <block-id>           basic-block entry
    X <block-id> <n>       n instructions of the block retired
    v} *)

type event =
  | Instr of int * int
  | Read of int
  | Write of int
  | Branch of int * bool
  | Block of int
  | Block_exec of int * int

module Writer : sig
  type t

  val create : ?limit:int -> out_channel -> t
  (** Stop recording after [limit] events (unlimited by default); the
      channel is not closed by this module. *)

  val hooks : t -> Hooks.t

  val events_written : t -> int

  val truncated : t -> bool
  (** True if the limit cut the stream short. *)
end

module Reader : sig
  val fold : in_channel -> init:'a -> f:('a -> event -> 'a) -> 'a
  (** Fold over all events.
      @raise Failure on a malformed line. *)

  val read_all : in_channel -> event list
end
