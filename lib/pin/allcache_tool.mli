open Sp_vm

(** The [allcache] pintool: a functional simulator of the
    instruction+data cache hierarchy (Table I by default), fed by the
    instrumented instruction and data reference streams. *)

type t

val create :
  ?config:Sp_cache.Config.hierarchy ->
  ?policy:Sp_cache.Cache.policy ->
  ?prefetch:bool ->
  Program.t ->
  t
(** The program is needed to turn PCs into instruction-fetch addresses.
    [policy] selects the replacement policy for every level (default
    LRU); [prefetch] enables the hierarchy's next-line prefetcher. *)

val prefetches : t -> int

val hooks : t -> Hooks.t
(** The fused hook set: a single {!Hooks.on_block_mems} consumer that
    replays each delivered segment's i-fetch grid and data references
    in one pass, with exact same-line/same-page repeat filters.  Under
    a block-capable engine this runs on the fused block-stepping tier;
    statistics are bit-identical to {!hooks_per_instr} (enforced by the
    differential suite). *)

val hooks_per_instr : t -> Hooks.t
(** The pre-fusion per-instruction callback set ([on_instr]/[on_read]/
    [on_write], one TLB access and one hierarchy walk per event).  Kept
    as the reference implementation for differential testing; both hook
    sets drive the same [t] and may be used interchangeably (not
    simultaneously). *)

val hierarchy : t -> Sp_cache.Hierarchy.t

val stats : t -> Sp_cache.Hierarchy.stats

val itlb_stats : t -> Sp_cache.Tlb.stats
(** Instruction-TLB statistics (the [allcache] pintool simulates
    instruction+data TLBs alongside the caches). *)

val dtlb_stats : t -> Sp_cache.Tlb.stats

val set_warming : t -> bool -> unit
(** Forwarded to the hierarchy: accesses update state but not stats. *)

val reset_stats : t -> unit

val reset_state : t -> unit
(** Clears cache/TLB contents and the fused tier's repeat-filter memos
    (which are only valid while the lines they name stay resident). *)
