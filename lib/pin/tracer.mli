open Sp_vm

(** A bounded execution tracer (the [logger]-as-debugging-aid use of
    Pin): keeps the most recent events in a ring buffer.  Used by tests
    and for post-mortem inspection of kernels; heavyweight full-trace
    logging is the business of {!Sp_pinball.Logger}. *)

type event =
  | Instr of { pc : int; kind : Sp_isa.Isa.kind }
  | Read of int
  | Write of int
  | Branch of { pc : int; taken : bool }
  | Block of int
  | Block_exec of { bb : int; len : int }

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the number of most-recent events retained
    (default 4096). *)

val hooks : t -> Hooks.t

val events : t -> event list
(** Oldest first. *)

val total_events : t -> int
(** Count of all events observed, including evicted ones. *)

val clear : t -> unit
