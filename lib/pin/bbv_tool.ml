open Sp_vm

type slice = {
  index : int;
  start_icount : int;
  length : int;
  bbv : (int * int) array;
}

type t = {
  slice_len : int;
  counts : int array;          (* per block, current slice *)
  mutable touched : int list;  (* blocks with non-zero count *)
  mutable cur_len : int;
  mutable start_icount : int;
  mutable closed : slice list; (* reversed *)
  mutable num_closed : int;
}

let create ~slice_len (prog : Program.t) =
  if slice_len <= 0 then invalid_arg "Bbv_tool.create: slice_len <= 0";
  {
    slice_len;
    counts = Array.make (Program.num_blocks prog) 0;
    touched = [];
    cur_len = 0;
    start_icount = 0;
    closed = [];
    num_closed = 0;
  }

let close_slice t =
  let pairs =
    List.rev_map
      (fun bb ->
        let c = t.counts.(bb) in
        t.counts.(bb) <- 0;
        (bb, c))
      t.touched
  in
  let bbv = Array.of_list pairs in
  Array.sort (fun ((a : int), _) ((b : int), _) -> Int.compare a b) bbv;
  let s =
    {
      index = t.num_closed;
      start_icount = t.start_icount;
      length = t.cur_len;
      bbv;
    }
  in
  t.closed <- s :: t.closed;
  t.num_closed <- t.num_closed + 1;
  t.touched <- [];
  t.start_icount <- t.start_icount + t.cur_len;
  t.cur_len <- 0

let bump t bb n =
  let c = Array.unsafe_get t.counts bb in
  if c = 0 then t.touched <- bb :: t.touched;
  Array.unsafe_set t.counts bb (c + n)

(* Credit [n] retirements of block [bb], splitting across slice
   boundaries.  Per-instruction accounting closes a slice the moment its
   length reaches [slice_len]; crediting [room] instructions here and
   carrying the remainder into the next slice reproduces that
   bit-for-bit, whether the engine delivers one instruction or a whole
   block (or several slices' worth) at a time. *)
let rec add t bb n =
  let room = t.slice_len - t.cur_len in
  if n < room then begin
    bump t bb n;
    t.cur_len <- t.cur_len + n
  end
  else begin
    bump t bb room;
    t.cur_len <- t.slice_len;
    close_slice t;
    if n > room then add t bb (n - room)
  end

let hooks t = { Hooks.nil with on_block_exec = (fun bb n -> add t bb n) }

let finish t = if t.cur_len > 0 then close_slice t

let slices t = Array.of_list (List.rev t.closed)

let num_slices t = t.num_closed

let slice_len t = t.slice_len
