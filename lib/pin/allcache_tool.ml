open Sp_vm
open Sp_cache

(* The fused [allcache] tool: instead of per-instruction callbacks, it
   consumes [Hooks.on_block_mems] segments — a run of consecutively
   retired instructions plus all of their data references — and walks
   the i-fetch line/page grid and the data stream in one pass.

   Two exact filters carry the speedup (arguments in DESIGN.md §5g):

   - i-fetch grid: within a segment, consecutive fetches that land on
     one cache line (and one page) after the first are *guaranteed*
     L1I/ITLB hits, and a repeat hit of the just-served line changes no
     replacement state, so they fold straight into the counters via
     [access_bulk].  The [last_i_*] memos extend the filter across
     segments, blocks and runs: L1I and the ITLB are touched only by
     this fetch stream, so "same line as the previous fetch" still
     implies residency and MRU position.

   - data same-line/same-page filter: a data reference to the line
     (page) of the immediately preceding data reference is a guaranteed
     L1D (DTLB) hit.  Repeat reads fold into the counters; repeat
     writes still call {!Hierarchy.write} because a write must be able
     to set the dirty bit — [Cache.touch]'s MRU short-circuit makes
     that walk a single compare.

   Misses — and only misses — reach the shared L2/L3 in exactly the
   per-instruction order, so every statistic (including TLB walks,
   prefetches and writebacks) is bit-identical to the per-instruction
   tier.  [hooks_per_instr] keeps the pre-fusion callback set alive for
   the differential suite that enforces this. *)

type t = {
  hier : Hierarchy.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
  code_base : int;
  i_line_shift : int;
  i_page_shift : int;
  d_line_shift : int;
  d_page_shift : int;
  (* line/page ids ([byte_addr lsr shift]) of the previous i-fetch and
     data reference; [min_int] = none, reset with the cache state *)
  mutable last_i_line : int;
  mutable last_i_page : int;
  mutable last_d_line : int;
  mutable last_d_page : int;
  mutable warming : bool;
}

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ?(config = Config.allcache_table1) ?policy ?(prefetch = false)
    (prog : Program.t) =
  {
    hier = Hierarchy.create ?policy ~next_line_prefetch:prefetch config;
    itlb = Tlb.create ~level2:Tlb.stlb_default Tlb.itlb_default;
    dtlb = Tlb.create ~level2:Tlb.stlb_default Tlb.dtlb_default;
    code_base = prog.code_base;
    i_line_shift = log2 config.l1i.Config.line_bytes;
    i_page_shift = log2 Tlb.itlb_default.Tlb.page_bytes;
    d_line_shift = log2 config.l1d.Config.line_bytes;
    d_page_shift = log2 Tlb.dtlb_default.Tlb.page_bytes;
    last_i_line = min_int;
    last_i_page = min_int;
    last_d_line = min_int;
    last_d_page = min_int;
    warming = false;
  }

let bpi = Sp_isa.Isa.bytes_per_instr

(* Issue the i-fetch stream for instruction offsets [!cur .. j] of a
   segment starting at byte address [base], chunked by the cache-line
   grid (lines are aligned and pages are line-multiples, so a chunk
   never straddles either boundary): the first fetch of a new line or
   page walks for real, the rest of the chunk folds into the counters.
   While warming, a guaranteed repeat hit is a complete no-op (no stats,
   no state change), so repeats are dropped outright. *)
let fetch_chunks t base cur j =
  while !cur <= j do
    let a = base + (!cur * bpi) in
    let line = a lsr t.i_line_shift in
    let page = a lsr t.i_page_shift in
    let line_end = (line + 1) lsl t.i_line_shift in
    let span = (line_end - a + bpi - 1) / bpi in
    let avail = j - !cur + 1 in
    let count = if span < avail then span else avail in
    if t.warming then begin
      if page <> t.last_i_page then Tlb.warm t.itlb a;
      if line <> t.last_i_line then Hierarchy.fetch t.hier a
    end
    else begin
      if page = t.last_i_page then Tlb.access_bulk t.itlb count
      else begin
        Tlb.access t.itlb a;
        if count > 1 then Tlb.access_bulk t.itlb (count - 1)
      end;
      if line = t.last_i_line then Hierarchy.fetch_repeats t.hier count
      else begin
        Hierarchy.fetch t.hier a;
        if count > 1 then Hierarchy.fetch_repeats t.hier (count - 1)
      end
    end;
    t.last_i_line <- line;
    t.last_i_page <- page;
    cur := !cur + count
  done

let process t pc0 n offs addrs nrefs =
  let base = t.code_base + (pc0 * bpi) in
  let cur = ref 0 in
  for r = 0 to nrefs - 1 do
    (* fetch up to and including the referencing instruction first: the
       per-instruction tier fetches before it touches data *)
    fetch_chunks t base cur (Array.unsafe_get offs r);
    let v = Array.unsafe_get addrs r in
    let addr = v asr 1 in
    let wr = v land 1 <> 0 in
    let line = addr lsr t.d_line_shift in
    let page = addr lsr t.d_page_shift in
    if t.warming then begin
      if page <> t.last_d_page then Tlb.warm t.dtlb addr;
      (* warming ignores write bits, so a guaranteed repeat hit is a
         no-op whether read or write *)
      if line <> t.last_d_line then
        if wr then Hierarchy.write t.hier addr else Hierarchy.read t.hier addr
    end
    else begin
      if page = t.last_d_page then Tlb.access_bulk t.dtlb 1
      else Tlb.access t.dtlb addr;
      if wr then Hierarchy.write t.hier addr
      else if line = t.last_d_line then Hierarchy.read_repeats t.hier 1
      else Hierarchy.read t.hier addr
    end;
    t.last_d_line <- line;
    t.last_d_page <- page
  done;
  fetch_chunks t base cur (n - 1)

let hooks t =
  {
    Hooks.nil with
    Hooks.on_block_mems =
      (fun pc0 n offs addrs nrefs -> process t pc0 n offs addrs nrefs);
  }

(* The pre-fusion per-instruction callback set: one TLB access and one
   hierarchy walk per event.  The differential suite replays identical
   programs under both hook sets and requires identical statistics. *)
let hooks_per_instr t =
  let hier = t.hier in
  let code_base = t.code_base in
  let data t addr =
    if t.warming then Tlb.warm t.dtlb addr else Tlb.access t.dtlb addr
  in
  {
    Hooks.nil with
    Hooks.on_instr =
      (fun pc _kind ->
        let addr = code_base + (pc * Sp_isa.Isa.bytes_per_instr) in
        if t.warming then Tlb.warm t.itlb addr else Tlb.access t.itlb addr;
        Hierarchy.fetch hier addr);
    on_read =
      (fun addr ->
        data t addr;
        Hierarchy.read hier addr);
    on_write =
      (fun addr ->
        data t addr;
        Hierarchy.write hier addr);
  }

let hierarchy t = t.hier
let stats t = Hierarchy.stats t.hier
let prefetches t = Hierarchy.prefetches t.hier
let itlb_stats t = Tlb.stats t.itlb
let dtlb_stats t = Tlb.stats t.dtlb

let set_warming t b =
  t.warming <- b;
  Hierarchy.set_warming t.hier b

let reset_stats t =
  Hierarchy.reset_stats t.hier;
  Tlb.reset_stats t.itlb;
  Tlb.reset_stats t.dtlb

let reset_state t =
  Hierarchy.reset_state t.hier;
  Tlb.reset_state t.itlb;
  Tlb.reset_state t.dtlb;
  (* the filters' residency guarantee died with the cache state *)
  t.last_i_line <- min_int;
  t.last_i_page <- min_int;
  t.last_d_line <- min_int;
  t.last_d_page <- min_int
