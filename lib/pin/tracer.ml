open Sp_vm

type event =
  | Instr of { pc : int; kind : Sp_isa.Isa.kind }
  | Read of int
  | Write of int
  | Branch of { pc : int; taken : bool }
  | Block of int
  | Block_exec of { bb : int; len : int }

type t = {
  buf : event option array;
  mutable next : int;
  mutable total : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Tracer.create: capacity <= 0";
  { buf = Array.make capacity None; next = 0; total = 0 }

let push t e =
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let hooks t =
  {
    Hooks.nil with
    Hooks.on_block = (fun bb -> push t (Block bb));
    on_block_exec = (fun bb len -> push t (Block_exec { bb; len }));
    on_instr = (fun pc kind -> push t (Instr { pc; kind = Sp_isa.Isa.kind_of_code kind }));
    on_read = (fun addr -> push t (Read addr));
    on_write = (fun addr -> push t (Write addr));
    on_branch = (fun pc taken -> push t (Branch { pc; taken }));
  }

let events t =
  let cap = Array.length t.buf in
  let collect i acc =
    match t.buf.((t.next + i) mod cap) with None -> acc | Some e -> e :: acc
  in
  let rec go i acc = if i < 0 then acc else go (i - 1) (collect i acc) in
  go (cap - 1) []

let total_events t = t.total

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0
