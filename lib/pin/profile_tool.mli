open Sp_vm

(** The streaming single-pass profiler: one replay produces the BBV
    slices of {!Bbv_tool}, the memory-operand mix of {!Ldstmix} and the
    per-kind instruction mix of {!Inscount} — bit-identical to running
    the three dedicated tools in three separate replays.

    Everything derives from the positional {!Hooks.on_block_span}
    aggregate: a span names [n] consecutive retired instructions
    starting at a static pc, so block attribution and per-kind
    classification both read the static program instead of paying a
    per-instruction callback.  The hook set stays block-level, keeping
    the run on the interpreter's compiled tier.

    The pipeline selects this tool automatically when a stage wants
    more than one profile from the same replay; single-profile callers
    keep the dedicated tools.  Additional profilers that can consume
    spans (e.g. a future memory-access-vector collector) compose the
    same way: seq their hooks into the same run rather than adding a
    replay. *)

type t

val create : slice_len:int -> Program.t -> t
(** @raise Invalid_argument if [slice_len <= 0]. *)

val hooks : t -> Hooks.t
(** Block-level hooks ([Hooks.on_block_span] only). *)

val finish : t -> unit
(** Close the trailing partial BBV slice, if any.  Call after the run. *)

val slices : t -> Bbv_tool.slice array
(** BBV slices, bit-identical to a dedicated {!Bbv_tool} replay. *)

val num_slices : t -> int

val total : t -> int
(** Retired instructions seen, as {!Inscount.total}. *)

val by_kind : t -> Sp_isa.Isa.kind -> int
(** Per-kind dynamic count, as {!Inscount.by_kind}. *)

val kind_count : t -> int -> int
(** Same, indexed by [Isa.kind_code]. *)

val kind_counts : t -> int array
(** A copy of the whole per-kind count vector (indexed by
    [Isa.kind_code]) — the raw material persisted by the pipeline's
    profile-result cache. *)

val ldst_count : t -> Sp_isa.Isa.mem_class -> int
(** Memory-class dynamic count, as {!Ldstmix.count}. *)

val ldst_mix : t -> Mix.t
(** Memory-operand distribution, bit-identical to a dedicated
    {!Ldstmix} replay ({!Ldstmix.mix}). *)

val ldst_mix_of_kind_counts : int array -> Mix.t
(** {!ldst_mix} recomputed from a persisted per-kind count vector
    ({!kind_counts}) — the same static classification fold, so the
    result is bit-identical to the mix of the tool that produced the
    counts. *)
