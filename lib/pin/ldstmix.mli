open Sp_vm

(** The [ldstmix] pintool: classifies every retired instruction by its
    memory-operand pattern (NO_MEM / MEM_R / MEM_W / MEM_RW) and reports
    the distribution.  This is the instruction-mix instrument behind
    Figures 3 and 7 of the paper. *)

type t

val class_code_of_kind : int -> int
(** [Isa.mem_class_code] of an instruction's memory-operand class,
    indexed by [Isa.kind_code] — the static classification behind this
    tool, exposed so combined consumers ({!Profile_tool}) reproduce its
    counts bit-for-bit from per-kind totals. *)

val create : unit -> t
val hooks : t -> Hooks.t

val count : t -> Sp_isa.Isa.mem_class -> int
val total : t -> int

val mix : t -> Mix.t
(** Current distribution as fractions. *)

val reset : t -> unit
