open Sp_vm

(** Basic Block Vector collector (the SimPoint frontend).

    Splits the dynamic instruction stream into fixed-length slices and
    records, per slice, how many instructions retired inside each static
    basic block.  Vectors are kept sparse: a slice typically touches a
    handful of the program's blocks.

    Attribution is per retired instruction (equivalent to the classic
    entry-count x block-length weighting, but exact at slice boundaries,
    which slice mid-block). *)

type slice = {
  index : int;
  start_icount : int;  (** dynamic instruction count at slice start *)
  length : int;        (** retired instructions in the slice *)
  bbv : (int * int) array;
      (** (block id, instructions retired in block), sorted by block id *)
}

type t

val create : slice_len:int -> Program.t -> t
(** @raise Invalid_argument if [slice_len <= 0]. *)

val hooks : t -> Hooks.t
(** Block-level hooks ([Hooks.on_block_exec] only), so a BBV-only run
    executes on the interpreter's block-stepping engine.  Slices are
    bit-identical whether retirements arrive per instruction or per
    block: block credit that crosses a slice boundary is split at the
    exact instruction. *)

val add : t -> int -> int -> unit
(** [add t bb n] credits [n] retirements of block [bb] directly — the
    callback behind {!hooks}, exposed so combined consumers
    ({!Profile_tool}) can feed the collector from their own hook
    without a second hook record in the chain.  Identical splitting
    behaviour at slice boundaries. *)

val finish : t -> unit
(** Close the trailing partial slice, if any.  Call after the run. *)

val slices : t -> slice array
(** All closed slices, in execution order. *)

val num_slices : t -> int
val slice_len : t -> int
