open Sp_vm

type event =
  | Instr of int * int
  | Read of int
  | Write of int
  | Branch of int * bool
  | Block of int
  | Block_exec of int * int

module Writer = struct
  type t = {
    oc : out_channel;
    limit : int;
    mutable written : int;
    mutable truncated : bool;
  }

  let create ?(limit = max_int) oc = { oc; limit; written = 0; truncated = false }

  let emit t f =
    if t.written < t.limit then begin
      f t.oc;
      t.written <- t.written + 1
    end
    else t.truncated <- true

  let hooks t =
    {
      Hooks.nil with
      Hooks.on_block = (fun bb -> emit t (fun oc -> Printf.fprintf oc "L %d\n" bb));
      on_block_exec =
        (fun bb len -> emit t (fun oc -> Printf.fprintf oc "X %d %d\n" bb len));
      on_instr =
        (fun pc kind -> emit t (fun oc -> Printf.fprintf oc "I %d %d\n" pc kind));
      on_read = (fun a -> emit t (fun oc -> Printf.fprintf oc "R %d\n" a));
      on_write = (fun a -> emit t (fun oc -> Printf.fprintf oc "W %d\n" a));
      on_branch =
        (fun pc taken ->
          emit t (fun oc ->
              Printf.fprintf oc "B %d %d\n" pc (if taken then 1 else 0)));
    }

  let events_written t = t.written
  let truncated t = t.truncated
end

module Reader = struct
  let parse line =
    let fail () = failwith ("Trace_io: malformed line " ^ line) in
    match String.split_on_char ' ' (String.trim line) with
    | [ "I"; pc; kind ] -> (
        match (int_of_string_opt pc, int_of_string_opt kind) with
        | Some pc, Some kind -> Instr (pc, kind)
        | _ -> fail ())
    | [ "R"; a ] -> (
        match int_of_string_opt a with Some a -> Read a | None -> fail ())
    | [ "W"; a ] -> (
        match int_of_string_opt a with Some a -> Write a | None -> fail ())
    | [ "B"; pc; t ] -> (
        match (int_of_string_opt pc, t) with
        | Some pc, "1" -> Branch (pc, true)
        | Some pc, "0" -> Branch (pc, false)
        | _ -> fail ())
    | [ "L"; bb ] -> (
        match int_of_string_opt bb with Some bb -> Block bb | None -> fail ())
    | [ "X"; bb; len ] -> (
        match (int_of_string_opt bb, int_of_string_opt len) with
        | Some bb, Some len -> Block_exec (bb, len)
        | _ -> fail ())
    | _ -> fail ()

  let fold ic ~init ~f =
    let acc = ref init in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then acc := f !acc (parse line)
       done
     with End_of_file -> ());
    !acc

  let read_all ic = List.rev (fold ic ~init:[] ~f:(fun acc e -> e :: acc))
end
