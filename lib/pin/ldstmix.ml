open Sp_isa
open Sp_vm

type t = { counts : int array (* indexed by mem_class code *) }

(* Per-kind memory class, precomputed so the hot callback is two array
   operations. *)
let class_of_kind =
  Array.init Isa.num_kinds (fun code ->
      match Isa.kind_of_code code with
      | K_load -> Isa.mem_class_code Mem_r
      | K_store -> Isa.mem_class_code Mem_w
      | K_movs -> Isa.mem_class_code Mem_rw
      | K_alu | K_mul | K_div | K_falu | K_fmul | K_fdiv | K_branch | K_jump
      | K_sys | K_halt ->
          Isa.mem_class_code No_mem)

let class_code_of_kind code = class_of_kind.(code)

let create () = { counts = Array.make 4 0 }

let hooks t =
  let counts = t.counts in
  {
    Hooks.nil with
    on_instr =
      (fun _pc kind ->
        let cls = Array.unsafe_get class_of_kind kind in
        Array.unsafe_set counts cls (Array.unsafe_get counts cls + 1));
  }

let count t cls = t.counts.(Isa.mem_class_code cls)

let total t = Array.fold_left ( + ) 0 t.counts

let mix t =
  Mix.of_counts ~no_mem:t.counts.(0) ~mem_r:t.counts.(1) ~mem_w:t.counts.(2)
    ~mem_rw:t.counts.(3)

let reset t = Array.fill t.counts 0 4 0
