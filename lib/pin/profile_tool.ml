open Sp_isa
open Sp_vm

(* The streaming single-pass profiler: BBV + ldst-mix + instruction-mix
   from one replay.  Everything derives from the positional
   [on_block_span] aggregate — each span names [n] consecutive retired
   instructions starting at a static pc, so block attribution (BBV) and
   per-kind classification (imix, and from it the memory-class mix)
   both come from the static program with no per-instruction hook
   dispatch.  The hook set is block-level, so the run stays on the
   compiled / block-stepping engines. *)

type t = {
  bbv : Bbv_tool.t;
  bb_of_pc : int array;
  is_leader : bool array;
  block_end : int array;
  blocks : Program.block array;
  kinds : int array;
  kind_counts : int array; (* per Isa.kind code, whole run *)
  mutable total : int;
}

let create ~slice_len (prog : Program.t) =
  {
    bbv = Bbv_tool.create ~slice_len prog;
    bb_of_pc = prog.bb_of_pc;
    is_leader = prog.is_leader;
    block_end = prog.block_end;
    blocks = prog.blocks;
    kinds = prog.kinds;
    kind_counts = Array.make Isa.num_kinds 0;
    total = 0;
  }

let span t pc0 n =
  let bb = Array.unsafe_get t.bb_of_pc pc0 in
  Bbv_tool.add t.bbv bb n;
  t.total <- t.total + n;
  let kc = t.kind_counts in
  if
    n >= Isa.num_kinds
    && Array.unsafe_get t.is_leader pc0
    && pc0 + n = Array.unsafe_get t.block_end bb
  then begin
    (* whole block, long enough that the precomputed per-block kind
       table beats scanning the body *)
    let bkc = (Array.unsafe_get t.blocks bb).Program.kind_counts in
    for k = 0 to Isa.num_kinds - 1 do
      Array.unsafe_set kc k (Array.unsafe_get kc k + Array.unsafe_get bkc k)
    done
  end
  else
    for pc = pc0 to pc0 + n - 1 do
      let k = Array.unsafe_get t.kinds pc in
      Array.unsafe_set kc k (Array.unsafe_get kc k + 1)
    done

let hooks t = { Hooks.nil with on_block_span = (fun pc0 n -> span t pc0 n) }

let finish t = Bbv_tool.finish t.bbv

let slices t = Bbv_tool.slices t.bbv

let num_slices t = Bbv_tool.num_slices t.bbv

let total t = t.total

let by_kind t k = t.kind_counts.(Isa.kind_code k)

let kind_count t code = t.kind_counts.(code)

(* Memory-class totals fold the per-kind counts through the same static
   classification [Ldstmix] applies per retirement, so the class counts
   — and the [Mix.of_counts] fractions built from them — are bit-equal
   to a dedicated ldstmix replay. *)
let ldst_counts_of_kind_counts kc =
  let cls = Array.make 4 0 in
  Array.iteri
    (fun k c ->
      let ci = Ldstmix.class_code_of_kind k in
      cls.(ci) <- cls.(ci) + c)
    kc;
  cls

let ldst_counts t = ldst_counts_of_kind_counts t.kind_counts

let ldst_count t c = (ldst_counts t).(Isa.mem_class_code c)

let ldst_mix_of_kind_counts kc =
  let c = ldst_counts_of_kind_counts kc in
  Mix.of_counts ~no_mem:c.(0) ~mem_r:c.(1) ~mem_w:c.(2) ~mem_rw:c.(3)

let ldst_mix t = ldst_mix_of_kind_counts t.kind_counts

let kind_counts t = Array.copy t.kind_counts
