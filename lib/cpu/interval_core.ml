open Sp_isa
open Sp_vm
open Sp_cache

type stats = {
  instructions : int;
  cycles : float;
  base_cycles : float;
  branch_stall_cycles : float;
  memory_stall_cycles : float;
  branch_lookups : int;
  branch_mispredicts : int;
  level_hits : int array;
}

type t = {
  cfg : Core_config.t;
  hier : Hierarchy.t;
  bp : Branch_predictor.t;
  code_base : int;
  blocks : Program.block array;
  dispatch_cost : float;
  kind_extra : float array;
  rob_window : int;  (* instructions the ROB can hold in flight *)
  mutable warming : bool;
  mutable instructions : int;
  mutable base_cycles : float;
  mutable branch_stall : float;
  mutable mem_stall : float;
  level_hits : int array;
  mutable last_miss_line : int;
  mutable last_miss_icount : int;
}

(* Exposed fraction of a long-latency operation that the out-of-order
   window cannot hide, per micro-op kind. *)
let extra_of_kind kind =
  match Isa.kind_of_code kind with
  | K_div -> 4.0
  | K_fdiv -> 6.0
  | K_mul -> 0.3
  | K_fmul -> 0.5
  | K_falu -> 0.3
  | K_alu | K_load | K_store | K_movs | K_branch | K_jump | K_sys | K_halt ->
      0.0

let create ?(config = Core_config.i7_3770) (prog : Program.t) =
  {
    cfg = config;
    hier = Hierarchy.create config.caches;
    bp = Branch_predictor.create ();
    code_base = prog.code_base;
    blocks = prog.blocks;
    dispatch_cost = 1.0 /. float_of_int config.dispatch_width;
    kind_extra = Array.init Isa.num_kinds extra_of_kind;
    rob_window = config.rob_entries;
    warming = false;
    instructions = 0;
    base_cycles = 0.0;
    branch_stall = 0.0;
    mem_stall = 0.0;
    level_hits = Array.make 4 0;
    last_miss_line = min_int;
    last_miss_icount = min_int;
  }

let latency t (where : Hierarchy.hit_level) =
  match where with
  | Hierarchy.L1 -> t.cfg.l1_latency
  | Hierarchy.L2 -> t.cfg.l2_latency
  | Hierarchy.L3 -> t.cfg.l3_latency
  | Hierarchy.Memory -> t.cfg.memory_latency

(* Miss-latency exposure: streams (next-line misses inside the ROB
   window) overlap almost fully; independent scattered misses inside the
   window overlap partially; isolated or dependent-looking misses pay in
   full minus what the window hides. *)
let miss_exposure t ~addr ~where =
  match (where : Hierarchy.hit_level) with
  | Hierarchy.L1 -> 0.0
  | Hierarchy.L2 | Hierarchy.L3 | Hierarchy.Memory ->
      let line = addr lsr 6 in
      let gap = t.instructions - t.last_miss_icount in
      let factor =
        if gap <= t.rob_window && abs (line - t.last_miss_line) <= 2 then 0.15
        else if gap <= t.rob_window then 0.5
        else 1.0
      in
      t.last_miss_line <- line;
      t.last_miss_icount <- t.instructions;
      float_of_int (latency t where) *. factor

let on_access t ~is_write addr =
  let where =
    if is_write then Hierarchy.write_where t.hier addr
    else Hierarchy.read_where t.hier addr
  in
  if not t.warming then begin
    let cls = Hierarchy.latency_class where in
    t.level_hits.(cls) <- t.level_hits.(cls) + 1;
    let exposure = miss_exposure t ~addr ~where in
    (* stores retire through the store buffer: half exposure *)
    let exposure = if is_write then exposure *. 0.5 else exposure in
    t.mem_stall <- t.mem_stall +. exposure
  end

let hooks t =
  {
    Hooks.nil with
    Hooks.on_instr =
      (fun _pc kind ->
        if not t.warming then begin
          t.instructions <- t.instructions + 1;
          t.base_cycles <-
            t.base_cycles +. t.dispatch_cost
            +. Array.unsafe_get t.kind_extra kind
        end);
    on_block =
      (fun bb ->
        (* fetch at block granularity; instruction lines are hot, so
           modelling per-block fetch keeps the i-side realistic at a
           fraction of the lookup cost *)
        let leader = (Array.unsafe_get t.blocks bb).Program.start_pc in
        ignore
          (Hierarchy.fetch_where t.hier
             (t.code_base + (leader * Isa.bytes_per_instr))));
    on_read = (fun addr -> on_access t ~is_write:false addr);
    on_write = (fun addr -> on_access t ~is_write:true addr);
    on_branch =
      (fun pc taken ->
        if t.warming then Branch_predictor.observe t.bp ~pc ~taken
        else if not (Branch_predictor.predict_and_update t.bp ~pc ~taken) then
          t.branch_stall <-
            t.branch_stall +. float_of_int t.cfg.branch_penalty);
  }

let cycles t = t.base_cycles +. t.branch_stall +. t.mem_stall

let instructions t = t.instructions

let cpi t =
  if t.instructions = 0 then 0.0 else cycles t /. float_of_int t.instructions

let cpi_of_stats (s : stats) =
  if s.instructions = 0 then 0.0
  else s.cycles /. float_of_int s.instructions

let stats t =
  {
    instructions = t.instructions;
    cycles = cycles t;
    base_cycles = t.base_cycles;
    branch_stall_cycles = t.branch_stall;
    memory_stall_cycles = t.mem_stall;
    branch_lookups = Branch_predictor.lookups t.bp;
    branch_mispredicts = Branch_predictor.mispredicts t.bp;
    level_hits = Array.copy t.level_hits;
  }

let set_warming t b =
  t.warming <- b;
  Hierarchy.set_warming t.hier b

let reset_stats t =
  t.instructions <- 0;
  t.base_cycles <- 0.0;
  t.branch_stall <- 0.0;
  t.mem_stall <- 0.0;
  Array.fill t.level_hits 0 4 0;
  Hierarchy.reset_stats t.hier;
  Branch_predictor.reset_stats t.bp

let reset_state t =
  reset_stats t;
  Hierarchy.reset_state t.hier;
  Branch_predictor.reset_state t.bp;
  t.last_miss_line <- min_int;
  t.last_miss_icount <- min_int

let config t = t.cfg

let seconds t = cycles t /. (t.cfg.freq_ghz *. 1e9)
