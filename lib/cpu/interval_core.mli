open Sp_vm

(** Interval-model out-of-order timing: the abstraction Sniper itself is
    built on.

    The model charges each instruction its dispatch slot
    (1/dispatch-width cycles) and adds penalty *intervals* for the
    events an out-of-order window cannot hide: branch mispredictions
    (from a gshare predictor) and long-latency memory accesses (from a
    timed cache hierarchy).  Miss latency is partially hidden by the
    reorder buffer; consecutive independent misses within the ROB window
    overlap, while pointer-chasing (unpredictable next address) pays the
    full latency — approximated here by address-pattern detection, since
    the hook stream carries no register dependences. *)

type stats = {
  instructions : int;
  cycles : float;
  base_cycles : float;
  branch_stall_cycles : float;
  memory_stall_cycles : float;
  branch_lookups : int;
  branch_mispredicts : int;
  level_hits : int array;  (** accesses served per level: L1/L2/L3/Memory *)
}

type t

val create : ?config:Core_config.t -> Program.t -> t

val hooks : t -> Hooks.t

val cpi : t -> float
(** Cycles per instruction so far; 0 before any instruction. *)

val cycles : t -> float
val instructions : t -> int
val stats : t -> stats

val cpi_of_stats : stats -> float
(** {!cpi} recomputed from a {!stats} record — bit-identical to the
    [cpi] of the core that produced it (same formula on the same
    values), for consumers that persist stats and rebuild derived
    figures later. *)

val set_warming : t -> bool -> unit
(** While warming, caches and the predictor train but neither cycles nor
    counters accumulate. *)

val reset_stats : t -> unit
val reset_state : t -> unit

val config : t -> Core_config.t

val seconds : t -> float
(** Simulated wall-clock time at the configured frequency. *)
