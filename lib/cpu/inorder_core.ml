open Sp_isa
open Sp_vm
open Sp_cache

type t = {
  cfg : Core_config.t;
  hier : Hierarchy.t;
  bp : Branch_predictor.t;
  code_base : int;
  blocks : Program.block array;
  extra : float array;  (* per-kind extra cycles beyond the base cycle *)
  mutable warming : bool;
  mutable instructions : int;
  mutable cycles : float;
}

(* In-order execution hides nothing: long operations stall the pipe. *)
let extra_of_kind kind =
  match Isa.kind_of_code kind with
  | K_div -> 20.0
  | K_fdiv -> 30.0
  | K_mul -> 2.0
  | K_fmul -> 4.0
  | K_falu -> 2.0
  | K_alu | K_load | K_store | K_movs | K_branch | K_jump | K_sys | K_halt ->
      0.0

let create ?(config = Core_config.i7_3770_sim) (prog : Program.t) =
  {
    cfg = config;
    hier = Hierarchy.create config.caches;
    bp = Branch_predictor.create ();
    code_base = prog.code_base;
    blocks = prog.blocks;
    extra = Array.init Isa.num_kinds extra_of_kind;
    warming = false;
    instructions = 0;
    cycles = 0.0;
  }

let latency t (where : Hierarchy.hit_level) =
  match where with
  | Hierarchy.L1 -> t.cfg.l1_latency
  | Hierarchy.L2 -> t.cfg.l2_latency
  | Hierarchy.L3 -> t.cfg.l3_latency
  | Hierarchy.Memory -> t.cfg.memory_latency

let on_access t ~is_write addr =
  let where =
    if is_write then Hierarchy.write_where t.hier addr
    else Hierarchy.read_where t.hier addr
  in
  if not t.warming then
    (* a blocking access stalls for its full latency (stores for half:
       a simple store buffer) *)
    let l = float_of_int (latency t where) in
    t.cycles <- t.cycles +. (if is_write then l /. 2.0 else l)

let hooks t =
  {
    Hooks.nil with
    Hooks.on_instr =
      (fun _pc kind ->
        if not t.warming then begin
          t.instructions <- t.instructions + 1;
          t.cycles <- t.cycles +. 1.0 +. Array.unsafe_get t.extra kind
        end);
    on_block =
      (fun bb ->
        let leader = (Array.unsafe_get t.blocks bb).Program.start_pc in
        ignore
          (Hierarchy.fetch_where t.hier
             (t.code_base + (leader * Isa.bytes_per_instr))));
    on_read = (fun addr -> on_access t ~is_write:false addr);
    on_write = (fun addr -> on_access t ~is_write:true addr);
    on_branch =
      (fun pc taken ->
        if t.warming then Branch_predictor.observe t.bp ~pc ~taken
        else if not (Branch_predictor.predict_and_update t.bp ~pc ~taken) then
          t.cycles <- t.cycles +. float_of_int t.cfg.branch_penalty);
  }

let cycles t = t.cycles
let instructions t = t.instructions

let cpi t =
  if t.instructions = 0 then 0.0 else t.cycles /. float_of_int t.instructions

let set_warming t b =
  t.warming <- b;
  Hierarchy.set_warming t.hier b

let reset_stats t =
  t.instructions <- 0;
  t.cycles <- 0.0;
  Hierarchy.reset_stats t.hier;
  Branch_predictor.reset_stats t.bp

let reset_state t =
  reset_stats t;
  Hierarchy.reset_state t.hier;
  Branch_predictor.reset_state t.bp
