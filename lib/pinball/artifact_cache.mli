(** Content-addressed cache of whole pinballs.

    Logging a Whole Pinball is the pipeline's most expensive stage, and
    the artifact is reusable by construction (it replays bit-for-bit
    anywhere).  This cache keys a stored whole pinball by a digest of
    everything that determines the logged execution — benchmark name,
    slice length, run scale, format generation — so a later run with
    identical parameters replays the stored artifact instead of
    re-logging, with identical results.

    Robustness contract: a cache can only ever help.  Corrupt, stale or
    non-whole entries are quarantined (renamed to [*.quarantined]) and
    reported; the caller recomputes.  Nothing here is ever fatal to a
    run. *)

val key : benchmark:string -> slice_insns:int -> slices_scale:float -> string
(** Hex digest addressing the whole pinball for these parameters. *)

val whole_path : dir:string -> string -> string
(** On-disk path of the entry for a key. *)

type lookup =
  | Hit of Logger.whole
  | Miss
  | Quarantined of { path : string; reason : string }
      (** the entry existed but failed validation; it has been renamed
          to [path ^ ".quarantined"] and must be recomputed *)

val find_whole : dir:string -> key:string -> lookup
(** Look up a cached whole pinball.  Consults the in-memory
    decoded-artifact cache ({!Mem_cache}) first — a mem hit skips the
    disk read, checksum sweep and decode entirely (and so cannot
    observe later on-disk corruption); a disk hit is fully validated
    (checksums included) and promoted into memory.  Never raises. *)

val clear_mem : unit -> unit
(** Drop every in-memory decoded whole pinball (the disk cache is
    untouched) — simulates a fresh process in tests. *)

val store_whole :
  dir:string -> key:string -> slice_insns:int -> slices_scale:float ->
  Logger.whole -> string
(** Atomically write the whole pinball under its key (creating [dir]
    if needed) and append a manifest entry; returns the file path. *)

(** {1 Manifest}

    [MANIFEST.tsv] maps each opaque digest back to the parameters that
    produced it — for [specrepro pinballs list] and for inspecting a
    cache directory by hand.  Lookups never depend on it. *)

type entry = {
  key : string;
  benchmark : string;
  slice_insns : int;
  slices_scale : float;
  file : string;
}

val read_manifest : dir:string -> entry list
(** Parsed manifest, deduplicated (a re-stored key supersedes its old
    line); malformed lines are skipped. *)

(** {1 Garbage collection} *)

type gc_report = {
  removed_quarantined : int;
  removed_tmp : int;     (** leftover atomic-write temporaries *)
  removed_corrupt : int; (** [.pb] files that fail verification *)
  kept : int;            (** valid [.pb] files retained *)
  manifest_pruned : int; (** manifest entries whose file was gone *)
}

val gc : dir:string -> gc_report
(** Sweep a store/cache directory: drop quarantined files, stale
    temporaries and corrupt pinballs, and prune dead manifest entries.
    Valid pinballs are never touched. *)
