open Sp_vm

(** The PinPlay logger: creates Whole Pinballs by running a program
    while recording every non-deterministic input, and carves Regional
    Pinballs out of a Whole Pinball at simulation-point boundaries. *)

type whole = {
  pinball : Pinball.t;
  total_insns : int;    (** dynamic instruction count of the execution *)
}

val log_whole :
  ?syscall:(int -> int) -> ?extra_tools:Hooks.t list -> benchmark:string ->
  Program.t -> whole
(** Execute the program to completion from a fresh machine, recording
    inputs.  [extra_tools] lets callers profile (e.g. collect BBVs)
    during the same pass — logging is the slowest step of the paper's
    pipeline, so piggybacking avoids a second whole-program run. *)

val capture_regions :
  whole -> Sp_simpoint.Simpoints.point array -> Pinball.t array
(** Replay the whole pinball once, snapshotting the machine at the start
    of each simulation point; returns one Regional Pinball per point, in
    the order given.  Points must lie within the execution and be
    non-overlapping (simulation points always are: they are distinct
    slices). *)

type warm_region = {
  warm_prefix : int;
      (** warmup instructions at the front of [warm_pinball]: the
          effective window, after clamping against the previous region's
          end (and program start) *)
  warm_pinball : Pinball.t;
      (** self-contained [(warmup, region)] pinball of length
          [warm_prefix + point.length], snapshotted [warm_prefix]
          instructions before the point; its recorded inputs cover the
          whole window, including inputs consumed inside the prefix *)
}

val capture_warm_regions :
  warmup_insns:int ->
  whole ->
  Sp_simpoint.Simpoints.point array ->
  warm_region array
(** Like {!capture_regions}, but each region is extended backwards by up
    to [warmup_insns] instructions, making every warm point a
    self-contained pinball replayable with fresh per-point tool state
    ({!Replayer.replay_prefixed}).  The prefix is clamped exactly as the
    {!scan_regions} warm window is: to the gap since the previous
    point's end, and to program start — so prefix lengths (and therefore
    warm statistics) match the shared-scan reference bit for bit.
    Returns regions in the order given.
    @raise Invalid_argument if [warmup_insns] is negative, a point lies
    beyond the execution, or points overlap. *)

type warmup = {
  length : int;             (** instructions to warm before each point *)
  hooks : Hooks.t;          (** attached during the warmup window *)
  on_start : unit -> unit;  (** fired before each point's window (e.g.
                                to cold-reset the caches being warmed) *)
}

val scan_regions :
  ?warmup:warmup ->
  whole ->
  Sp_simpoint.Simpoints.point array ->
  (Pinball.t -> unit) ->
  unit
(** Streaming variant of {!capture_regions}: one forward replay of the
    whole pinball; at each simulation point the Regional Pinball is
    materialised, handed to the callback and then dropped, so at most one
    region snapshot is live at a time (regions can be tens of MB).

    [warmup] reproduces the paper's Warmup Regional Run: the [length]
    instructions *preceding* each point are executed with [hooks]
    attached (clamped to the gap since the previous point), so a cache
    tool can warm its state exactly as Sniper's 500M-cycle warmup does
    before measurement starts. *)
