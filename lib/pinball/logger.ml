open Sp_vm

type whole = { pinball : Pinball.t; total_insns : int }

let log_whole ?(syscall = Interp.default_syscall) ?(extra_tools = [])
    ~benchmark (prog : Program.t) =
  let machine = Interp.create ~entry:prog.entry () in
  let initial = Snapshot.capture machine in
  let recorded = ref [] in
  let recording_syscall n =
    let v = syscall n in
    (* the syscall retires as the current instruction: icount was already
       incremented when the hook fired, so the consuming instruction's
       index is icount - 1.  Every interpreter tier upholds this — the
       block-stepping engine bulk-advances icount per block but rolls it
       back to the exact per-instruction value around syscall dispatch *)
    recorded := (machine.Interp.icount - 1, v) :: !recorded;
    v
  in
  let hooks = Hooks.seq_all extra_tools in
  let status = Interp.run ~hooks ~syscall:recording_syscall prog machine in
  (match status with
  | Interp.Halted -> ()
  | Interp.Out_of_fuel -> assert false);
  let pinball =
    {
      Pinball.benchmark;
      kind = Pinball.Whole;
      program = prog;
      snapshot = initial;
      length = Some machine.Interp.icount;
      syscalls = Array.of_list (List.rev !recorded);
    }
  in
  { pinball; total_insns = machine.Interp.icount }

let capture_regions (w : whole) points =
  let pb = w.pinball in
  let order = Array.init (Array.length points) (fun i -> i) in
  Array.sort
    (fun a b ->
      compare points.(a).Sp_simpoint.Simpoints.start_icount
        points.(b).Sp_simpoint.Simpoints.start_icount)
    order;
  let machine = Snapshot.restore pb.Pinball.snapshot in
  let syscall = Replayer.recorded_syscall pb in
  let out = Array.make (Array.length points) None in
  Array.iter
    (fun idx ->
      let p = points.(idx) in
      let start = p.Sp_simpoint.Simpoints.start_icount in
      if start > w.total_insns then
        invalid_arg "Logger.capture_regions: point beyond execution";
      let gap = start - machine.Interp.icount in
      if gap < 0 then
        invalid_arg "Logger.capture_regions: overlapping points";
      if gap > 0 then
        ignore (Interp.run ~syscall ~fuel:gap pb.Pinball.program machine);
      let snapshot = Snapshot.capture machine in
      let region =
        {
          Pinball.benchmark = pb.Pinball.benchmark;
          kind =
            Pinball.Region
              {
                cluster = p.Sp_simpoint.Simpoints.cluster;
                weight = p.Sp_simpoint.Simpoints.weight;
              };
          program = pb.Pinball.program;
          snapshot;
          length = Some p.Sp_simpoint.Simpoints.length;
          syscalls =
            Pinball.syscalls_in_range pb ~start
              ~len:p.Sp_simpoint.Simpoints.length;
        }
      in
      out.(idx) <- Some region)
    order;
  Array.map
    (function Some r -> r | None -> assert false)
    out

type warm_region = { warm_prefix : int; warm_pinball : Pinball.t }

let capture_warm_regions ~warmup_insns (w : whole) points =
  if warmup_insns < 0 then
    invalid_arg "Logger.capture_warm_regions: negative warmup";
  let pb = w.pinball in
  let order = Array.init (Array.length points) (fun i -> i) in
  Array.sort
    (fun a b ->
      compare points.(a).Sp_simpoint.Simpoints.start_icount
        points.(b).Sp_simpoint.Simpoints.start_icount)
    order;
  let machine = Snapshot.restore pb.Pinball.snapshot in
  let syscall = Replayer.recorded_syscall pb in
  let out = Array.make (Array.length points) None in
  (* end of the previous region: the warmup prefix is clamped against
     it, exactly as [scan_regions ~warmup] clamps its warm window to the
     gap left after advancing over the previous region (0 initially, so
     a prefix that would fall before program start clamps to it) *)
  let prev_end = ref 0 in
  Array.iter
    (fun idx ->
      let p = points.(idx) in
      let start = p.Sp_simpoint.Simpoints.start_icount in
      if start > w.total_insns then
        invalid_arg "Logger.capture_warm_regions: point beyond execution";
      let gap = start - !prev_end in
      if gap < 0 then
        invalid_arg "Logger.capture_warm_regions: overlapping points";
      let wlen = min warmup_insns gap in
      let ff = start - wlen - machine.Interp.icount in
      (* ff >= 0: wlen <= gap puts this snapshot point at or after the
         previous region's end, which is at or after the previous
         snapshot point *)
      if ff > 0 then
        ignore (Interp.run ~syscall ~fuel:ff pb.Pinball.program machine);
      let length = wlen + p.Sp_simpoint.Simpoints.length in
      let region =
        {
          Pinball.benchmark = pb.Pinball.benchmark;
          kind =
            Pinball.Region
              {
                cluster = p.Sp_simpoint.Simpoints.cluster;
                weight = p.Sp_simpoint.Simpoints.weight;
              };
          program = pb.Pinball.program;
          snapshot = Snapshot.capture machine;
          length = Some length;
          syscalls =
            Pinball.syscalls_in_range pb ~start:(start - wlen) ~len:length;
        }
      in
      out.(idx) <- Some { warm_prefix = wlen; warm_pinball = region };
      prev_end := start + p.Sp_simpoint.Simpoints.length)
    order;
  Array.map (function Some r -> r | None -> assert false) out

type warmup = {
  length : int;
  hooks : Hooks.t;
  on_start : unit -> unit;
}

let scan_regions ?warmup (w : whole) points f =
  let pb = w.pinball in
  let sorted = Array.copy points in
  Array.sort
    (fun a b ->
      compare a.Sp_simpoint.Simpoints.start_icount
        b.Sp_simpoint.Simpoints.start_icount)
    sorted;
  let machine = Snapshot.restore pb.Pinball.snapshot in
  let syscall = Replayer.recorded_syscall pb in
  let last = Array.length sorted - 1 in
  Array.iteri
    (fun i (p : Sp_simpoint.Simpoints.point) ->
      let start = p.start_icount in
      if start > w.total_insns then
        invalid_arg "Logger.scan_regions: point beyond execution";
      let gap = start - machine.Interp.icount in
      if gap < 0 then invalid_arg "Logger.scan_regions: overlapping points";
      (match warmup with
      | Some wu when wu.length > 0 ->
          let wlen = min wu.length gap in
          let ff = gap - wlen in
          if ff > 0 then
            ignore (Interp.run ~syscall ~fuel:ff pb.Pinball.program machine);
          wu.on_start ();
          if wlen > 0 then
            ignore
              (Interp.run ~hooks:wu.hooks ~syscall ~fuel:wlen
                 pb.Pinball.program machine)
      | Some _ | None ->
          if gap > 0 then
            ignore (Interp.run ~syscall ~fuel:gap pb.Pinball.program machine));
      let region =
        {
          Pinball.benchmark = pb.Pinball.benchmark;
          kind = Pinball.Region { cluster = p.cluster; weight = p.weight };
          program = pb.Pinball.program;
          snapshot = Snapshot.capture machine;
          length = Some p.length;
          syscalls = Pinball.syscalls_in_range pb ~start ~len:p.length;
        }
      in
      f region;
      (* advance the forward pass over the region itself, positioning
         for the next point; after the final region the advance would
         be pure waste — and skipping it keeps the instructions this
         scan retires identical to what [capture_regions] retires, so
         execution metrics match across the two replay strategies *)
      if i < last then
        ignore (Interp.run ~syscall ~fuel:p.length pb.Pinball.program machine))
    sorted
