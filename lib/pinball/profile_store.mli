(** Content-addressed cache of profile-stage results.

    The log+profile stage of the pipeline replays the whole execution
    under the combined profiler plus the cache and timing tools.  Its
    outputs — BBV slices, per-kind instruction counts (from which the
    ldst mix derives), whole-run hierarchy statistics and whole-run
    core statistics — are pure functions of the same key that addresses
    a cached whole pinball, plus the warmup setting surfaced in run
    reports.  This store memoises them so a re-run with the same
    parameters skips the instrumented whole-program replay entirely.

    Same robustness contract as {!Artifact_cache}: corrupt, truncated
    or version-mismatched entries are quarantined and recomputed, never
    trusted and never fatal.  Entries are framed like the pinball store
    (magic, big-endian version, CRC-32-checksummed sections), so random
    corruption is detected before any payload is decoded. *)

type data = {
  benchmark : string;
  total_insns : int;
  slices : Sp_pin.Bbv_tool.slice array;
  kind_counts : int array;  (** per [Isa.kind_code], whole run *)
  cache_stats : Sp_cache.Hierarchy.stats;
  core_stats : Sp_cpu.Interval_core.stats;
}

val key :
  benchmark:string ->
  slice_insns:int ->
  slices_scale:float ->
  warmup_insns:int ->
  string
(** md5 of [generation|bench|slice_insns|scale|warmup]: everything that
    determines the profiled execution and the run configuration it is
    reported under. *)

val path : dir:string -> key:string -> string
(** [<dir>/<key>.prof]. *)

type lookup =
  | Hit of data
  | Miss
  | Quarantined of { path : string; reason : string }

val find : dir:string -> key:string -> lookup
(** Look up an entry; corrupt entries are renamed aside
    ([.quarantined]) and reported, so the caller recomputes.
    Maintains the [profcache.{hits,misses,quarantines}] metrics.
    Consults the in-memory decoded-artifact cache ({!Mem_cache})
    first; a disk hit is promoted into memory. *)

val clear_mem : unit -> unit
(** Drop every in-memory decoded profile entry (the disk store is
    untouched) — simulates a fresh process in tests. *)

val store : dir:string -> key:string -> data -> string
(** Atomically write an entry (per-process/domain temp file + rename),
    creating [dir] as needed; returns the path.  Maintains
    [profcache.stores]. *)

val quarantine : string -> string
(** Rename an untrusted entry aside (appending [.quarantined]) and
    count it in [profcache.quarantines]; returns the new path.  Used
    internally by {!find} and by callers that reject an entry for
    reasons the decoder cannot see (e.g. a stale instruction total). *)

val verify : string -> (unit, string) result
(** Decode a file without using it — for cache GC. *)
