open Sp_vm

(** The replayer pintool: runs a pinball, optionally with tools
    attached, repeating the captured execution exactly. *)

exception Divergence of string
(** Raised when the replayed execution consumes non-deterministic inputs
    differently from the recorded ones — replay is supposed to be
    deterministic, so this signals a corrupted pinball or a bug. *)

type result = {
  status : Interp.status;
  retired : int;           (** instructions retired during the replay *)
  machine : Interp.machine; (** final machine state *)
}

val replay : ?tools:Hooks.t list -> Pinball.t -> result
(** Restore the snapshot and execute the pinball's interval with the
    recorded inputs injected. *)

val replay_with :
  ?tools:Hooks.t list -> ?fuel:int -> Pinball.t -> result
(** Replay at most [fuel] instructions of the pinball (defaults to the
    pinball's own length). *)

val replay_prefixed :
  ?prefix_tools:Hooks.t list ->
  ?tools:Hooks.t list ->
  prefix:int ->
  ?on_region:(unit -> unit) ->
  Pinball.t ->
  result
(** Replay a warm-prefixed regional pinball (see
    {!Logger.capture_warm_regions}): the first [prefix] instructions run
    under [prefix_tools] (the warmup window), then [on_region] fires
    (callers flip their tools' warming flag there), and the remaining
    [length - prefix] instructions run under [tools].  Both runs share
    one machine and one recorded-input cursor, so an input consumed
    inside the prefix is replayed at exactly the position it was
    recorded.  [result.retired] counts the region portion only,
    matching {!replay} of an unprefixed regional pinball.

    @raise Divergence if either portion halts early.
    @raise Invalid_argument if [prefix] is negative, exceeds the
    pinball's length, or the pinball has no length. *)

val recorded_syscall : Pinball.t -> int -> int
(** A stateful handler that plays back the pinball's recorded inputs in
    order; raises {!Divergence} when the recording is exhausted.  Exposed
    for callers that drive the interpreter directly (e.g. the logger's
    fast-forward pass). *)
