open Sp_vm

exception Divergence of string

type result = {
  status : Interp.status;
  retired : int;
  machine : Interp.machine;
}

let recorded_syscall (pb : Pinball.t) =
  let idx = ref 0 in
  fun (_channel : int) ->
    if !idx >= Array.length pb.syscalls then
      raise
        (Divergence
           (Printf.sprintf "%s: replay consumed more inputs than recorded"
              (Pinball.describe pb)))
    else begin
      let _, v = pb.syscalls.(!idx) in
      incr idx;
      v
    end

let replay_with ?(tools = []) ?fuel (pb : Pinball.t) =
  let machine = Snapshot.restore pb.snapshot in
  let fuel =
    match (fuel, pb.length) with
    | Some f, Some l -> Some (min f l)
    | Some f, None -> Some f
    | None, l -> l
  in
  let hooks = Hooks.seq_all tools in
  let syscall = recorded_syscall pb in
  let before = machine.Interp.icount in
  let status =
    match fuel with
    | Some f -> Interp.run ~hooks ~syscall ~fuel:f pb.program machine
    | None -> Interp.run ~hooks ~syscall pb.program machine
  in
  (match (status, pb.length, fuel) with
  | Interp.Halted, Some l, Some f when f = l ->
      (* a region must not halt early: that would mean the recorded
         interval ran past program end *)
      if machine.Interp.icount - before < l then
        raise
          (Divergence
             (Printf.sprintf "%s: halted after %d of %d instructions"
                (Pinball.describe pb)
                (machine.Interp.icount - before)
                l))
  | _ -> ());
  { status; retired = machine.Interp.icount - before; machine }

let replay ?tools pb = replay_with ?tools pb

let replay_prefixed ?(prefix_tools = []) ?(tools = []) ~prefix ?on_region
    (pb : Pinball.t) =
  if prefix < 0 then invalid_arg "Replayer.replay_prefixed: negative prefix";
  let length =
    match pb.length with
    | Some l when l >= prefix -> l
    | Some l ->
        invalid_arg
          (Printf.sprintf
             "Replayer.replay_prefixed: prefix %d exceeds pinball length %d"
             prefix l)
    | None -> invalid_arg "Replayer.replay_prefixed: pinball has no length"
  in
  let machine = Snapshot.restore pb.snapshot in
  (* one stateful input cursor across both runs: a recorded input that
     falls inside the warmup prefix is consumed there, exactly as the
     shared forward scan consumed it in passing *)
  let syscall = recorded_syscall pb in
  if prefix > 0 then begin
    let before = machine.Interp.icount in
    let status =
      Interp.run
        ~hooks:(Hooks.seq_all prefix_tools)
        ~syscall ~fuel:prefix pb.program machine
    in
    match status with
    | Interp.Out_of_fuel -> ()
    | Interp.Halted ->
        if machine.Interp.icount - before < prefix then
          raise
            (Divergence
               (Printf.sprintf
                  "%s: halted after %d of %d warmup-prefix instructions"
                  (Pinball.describe pb)
                  (machine.Interp.icount - before)
                  prefix))
  end;
  (match on_region with Some f -> f () | None -> ());
  let region_len = length - prefix in
  let before = machine.Interp.icount in
  let status =
    Interp.run ~hooks:(Hooks.seq_all tools) ~syscall ~fuel:region_len
      pb.program machine
  in
  (match status with
  | Interp.Halted when machine.Interp.icount - before < region_len ->
      raise
        (Divergence
           (Printf.sprintf "%s: halted after %d of %d region instructions"
              (Pinball.describe pb)
              (machine.Interp.icount - before)
              region_len))
  | _ -> ());
  { status; retired = machine.Interp.icount - before; machine }
