(** On-disk pinball store — format v2.

    Pinballs are self-contained, so serialising one file per pinball
    gives the same portability PinPlay's format provides: a regional
    pinball can be copied to another machine (or another process) and
    replayed without the benchmark's inputs.

    The v2 format is self-describing and defensive: a magic string and
    big-endian version word (framing-compatible with the v1 header, so
    legacy files fail with a clean version error), followed by four
    tagged sections — META, PROG, SNAP, SYSC — each carrying a length
    and a CRC-32 of its payload.  The payloads use explicit
    little-endian encoders ({!Sp_vm.Program.write},
    {!Sp_vm.Snapshot.write}); nothing on the read path touches
    [Marshal], so arbitrary bytes can never crash the runtime: {!load}
    returns a typed [error] for every malformed input. *)

type error =
  | No_such_file of string
  | Short_file of string      (** shorter than the magic+version header *)
  | Bad_magic of string
  | Bad_version of { path : string; found : int }
  | Corrupt of { path : string; reason : string }
      (** bad framing, checksum mismatch, or an invalid field *)

val error_message : error -> string
(** One-line human-readable rendering of an [error]. *)

val save : dir:string -> Pinball.t -> string
(** Write the pinball under [dir] (created recursively if missing);
    returns the file path.  File names encode benchmark and kind.  The
    write is atomic: the encoding goes to a per-(process, domain)
    temporary file which is then renamed over the destination, so
    concurrent savers never race and readers never observe a partial
    file. *)

val save_path : path:string -> Pinball.t -> string
(** Like {!save} but with an explicit destination path (used by the
    content-addressed artifact cache). *)

val load : string -> (Pinball.t, error) result
(** Read and fully validate a pinball file.  Never raises on malformed
    input — short files, bad magic, old versions, flipped bits and
    truncations all come back as [Error]. *)

val load_exn : string -> Pinball.t
(** {!load}, raising [Failure (error_message e)] on error — for
    callers that have already validated the file. *)

val encode : Pinball.t -> string
(** The exact bytes {!save} writes.  The encoding is deterministic and
    byte-stable across releases for a given pinball (pages sorted by
    index, fixed little-endian codecs), so stored artifacts, caches and
    golden tests all stay valid; any incompatible change bumps the
    format version instead. *)

val of_bytes : ?path:string -> string -> (Pinball.t, error) result
(** Decode from bytes already in memory ([path] only labels errors);
    {!load} is [of_bytes] over the file's contents.  Exposed so tests
    can fuzz the decoder without touching the filesystem. *)

val verify : string -> (unit, error) result
(** Full decode, discarding the result: checks framing, checksums and
    every field. *)

val list_dir : dir:string -> string list
(** Paths of all pinball files under [dir], sorted.  Temporary and
    quarantined files are excluded (they do not end in [.pb]). *)

val filename : Pinball.t -> string
(** The basename {!save} would use. *)

val mkdir_p : string -> unit
(** [mkdir -p]: recursive, and tolerant of concurrent creation by
    another domain or process. *)
