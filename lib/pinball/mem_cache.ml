(* In-memory LRU over *decoded* artifacts, in front of the on-disk
   content-addressed caches.  A daemon serving repeat benchmarks skips
   the disk read, CRC sweep and decode entirely on the hot path; COW
   snapshots make handing one decoded pinball to many concurrent jobs
   safe (each restore is an O(pages) copy-on-write view).

   One byte budget is shared by every member cache (whole pinballs and
   profile entries live in the same pool), so [--mem-cache-mb] means
   what it says regardless of the artifact mix.  Entries are charged
   their serialised size — within a few percent of the decoded heap
   footprint for pinballs, whose bytes are almost entirely 8-byte
   memory words either way.  Eviction is strict LRU across the pool,
   found by scanning for the smallest tick: the pool holds at most a
   few dozen decoded artifacts, so a scan beats maintaining an
   intrusive list.

   Domain safety: every operation takes the pool mutex.  Cached values
   are returned without copying, so they must never be mutated by
   consumers — pinball snapshots are frozen at decode time, which makes
   [Snapshot.restore] from several domains at once read-only. *)

module M = struct
  let hits = Sp_obs.Metrics.counter "pbcache.mem_hits"

  (* eviction order under a concurrent pool depends on scheduling, so
     the count is not jobs-invariant *)
  let evictions = Sp_obs.Metrics.counter ~stable:false "pbcache.mem_evictions"
end

type pool = {
  mutex : Mutex.t;
  (* bytes; 0 disables every member cache *)
  mutable budget : int;
  mutable total : int;
  mutable clock : int;
  (* one peek function per member cache: the member's LRU candidate as
     [(tick, evict)], where [evict] removes it and returns its bytes.
     Closures erase the member's value type, letting differently-typed
     caches share one budget. *)
  mutable peeks : (unit -> (int * (unit -> int)) option) list;
}

let create_pool () =
  {
    mutex = Mutex.create ();
    budget = 0;
    total = 0;
    clock = 0;
    peeks = [];
  }

(* The process-wide pool used by the artifact and profile caches; its
   budget comes from [--mem-cache-mb] via [Pipeline.run_benchmark]. *)
let global = create_pool ()

type 'a entry = { value : 'a; bytes : int; mutable tick : int }
type 'a t = { pool : pool; table : (string, 'a entry) Hashtbl.t }

let create pool =
  let t = { pool; table = Hashtbl.create 16 } in
  let peek () =
    let best = ref None in
    Hashtbl.iter
      (fun k e ->
        match !best with
        | Some (_, tick) when tick <= e.tick -> ()
        | _ -> best := Some (k, e.tick))
      t.table;
    match !best with
    | None -> None
    | Some (k, tick) ->
        Some
          ( tick,
            fun () ->
              let e = Hashtbl.find t.table k in
              Hashtbl.remove t.table k;
              e.bytes )
  in
  pool.peeks <- peek :: pool.peeks;
  t

let set_budget_mb pool mb =
  let mb = max 0 mb in
  Mutex.protect pool.mutex (fun () -> pool.budget <- mb * 1024 * 1024)

let enabled pool = pool.budget > 0

(* Evict pool-wide LRU entries until [need] more bytes fit. *)
let make_room pool need =
  while pool.total + need > pool.budget do
    let victim =
      List.fold_left
        (fun acc peek ->
          match (acc, peek ()) with
          | None, v -> v
          | v, None -> v
          | Some (at, _), (Some (bt, _) as b) when bt < at -> b
          | acc, _ -> acc)
        None pool.peeks
    in
    match victim with
    | None -> raise Exit (* pool already empty; the entry cannot fit *)
    | Some (_, evict) ->
        pool.total <- pool.total - evict ();
        Sp_obs.Metrics.incr M.evictions
  done

let find t key =
  let pool = t.pool in
  Mutex.protect pool.mutex (fun () ->
      if not (enabled pool) then None
      else
        match Hashtbl.find_opt t.table key with
        | None -> None
        | Some e ->
            pool.clock <- pool.clock + 1;
            e.tick <- pool.clock;
            Sp_obs.Metrics.incr M.hits;
            Some e.value)

let add t key ~bytes value =
  let pool = t.pool in
  Mutex.protect pool.mutex (fun () ->
      if enabled pool && bytes >= 0 && bytes <= pool.budget then begin
        (match Hashtbl.find_opt t.table key with
        | Some old ->
            Hashtbl.remove t.table key;
            pool.total <- pool.total - old.bytes
        | None -> ());
        match make_room pool bytes with
        | () ->
            pool.clock <- pool.clock + 1;
            Hashtbl.add t.table key { value; bytes; tick = pool.clock };
            pool.total <- pool.total + bytes
        | exception Exit -> ()
      end)

let clear t =
  let pool = t.pool in
  Mutex.protect pool.mutex (fun () ->
      Hashtbl.iter (fun _ e -> pool.total <- pool.total - e.bytes) t.table;
      Hashtbl.reset t.table)
