open Sp_util
open Sp_vm

let magic = "SPREPRO-PINBALL"
let version = 2
let header_bytes = String.length magic + 4

(* ------------------------------------------------------------------ *)
(* errors *)

type error =
  | No_such_file of string
  | Short_file of string
  | Bad_magic of string
  | Bad_version of { path : string; found : int }
  | Corrupt of { path : string; reason : string }

let error_message = function
  | No_such_file path -> Printf.sprintf "%s: no such file" path
  | Short_file path ->
      Printf.sprintf "%s: not a pinball (shorter than the %d-byte header)"
        path header_bytes
  | Bad_magic path -> Printf.sprintf "%s: not a pinball (bad magic)" path
  | Bad_version { path; found } ->
      Printf.sprintf "%s: pinball format version %d, expected %d" path found
        version
  | Corrupt { path; reason } ->
      Printf.sprintf "%s: corrupt pinball (%s)" path reason

(* ------------------------------------------------------------------ *)
(* naming *)

let filename (pb : Pinball.t) =
  match pb.kind with
  | Pinball.Whole -> Printf.sprintf "%s.whole.pb" pb.benchmark
  | Pinball.Region r -> Printf.sprintf "%s.region%03d.pb" pb.benchmark r.cluster

(* ------------------------------------------------------------------ *)
(* encoding

   Layout: magic (15 bytes), big-endian u32 version (the same framing
   the v1 [output_binary_int] header used, so a legacy file decodes to a
   clean version error), then four sections in fixed order.  A section
   is a 4-byte ASCII tag, a little-endian u32 payload length, the
   payload, and the payload's CRC-32 — so truncation and bit flips are
   detected per section before any payload is decoded. *)

let encode_meta buf (pb : Pinball.t) =
  Binio.w_string buf pb.benchmark;
  (match pb.kind with
  | Pinball.Whole -> Binio.w_u8 buf 0
  | Pinball.Region { cluster; weight } ->
      Binio.w_u8 buf 1;
      Binio.w_i64 buf cluster;
      Binio.w_f64 buf weight);
  match pb.length with
  | None -> Binio.w_u8 buf 0
  | Some l ->
      Binio.w_u8 buf 1;
      Binio.w_i64 buf l

let encode_syscalls buf (pb : Pinball.t) =
  Binio.w_u32 buf (Array.length pb.syscalls);
  Array.iter
    (fun (icount, v) ->
      Binio.w_i64 buf icount;
      Binio.w_i64 buf v)
    pb.syscalls

let encode (pb : Pinball.t) =
  (* size hints: SNAP dominates (the memory image), PROG is roughly
     proportional to the instruction count.  Pre-sizing the payload and
     output buffers skips the doubling-growth copies, which for a
     multi-MiB image cost as much as an extra full encode pass. *)
  let snap_hint = Snapshot.mem_bytes pb.Pinball.snapshot + 4096 in
  let prog_hint =
    (Array.length pb.Pinball.program.Program.instrs * 16) + 4096
  in
  let buf = Buffer.create (snap_hint + prog_hint + 4096) in
  Buffer.add_string buf magic;
  Buffer.add_int32_be buf (Int32.of_int version);
  (* Sections are written straight into [buf] — no per-section staging
     buffer, so the multi-MiB SNAP payload is copied exactly once, by
     the final [Buffer.to_bytes].  The length and CRC fields are
     emitted as placeholders and patched into the final bytes, where
     the payload is readable; the resulting layout and values are
     byte-identical to staging each payload separately. *)
  let patches = ref [] in
  let section tag write_payload =
    Buffer.add_string buf tag;
    let len_pos = Buffer.length buf in
    Binio.w_u32 buf 0 (* length, patched below *);
    let payload_pos = Buffer.length buf in
    write_payload buf;
    let len = Buffer.length buf - payload_pos in
    Binio.w_u32 buf 0 (* CRC, patched below *);
    patches := (len_pos, payload_pos, len) :: !patches
  in
  section "META" (fun b -> encode_meta b pb);
  section "PROG" (fun b -> Program.write b pb.Pinball.program);
  section "SNAP" (fun b -> Snapshot.write b pb.Pinball.snapshot);
  section "SYSC" (fun b -> encode_syscalls b pb);
  let out = Buffer.to_bytes buf in
  let view = Bytes.unsafe_to_string out in
  List.iter
    (fun (len_pos, payload_pos, len) ->
      Bytes.set_int32_le out len_pos (Int32.of_int len);
      Bytes.set_int32_le out (payload_pos + len)
        (Int32.of_int (Crc32.sub view ~pos:payload_pos ~len)))
    !patches;
  view

(* ------------------------------------------------------------------ *)
(* decoding *)

(* Validate a section's framing and checksum, returning a reader
   confined to its payload. *)
let section data r tag =
  let t = Binio.r_bytes r 4 in
  if t <> tag then Binio.fail "expected section %s, found %S" tag t;
  let len = Binio.r_u32 r in
  if len + 4 > Binio.remaining r then
    Binio.fail "section %s: length %d overruns the file" tag len;
  let pos = Binio.pos r in
  Binio.skip r len;
  let stored = Binio.r_u32 r in
  let actual = Crc32.sub data ~pos ~len in
  if stored <> actual then Binio.fail "section %s: checksum mismatch" tag;
  Binio.reader ~pos ~len data

let decode_body data : Pinball.t =
  let r = Binio.reader ~pos:header_bytes data in
  let meta = section data r "META" in
  let benchmark = Binio.r_string meta in
  let kind =
    match Binio.r_u8 meta with
    | 0 -> Pinball.Whole
    | 1 ->
        let cluster = Binio.r_i64 meta in
        let weight = Binio.r_f64 meta in
        Pinball.Region { cluster; weight }
    | n -> Binio.fail "META: bad pinball kind %d" n
  in
  let length =
    match Binio.r_u8 meta with
    | 0 -> None
    | 1 ->
        let l = Binio.r_i64 meta in
        if l < 0 then Binio.fail "META: negative length %d" l;
        Some l
    | n -> Binio.fail "META: bad length tag %d" n
  in
  Binio.expect_end meta "META";
  let progr = section data r "PROG" in
  let program = Program.read progr in
  Binio.expect_end progr "PROG";
  let snapr = section data r "SNAP" in
  let snapshot = Snapshot.read snapr in
  Binio.expect_end snapr "SNAP";
  let sysr = section data r "SYSC" in
  let n = Binio.r_count sysr ~elem_bytes:16 "syscall log" in
  let syscalls =
    Array.init n (fun _ ->
        let icount = Binio.r_i64 sysr in
        let v = Binio.r_i64 sysr in
        (icount, v))
  in
  Binio.expect_end sysr "SYSC";
  Binio.expect_end r "file";
  { Pinball.benchmark; kind; program; snapshot; length; syscalls }

let of_bytes ?(path = "<bytes>") data =
  if String.length data < header_bytes then Error (Short_file path)
  else if String.sub data 0 (String.length magic) <> magic then
    Error (Bad_magic path)
  else
    let found =
      Int32.to_int (String.get_int32_be data (String.length magic))
    in
    if found <> version then Error (Bad_version { path; found })
    else
      match decode_body data with
      | pb -> Ok pb
      | exception Binio.Corrupt reason -> Error (Corrupt { path; reason })
      | exception Invalid_argument reason -> Error (Corrupt { path; reason })
      | exception Failure reason -> Error (Corrupt { path; reason })

let load path =
  if not (Sys.file_exists path) then Error (No_such_file path)
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | data -> of_bytes ~path data
    | exception Sys_error reason -> Error (Corrupt { path; reason })

let load_exn path =
  match load path with Ok pb -> pb | Error e -> failwith (error_message e)

let verify path = Result.map ignore (load path)

(* ------------------------------------------------------------------ *)
(* writing *)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" then ()
  else if Sys.file_exists dir then begin
    if not (Sys.is_directory dir) then
      failwith (Printf.sprintf "Store: %s exists and is not a directory" dir)
  end
  else begin
    mkdir_p (Filename.dirname dir);
    (* another domain or process may create it between the check and the
       mkdir; treat that as success instead of racing to EEXIST *)
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.file_exists dir && Sys.is_directory dir -> ()
  end

let save_path ~path pb =
  mkdir_p (Filename.dirname path);
  let data = encode pb in
  (* unique per (process, domain): concurrent pool savers never share a
     temp file, and the final rename is atomic, so readers only ever see
     complete files *)
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc data)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  path

let save ~dir pb = save_path ~path:(Filename.concat dir (filename pb)) pb

let list_dir ~dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".pb")
    |> List.map (Filename.concat dir)
    |> List.sort compare
