(* Content-addressed cache of whole pinballs.

   Logging a whole pinball is the most expensive stage of the pipeline,
   and the artifact is reusable by construction: it replays bit-for-bit
   on any machine.  The cache keys a stored whole pinball by a digest of
   everything that determines the logged execution — benchmark name,
   slice length, run scale and the format generation — so a later run
   with the same parameters replays the stored artifact instead of
   re-logging.

   Robustness contract: a cache can only ever help.  Corrupt, stale or
   version-mismatched entries are quarantined (renamed aside, with a
   warning) and recomputed; they are never trusted and never fatal. *)

(* Bump whenever the on-disk format or the meaning of the key inputs
   changes: old entries then miss instead of poisoning new runs. *)
let generation = "pbcache-2"

let key ~benchmark ~slice_insns ~slices_scale =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%s|%d|%.17g" generation benchmark slice_insns
          slices_scale))

let whole_file key = key ^ ".whole.pb"
let whole_path ~dir key = Filename.concat dir (whole_file key)

(* ------------------------------------------------------------------ *)
(* manifest: a human-readable index mapping each opaque digest back to
   the parameters that produced it.  Lookups go straight to the
   content-addressed file; the manifest exists for [pinballs list] and
   for debugging a cache directory by hand. *)

type entry = {
  key : string;
  benchmark : string;
  slice_insns : int;
  slices_scale : float;
  file : string;
}

let manifest_name = "MANIFEST.tsv"
let manifest_path ~dir = Filename.concat dir manifest_name

let append_manifest ~dir e =
  Store.mkdir_p dir;
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (manifest_path ~dir)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (* one O_APPEND write per entry: atomic for lines this short, so
         concurrent pool domains can append safely *)
      Printf.fprintf oc "%s\t%s\t%d\t%.17g\t%s\n" e.key e.benchmark
        e.slice_insns e.slices_scale e.file)

let parse_entry line =
  match String.split_on_char '\t' line with
  | [ key; benchmark; slice_insns; slices_scale; file ] -> (
      match
        (int_of_string_opt slice_insns, float_of_string_opt slices_scale)
      with
      | Some slice_insns, Some slices_scale ->
          Some { key; benchmark; slice_insns; slices_scale; file }
      | _ -> None)
  | _ -> None

let read_manifest ~dir =
  let path = manifest_path ~dir in
  if not (Sys.file_exists path) then []
  else
    let lines =
      In_channel.with_open_text path In_channel.input_lines
    in
    (* later lines win: a re-stored key supersedes its old entry *)
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun line ->
        match parse_entry line with
        | Some e ->
            if not (Hashtbl.mem tbl e.key) then order := e.key :: !order;
            Hashtbl.replace tbl e.key e
        | None -> ())
      lines;
    List.rev_map (Hashtbl.find tbl) !order

let write_manifest ~dir entries =
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" (manifest_path ~dir) (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun e ->
          Printf.fprintf oc "%s\t%s\t%d\t%.17g\t%s\n" e.key e.benchmark
            e.slice_insns e.slices_scale e.file)
        entries);
  Sys.rename tmp (manifest_path ~dir)

(* ------------------------------------------------------------------ *)
(* lookup / store *)

type lookup =
  | Hit of Logger.whole
  | Miss
  | Quarantined of { path : string; reason : string }

(* Cache traffic counters.  Hit/miss splits depend on what earlier
   processes left on disk, not on this run's scheduling, so they are
   stable across job counts within one run — but still depend on disk
   state, which tests control by using fresh cache directories. *)
module M = struct
  let hits = Sp_obs.Metrics.counter "pbcache.hits"
  let misses = Sp_obs.Metrics.counter "pbcache.misses"
  let quarantined = Sp_obs.Metrics.counter "pbcache.quarantined"
  let stored = Sp_obs.Metrics.counter "pbcache.stored"
end

let quarantine path =
  let q = path ^ ".quarantined" in
  (try Sys.rename path q with Sys_error _ -> ());
  q

(* Decoded whole pinballs, keyed by their on-disk path (which embeds
   the content key): a mem hit skips the read + CRC + decode.  Entries
   are charged their serialised size; the snapshot inside a decoded
   pinball is frozen, so handing the same value to concurrent
   restorers is safe. *)
let mem : Logger.whole Mem_cache.t = Mem_cache.create Mem_cache.global
let clear_mem () = Mem_cache.clear mem

let file_bytes path =
  match (Unix.stat path).Unix.st_size with
  | n -> n
  | exception Unix.Unix_error _ -> 0

let find_whole ~dir ~key =
  let path = whole_path ~dir key in
  match Mem_cache.find mem path with
  | Some whole -> Hit whole
  | None ->
      if not (Sys.file_exists path) then begin
        Sp_obs.Metrics.incr M.misses;
        Miss
      end
      else (
        match Store.load path with
        | Error e ->
            ignore (quarantine path);
            Sp_obs.Metrics.incr M.quarantined;
            Quarantined { path; reason = Store.error_message e }
        | Ok pb -> (
            match (pb.Pinball.kind, pb.Pinball.length) with
            | Pinball.Whole, Some total_insns ->
                Sp_obs.Metrics.incr M.hits;
                let whole = { Logger.pinball = pb; total_insns } in
                Mem_cache.add mem path ~bytes:(file_bytes path) whole;
                Hit whole
            | _ ->
                (* decodes fine but is not a whole pinball: a stale or
                   hand-edited entry, equally untrustworthy *)
                ignore (quarantine path);
                Sp_obs.Metrics.incr M.quarantined;
                Quarantined { path; reason = "not a whole pinball" }))

let store_whole ~dir ~key ~slice_insns ~slices_scale (w : Logger.whole) =
  let path = Store.save_path ~path:(whole_path ~dir key) w.Logger.pinball in
  Sp_obs.Metrics.incr M.stored;
  Mem_cache.add mem path ~bytes:(file_bytes path) w;
  append_manifest ~dir
    {
      key;
      benchmark = w.Logger.pinball.Pinball.benchmark;
      slice_insns;
      slices_scale;
      file = whole_file key;
    };
  path

(* ------------------------------------------------------------------ *)
(* garbage collection *)

type gc_report = {
  removed_quarantined : int;
  removed_tmp : int;
  removed_corrupt : int;
  kept : int;
  manifest_pruned : int;
}

(* "<file>.tmp.<pid>.<domain>" leftovers from an interrupted atomic write *)
let is_tmp name =
  let needle = ".tmp." in
  let n = String.length name and m = String.length needle in
  let rec go i = i + m <= n && (String.sub name i m = needle || go (i + 1)) in
  go 0

let gc ~dir =
  let report =
    ref
      {
        removed_quarantined = 0;
        removed_tmp = 0;
        removed_corrupt = 0;
        kept = 0;
        manifest_pruned = 0;
      }
  in
  if Sys.file_exists dir then begin
    Array.iter
      (fun name ->
        let path = Filename.concat dir name in
        let remove () = try Sys.remove path with Sys_error _ -> () in
        if Filename.check_suffix name ".quarantined" then begin
          remove ();
          report :=
            { !report with removed_quarantined = !report.removed_quarantined + 1 }
        end
        else if is_tmp name then begin
          remove ();
          report := { !report with removed_tmp = !report.removed_tmp + 1 }
        end
        else if Filename.check_suffix name ".pb" then begin
          match Store.verify path with
          | Ok () -> report := { !report with kept = !report.kept + 1 }
          | Error _ ->
              remove ();
              report :=
                { !report with removed_corrupt = !report.removed_corrupt + 1 }
        end
        else if Filename.check_suffix name ".prof" then
          (* profile-stage entries share the directory (and this GC) *)
          match Profile_store.verify path with
          | Ok () -> report := { !report with kept = !report.kept + 1 }
          | Error _ ->
              remove ();
              report :=
                { !report with removed_corrupt = !report.removed_corrupt + 1 })
      (Sys.readdir dir);
    let entries = read_manifest ~dir in
    let live, dead =
      List.partition
        (fun e -> Sys.file_exists (Filename.concat dir e.file))
        entries
    in
    if dead <> [] then write_manifest ~dir live;
    report := { !report with manifest_pruned = List.length dead }
  end;
  !report
