open Sp_util

(* Bump whenever the on-disk format or the meaning of the key inputs
   changes: old entries then miss instead of poisoning new runs. *)
let generation = "profcache-1"

let magic = "SPREPRO-PROFILE"
let version = 1
let header_bytes = String.length magic + 4

type data = {
  benchmark : string;
  total_insns : int;
  slices : Sp_pin.Bbv_tool.slice array;
  kind_counts : int array;
  cache_stats : Sp_cache.Hierarchy.stats;
  core_stats : Sp_cpu.Interval_core.stats;
}

let key ~benchmark ~slice_insns ~slices_scale ~warmup_insns =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%s|%s|%d|%.17g|%d" generation benchmark slice_insns
          slices_scale warmup_insns))

let file key = key ^ ".prof"
let path ~dir ~key = Filename.concat dir (file key)

(* ------------------------------------------------------------------ *)
(* encoding: same framing as the pinball store — magic, big-endian u32
   version, then tagged sections (4-byte tag, LE u32 payload length,
   payload, payload CRC-32), so truncation and bit flips are detected
   per section before any payload is decoded. *)

let encode_meta buf d =
  Binio.w_string buf d.benchmark;
  Binio.w_i64 buf d.total_insns

let encode_slices buf d =
  Binio.w_u32 buf (Array.length d.slices);
  Array.iter
    (fun (s : Sp_pin.Bbv_tool.slice) ->
      Binio.w_i64 buf s.index;
      Binio.w_i64 buf s.start_icount;
      Binio.w_i64 buf s.length;
      Binio.w_u32 buf (Array.length s.bbv);
      Array.iter
        (fun (bb, n) ->
          Binio.w_i64 buf bb;
          Binio.w_i64 buf n)
        s.bbv)
    d.slices

let encode_level buf (l : Sp_cache.Hierarchy.level_stats) =
  Binio.w_i64 buf l.accesses;
  Binio.w_i64 buf l.misses;
  Binio.w_f64 buf l.miss_rate

let encode_stats buf d =
  let c = d.cache_stats in
  encode_level buf c.l1i;
  encode_level buf c.l1d;
  encode_level buf c.l2;
  encode_level buf c.l3;
  let k = d.core_stats in
  Binio.w_i64 buf k.instructions;
  Binio.w_f64 buf k.cycles;
  Binio.w_f64 buf k.base_cycles;
  Binio.w_f64 buf k.branch_stall_cycles;
  Binio.w_f64 buf k.memory_stall_cycles;
  Binio.w_i64 buf k.branch_lookups;
  Binio.w_i64 buf k.branch_mispredicts;
  Binio.w_int_array buf k.level_hits

let encode d =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  Buffer.add_int32_be buf (Int32.of_int version);
  let section tag write_payload =
    let pbuf = Buffer.create 1024 in
    write_payload pbuf;
    let payload = Buffer.contents pbuf in
    Buffer.add_string buf tag;
    Binio.w_u32 buf (String.length payload);
    Buffer.add_string buf payload;
    Binio.w_u32 buf (Crc32.string payload)
  in
  section "META" (fun b -> encode_meta b d);
  section "BBVS" (fun b -> encode_slices b d);
  section "MIXK" (fun b -> Binio.w_int_array b d.kind_counts);
  section "STAT" (fun b -> encode_stats b d);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* decoding *)

let section data r tag =
  let t = Binio.r_bytes r 4 in
  if t <> tag then Binio.fail "expected section %s, found %S" tag t;
  let len = Binio.r_u32 r in
  if len + 4 > Binio.remaining r then
    Binio.fail "section %s: length %d overruns the file" tag len;
  let pos = Binio.pos r in
  Binio.skip r len;
  let stored = Binio.r_u32 r in
  let actual = Crc32.sub data ~pos ~len in
  if stored <> actual then Binio.fail "section %s: checksum mismatch" tag;
  Binio.reader ~pos ~len data

let decode_level r : Sp_cache.Hierarchy.level_stats =
  let accesses = Binio.r_i64 r in
  let misses = Binio.r_i64 r in
  let miss_rate = Binio.r_f64 r in
  { accesses; misses; miss_rate }

let decode_body data : data =
  let r = Binio.reader ~pos:header_bytes data in
  let meta = section data r "META" in
  let benchmark = Binio.r_string meta in
  let total_insns = Binio.r_i64 meta in
  if total_insns < 0 then
    Binio.fail "META: negative instruction count %d" total_insns;
  Binio.expect_end meta "META";
  let bbvr = section data r "BBVS" in
  let nslices = Binio.r_count bbvr ~elem_bytes:28 "slice table" in
  let slices =
    Array.init nslices (fun _ ->
        let index = Binio.r_i64 bbvr in
        let start_icount = Binio.r_i64 bbvr in
        let length = Binio.r_i64 bbvr in
        let nbb = Binio.r_count bbvr ~elem_bytes:16 "bbv" in
        let bbv =
          Array.init nbb (fun _ ->
              let bb = Binio.r_i64 bbvr in
              let n = Binio.r_i64 bbvr in
              (bb, n))
        in
        { Sp_pin.Bbv_tool.index; start_icount; length; bbv })
  in
  Binio.expect_end bbvr "BBVS";
  let mixr = section data r "MIXK" in
  let kind_counts = Binio.r_int_array mixr in
  Binio.expect_end mixr "MIXK";
  let statr = section data r "STAT" in
  let l1i = decode_level statr in
  let l1d = decode_level statr in
  let l2 = decode_level statr in
  let l3 = decode_level statr in
  let cache_stats = { Sp_cache.Hierarchy.l1i; l1d; l2; l3 } in
  let instructions = Binio.r_i64 statr in
  let cycles = Binio.r_f64 statr in
  let base_cycles = Binio.r_f64 statr in
  let branch_stall_cycles = Binio.r_f64 statr in
  let memory_stall_cycles = Binio.r_f64 statr in
  let branch_lookups = Binio.r_i64 statr in
  let branch_mispredicts = Binio.r_i64 statr in
  let level_hits = Binio.r_int_array statr in
  Binio.expect_end statr "STAT";
  Binio.expect_end r "file";
  let core_stats =
    {
      Sp_cpu.Interval_core.instructions;
      cycles;
      base_cycles;
      branch_stall_cycles;
      memory_stall_cycles;
      branch_lookups;
      branch_mispredicts;
      level_hits;
    }
  in
  { benchmark; total_insns; slices; kind_counts; cache_stats; core_stats }

let of_bytes ?(path = "<bytes>") data =
  if String.length data < header_bytes then
    Error (Printf.sprintf "%s: shorter than the %d-byte header" path
             header_bytes)
  else if String.sub data 0 (String.length magic) <> magic then
    Error (Printf.sprintf "%s: not a profile entry (bad magic)" path)
  else
    let found =
      Int32.to_int (String.get_int32_be data (String.length magic))
    in
    if found <> version then
      Error
        (Printf.sprintf "%s: profile format version %d, expected %d" path
           found version)
    else
      match decode_body data with
      | d -> Ok d
      | exception Binio.Corrupt reason ->
          Error (Printf.sprintf "%s: corrupt profile entry (%s)" path reason)
      | exception Invalid_argument reason ->
          Error (Printf.sprintf "%s: corrupt profile entry (%s)" path reason)
      | exception Failure reason ->
          Error (Printf.sprintf "%s: corrupt profile entry (%s)" path reason)

let load path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such file" path)
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | data -> of_bytes ~path data
    | exception Sys_error reason -> Error reason

let verify path = Result.map ignore (load path)

(* ------------------------------------------------------------------ *)
(* lookup / store *)

type lookup =
  | Hit of data
  | Miss
  | Quarantined of { path : string; reason : string }

(* Same stability contract as the pbcache counters: hit/miss splits
   depend on what earlier processes left on disk, not on this run's
   scheduling, so they are stable across job counts within one run. *)
module M = struct
  let hits = Sp_obs.Metrics.counter "profcache.hits"
  let misses = Sp_obs.Metrics.counter "profcache.misses"
  let quarantines = Sp_obs.Metrics.counter "profcache.quarantines"
  let stores = Sp_obs.Metrics.counter "profcache.stores"
end

let quarantine path =
  let q = path ^ ".quarantined" in
  (try Sys.rename path q with Sys_error _ -> ());
  Sp_obs.Metrics.incr M.quarantines;
  q

(* Decoded profile entries share the artifact mem-cache pool (and its
   [--mem-cache-mb] budget); keyed by on-disk path, charged their
   serialised size.  The decoded value is treated as immutable by every
   consumer. *)
let mem : data Mem_cache.t = Mem_cache.create Mem_cache.global
let clear_mem () = Mem_cache.clear mem

let file_bytes path =
  match (Unix.stat path).Unix.st_size with
  | n -> n
  | exception Unix.Unix_error _ -> 0

let find ~dir ~key =
  let path = path ~dir ~key in
  match Mem_cache.find mem path with
  | Some d -> Hit d
  | None ->
      if not (Sys.file_exists path) then begin
        Sp_obs.Metrics.incr M.misses;
        Miss
      end
      else (
        match load path with
        | Ok d ->
            Sp_obs.Metrics.incr M.hits;
            Mem_cache.add mem path ~bytes:(file_bytes path) d;
            Hit d
        | Error reason ->
            ignore (quarantine path);
            Quarantined { path; reason })

let store ~dir ~key d =
  let path = path ~dir ~key in
  Store.mkdir_p dir;
  let data = encode d in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  (try
     Fun.protect
       ~finally:(fun () -> close_out oc)
       (fun () -> output_string oc data)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Sp_obs.Metrics.incr M.stores;
  Mem_cache.add mem path ~bytes:(String.length data) d;
  path
