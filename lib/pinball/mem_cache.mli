(** In-memory LRU over decoded artifacts.

    Sits in front of the on-disk content-addressed caches
    ({!Artifact_cache}, {!Profile_store}): a hit skips the disk read,
    checksum sweep and decode entirely.  Differently-typed member
    caches share one byte budget through a {!pool}; eviction is strict
    least-recently-used across the whole pool.

    Every operation is domain-safe (one pool mutex).  Values come back
    uncopied, so consumers must treat them as immutable — decoded
    pinball snapshots are frozen, making concurrent
    [Snapshot.restore]s of a cached pinball read-only.

    Counters: [pbcache.mem_hits] (stable across job counts) and
    [pbcache.mem_evictions] (unstable: eviction order under a
    concurrent pool depends on scheduling). *)

type pool

val create_pool : unit -> pool
(** A fresh pool with budget 0 (every member disabled). *)

val global : pool
(** The process-wide pool used by the artifact and profile caches; its
    budget is set from [--mem-cache-mb] / [SPECREPRO_MEM_CACHE_MB] at
    pipeline entry. *)

val set_budget_mb : pool -> int -> unit
(** Set the shared byte budget in MiB.  0 (or negative) disables every
    member cache: finds miss, adds drop.  Shrinking does not evict
    until the next {!add}. *)

type 'a t

val create : pool -> 'a t
(** A new member cache drawing on [pool]'s budget. *)

val find : 'a t -> string -> 'a option
(** Lookup by key; a hit bumps recency and [pbcache.mem_hits]. *)

val add : 'a t -> string -> bytes:int -> 'a -> unit
(** Insert (or replace) an entry charged [bytes] against the pool
    budget, evicting pool-wide LRU entries to make room.  Dropped
    silently when the pool is disabled or the entry alone exceeds the
    budget. *)

val clear : 'a t -> unit
(** Drop every entry of this member (not the whole pool). *)
