type reg = int
type freg = int

let num_regs = 16
let num_fregs = 16

type alu_op = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type falu_op = Fadd | Fsub | Fmul | Fdiv

type cond = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Alu of alu_op * reg * reg * reg
  | Alui of alu_op * reg * reg * int
  | Li of reg * int
  | Mov of reg * reg
  | Load of reg * reg * int
  | Store of reg * reg * int
  | Movs of reg * reg
  | Falu of falu_op * freg * freg * freg
  | Fload of freg * reg * int
  | Fstore of freg * reg * int
  | Fmovi of freg * float
  | Cvtif of freg * reg
  | Cvtfi of reg * freg
  | Branch of cond * reg * reg * int
  | Jump of int
  | Call of int
  | Ret
  | Sys of int * reg
  | Halt

type mem_class = No_mem | Mem_r | Mem_w | Mem_rw

let mem_class = function
  | Load _ | Fload _ -> Mem_r
  | Store _ | Fstore _ -> Mem_w
  | Movs _ -> Mem_rw
  | Alu _ | Alui _ | Li _ | Mov _ | Falu _ | Fmovi _ | Cvtif _ | Cvtfi _
  | Branch _ | Jump _ | Call _ | Ret | Sys _ | Halt ->
      No_mem

let mem_class_code = function No_mem -> 0 | Mem_r -> 1 | Mem_w -> 2 | Mem_rw -> 3

let mem_class_of_code = function
  | 0 -> No_mem
  | 1 -> Mem_r
  | 2 -> Mem_w
  | 3 -> Mem_rw
  | n -> invalid_arg (Printf.sprintf "Isa.mem_class_of_code: %d" n)

let mem_class_name = function
  | No_mem -> "NO_MEM"
  | Mem_r -> "MEM_R"
  | Mem_w -> "MEM_W"
  | Mem_rw -> "MEM_RW"

let all_mem_classes = [ No_mem; Mem_r; Mem_w; Mem_rw ]

type kind =
  | K_alu
  | K_mul
  | K_div
  | K_falu
  | K_fmul
  | K_fdiv
  | K_load
  | K_store
  | K_movs
  | K_branch
  | K_jump
  | K_sys
  | K_halt

let kind = function
  | Alu ((Mul : alu_op), _, _, _) | Alui (Mul, _, _, _) -> K_mul
  | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _) -> K_div
  | Alu _ | Alui _ | Li _ | Mov _ | Cvtif _ | Cvtfi _ -> K_alu
  | Falu (Fmul, _, _, _) -> K_fmul
  | Falu (Fdiv, _, _, _) -> K_fdiv
  | Falu ((Fadd | Fsub), _, _, _) | Fmovi _ -> K_falu
  | Load _ | Fload _ -> K_load
  | Store _ | Fstore _ -> K_store
  | Movs _ -> K_movs
  | Branch _ -> K_branch
  | Jump _ | Call _ | Ret -> K_jump
  | Sys _ -> K_sys
  | Halt -> K_halt

let kind_code = function
  | K_alu -> 0
  | K_mul -> 1
  | K_div -> 2
  | K_falu -> 3
  | K_fmul -> 4
  | K_fdiv -> 5
  | K_load -> 6
  | K_store -> 7
  | K_movs -> 8
  | K_branch -> 9
  | K_jump -> 10
  | K_sys -> 11
  | K_halt -> 12

let kind_of_code = function
  | 0 -> K_alu
  | 1 -> K_mul
  | 2 -> K_div
  | 3 -> K_falu
  | 4 -> K_fmul
  | 5 -> K_fdiv
  | 6 -> K_load
  | 7 -> K_store
  | 8 -> K_movs
  | 9 -> K_branch
  | 10 -> K_jump
  | 11 -> K_sys
  | 12 -> K_halt
  | n -> invalid_arg (Printf.sprintf "Isa.kind_of_code: %d" n)

let num_kinds = 13

let kind_name = function
  | K_alu -> "alu"
  | K_mul -> "mul"
  | K_div -> "div"
  | K_falu -> "falu"
  | K_fmul -> "fmul"
  | K_fdiv -> "fdiv"
  | K_load -> "load"
  | K_store -> "store"
  | K_movs -> "movs"
  | K_branch -> "branch"
  | K_jump -> "jump"
  | K_sys -> "sys"
  | K_halt -> "halt"

let is_control = function
  | Branch _ | Jump _ | Call _ | Ret | Halt -> true
  | Alu _ | Alui _ | Li _ | Mov _ | Load _ | Store _ | Movs _ | Falu _
  | Fload _ | Fstore _ | Fmovi _ | Cvtif _ | Cvtfi _ | Sys _ ->
      false

let branch_target = function
  | Branch (_, _, _, t) | Jump t | Call t -> Some t
  | Ret | Halt -> None
  | Alu _ | Alui _ | Li _ | Mov _ | Load _ | Store _ | Movs _ | Falu _
  | Fload _ | Fstore _ | Fmovi _ | Cvtif _ | Cvtfi _ | Sys _ ->
      None

let map_target f = function
  | Branch (c, r1, r2, t) -> Branch (c, r1, r2, f t)
  | Jump t -> Jump (f t)
  | Call t -> Call (f t)
  | i -> i

let bytes_per_instr = 4

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let falu_op_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp ppf = function
  | Alu (op, rd, r1, r2) ->
      Format.fprintf ppf "%s r%d, r%d, r%d" (alu_op_name op) rd r1 r2
  | Alui (op, rd, r1, imm) ->
      Format.fprintf ppf "%si r%d, r%d, %d" (alu_op_name op) rd r1 imm
  | Li (rd, imm) -> Format.fprintf ppf "li r%d, %d" rd imm
  | Mov (rd, rs) -> Format.fprintf ppf "mov r%d, r%d" rd rs
  | Load (rd, rs, off) -> Format.fprintf ppf "ld r%d, %d(r%d)" rd off rs
  | Store (rv, rb, off) -> Format.fprintf ppf "st r%d, %d(r%d)" rv off rb
  | Movs (rd, rs) -> Format.fprintf ppf "movs (r%d), (r%d)" rd rs
  | Falu (op, fd, f1, f2) ->
      Format.fprintf ppf "%s f%d, f%d, f%d" (falu_op_name op) fd f1 f2
  | Fload (fd, rs, off) -> Format.fprintf ppf "fld f%d, %d(r%d)" fd off rs
  | Fstore (fv, rb, off) -> Format.fprintf ppf "fst f%d, %d(r%d)" fv off rb
  | Fmovi (fd, x) ->
      (* hex float: exact round-trip through the text format *)
      Format.fprintf ppf "fmovi f%d, %h" fd x
  | Cvtif (fd, rs) -> Format.fprintf ppf "cvtif f%d, r%d" fd rs
  | Cvtfi (rd, fs) -> Format.fprintf ppf "cvtfi r%d, f%d" rd fs
  | Branch (c, r1, r2, t) ->
      Format.fprintf ppf "b%s r%d, r%d, @%d" (cond_name c) r1 r2 t
  | Jump t -> Format.fprintf ppf "jmp @%d" t
  | Call t -> Format.fprintf ppf "call @%d" t
  | Ret -> Format.fprintf ppf "ret"
  | Sys (n, rd) -> Format.fprintf ppf "sys %d, r%d" n rd
  | Halt -> Format.fprintf ppf "halt"

let to_string i = Format.asprintf "%a" pp i

(* ------------------------------------------------------------------ *)
(* Parsing: the inverse of [pp].  Tokens are the mnemonic followed by
   comma-separated operands; registers are rN/fN, targets @N, memory
   operands off(rN), movs operands (rN). *)

let alu_op_of_name = function
  | "add" -> Some Add
  | "sub" -> Some Sub
  | "mul" -> Some Mul
  | "div" -> Some Div
  | "rem" -> Some Rem
  | "and" -> Some And
  | "or" -> Some Or
  | "xor" -> Some Xor
  | "shl" -> Some Shl
  | "shr" -> Some Shr
  | _ -> None

let falu_op_of_name = function
  | "fadd" -> Some Fadd
  | "fsub" -> Some Fsub
  | "fmul" -> Some Fmul
  | "fdiv" -> Some Fdiv
  | _ -> None

let cond_of_name = function
  | "eq" -> Some Eq
  | "ne" -> Some Ne
  | "lt" -> Some Lt
  | "le" -> Some Le
  | "gt" -> Some Gt
  | "ge" -> Some Ge
  | _ -> None

let parse_reg prefix s =
  let n = String.length s in
  if n >= 2 && s.[0] = prefix then
    match int_of_string_opt (String.sub s 1 (n - 1)) with
    | Some r when r >= 0 && r < 16 -> Some r
    | _ -> None
  else None

let parse_target s =
  let n = String.length s in
  if n >= 2 && s.[0] = '@' then int_of_string_opt (String.sub s 1 (n - 1))
  else None

(* "off(rN)" *)
let parse_mem s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      let off = String.sub s 0 i in
      let reg = String.sub s (i + 1) (String.length s - i - 2) in
      Option.bind (int_of_string_opt off) (fun off ->
          Option.map (fun r -> (off, r)) (parse_reg 'r' reg))
  | _ -> None

(* "(rN)" *)
let parse_paren_reg s =
  let n = String.length s in
  if n >= 4 && s.[0] = '(' && s.[n - 1] = ')' then
    parse_reg 'r' (String.sub s 1 (n - 2))
  else None

let of_string line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (
      match line with "ret" -> Some Ret | "halt" -> Some Halt | _ -> None)
  | Some sp -> (
      let mnemonic = String.sub line 0 sp in
      let rest = String.sub line (sp + 1) (String.length line - sp - 1) in
      let operands =
        String.split_on_char ',' rest |> List.map String.trim
      in
      let ( let* ) = Option.bind in
      match (mnemonic, operands) with
      | "li", [ rd; imm ] ->
          let* rd = parse_reg 'r' rd in
          let* imm = int_of_string_opt imm in
          Some (Li (rd, imm))
      | "mov", [ rd; rs ] ->
          let* rd = parse_reg 'r' rd in
          let* rs = parse_reg 'r' rs in
          Some (Mov (rd, rs))
      | "ld", [ rd; mem ] ->
          let* rd = parse_reg 'r' rd in
          let* off, rs = parse_mem mem in
          Some (Load (rd, rs, off))
      | "st", [ rv; mem ] ->
          let* rv = parse_reg 'r' rv in
          let* off, rb = parse_mem mem in
          Some (Store (rv, rb, off))
      | "movs", [ dst; src ] ->
          let* rd = parse_paren_reg dst in
          let* rs = parse_paren_reg src in
          Some (Movs (rd, rs))
      | "fld", [ fd; mem ] ->
          let* fd = parse_reg 'f' fd in
          let* off, rs = parse_mem mem in
          Some (Fload (fd, rs, off))
      | "fst", [ fv; mem ] ->
          let* fv = parse_reg 'f' fv in
          let* off, rb = parse_mem mem in
          Some (Fstore (fv, rb, off))
      | "fmovi", [ fd; x ] ->
          let* fd = parse_reg 'f' fd in
          let* x = float_of_string_opt x in
          Some (Fmovi (fd, x))
      | "cvtif", [ fd; rs ] ->
          let* fd = parse_reg 'f' fd in
          let* rs = parse_reg 'r' rs in
          Some (Cvtif (fd, rs))
      | "cvtfi", [ rd; fs ] ->
          let* rd = parse_reg 'r' rd in
          let* fs = parse_reg 'f' fs in
          Some (Cvtfi (rd, fs))
      | "jmp", [ t ] ->
          let* t = parse_target t in
          Some (Jump t)
      | "call", [ t ] ->
          let* t = parse_target t in
          Some (Call t)
      | "sys", [ n; rd ] ->
          let* n = int_of_string_opt n in
          let* rd = parse_reg 'r' rd in
          Some (Sys (n, rd))
      | _, [ a; b; c ] -> (
          (* three-operand forms: alu / alui / falu / branches *)
          match falu_op_of_name mnemonic with
          | Some op ->
              let* fd = parse_reg 'f' a in
              let* f1 = parse_reg 'f' b in
              let* f2 = parse_reg 'f' c in
              Some (Falu (op, fd, f1, f2))
          | None -> (
              let n = String.length mnemonic in
              if n > 1 && mnemonic.[0] = 'b' then
                let* cond = cond_of_name (String.sub mnemonic 1 (n - 1)) in
                let* r1 = parse_reg 'r' a in
                let* r2 = parse_reg 'r' b in
                let* t = parse_target c in
                Some (Branch (cond, r1, r2, t))
              else if n > 1 && mnemonic.[n - 1] = 'i' then
                let* op = alu_op_of_name (String.sub mnemonic 0 (n - 1)) in
                let* rd = parse_reg 'r' a in
                let* r1 = parse_reg 'r' b in
                let* imm = int_of_string_opt c in
                Some (Alui (op, rd, r1, imm))
              else
                let* op = alu_op_of_name mnemonic in
                let* rd = parse_reg 'r' a in
                let* r1 = parse_reg 'r' b in
                let* r2 = parse_reg 'r' c in
                Some (Alu (op, rd, r1, r2))))
      | _ -> None)
