(** The synthetic instruction-set architecture.

    A register machine with 16 integer and 16 floating-point registers,
    64-bit words, explicit loads/stores, a memory-to-memory move (the
    x86-[movs]-style instruction the paper counts as MEM_RW), conditional
    branches, direct calls and a recording "syscall" for non-deterministic
    inputs.  The ISA is deliberately simple — the paper's methodology only
    observes the *dynamic* stream of basic blocks, instruction classes and
    memory addresses, all of which this ISA produces — while still being a
    real executable target: workloads are genuine programs interpreted by
    {!Sp_vm.Interp}, not pre-recorded traces. *)

type reg = int
(** Integer register index, [0..15]. *)

type freg = int
(** Floating-point register index, [0..15]. *)

val num_regs : int
val num_fregs : int

type alu_op = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr

type falu_op = Fadd | Fsub | Fmul | Fdiv

type cond = Eq | Ne | Lt | Le | Gt | Ge

type instr =
  | Alu of alu_op * reg * reg * reg   (** [rd <- rs1 op rs2] *)
  | Alui of alu_op * reg * reg * int  (** [rd <- rs1 op imm] *)
  | Li of reg * int                   (** [rd <- imm] *)
  | Mov of reg * reg                  (** [rd <- rs] *)
  | Load of reg * reg * int           (** [rd <- mem\[rs1 + off\]] *)
  | Store of reg * reg * int          (** [mem\[rs1 + off\] <- rs2]; operands are (value, base, off) *)
  | Movs of reg * reg                 (** [mem\[r_dst\] <- mem\[r_src\]]; operands are (dst addr, src addr) *)
  | Falu of falu_op * freg * freg * freg
  | Fload of freg * reg * int         (** [fd <- mem\[rs + off\]] reinterpreted as float bits *)
  | Fstore of freg * reg * int
  | Fmovi of freg * float             (** [fd <- constant] *)
  | Cvtif of freg * reg               (** [fd <- float_of_int rs] *)
  | Cvtfi of reg * freg               (** [rd <- int_of_float fs] *)
  | Branch of cond * reg * reg * int  (** conditional PC-relative-free absolute target *)
  | Jump of int
  | Call of int
  | Ret
  | Sys of int * reg                  (** [rd <- external input on channel n] *)
  | Halt

(** Memory-operand classification used by the paper's [ldstmix] pintool. *)
type mem_class = No_mem | Mem_r | Mem_w | Mem_rw

val mem_class : instr -> mem_class

val mem_class_code : mem_class -> int
(** Stable code in [0..3]: NO_MEM=0, MEM_R=1, MEM_W=2, MEM_RW=3. *)

val mem_class_of_code : int -> mem_class
val mem_class_name : mem_class -> string
val all_mem_classes : mem_class list

(** Micro-operation kind, the granularity the timing model cares about. *)
type kind =
  | K_alu    (** single-cycle integer op *)
  | K_mul
  | K_div
  | K_falu   (** FP add/sub *)
  | K_fmul
  | K_fdiv
  | K_load
  | K_store
  | K_movs
  | K_branch (** conditional branch *)
  | K_jump   (** unconditional control transfer, incl. call/ret *)
  | K_sys
  | K_halt

val kind : instr -> kind
val kind_code : kind -> int
(** Dense code in [0..12] for table-indexed dispatch in hot loops. *)

val kind_of_code : int -> kind
val num_kinds : int

val kind_name : kind -> string
(** Lower-case mnemonic of a kind, e.g. ["falu"] — stable across
    releases, used in reports and JSON output. *)

val is_control : instr -> bool
(** True for every instruction that may change the PC. *)

val branch_target : instr -> int option
(** Static target of a control instruction, if any (none for [Ret]). *)

val map_target : (int -> int) -> instr -> instr
(** Rewrite the static control target; identity on non-control
    instructions.  Used by the assembler to resolve symbolic labels. *)

val bytes_per_instr : int
(** Nominal encoded size, used to form instruction-fetch addresses. *)

val pp : Format.formatter -> instr -> unit
(** Disassembly, e.g. ["add r3, r1, r2"]. *)

val to_string : instr -> string

val of_string : string -> instr option
(** Parse one line of disassembly back into an instruction; inverse of
    {!to_string} on every instruction.  [None] on malformed input. *)
