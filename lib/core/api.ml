(* The specrepro/v2 JSON surface: one envelope builder and one set of
   payload renderers shared by the CLI's --json path and the serve
   daemon's wire replies, so the two can never drift byte-wise. *)

let schema = "specrepro/v2"
let schema_v1 = "specrepro/v1"

let envelope ~command ~options ~result =
  Sp_obs.Json.Obj
    [
      ("schema", Sp_obs.Json.Str schema);
      ("command", Sp_obs.Json.Str command);
      ("options", options);
      ("result", result);
    ]

let no_options = Sp_obs.Json.Obj []

let num x = Sp_obs.Json.Num x
let str s = Sp_obs.Json.Str s
let numi i = Sp_obs.Json.Num (float_of_int i)

let options_json ?benchmark ?(extra = []) (o : Pipeline.options) =
  let bench =
    match benchmark with
    | Some b -> [ ("benchmark", str b) ]
    | None -> []
  in
  Sp_obs.Json.Obj
    (bench
    @ [
        ("scale", num o.Pipeline.slices_scale);
        ("jobs", numi o.Pipeline.jobs);
        ("sampler", str (Sp_simpoint.Sampler.name o.Pipeline.sampler));
        ("slice_insns", numi o.Pipeline.slice_insns);
        ("warmup_insns", numi o.Pipeline.warmup_insns);
      ]
    @ extra)

let options_of_json ?(base = Pipeline.default_options) json =
  let ( let* ) = Result.bind in
  let int_field name v k =
    match v with
    | Sp_obs.Json.Num f
      when Float.is_integer f && Float.abs f <= 1e15 ->
        Ok (k (int_of_float f))
    | _ -> Error (Printf.sprintf "options.%s: expected an integer" name)
  in
  match json with
  | Sp_obs.Json.Obj fields ->
      let rec fold acc bench = function
        | [] -> Ok (bench, acc)
        | (name, v) :: rest -> (
            match name with
            | "benchmark" -> (
                match v with
                | Sp_obs.Json.Str b -> fold acc (Some b) rest
                | _ -> Error "options.benchmark: expected a string")
            | "scale" -> (
                match v with
                | Sp_obs.Json.Num f when Float.is_finite f && f > 0.0 ->
                    fold { acc with Pipeline.slices_scale = f } bench rest
                | _ -> Error "options.scale: expected a positive number")
            | "jobs" ->
                let* acc =
                  int_field "jobs" v (fun j ->
                      { acc with Pipeline.jobs = max 1 j })
                in
                fold acc bench rest
            | "sampler" -> (
                match v with
                | Sp_obs.Json.Str s -> (
                    match Sp_simpoint.Sampler.of_name s with
                    | Ok kind -> fold { acc with Pipeline.sampler = kind } bench rest
                    | Error e -> Error (Printf.sprintf "options.sampler: %s" e))
                | _ -> Error "options.sampler: expected a string")
            | "slice_insns" ->
                let* acc =
                  int_field "slice_insns" v (fun n ->
                      if n <= 0 then acc
                      else { acc with Pipeline.slice_insns = n })
                in
                fold acc bench rest
            | "warmup_insns" ->
                let* acc =
                  int_field "warmup_insns" v (fun n ->
                      { acc with Pipeline.warmup_insns = max 0 n })
                in
                fold acc bench rest
            | other ->
                Error
                  (Printf.sprintf
                     "options.%s: unknown field (the v2 options object \
                      carries only benchmark, scale, jobs, sampler, \
                      slice_insns, warmup_insns)"
                     other))
      in
      let* bench, o = fold base None fields in
      Ok (bench, Pipeline.normalize o)
  | Sp_obs.Json.Null -> Ok (None, Pipeline.normalize base)
  | _ -> Error "options: expected an object"

(* ------------------------------------------------------------------ *)
(* payload renderers (moved verbatim from the CLI so the daemon shares
   them) *)

let mix_json (m : Sp_pin.Mix.t) =
  Sp_obs.Json.Obj
    [
      ("no_mem", num m.Sp_pin.Mix.no_mem);
      ("mem_r", num m.Sp_pin.Mix.mem_r);
      ("mem_w", num m.Sp_pin.Mix.mem_w);
      ("mem_rw", num m.Sp_pin.Mix.mem_rw);
    ]

let run_stats_json (s : Runstats.run_stats) =
  Sp_obs.Json.Obj
    [
      ("label", str s.Runstats.label);
      ("insns", num s.Runstats.insns);
      ("mix", mix_json s.Runstats.mix);
      ("l1i_miss", num s.Runstats.l1i_miss);
      ("l1d_miss", num s.Runstats.l1d_miss);
      ("l2_miss", num s.Runstats.l2_miss);
      ("l3_miss", num s.Runstats.l3_miss);
      ("cpi", num s.Runstats.cpi);
    ]

let bench_result_fields (r : Pipeline.bench_result) =
  [
    ("benchmark", str r.Pipeline.spec.Sp_workloads.Benchspec.name);
    ("whole_insns", numi r.Pipeline.whole_insns);
    ("points", numi (Array.length r.Pipeline.selection.Pipeline.points));
    ("reduced_points", numi (Pipeline.reduced_count r));
    ("whole", run_stats_json r.Pipeline.whole);
    ("regional", run_stats_json (Pipeline.regional r));
    ("reduced", run_stats_json (Pipeline.reduced r));
    ("warmup_regional", run_stats_json (Pipeline.warmup_regional r));
    ("native_cpi", num (Sp_perf.Perf_counters.cpi r.Pipeline.native));
    ("wall_seconds", num r.Pipeline.wall_seconds);
    ("report", Pipeline.run_report_to_json r.Pipeline.report);
  ]

let table_json t =
  Sp_obs.Json.Obj
    [
      ( "title",
        match Sp_util.Table.title t with
        | Some s -> str s
        | None -> Sp_obs.Json.Null );
      ("columns", Sp_obs.Json.List (List.map str (Sp_util.Table.headers t)));
      ( "rows",
        Sp_obs.Json.List
          (List.map
             (fun row -> Sp_obs.Json.List (List.map str row))
             (Sp_util.Table.rows t)) );
    ]

let metrics_json () = Sp_obs.Metrics.to_json (Sp_obs.Metrics.snapshot ())

let run_result r =
  Sp_obs.Json.Obj (bench_result_fields r @ [ ("metrics", metrics_json ()) ])

let run_envelope (r : Pipeline.bench_result) =
  envelope ~command:"run"
    ~options:
      (options_json
         ~benchmark:r.Pipeline.spec.Sp_workloads.Benchspec.name
         r.Pipeline.options)
    ~result:(run_result r)

let error_result ~code ~message =
  Sp_obs.Json.Obj [ ("code", str code); ("message", str message) ]

let error_envelope ~code ~message =
  envelope ~command:"error" ~options:no_options
    ~result:(error_result ~code ~message)

let emit ~command ~options ~result =
  print_endline (Sp_obs.Json.to_string (envelope ~command ~options ~result))
