(** The [specrepro/v2] public JSON surface.

    Every machine-readable output the system produces — [--json] on any
    CLI subcommand {e and} every reply the [specrepro serve] daemon
    sends over its socket — is one envelope:

    {v {"schema":"specrepro/v2","command":C,"options":O,"result":R} v}

    [command] discriminates the payload, [options] echoes the
    result-determining invocation knobs (canonically rendered, so two
    surfaces given the same configuration emit byte-identical options
    objects), and [result] carries the command's payload.  The CLI and
    the daemon build their envelopes through this one module, which is
    what makes a daemon [submit] reply byte-compatible with
    [specrepro run --json] output for the same job.

    v1 compatibility: [specrepro/v1] objects were flat
    ([schema]/[command] plus payload fields at the top level, options
    unrecorded).  v2 moves every payload field under [result], adds the
    canonical [options] object, and changes nothing inside the payload
    renderings themselves ([run_stats_json], [table_json], metric
    samples are identical to v1).  Consumers can detect the version
    from the [schema] field. *)

val schema : string
(** ["specrepro/v2"]. *)

val schema_v1 : string
(** ["specrepro/v1"] — the retired flat schema, kept for consumers
    that need to recognise old captures. *)

val envelope :
  command:string -> options:Sp_obs.Json.t -> result:Sp_obs.Json.t ->
  Sp_obs.Json.t
(** The four-field v2 envelope, fields in canonical order. *)

val no_options : Sp_obs.Json.t
(** [{}] — for commands with no result-determining knobs (list,
    replay, report, pinballs). *)

val options_json :
  ?benchmark:string ->
  ?extra:(string * Sp_obs.Json.t) list ->
  Pipeline.options ->
  Sp_obs.Json.t
(** Canonical rendering of the result-determining pipeline knobs:
    [benchmark] (when given), [scale], [jobs], [sampler],
    [slice_insns], [warmup_insns], then any command-specific [extra]
    fields.  Presentation and host-local resource knobs (progress,
    trace output, cache directories) are deliberately excluded — they
    cannot change a result, so they are not part of the public API. *)

val options_of_json :
  ?base:Pipeline.options ->
  Sp_obs.Json.t ->
  (string option * Pipeline.options, string) result
(** Decode an [options] object received over the wire back into
    [(benchmark, options)], starting from [base] (default:
    {!Pipeline.default_options}) and applying {!Pipeline.normalize}.
    Strict: an unknown field or a wrongly-typed value is an [Error]
    naming the field, never silently ignored.  Round-trips with
    {!options_json}: decoding a rendered object and re-rendering it
    reproduces the same bytes. *)

(** {1 Payload renderers}

    Shared by the CLI subcommands and the daemon so the two surfaces
    can never drift. *)

val mix_json : Sp_pin.Mix.t -> Sp_obs.Json.t
val run_stats_json : Runstats.run_stats -> Sp_obs.Json.t

val bench_result_fields :
  Pipeline.bench_result -> (string * Sp_obs.Json.t) list
(** The per-benchmark result payload ([benchmark], point counts, the
    four aggregated runs, native CPI, wall seconds, run report), as an
    ordered field list so callers can append to it. *)

val table_json : Sp_util.Table.t -> Sp_obs.Json.t
val metrics_json : unit -> Sp_obs.Json.t
(** Snapshot of the {!Sp_obs.Metrics} registry, taken at call time. *)

val run_result : Pipeline.bench_result -> Sp_obs.Json.t
(** {!bench_result_fields} plus a trailing [metrics] snapshot — the
    [result] payload of the [run] command.  [metrics] is kept last so
    consumers (and the CI normaliser) can strip the one
    scheduling-dependent field with a tail match. *)

val run_envelope : Pipeline.bench_result -> Sp_obs.Json.t
(** The complete [run] envelope for a finished benchmark — exactly
    what [specrepro run --json] prints and what the daemon replies to
    a [submit]. *)

(** {1 Errors}

    Error replies use [command = "error"]; [result.code] is a stable
    machine-readable discriminator aligned with the CLI exit-code
    convention (every code here maps to exit 1 for clients — gate
    failures are not errors, they are [bench-regress] results). *)

val error_result : code:string -> message:string -> Sp_obs.Json.t
val error_envelope : code:string -> message:string -> Sp_obs.Json.t

val emit :
  command:string -> options:Sp_obs.Json.t -> result:Sp_obs.Json.t -> unit
(** Print an envelope to stdout (one line, trailing newline) — the
    [--json] output path. *)
