open Sp_workloads
open Sp_pin
open Sp_pinball

type options = {
  slice_insns : int;
  slices_scale : float;
  warmup_insns : int;
  coverage : float;
  sampler : Sp_simpoint.Sampler.kind;
  simpoint_config : Sp_simpoint.Simpoints.config;
  cache_config : Sp_cache.Config.hierarchy;
  next_line_prefetch : bool;
  core_config : Sp_cpu.Core_config.t;
  variance_ks : int list;
  collect_variance : bool;
  progress : bool;
  jobs : int;
  pinball_cache : string option;
  profile_cache : string option;
  (* shared budget of the in-memory decoded-artifact cache, in MiB
     (0 disables); result-neutral, so excluded from the API v2 options
     envelope like the cache directories *)
  mem_cache_mb : int;
}

let default_options =
  {
    slice_insns = Benchspec.default_slice_insns;
    slices_scale = 1.0;
    (* The paper warms for 500 M cycles before each point.  What makes
       that effective is its size relative to the LLC: hundreds of
       accesses per L3 line.  Since simulated caches are capacity-scaled
       by 32 while instruction counts are scaled much further, the
       window is sized against the scaled L3 (~10 accesses per line at
       the suite's ~0.3 accesses/instruction) rather than by naive
       instruction-count scaling, which would warm almost nothing. *)
    warmup_insns = 150_000;
    coverage = 0.9;
    sampler = Sp_simpoint.Sampler.Simpoint;
    simpoint_config = Sp_simpoint.Simpoints.default_config;
    cache_config = Sp_cache.Config.allcache_sim;
    next_line_prefetch = false;
    core_config = Sp_cpu.Core_config.i7_3770_sim;
    variance_ks = [ 5; 10; 15; 20; 25; 30; 35 ];
    collect_variance = true;
    progress = true;
    (* sequential: parallel execution is strictly opt-in (--jobs), and
       every stage is bit-for-bit identical across job counts anyway *)
    jobs = 1;
    pinball_cache = None;
    profile_cache = None;
    (* a few dozen decoded artifacts at tiny-suite sizes; enough for a
       daemon to keep its working set without surprising anyone's RSS *)
    mem_cache_mb = 64;
  }

(* Resolve every derived knob up front, producing the single [options]
   value each downstream stage receives (the simpoint stages inherit
   the pipeline-level jobs knob unless the caller left it sequential).
   Idempotent, so the explicit calls in the entry points compose. *)
let normalize options =
  (* a profile cache is only fully effective with a pinball cache (the
     whole pinball is what a profile hit replays nothing of), so it
     doubles as the pinball cache directory unless one was given *)
  let options =
    match (options.profile_cache, options.pinball_cache) with
    | Some dir, None -> { options with pinball_cache = Some dir }
    | _ -> options
  in
  let options = { options with mem_cache_mb = max 0 options.mem_cache_mb } in
  (* publish the budget to the process-wide pool here, since every
     entry point normalizes first; repeat calls with the same value are
     no-ops in effect *)
  Mem_cache.set_budget_mb Mem_cache.global options.mem_cache_mb;
  if options.jobs > 1 then
    {
      options with
      simpoint_config =
        { options.simpoint_config with Sp_simpoint.Simpoints.jobs = options.jobs };
    }
  else options

type selection_summary = {
  sampler : Sp_simpoint.Sampler.kind;
  chosen_k : int;
  num_slices : int;
  points : Sp_simpoint.Simpoints.point array;
  bic_curve : (int * float) list;
  diagnostics : (string * float) list;
}

type stage_timing = { stage : string; seconds : float }

type run_report = {
  jobs_used : int;
  warmup_insns_used : int;
  sampler_used : string;
  stages : stage_timing list;
}

type bench_result = {
  spec : Benchspec.t;
  built : Benchspec.built;
  options : options;
  whole_insns : int;
  selection : selection_summary;
  whole : Runstats.run_stats;
  whole_core : Sp_cpu.Interval_core.stats;
  point_stats : Runstats.point_stats list;
  warm_point_stats : Runstats.point_stats list;
  native : Sp_perf.Perf_counters.sample;
  variance : Sp_simpoint.Variance.sweep_point list;
  wall_seconds : float;
  report : run_report;
}

let run_report_to_json (r : run_report) =
  Sp_obs.Json.Obj
    [
      ("jobs", Sp_obs.Json.Num (float_of_int r.jobs_used));
      ("warmup_insns", Sp_obs.Json.Num (float_of_int r.warmup_insns_used));
      ("sampler", Sp_obs.Json.Str r.sampler_used);
      ( "stages",
        Sp_obs.Json.List
          (List.map
             (fun t ->
               Sp_obs.Json.Obj
                 [
                   ("stage", Sp_obs.Json.Str t.stage);
                   ("seconds", Sp_obs.Json.Num t.seconds);
                 ])
             r.stages) );
    ]

(* progress lines go through the observability logger so concurrent
   workers never interleave partial lines on the terminal *)
let progressf options fmt = Sp_obs.Log.printf_if options.progress fmt

module M = struct
  let benchmarks = Sp_obs.Metrics.counter "pipeline.benchmarks"
  let stages_run = Sp_obs.Metrics.counter "pipeline.stages_run"
  let stage_seconds = Sp_obs.Metrics.histogram "pipeline.stage_seconds"
  let warm_points = Sp_obs.Metrics.counter "warm.points"
  let select_points = Sp_obs.Metrics.counter "select.points"

  (* one stable counter per registered sampler: the CI sampler matrix
     diffs the select.* lines across job counts *)
  let sampler_counters =
    List.map
      (fun k ->
        ( k,
          Sp_obs.Metrics.counter
            ("select.sampler." ^ Sp_simpoint.Sampler.name k) ))
      Sp_simpoint.Sampler.all_kinds

  let sampler_runs k = List.assoc k sampler_counters
end

(* Wrap one pipeline stage: a trace span (when tracing is on), a wall
   time recorded into this benchmark's [run_report], and the global
   stage metrics.  The timing is recorded even if the stage raises, so
   partial runs still report where the time went. *)
let stage ~bench ~timings name f =
  Sp_obs.Tracer.with_span ~cat:"stage" ~args:[ ("bench", bench) ] name
    (fun () ->
      let t0 = Sp_obs.Clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dt =
            Sp_obs.Clock.seconds_of_ns (Sp_obs.Clock.now_ns () - t0)
          in
          Sp_obs.Metrics.incr M.stages_run;
          Sp_obs.Metrics.observe M.stage_seconds dt;
          timings := { stage = name; seconds = dt } :: !timings)
        f)

(* Replay one regional pinball under fresh (cold) pintools and collect
   its statistics — the paper's Regional-Run methodology, where every
   pinball is an independent job. *)
let replay_point options (pb : Pinball.t) =
  let prog = pb.Pinball.program in
  let mixt = Ldstmix.create () in
  let cache =
    Allcache_tool.create ~config:options.cache_config
      ~prefetch:options.next_line_prefetch prog
  in
  let core = Sp_cpu.Interval_core.create ~config:options.core_config prog in
  let result =
    Replayer.replay
      ~tools:
        [
          Ldstmix.hooks mixt;
          Allcache_tool.hooks cache;
          Sp_cpu.Interval_core.hooks core;
        ]
      pb
  in
  let cluster, weight =
    match pb.Pinball.kind with
    | Pinball.Region r -> (r.cluster, r.weight)
    | Pinball.Whole -> (-1, 1.0)
  in
  let cache_stats = Allcache_tool.stats cache in
  Sp_cache.Hierarchy.observe_stats cache_stats;
  {
    Runstats.cluster;
    weight;
    insns = result.Replayer.retired;
    mix = Ldstmix.mix mixt;
    cache = cache_stats;
    cpi = Sp_cpu.Interval_core.cpi core;
  }

let replay_points options (whole : Logger.whole) points =
  if options.jobs <= 1 then begin
    let acc = ref [] in
    Logger.scan_regions whole points (fun pb ->
        acc := replay_point options pb :: !acc);
    List.rev !acc
  end
  else begin
    (* Each cold replay builds fresh tool state and touches nothing
       shared, so once the regions are captured (one sequential
       uninstrumented fast-forward over the whole pinball) they fan out
       across the domain pool.  Points are pre-sorted by start so both
       the capture scan and the result list match the sequential path's
       order exactly. *)
    let sorted = Array.copy points in
    Array.sort
      (fun (a : Sp_simpoint.Simpoints.point) b ->
        compare a.start_icount b.start_icount)
      sorted;
    let regions = Logger.capture_regions whole sorted in
    Sp_util.Pool.parallel_map ~jobs:options.jobs (replay_point options) regions
    |> Array.to_list
  end

(* Replay one warm-prefixed regional pinball under fresh per-point
   tools: the prefix runs with the cache and timing tools warming
   (state trains, statistics stay zero), the flag flips at the
   prefix/region boundary, and the region runs measured with a fresh
   per-point ldst-mix attached.  Fresh tools are exactly equivalent to
   the shared scan's [reset_state] at each window start — construction
   and reset produce identical state under the pipeline's replacement
   policies (LRU/FIFO; [Random] keeps a replacement RNG that a reset
   does not re-seed) — so per-point statistics are bit-identical to
   the {!warm_replay_points_scan} reference, while every point becomes
   an independent job for the domain pool. *)
let replay_warm_point options (wr : Logger.warm_region) =
  Sp_obs.Tracer.with_span ~cat:"warm" "warm-point" @@ fun () ->
  let pb = wr.Logger.warm_pinball in
  let prog = pb.Pinball.program in
  let mixt = Ldstmix.create () in
  let cache =
    Allcache_tool.create ~config:options.cache_config
      ~prefetch:options.next_line_prefetch prog
  in
  let core = Sp_cpu.Interval_core.create ~config:options.core_config prog in
  let warm_hooks =
    [ Allcache_tool.hooks cache; Sp_cpu.Interval_core.hooks core ]
  in
  Allcache_tool.set_warming cache true;
  Sp_cpu.Interval_core.set_warming core true;
  let result =
    Replayer.replay_prefixed ~prefix_tools:warm_hooks
      ~tools:(Ldstmix.hooks mixt :: warm_hooks)
      ~prefix:wr.Logger.warm_prefix
      ~on_region:(fun () ->
        Allcache_tool.set_warming cache false;
        Sp_cpu.Interval_core.set_warming core false)
      pb
  in
  let cluster, weight =
    match pb.Pinball.kind with
    | Pinball.Region r -> (r.cluster, r.weight)
    | Pinball.Whole -> (-1, 1.0)
  in
  let cache_stats = Allcache_tool.stats cache in
  Sp_cache.Hierarchy.observe_stats cache_stats;
  Sp_obs.Metrics.incr M.warm_points;
  {
    Runstats.cluster;
    weight;
    insns = result.Replayer.retired;
    mix = Ldstmix.mix mixt;
    cache = cache_stats;
    cpi = Sp_cpu.Interval_core.cpi core;
  }

let warm_replay_points options ~warmup_insns (whole : Logger.whole) points =
  (* pre-sort by start so the capture scan and the result list match
     the sequential shared-scan reference's order exactly *)
  let sorted = Array.copy points in
  Array.sort
    (fun (a : Sp_simpoint.Simpoints.point) b ->
      compare a.start_icount b.start_icount)
    sorted;
  let regions =
    Sp_obs.Tracer.with_span ~cat:"warm" "warm-capture" (fun () ->
        Logger.capture_warm_regions ~warmup_insns whole sorted)
  in
  Sp_util.Pool.parallel_map ~jobs:options.jobs (replay_warm_point options)
    regions
  |> Array.to_list

(* The pre-parallel implementation — one shared forward scan with
   shared warm tools, reset at each window start — kept verbatim as
   the differential reference the equivalence suite replays against
   (metric observation moved inside the loop so per-point cache
   metrics match the parallel path's).  Not used by the pipeline. *)
let warm_replay_points_scan options ~warmup_insns (whole : Logger.whole)
    points =
  let prog = whole.Logger.pinball.Pinball.program in
  let warm_cache =
    Allcache_tool.create ~config:options.cache_config
      ~prefetch:options.next_line_prefetch prog
  in
  let warm_core =
    Sp_cpu.Interval_core.create ~config:options.core_config prog
  in
  let warm_hooks =
    [ Allcache_tool.hooks warm_cache; Sp_cpu.Interval_core.hooks warm_core ]
  in
  let acc = ref [] in
  let warmup =
    {
      Logger.length = warmup_insns;
      hooks = Sp_vm.Hooks.seq_all warm_hooks;
      on_start =
        (fun () ->
          Allcache_tool.reset_state warm_cache;
          Sp_cpu.Interval_core.reset_state warm_core;
          Allcache_tool.set_warming warm_cache true;
          Sp_cpu.Interval_core.set_warming warm_core true);
    }
  in
  Logger.scan_regions ~warmup whole points (fun pb ->
      Allcache_tool.set_warming warm_cache false;
      Sp_cpu.Interval_core.set_warming warm_core false;
      (* a zero-length window skips on_start: reset here instead *)
      if warmup_insns = 0 then begin
        Allcache_tool.reset_state warm_cache;
        Sp_cpu.Interval_core.reset_state warm_core
      end;
      let mixt = Ldstmix.create () in
      let result =
        Replayer.replay ~tools:(Ldstmix.hooks mixt :: warm_hooks) pb
      in
      let cluster, weight =
        match pb.Pinball.kind with
        | Pinball.Region r -> (r.cluster, r.weight)
        | Pinball.Whole -> (-1, 1.0)
      in
      let cache_stats = Allcache_tool.stats warm_cache in
      Sp_cache.Hierarchy.observe_stats cache_stats;
      acc :=
        {
          Runstats.cluster;
          weight;
          insns = result.Replayer.retired;
          mix = Ldstmix.mix mixt;
          cache = cache_stats;
          cpi = Sp_cpu.Interval_core.cpi warm_core;
        }
        :: !acc);
  List.rev !acc

(* The pinball-cache skeleton: produce the whole pinball by logging
   ([log]), unless a cache directory is configured and holds a valid
   entry for this (benchmark, slice, scale) key — then [on_hit] decides
   what to do with the cached artifact.  Cache failures are never
   fatal: corrupt or stale entries are quarantined with a warning and
   recomputed. *)
let whole_cached ~options ~slice_insns ~(spec : Benchspec.t) ~log ~on_hit =
  match options.pinball_cache with
  | None -> log ()
  | Some dir -> (
      let key =
        Artifact_cache.key ~benchmark:spec.Benchspec.name ~slice_insns
          ~slices_scale:options.slices_scale
      in
      let log_and_store () =
        let whole = log () in
        (try
           ignore
             (Artifact_cache.store_whole ~dir ~key ~slice_insns
                ~slices_scale:options.slices_scale whole)
         with Sys_error m | Failure m ->
           Sp_obs.Log.printf "[%s] pinball cache: could not store entry (%s)\n"
             spec.Benchspec.name m);
        whole
      in
      match Artifact_cache.find_whole ~dir ~key with
      | Artifact_cache.Hit whole ->
          on_hit ~key whole;
          whole
      | Artifact_cache.Miss -> log_and_store ()
      | Artifact_cache.Quarantined { path; reason } ->
          (* always warn, even under --quiet: data loss is news *)
          Sp_obs.Log.printf
            "[%s] pinball cache: quarantined corrupt entry %s (%s); \
             recomputing\n"
            spec.Benchspec.name path reason;
          log_and_store ())

(* Produce the whole pinball with [tools] piggybacked: either log it
   fresh, or replay the cached artifact under the same tools.  Replay
   reproduces the logged execution bit-for-bit (recorded inputs
   included), so the tools observe an identical event stream either
   way and every downstream statistic is unchanged. *)
let log_whole_cached ~options ~slice_insns ~(spec : Benchspec.t) ~tools prog =
  whole_cached ~options ~slice_insns ~spec
    ~log:(fun () ->
      Logger.log_whole ~benchmark:spec.Benchspec.name ~extra_tools:tools prog)
    ~on_hit:(fun ~key whole ->
      progressf options
        "[%s] pinball cache hit (%s): replaying cached whole pinball \
         instead of re-logging\n"
        spec.Benchspec.name key;
      ignore (Replayer.replay ~tools whole.Logger.pinball))

(* Produce the whole pinball with no instrumentation at all — a
   profile-cache hit already has every statistic the instrumented
   replay would measure.  A pinball-cache hit is then a plain load
   (zero execution); a miss re-logs on the interpreter's nil-hook
   compiled fast path and stores the artifact for next time. *)
let whole_uninstrumented ~options ~slice_insns ~(spec : Benchspec.t) prog =
  whole_cached ~options ~slice_insns ~spec
    ~log:(fun () -> Logger.log_whole ~benchmark:spec.Benchspec.name prog)
    ~on_hit:(fun ~key:_ _whole -> ())

(* What the log+profile stage produces besides the pinball, however it
   was obtained: everything downstream stages derive whole-run figures
   from.  [kind_counts] rather than the finished mix, because the mix
   (and the imix table) are cheap pure folds over it. *)
type profile_data = {
  prof_slices : Bbv_tool.slice array;
  prof_kind_counts : int array;
  prof_cache_stats : Sp_cache.Hierarchy.stats;
  prof_core_stats : Sp_cpu.Interval_core.stats;
}

(* One instrumented pass: logger + single-pass profiler (BBVs +
   ldst-mix + instruction-mix from one hook) + allcache + timing.
   The stage wants several profiles from the same replay, so it takes
   [Profile_tool] — the combined streaming consumer — rather than
   seq'ing the dedicated per-profile tools; single-profile callers
   (regional replays) keep the dedicated tools. *)
let measure_profile ~options ~slice_insns ~spec prog =
  let profile = Profile_tool.create ~slice_len:slice_insns prog in
  let cache =
    Allcache_tool.create ~config:options.cache_config
      ~prefetch:options.next_line_prefetch prog
  in
  let core = Sp_cpu.Interval_core.create ~config:options.core_config prog in
  let whole =
    log_whole_cached ~options ~slice_insns ~spec
      ~tools:
        [
          Profile_tool.hooks profile;
          Allcache_tool.hooks cache;
          Sp_cpu.Interval_core.hooks core;
        ]
      prog
  in
  Profile_tool.finish profile;
  ( whole,
    {
      prof_slices = Profile_tool.slices profile;
      prof_kind_counts = Profile_tool.kind_counts profile;
      prof_cache_stats = Allcache_tool.stats cache;
      prof_core_stats = Sp_cpu.Interval_core.stats core;
    } )

(* The whole log+profile stage, through the profile-result cache when
   one is configured: a hit replaces the instrumented whole-program
   replay with a decode of the stored slices, kind counts and whole-run
   cache/timing statistics (all bit-identical to remeasuring, since the
   logged execution is deterministic by construction).  The pinball
   itself comes from the pinball cache or an uninstrumented re-log.
   Cache trouble of any kind falls back to measuring. *)
let log_and_profile ~options ~slice_insns ~(spec : Benchspec.t) prog =
  let bench = spec.Benchspec.name in
  let measured () = measure_profile ~options ~slice_insns ~spec prog in
  let whole, data =
    match options.profile_cache with
    | None -> measured ()
    | Some dir -> (
        let key =
          Profile_store.key ~benchmark:bench ~slice_insns
            ~slices_scale:options.slices_scale
            ~warmup_insns:options.warmup_insns
        in
        let store ((whole : Logger.whole), data) =
          (try
             ignore
               (Profile_store.store ~dir ~key
                  {
                    Profile_store.benchmark = bench;
                    total_insns = whole.Logger.total_insns;
                    slices = data.prof_slices;
                    kind_counts = data.prof_kind_counts;
                    cache_stats = data.prof_cache_stats;
                    core_stats = data.prof_core_stats;
                  })
           with Sys_error m | Failure m ->
             Sp_obs.Log.printf
               "[%s] profile cache: could not store entry (%s)\n" bench m);
          (whole, data)
        in
        match Profile_store.find ~dir ~key with
        | Profile_store.Hit d -> (
            let whole = whole_uninstrumented ~options ~slice_insns ~spec prog in
            (* the entry was measured over this exact execution: its
               instruction total must agree with the pinball's *)
            if whole.Logger.total_insns = d.Profile_store.total_insns then begin
              progressf options
                "[%s] profile cache hit (%s): skipping the instrumented \
                 whole-program replay\n"
                bench key;
              ( whole,
                {
                  prof_slices = d.Profile_store.slices;
                  prof_kind_counts = d.Profile_store.kind_counts;
                  prof_cache_stats = d.Profile_store.cache_stats;
                  prof_core_stats = d.Profile_store.core_stats;
                } )
            end
            else begin
              Sp_obs.Log.printf
                "[%s] profile cache: quarantined stale entry %s (instruction \
                 total %d, pinball has %d); recomputing\n"
                bench
                (Profile_store.path ~dir ~key)
                d.Profile_store.total_insns whole.Logger.total_insns;
              ignore (Profile_store.quarantine (Profile_store.path ~dir ~key));
              store (measured ())
            end)
        | Profile_store.Miss -> store (measured ())
        | Profile_store.Quarantined { path; reason } ->
            Sp_obs.Log.printf
              "[%s] profile cache: quarantined corrupt entry %s (%s); \
               recomputing\n"
              bench path reason;
            store (measured ()))
  in
  Sp_cache.Hierarchy.observe_stats data.prof_cache_stats;
  (whole, data)

let run_benchmark ?(options = default_options) spec =
  let options = normalize options in
  let bench = spec.Benchspec.name in
  let timings = ref [] in
  Sp_obs.Metrics.incr M.benchmarks;
  Sp_obs.Tracer.with_span ~cat:"pipeline" ~args:[ ("bench", bench) ]
    "benchmark"
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let built =
    stage ~bench ~timings "build" (fun () ->
        Benchspec.build ~slice_insns:options.slice_insns
          ~slices_scale:options.slices_scale spec)
  in
  let prog = built.Benchspec.program in
  progressf options "[%s] logging whole pinball (%d planted phases)...\n"
    bench spec.Benchspec.planted_phases;
  let whole, prof =
    stage ~bench ~timings "log+profile" (fun () ->
        log_and_profile ~options ~slice_insns:options.slice_insns ~spec prog)
  in
  let slices = prof.prof_slices in
  progressf options "[%s] %d instructions, %d slices; selecting points...\n"
    bench whole.Logger.total_insns (Array.length slices);
  (* the select stage is the pluggable sampler tier: every registered
     methodology consumes the same slices and produces weighted points,
     so everything below this line is sampler-agnostic *)
  let sel =
    stage ~bench ~timings "select" (fun () ->
        Sp_simpoint.Sampler.select ~config:options.simpoint_config
          options.sampler ~slice_len:options.slice_insns slices)
  in
  Sp_obs.Metrics.incr (M.sampler_runs options.sampler);
  Sp_obs.Metrics.add M.select_points
    (Array.length sel.Sp_simpoint.Sampler.points);
  let variance =
    if options.collect_variance then
      stage ~bench ~timings "variance" (fun () ->
          Sp_simpoint.Variance.sweep ~config:options.simpoint_config
            ~ks:options.variance_ks slices)
    else []
  in
  let whole_stats =
    Runstats.of_whole ~label:"Whole" ~insns:whole.Logger.total_insns
      ~mix:(Profile_tool.ldst_mix_of_kind_counts prof.prof_kind_counts)
      ~cache:prof.prof_cache_stats
      ~cpi:(Sp_cpu.Interval_core.cpi_of_stats prof.prof_core_stats)
  in
  let native =
    Sp_perf.Native.sample_of_stats ~name:bench prof.prof_core_stats
  in
  progressf options "[%s] %d simulation points; replaying regions...\n" bench
    (Array.length sel.Sp_simpoint.Sampler.points);
  (* cold regional replays (Regional / Reduced Regional) *)
  let cold =
    stage ~bench ~timings "cold-replay" (fun () ->
        replay_points options whole sel.Sp_simpoint.Sampler.points)
  in
  (* warmed regional replays: Section IV-D's mitigation *)
  let warm =
    stage ~bench ~timings "warm-replay" (fun () ->
        warm_replay_points options ~warmup_insns:options.warmup_insns whole
          sel.Sp_simpoint.Sampler.points)
  in
  let wall = Unix.gettimeofday () -. t0 in
  progressf options "[%s] done in %.1fs\n" bench wall;
  {
    spec;
    built;
    options;
    whole_insns = whole.Logger.total_insns;
    selection =
      {
        sampler = options.sampler;
        chosen_k = sel.Sp_simpoint.Sampler.groups;
        num_slices = Array.length slices;
        points = sel.Sp_simpoint.Sampler.points;
        bic_curve = sel.Sp_simpoint.Sampler.bic_curve;
        diagnostics = sel.Sp_simpoint.Sampler.diagnostics;
      };
    whole = whole_stats;
    whole_core = prof.prof_core_stats;
    point_stats = cold;
    warm_point_stats = warm;
    native;
    variance;
    wall_seconds = wall;
    report =
      {
        jobs_used = options.jobs;
        warmup_insns_used = options.warmup_insns;
        sampler_used = Sp_simpoint.Sampler.name options.sampler;
        stages = List.rev !timings;
      };
  }

(* Whole benchmarks are the coarsest unit of independent work: fan them
   out across the pool.  Each worker's nested parallelism (replays,
   k-means) degrades to sequential automatically, so [jobs] is the
   total domain budget, not a multiplier. *)
let run_suite ?(options = default_options) ?(specs = Suite.all) () =
  let options = normalize options in
  Sp_obs.Tracer.with_span ~cat:"pipeline" "suite" (fun () ->
      Sp_util.Pool.parallel_map ~jobs:options.jobs
        (fun spec -> run_benchmark ~options spec)
        (Array.of_list specs)
      |> Array.to_list)

let regional r = Runstats.of_points ~label:"Regional" r.point_stats

(* The Reduced selection rule: points by descending weight until the
   requested coverage is reached (shared by the cold and warmed
   aggregations). *)
let coverage_filter ~coverage points =
  let sorted =
    List.sort
      (fun (a : Runstats.point_stats) b -> compare b.weight a.weight)
      points
  in
  let acc = ref 0.0 in
  List.filter
    (fun (p : Runstats.point_stats) ->
      if !acc >= coverage then false
      else begin
        acc := !acc +. p.weight;
        true
      end)
    sorted

let reduced_point_stats ~coverage r = coverage_filter ~coverage r.point_stats

let reduced ?coverage r =
  let coverage = Option.value ~default:r.options.coverage coverage in
  Runstats.of_points ~label:"Reduced Regional"
    (reduced_point_stats ~coverage r)

let reduced_count ?coverage r =
  let coverage = Option.value ~default:r.options.coverage coverage in
  List.length (reduced_point_stats ~coverage r)

let warmup_regional r =
  Runstats.of_points ~label:"Warmup Regional" r.warm_point_stats

let reduced_warm ?coverage r =
  let coverage = Option.value ~default:r.options.coverage coverage in
  Runstats.of_points ~label:"Reduced Warmup Regional"
    (coverage_filter ~coverage r.warm_point_stats)

let paper_insns _r (stats : Runstats.run_stats) =
  Sp_util.Scale.paper_insns_of_sim (int_of_float stats.Runstats.insns)

type sweep_profile = {
  sweep_built : Benchspec.built;
  sweep_whole : Logger.whole;
  sweep_slices : Bbv_tool.slice array;
  sweep_whole_stats : Runstats.run_stats;
  sweep_imix : (string * int) array;
}

let profile_for_sweep ?(options = default_options) ?slice_insns spec =
  (* fold the override into [options] so one value carries every knob
     to the stages below, exactly as in [run_benchmark] *)
  let options =
    match slice_insns with
    | Some si -> { options with slice_insns = si }
    | None -> options
  in
  let options = normalize options in
  let slice_insns = options.slice_insns in
  let built =
    Benchspec.build ~slice_insns ~slices_scale:options.slices_scale spec
  in
  let prog = built.Benchspec.program in
  (* the same cached log+profile stage [run_benchmark] uses: several
     profiles from one instrumented replay, or from the profile-result
     cache when one is configured *)
  let whole, prof = log_and_profile ~options ~slice_insns ~spec prog in
  {
    sweep_built = built;
    sweep_whole = whole;
    sweep_slices = prof.prof_slices;
    sweep_whole_stats =
      Runstats.of_whole ~label:"Full Run" ~insns:whole.Logger.total_insns
        ~mix:(Profile_tool.ldst_mix_of_kind_counts prof.prof_kind_counts)
        ~cache:prof.prof_cache_stats
        ~cpi:(Sp_cpu.Interval_core.cpi_of_stats prof.prof_core_stats);
    sweep_imix =
      Array.init Sp_isa.Isa.num_kinds (fun k ->
          ( Sp_isa.Isa.kind_name (Sp_isa.Isa.kind_of_code k),
            prof.prof_kind_counts.(k) ));
  }
