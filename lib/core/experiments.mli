(** One generator per table and figure of the paper's evaluation.

    Suite-wide figures consume a list of {!Pipeline.bench_result} so the
    expensive per-benchmark pipeline runs once and every figure reuses
    it; the xalancbmk sensitivity sweeps (Figure 3) and the ablations
    run their own profiling.  Each generator returns rendered text
    tables; headline numbers are also returned structurally where a
    comparison against the paper's claims is meaningful. *)

open Sp_util

val table1 : unit -> Table.t
(** Table I: the [allcache] hierarchy configuration. *)

val table2 : Pipeline.bench_result list -> Table.t
(** Table II: simulation points and 90th-percentile points per
    benchmark, measured against the paper's values. *)

val table2_extended :
  ?options:Pipeline.options -> unit -> Table.t
(** The paper's future work, done: simulation points for the 14 CPU2017
    workloads Table II omits (the authors' Whole-Pinball logging did not
    finish on them; ours has no such constraint).  No paper column —
    these rows are predictions. *)

val table3 : unit -> string
(** Table III: the simulated system configuration. *)

val fig3a : ?options:Pipeline.options -> ?max_ks:int list -> unit -> Table.t
(** Figure 3(a): MaxK sensitivity for 623.xalancbmk_s — instruction mix
    and cache miss rates per MaxK versus the full run. *)

val fig3b : ?options:Pipeline.options -> ?slice_minsns:int list -> unit -> Table.t
(** Figure 3(b): slice-size sensitivity at MaxK 35, from one BBV
    collection at 5-Minsn micro-slices re-aggregated per size. *)

val fig4 : Pipeline.bench_result list -> Table.t
(** Figure 4: average within-cluster variance per cluster-count. *)

val fig4_chart : Pipeline.bench_result list -> string
(** ASCII rendering of Figure 4's shape: suite-mean within-cluster
    variance vs cluster count. *)

val fig5 : Pipeline.bench_result list -> Table.t
(** Figure 5: dynamic instruction counts and (modelled) execution times
    of Whole / Regional / Reduced Regional runs, with reduction
    factors. *)

val fig6 : Pipeline.bench_result list -> Table.t
(** Figure 6: simulation-point weight distribution per benchmark with
    the 90th-percentile cut. *)

val fig7 : Pipeline.bench_result list -> Table.t
(** Figure 7: instruction-distribution comparison across run kinds. *)

val fig8 : Pipeline.bench_result list -> Table.t
(** Figure 8: cache miss rates across run kinds including the Warmup
    Regional Run. *)

val fig9 : ?percentiles:int list -> Pipeline.bench_result list -> Table.t
(** Figure 9: suite-average error rates and execution time versus the
    weight percentile of simulation points kept. *)

val fig9_chart : Pipeline.bench_result list -> string
(** ASCII rendering of Figure 9's shape: mix error (rising) and
    execution time (falling) as the kept percentile shrinks. *)

val fig10 : Pipeline.bench_result list -> Table.t
(** Figure 10: L3 access counts, Whole vs Regional vs Reduced. *)

val fig12 : Pipeline.bench_result list -> Table.t
(** Figure 12: CPI — native (perf) vs Sniper on Regional and Reduced
    Regional Pinballs. *)

(** {1 Ablations} (design choices called out in DESIGN.md) *)

val ablation_bic : ?options:Pipeline.options -> ?thresholds:float list -> unit -> Table.t
(** Chosen k versus BIC threshold, on 623.xalancbmk_s. *)

val ablation_projection : ?options:Pipeline.options -> ?dims:int list -> unit -> Table.t
(** Chosen k and n90 versus random-projection dimensionality. *)

val ablation_warmup :
  ?options:Pipeline.options -> ?windows_minsn:int list -> Pipeline.bench_result list -> Table.t
(** Suite-average L3 miss-rate error versus warmup-window length —
    extends Figure 8's single warmup point into a curve.  Re-runs the
    warmup pass per window on a subset of benchmarks. *)

(** {1 Extensions} (related-work methodologies built on the same substrates) *)

val sampling :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  Table.t
(** SimPoint vs SMARTS/SimFlex-style systematic sampling: per-slice CPI
    time series are measured once, then both estimators predict the
    whole-run CPI from their samples — SimPoint with weighted
    representatives, systematic sampling with a uniform design of the
    same budget plus a 95%% confidence interval. *)

val samplers :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  Table.t
(** Sampler-vs-sampler error/cost comparison over the suite (default:
    all 29 Table II workloads): each registered {!Sp_simpoint.Sampler}
    methodology selects points over the same profiled slices, its
    points are replayed cold and warm, and the table reports average
    point count, simulated-instruction budget (measured regions plus
    warmup windows), suite-mean warm CPI error and the signed pooled
    L3 miss-rate error of both replay styles. *)

val smarts :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list ->
  ?period:int -> unit -> Table.t
(** Full SMARTS: functional warming runs continuously (caches and
    branch predictor always updated) while detailed measurement toggles
    on for every [period]-th slice.  Unlike SimPoint's bounded pre-
    region warmup, continuous warming carries the LLC history, so the
    L3 miss-rate error that warmup cannot remove largely disappears —
    at the cost of a full-length (if cheap) functional pass. *)

val vli :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  Table.t
(** Variable-length intervals (Hamerly et al., SimPoint 3.0) vs fixed
    30 M slices: interval counts, chosen k, and weighted instruction-mix
    error of the replayed points under each slicing. *)

val subset : Pipeline.bench_result list -> Table.t * Table.t
(** Benchmark subsetting via PCA + average-linkage hierarchical
    clustering over per-benchmark characterisation vectors (the
    methodology of the paper's refs [22]/[24]/[26]).  Returns the
    explained-variance table and the cluster/representative table. *)

val statcache :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  Table.t
(** Reuse-distance-based statistical cache modelling (refs [34]/[35]):
    predicted LRU miss rates from a whole-run reuse profile vs the
    measured [allcache] rates, per benchmark and cache level. *)

val ablation_roi :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  Table.t
(** Region-of-interest ablation: how many clusters come from the
    initialisation prefix, and what SimPoint finds when profiling is
    restricted to the workload proper (real PinPoints brackets the ROI
    with SSC marks and skips init). *)

val ablation_prefetch :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  Table.t
(** Cold-region LLC error with and without a next-line prefetcher: how
    much of the cold-start artifact simple hardware prefetching would
    hide. *)

val timevary :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  string
(** Time-varying behaviour (the phase plots of Sherwood et al. and the
    paper's ref [7]): per-slice CPI over the course of each benchmark,
    rendered as an ASCII series — the raw phenomenon SimPoint exploits. *)

val cpistack : Pipeline.bench_result list -> Table.t
(** Whole-run cycle breakdown per benchmark (base / branch / memory), a
    Sniper-style CPI stack from the interval model. *)

val models :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list -> unit ->
  Table.t
(** Model independence: the same simulation points predict CPI under
    both the out-of-order interval model and a simple in-order model —
    SimPoint samples code signatures, not timing. *)

val rate :
  ?options:Pipeline.options -> ?specs:Sp_workloads.Benchspec.t list ->
  ?copies:int -> unit -> Table.t
(** SPECrate-style throughput mode: N concurrent copies of a benchmark
    interleaved over private L1/L2 and a shared L3, reporting the
    LLC interference relative to a single copy. *)

(** {1 Headline comparisons for EXPERIMENTS.md} *)

type headline = {
  metric : string;
  paper : string;
  measured : string;
}

val headlines : Pipeline.bench_result list -> headline list
(** The paper's headline claims next to our measured values. *)
