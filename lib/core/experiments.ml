open Sp_util
open Sp_workloads

let pct x = Table.fmt_pct (x *. 100.0)

let mix_cells (m : Sp_pin.Mix.t) =
  [ pct m.no_mem; pct m.mem_r; pct m.mem_w; pct m.mem_rw ]

(* ------------------------------------------------------------------ *)

let table1 () =
  let t =
    Table.create ~title:"Table I: ALLCACHE simulator configuration"
      [ ("Level", Table.Left); ("Configuration", Table.Left) ]
  in
  let h = Sp_cache.Config.allcache_table1 in
  List.iter
    (fun (l : Sp_cache.Config.level) ->
      Table.add_row t
        [ l.name; Format.asprintf "%a" Sp_cache.Config.pp_level l ])
    [ h.l1i; h.l1d; h.l2; h.l3 ];
  t

let table3 () =
  "Table III: system configuration (Sniper model of the native machine)\n"
  ^ Format.asprintf "%a" Sp_cpu.Core_config.pp Sp_cpu.Core_config.i7_3770

let table2 results =
  let t =
    Table.create
      ~title:
        "Table II: SPEC CPU2017 simulation points (measured vs paper; MaxK \
         35, slice 30M)"
      [
        ("Benchmark", Table.Left);
        ("Sim points", Table.Right);
        ("(paper)", Table.Right);
        ("90th-pct points", Table.Right);
        ("(paper)", Table.Right);
      ]
  in
  let totals = ref (0, 0, 0, 0) in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let points = Array.length r.selection.points in
      let n90 = Pipeline.reduced_count r in
      let a, b, c, d = !totals in
      totals :=
        ( a + points,
          b + r.spec.Benchspec.planted_phases,
          c + n90,
          d + r.spec.Benchspec.planted_n90 );
      Table.add_row t
        [
          r.spec.Benchspec.name;
          string_of_int points;
          string_of_int r.spec.Benchspec.planted_phases;
          string_of_int n90;
          string_of_int r.spec.Benchspec.planted_n90;
        ])
    results;
  Table.add_rule t;
  let n = float_of_int (max 1 (List.length results)) in
  let a, b, c, d = !totals in
  Table.add_row t
    [
      "Average";
      Table.fmt_f (float_of_int a /. n);
      Table.fmt_f (float_of_int b /. n);
      Table.fmt_f (float_of_int c /. n);
      Table.fmt_f (float_of_int d /. n);
    ];
  t

let table2_extended ?(options = Pipeline.default_options) () =
  let options = { options with Pipeline.collect_variance = false } in
  let t =
    Table.create
      ~title:
        "Table II extension: simulation points for the 14 CPU2017 workloads \
         the paper left as future work (no reference values exist)"
      [
        ("Benchmark", Table.Left);
        ("Class", Table.Left);
        ("Sim points", Table.Right);
        ("90th-pct points", Table.Right);
        ("Whole insns", Table.Right);
      ]
  in
  (* fourteen independent pipeline runs: compute rows through the
     domain pool (input order preserved), then lay them down in order *)
  Sp_util.Pool.parallel_map ~jobs:options.Pipeline.jobs
    (fun (spec : Benchspec.t) ->
      let r = Pipeline.run_benchmark ~options spec in
      [
        spec.Benchspec.name;
        Benchspec.suite_class_name spec.Benchspec.suite_class;
        string_of_int (Array.length r.Pipeline.selection.points);
        string_of_int (Pipeline.reduced_count r);
        Format.asprintf "%a" Scale.pp_paper_insns
          (Pipeline.paper_insns r r.Pipeline.whole);
      ])
    (Array.of_list Suite.extended)
  |> Array.iter (Table.add_row t);
  t

(* ------------------------------------------------------------------ *)
(* Figure 3: sensitivity sweeps on 623.xalancbmk_s *)

let sweep_row t label (stats : Runstats.run_stats) =
  Table.add_row t
    ([ label ] @ mix_cells stats.mix
    @ [ pct stats.l1d_miss; pct stats.l2_miss; pct stats.l3_miss ])

let sweep_columns =
  [
    ("Run", Table.Left);
    ("NO_MEM", Table.Right);
    ("MEM_R", Table.Right);
    ("MEM_W", Table.Right);
    ("MEM_RW", Table.Right);
    ("L1D miss", Table.Right);
    ("L2 miss", Table.Right);
    ("L3 miss", Table.Right);
  ]

let fig3a ?(options = Pipeline.default_options) ?(max_ks = [ 15; 20; 25; 30; 35 ])
    () =
  let profile = Pipeline.profile_for_sweep ~options (Suite.find "623.xalancbmk_s") in
  let t =
    Table.create
      ~title:
        "Figure 3(a): MaxK sensitivity, 623.xalancbmk_s (slice 30M; weighted \
         Regional statistics vs the full run)"
      sweep_columns
  in
  sweep_row t "Full Run" profile.Pipeline.sweep_whole_stats;
  Table.add_rule t;
  List.iter
    (fun max_k ->
      let config = { options.Pipeline.simpoint_config with max_k } in
      let sel =
        Sp_simpoint.Simpoints.select ~config ~slice_len:options.slice_insns
          profile.Pipeline.sweep_slices
      in
      let points =
        Pipeline.replay_points options profile.Pipeline.sweep_whole
          sel.Sp_simpoint.Simpoints.points
      in
      let stats =
        Runstats.of_points ~label:(Printf.sprintf "MaxK %d" max_k) points
      in
      sweep_row t
        (Printf.sprintf "MaxK %d (k=%d)" max_k sel.Sp_simpoint.Simpoints.chosen_k)
        stats)
    max_ks;
  t

let fig3b ?(options = Pipeline.default_options)
    ?(slice_minsns = [ 15; 25; 30; 50; 100 ]) () =
  let micro = Scale.of_minsn Scale.micro_slice_minsn in
  let profile =
    Pipeline.profile_for_sweep ~options ~slice_insns:micro
      (Suite.find "623.xalancbmk_s")
  in
  let t =
    Table.create
      ~title:
        "Figure 3(b): slice-size sensitivity, 623.xalancbmk_s (MaxK 35; \
         weighted Regional statistics vs the full run)"
      sweep_columns
  in
  sweep_row t "Full Run" profile.Pipeline.sweep_whole_stats;
  Table.add_rule t;
  List.iter
    (fun minsn ->
      let factor = minsn / Scale.micro_slice_minsn in
      let slices =
        Sp_simpoint.Aggregate.merge ~factor profile.Pipeline.sweep_slices
      in
      let sel =
        Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
          ~slice_len:(Scale.of_minsn minsn) slices
      in
      let points =
        Pipeline.replay_points options profile.Pipeline.sweep_whole
          sel.Sp_simpoint.Simpoints.points
      in
      let stats =
        Runstats.of_points ~label:(Printf.sprintf "%dM" minsn) points
      in
      sweep_row t
        (Printf.sprintf "slice %dM (k=%d)" minsn
           sel.Sp_simpoint.Simpoints.chosen_k)
        stats)
    slice_minsns;
  t

(* ------------------------------------------------------------------ *)

let fig4 results =
  let ks =
    match results with
    | [] -> []
    | (r : Pipeline.bench_result) :: _ ->
        List.map (fun (v : Sp_simpoint.Variance.sweep_point) -> v.k) r.variance
  in
  let t =
    Table.create
      ~title:
        "Figure 4: average within-cluster variance vs number of clusters \
         (projected-BBV space, x1000)"
      (("Benchmark", Table.Left)
      :: List.map (fun k -> (Printf.sprintf "k=%d" k, Table.Right)) ks)
  in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      Table.add_row t
        (r.spec.Benchspec.name
        :: List.map
             (fun (v : Sp_simpoint.Variance.sweep_point) ->
               Table.fmt_f ~dec:3 (v.avg_variance *. 1000.0))
             r.variance))
    results;
  t

(* ------------------------------------------------------------------ *)

let fig5 results =
  let t =
    Table.create
      ~title:
        "Figure 5: dynamic instruction count and execution time (paper-scale \
         equivalents via the calibrated rate model)"
      [
        ("Benchmark", Table.Left);
        ("Whole insns", Table.Right);
        ("Regional", Table.Right);
        ("Reduced", Table.Right);
        ("Whole time", Table.Right);
        ("Regional time", Table.Right);
        ("Reduced time", Table.Right);
        ("Insn red.", Table.Right);
        ("Insn red. (90th)", Table.Right);
      ]
  in
  let sum_w = ref 0.0 and sum_r = ref 0.0 and sum_d = ref 0.0 in
  let fmt_insns x = Format.asprintf "%a" Scale.pp_paper_insns x in
  let fmt_time kind x =
    Format.asprintf "%a" Timemodel.pp_duration
      (Timemodel.seconds kind ~paper_insns:x)
  in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let whole = Pipeline.paper_insns r r.whole in
      let reg = Pipeline.paper_insns r (Pipeline.regional r) in
      let red = Pipeline.paper_insns r (Pipeline.reduced r) in
      sum_w := !sum_w +. whole;
      sum_r := !sum_r +. reg;
      sum_d := !sum_d +. red;
      Table.add_row t
        [
          r.spec.Benchspec.name;
          fmt_insns whole;
          fmt_insns reg;
          fmt_insns red;
          fmt_time Timemodel.Whole whole;
          fmt_time Timemodel.Regional reg;
          fmt_time Timemodel.Regional red;
          Table.fmt_x (whole /. reg);
          Table.fmt_x (whole /. red);
        ])
    results;
  Table.add_rule t;
  let time kind x = Timemodel.seconds kind ~paper_insns:x in
  Table.add_row t
    [
      "Suite total";
      fmt_insns !sum_w;
      fmt_insns !sum_r;
      fmt_insns !sum_d;
      fmt_time Timemodel.Whole !sum_w;
      fmt_time Timemodel.Regional !sum_r;
      fmt_time Timemodel.Regional !sum_d;
      Table.fmt_x (!sum_w /. !sum_r);
      Table.fmt_x (!sum_w /. !sum_d);
    ];
  Table.add_row t
    [
      "Time reduction";
      "";
      "";
      "";
      "1.0x";
      Table.fmt_x (time Timemodel.Whole !sum_w /. time Timemodel.Regional !sum_r);
      Table.fmt_x (time Timemodel.Whole !sum_w /. time Timemodel.Regional !sum_d);
      "";
      "";
    ];
  t

(* ------------------------------------------------------------------ *)

let fig6 results =
  let t =
    Table.create
      ~title:
        "Figure 6: simulation-point weights (descending; '|' marks the 90th \
         percentile cut)"
      [
        ("Benchmark", Table.Left);
        ("Points", Table.Right);
        ("n90", Table.Right);
        ("Top-1", Table.Right);
        ("Top-3", Table.Right);
        ("Weights (%)", Table.Left);
      ]
  in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let weights =
        Array.map
          (fun (p : Sp_simpoint.Simpoints.point) -> p.weight)
          r.selection.points
      in
      Array.sort (fun a b -> compare b a) weights;
      let n90 = Pipeline.reduced_count r in
      let cum n =
        let acc = ref 0.0 in
        Array.iteri (fun i w -> if i < n then acc := !acc +. w) weights;
        !acc
      in
      let cells =
        Array.to_list weights
        |> List.mapi (fun i w ->
               let s = Printf.sprintf "%.1f" (w *. 100.0) in
               if i = n90 then "| " ^ s else s)
      in
      let shown, rest =
        if List.length cells > 12 then
          (List.filteri (fun i _ -> i < 12) cells, " ...")
        else (cells, "")
      in
      Table.add_row t
        [
          r.spec.Benchspec.name;
          string_of_int (Array.length weights);
          string_of_int n90;
          pct (cum 1);
          pct (cum 3);
          String.concat " " shown ^ rest;
        ])
    results;
  t

(* ------------------------------------------------------------------ *)

let fig7 results =
  let t =
    Table.create
      ~title:
        "Figure 7: instruction distribution — Whole (W) vs Regional (R) vs \
         Reduced Regional (RR); err = largest class deviation"
      [
        ("Benchmark", Table.Left);
        ("NO_MEM W/R/RR", Table.Left);
        ("MEM_R W/R/RR", Table.Left);
        ("MEM_W W/R/RR", Table.Left);
        ("MEM_RW W/R/RR", Table.Left);
        ("err R", Table.Right);
        ("err RR", Table.Right);
      ]
  in
  let err_reg = ref [] and err_red = ref [] in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let reg = Pipeline.regional r and red = Pipeline.reduced r in
      let cell f =
        Printf.sprintf "%4.1f /%4.1f /%4.1f"
          (f r.whole.Runstats.mix *. 100.0)
          (f reg.Runstats.mix *. 100.0)
          (f red.Runstats.mix *. 100.0)
      in
      let e_reg = Runstats.mix_error_pp ~reference:r.whole reg in
      let e_red = Runstats.mix_error_pp ~reference:r.whole red in
      err_reg := e_reg :: !err_reg;
      err_red := e_red :: !err_red;
      Table.add_row t
        [
          r.spec.Benchspec.name;
          cell (fun m -> m.Sp_pin.Mix.no_mem);
          cell (fun m -> m.Sp_pin.Mix.mem_r);
          cell (fun m -> m.Sp_pin.Mix.mem_w);
          cell (fun m -> m.Sp_pin.Mix.mem_rw);
          Printf.sprintf "%.2fpp" e_reg;
          Printf.sprintf "%.2fpp" e_red;
        ])
    results;
  Table.add_rule t;
  Table.add_row t
    [
      "Average";
      "";
      "";
      "";
      "";
      Printf.sprintf "%.2fpp" (Stats.mean (Array.of_list !err_reg));
      Printf.sprintf "%.2fpp" (Stats.mean (Array.of_list !err_red));
    ];
  t

(* ------------------------------------------------------------------ *)

let signed_err ref x =
  if ref = 0.0 then 0.0 else (x -. ref) /. ref *. 100.0

(* Pooled (suite-as-one-workload) miss rate for one level of one run
   kind: per-benchmark miss/access densities per instruction, averaged
   with equal benchmark weight, then ratioed.  Robust against the
   per-benchmark relative errors that explode when a benchmark's rate
   rides on a handful of accesses. *)
let pooled_rate stats_list ~accesses ~rate =
  let acc_d (s : Runstats.run_stats) =
    if s.Runstats.insns <= 0.0 then 0.0 else accesses s /. s.Runstats.insns
  in
  let miss_d s = rate s *. acc_d s in
  let sum f = Stats.fsum f stats_list in
  let a = sum acc_d in
  if a <= 0.0 then 0.0 else sum miss_d /. a

let pooled_errors whole_list run_list =
  List.map
    (fun (label, accesses, rate) ->
      let w = pooled_rate whole_list ~accesses ~rate in
      let r = pooled_rate run_list ~accesses ~rate in
      (label, signed_err w r))
    [
      ("L1D", (fun (s : Runstats.run_stats) -> s.Runstats.l1d_accesses),
       fun (s : Runstats.run_stats) -> s.Runstats.l1d_miss);
      ("L2", (fun (s : Runstats.run_stats) -> s.Runstats.l2_accesses), fun s -> s.Runstats.l2_miss);
      ("L3", (fun s -> s.Runstats.l3_accesses), fun s -> s.Runstats.l3_miss);
    ]

let fig8 results =
  let t =
    Table.create
      ~title:
        "Figure 8: cache miss rates — Whole (W) / Regional (R) / Reduced \
         (RR) / Warmup Regional (WR)"
      [
        ("Benchmark", Table.Left);
        ("L1D W/R/RR/WR", Table.Left);
        ("L2 W/R/RR/WR", Table.Left);
        ("L3 W/R/RR/WR", Table.Left);
      ]
  in
  let acc = Hashtbl.create 16 in
  let note kind level v =
    let key = (kind, level) in
    Hashtbl.replace acc key (v :: Option.value ~default:[] (Hashtbl.find_opt acc key))
  in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let reg = Pipeline.regional r in
      let red = Pipeline.reduced r in
      let warm = Pipeline.warmup_regional r in
      let cell f =
        Printf.sprintf "%5.2f /%5.2f /%5.2f /%5.2f"
          (f r.whole *. 100.0) (f reg *. 100.0) (f red *. 100.0)
          (f warm *. 100.0)
      in
      let levels =
        [
          ("L1D", fun (s : Runstats.run_stats) -> s.l1d_miss);
          ("L2", fun s -> s.l2_miss);
          ("L3", fun s -> s.l3_miss);
        ]
      in
      List.iter
        (fun (level, f) ->
          note "R" level (signed_err (f r.whole) (f reg));
          note "RR" level (signed_err (f r.whole) (f red));
          note "WR" level (signed_err (f r.whole) (f warm)))
        levels;
      Table.add_row t
        [
          r.spec.Benchspec.name;
          cell (fun s -> s.Runstats.l1d_miss);
          cell (fun s -> s.Runstats.l2_miss);
          cell (fun s -> s.Runstats.l3_miss);
        ])
    results;
  Table.add_rule t;
  let avg kind level =
    match Hashtbl.find_opt acc (kind, level) with
    | Some vs -> Stats.mean (Array.of_list vs)
    | None -> 0.0
  in
  let summary kind =
    Printf.sprintf "L1D %+.2f%%  L2 %+.2f%%  L3 %+.2f%%" (avg kind "L1D")
      (avg kind "L2") (avg kind "L3")
  in
  Table.add_row t [ "Avg err Regional"; summary "R"; ""; "" ];
  Table.add_row t [ "Avg err Reduced"; summary "RR"; ""; "" ];
  Table.add_row t [ "Avg err Warmup"; summary "WR"; ""; "" ];
  (* pooled summaries (suite treated as one workload) *)
  let wholes = List.map (fun (r : Pipeline.bench_result) -> r.whole) results in
  let pooled_row label runs =
    let errs = pooled_errors wholes runs in
    let cells =
      List.map (fun (l, e) -> Printf.sprintf "%s %+.2f%%" l e) errs
    in
    Table.add_row t [ label; String.concat "  " cells; ""; "" ]
  in
  pooled_row "Pooled err Regional" (List.map Pipeline.regional results);
  pooled_row "Pooled err Reduced" (List.map (fun r -> Pipeline.reduced r) results);
  pooled_row "Pooled err Warmup" (List.map Pipeline.warmup_regional results);
  t

(* ------------------------------------------------------------------ *)

let fig9 ?(percentiles = [ 100; 90; 80; 70; 60; 50; 40; 30; 20; 10 ]) results =
  let t =
    Table.create
      ~title:
        "Figure 9: suite error vs percentile of simulation points kept (y1: \
         mix in pp, cache errors pooled over the suite, CPI from warmed \
         replays), with modelled execution time (y2)"
      [
        ("Percentile", Table.Right);
        ("Mix err (pp)", Table.Right);
        ("L1D err", Table.Right);
        ("L2 err", Table.Right);
        ("L3 err", Table.Right);
        ("CPI err", Table.Right);
        ("Avg exec time", Table.Right);
      ]
  in
  let wholes = List.map (fun (r : Pipeline.bench_result) -> r.Pipeline.whole) results in
  List.iter
    (fun p ->
      let coverage = float_of_int p /. 100.0 in
      let cold r =
        if p >= 100 then Pipeline.regional r else Pipeline.reduced ~coverage r
      in
      let warm r =
        if p >= 100 then Pipeline.warmup_regional r
        else Pipeline.reduced_warm ~coverage r
      in
      let mix_err =
        Stats.mean
          (Array.of_list
             (List.map
                (fun r ->
                  Runstats.mix_error_pp ~reference:r.Pipeline.whole (cold r))
                results))
      in
      let cpi_err =
        Stats.mean
          (Array.of_list
             (List.map
                (fun r ->
                  Stats.rel_error_pct ~reference:r.Pipeline.whole.Runstats.cpi
                    (warm r).Runstats.cpi)
                results))
      in
      let pooled = pooled_errors wholes (List.map cold results) in
      let pooled_cell level =
        match List.assoc_opt level pooled with
        | Some e -> Printf.sprintf "%+.1f%%" e
        | None -> "-"
      in
      let secs =
        Stats.mean
          (Array.of_list
             (List.map
                (fun r ->
                  Timemodel.seconds Timemodel.Regional
                    ~paper_insns:(Pipeline.paper_insns r (cold r)))
                results))
      in
      Table.add_row t
        [
          string_of_int p;
          Table.fmt_f mix_err;
          pooled_cell "L1D";
          pooled_cell "L2";
          pooled_cell "L3";
          Table.fmt_pct cpi_err;
          Format.asprintf "%a" Timemodel.pp_duration secs;
        ])
    percentiles;
  t

(* ------------------------------------------------------------------ *)

let fig10 results =
  let t =
    Table.create
      ~title:"Figure 10: L3 cache accesses (simulated counts)"
      [
        ("Benchmark", Table.Left);
        ("Whole", Table.Right);
        ("Regional", Table.Right);
        ("Reduced", Table.Right);
        ("W/R", Table.Right);
        ("W/RR", Table.Right);
      ]
  in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let reg = Pipeline.regional r and red = Pipeline.reduced r in
      let ratio a b = if b = 0.0 then "-" else Table.fmt_x (a /. b) in
      Table.add_row t
        [
          r.spec.Benchspec.name;
          Table.fmt_int (int_of_float r.whole.Runstats.l3_accesses);
          Table.fmt_int (int_of_float reg.Runstats.l3_accesses);
          Table.fmt_int (int_of_float red.Runstats.l3_accesses);
          ratio r.whole.Runstats.l3_accesses reg.Runstats.l3_accesses;
          ratio r.whole.Runstats.l3_accesses red.Runstats.l3_accesses;
        ])
    results;
  t

(* ------------------------------------------------------------------ *)

let fig12 results =
  let natives =
    List.map (fun (r : Pipeline.bench_result) ->
        Sp_perf.Perf_counters.cpi r.native)
      results
  in
  let sniper_cpis =
    List.map (fun r -> (Pipeline.warmup_regional r).Runstats.cpi) results
  in
  let pearson =
    Stats.pearson (Array.of_list natives) (Array.of_list sniper_cpis)
  in
  let t =
    Table.create
      ~title:
        "Figure 12: CPI — native execution (perf) vs Sniper on Regional and \
         Reduced Regional Pinballs"
      [
        ("Benchmark", Table.Left);
        ("Native CPI", Table.Right);
        ("Sniper Regional", Table.Right);
        ("Sniper Reduced", Table.Right);
        ("err Regional", Table.Right);
        ("err Reduced", Table.Right);
      ]
  in
  let e_reg = ref [] and e_red = ref [] in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let native_cpi = Sp_perf.Perf_counters.cpi r.native in
      (* Sniper's PinPoints flow warms before timing each region *)
      let reg = (Pipeline.warmup_regional r).Runstats.cpi in
      let red = (Pipeline.reduced_warm r).Runstats.cpi in
      let er = Stats.rel_error_pct ~reference:native_cpi reg in
      let ed = Stats.rel_error_pct ~reference:native_cpi red in
      e_reg := er :: !e_reg;
      e_red := ed :: !e_red;
      Table.add_row t
        [
          r.spec.Benchspec.name;
          Table.fmt_f native_cpi;
          Table.fmt_f reg;
          Table.fmt_f red;
          Table.fmt_pct er;
          Table.fmt_pct ed;
        ])
    results;
  Table.add_rule t;
  Table.add_row t
    [
      "Average";
      "";
      "";
      "";
      Table.fmt_pct (Stats.mean (Array.of_list !e_reg));
      Table.fmt_pct (Stats.mean (Array.of_list !e_red));
    ];
  Table.add_row t
    [ "Pearson r (native vs Regional)"; Table.fmt_f ~dec:3 pearson; ""; ""; ""; "" ];
  t

(* ------------------------------------------------------------------ *)
(* Ablations *)

let ablation_bic ?(options = Pipeline.default_options)
    ?(thresholds = [ 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ]) () =
  let profile = Pipeline.profile_for_sweep ~options (Suite.find "623.xalancbmk_s") in
  let t =
    Table.create
      ~title:
        "Ablation: BIC threshold vs chosen k (623.xalancbmk_s; paper \
         SimPoint default 0.9, project calibration 0.7)"
      [
        ("Threshold", Table.Right);
        ("Chosen k", Table.Right);
        ("n90", Table.Right);
      ]
  in
  List.iter
    (fun th ->
      let config = { options.Pipeline.simpoint_config with bic_threshold = th } in
      let sel =
        Sp_simpoint.Simpoints.select ~config ~slice_len:options.slice_insns
          profile.Pipeline.sweep_slices
      in
      let n90 =
        Array.length (Sp_simpoint.Simpoints.reduce sel ~coverage:0.9)
      in
      Table.add_row t
        [
          Table.fmt_f th;
          string_of_int sel.Sp_simpoint.Simpoints.chosen_k;
          string_of_int n90;
        ])
    thresholds;
  t

let ablation_projection ?(options = Pipeline.default_options)
    ?(dims = [ 2; 4; 8; 15; 25; 40 ]) () =
  let profile = Pipeline.profile_for_sweep ~options (Suite.find "623.xalancbmk_s") in
  let t =
    Table.create
      ~title:
        "Ablation: random-projection dimensionality vs chosen k \
         (623.xalancbmk_s; SimPoint default 15)"
      [
        ("Dimensions", Table.Right);
        ("Chosen k", Table.Right);
        ("n90", Table.Right);
      ]
  in
  List.iter
    (fun dim ->
      let config = { options.Pipeline.simpoint_config with proj_dim = dim } in
      let sel =
        Sp_simpoint.Simpoints.select ~config ~slice_len:options.slice_insns
          profile.Pipeline.sweep_slices
      in
      let n90 =
        Array.length (Sp_simpoint.Simpoints.reduce sel ~coverage:0.9)
      in
      Table.add_row t
        [
          string_of_int dim;
          string_of_int sel.Sp_simpoint.Simpoints.chosen_k;
          string_of_int n90;
        ])
    dims;
  t

let ablation_warmup ?(options = Pipeline.default_options)
    ?(windows_minsn = [ 0; 50; 125; 250; 500; 1000 ]) results =
  (* re-profile a representative subset (the suite pass does not retain
     whole pinballs) and sweep the warmup window *)
  let subset =
    List.filteri (fun i _ -> i mod 7 = 0) results
    |> List.map (fun (r : Pipeline.bench_result) -> r.spec)
  in
  let t =
    Table.create
      ~title:
        "Ablation: warmup-window length vs suite L3 miss-rate error \
         (signed, vs Whole Run; subset of benchmarks)"
      [
        ("Warmup (Minsn)", Table.Right);
        ("L1D err", Table.Right);
        ("L2 err", Table.Right);
        ("L3 err", Table.Right);
      ]
  in
  let profiles =
    (* one profiling pass per workload, fanned out across the pool *)
    Sp_util.Pool.parallel_map ~jobs:options.Pipeline.jobs
      (fun spec ->
        let p = Pipeline.profile_for_sweep ~options spec in
        let sel =
          Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
            ~slice_len:options.slice_insns p.Pipeline.sweep_slices
        in
        (p, sel))
      (Array.of_list subset)
    |> Array.to_list
  in
  List.iter
    (fun minsn ->
      let errs =
        List.map
          (fun ((p : Pipeline.sweep_profile), sel) ->
            let points =
              Pipeline.warm_replay_points options
                ~warmup_insns:(Scale.of_minsn minsn) p.Pipeline.sweep_whole
                sel.Sp_simpoint.Simpoints.points
            in
            let stats = Runstats.of_points ~label:"warm" points in
            let w = p.Pipeline.sweep_whole_stats in
            ( signed_err w.Runstats.l1d_miss stats.Runstats.l1d_miss,
              signed_err w.Runstats.l2_miss stats.Runstats.l2_miss,
              signed_err w.Runstats.l3_miss stats.Runstats.l3_miss ))
          profiles
      in
      let avg f = Stats.mean (Array.of_list (List.map f errs)) in
      Table.add_row t
        [
          string_of_int minsn;
          Printf.sprintf "%+.2f%%" (avg (fun (a, _, _) -> a));
          Printf.sprintf "%+.2f%%" (avg (fun (_, a, _) -> a));
          Printf.sprintf "%+.2f%%" (avg (fun (_, _, a) -> a));
        ])
    windows_minsn;
  t

(* ------------------------------------------------------------------ *)

type headline = { metric : string; paper : string; measured : string }

let headlines results =
  let mean_of f = Stats.mean (Array.of_list (List.map f results)) in
  let sum_of f = Stats.fsum f results in
  let whole_insns = sum_of (fun r -> Pipeline.paper_insns r r.Pipeline.whole) in
  let reg_insns =
    sum_of (fun r -> Pipeline.paper_insns r (Pipeline.regional r))
  in
  let red_insns =
    sum_of (fun r -> Pipeline.paper_insns r (Pipeline.reduced r))
  in
  let time kind x = Timemodel.seconds kind ~paper_insns:x in
  let avg_points =
    mean_of (fun r -> float_of_int (Array.length r.Pipeline.selection.points))
  in
  let avg_n90 = mean_of (fun r -> float_of_int (Pipeline.reduced_count r)) in
  let mix_err =
    mean_of (fun r ->
        Runstats.mix_error_pp ~reference:r.Pipeline.whole (Pipeline.regional r))
  in
  let l3_err kindf =
    (* pooled over the suite: see fig8 *)
    let wholes = List.map (fun (r : Pipeline.bench_result) -> r.Pipeline.whole) results in
    let runs = List.map kindf results in
    match pooled_errors wholes runs with
    | [ _; _; ("L3", e) ] -> e
    | _ -> assert false
  in
  let cpi_err pick =
    mean_of (fun r ->
        Stats.rel_error_pct
          ~reference:(Sp_perf.Perf_counters.cpi r.Pipeline.native)
          (pick r).Runstats.cpi)
  in
  [
    {
      metric = "Avg simulation points per benchmark";
      paper = "19.75";
      measured = Table.fmt_f avg_points;
    };
    {
      metric = "Avg 90th-percentile simulation points";
      paper = "11.31";
      measured = Table.fmt_f avg_n90;
    };
    {
      metric = "Instruction reduction, Whole -> Regional";
      paper = "~650x";
      measured = Table.fmt_x (whole_insns /. reg_insns);
    };
    {
      metric = "Time reduction, Whole -> Regional";
      paper = "~750x";
      measured =
        Table.fmt_x
          (time Timemodel.Whole whole_insns /. time Timemodel.Regional reg_insns);
    };
    {
      metric = "Instruction reduction, Whole -> Reduced Regional";
      paper = "~1225x";
      measured = Table.fmt_x (whole_insns /. red_insns);
    };
    {
      metric = "Time reduction, Whole -> Reduced Regional";
      paper = "~1297x";
      measured =
        Table.fmt_x
          (time Timemodel.Whole whole_insns /. time Timemodel.Regional red_insns);
    };
    {
      metric = "Instruction-distribution error, Regional (largest class)";
      paper = "<1%";
      measured = Printf.sprintf "%.2fpp" mix_err;
    };
    {
      metric = "L3 miss-rate error, Regional (pooled)";
      paper = "+25.16%";
      measured = Printf.sprintf "%+.2f%%" (l3_err Pipeline.regional);
    };
    {
      metric = "L3 miss-rate error, Warmup Regional (pooled)";
      paper = "+9.08%";
      measured = Printf.sprintf "%+.2f%%" (l3_err Pipeline.warmup_regional);
    };
    {
      metric = "Avg CPI error, native vs Sniper Regional";
      paper = "2.59%";
      measured = Table.fmt_pct (cpi_err Pipeline.warmup_regional);
    };
    {
      metric = "Avg CPI deviation, Reduced Regional";
      paper = "13.9%";
      measured = Table.fmt_pct (cpi_err (fun r -> Pipeline.reduced_warm r));
    };
  ]

(* ------------------------------------------------------------------ *)
(* Extensions: related-work methodologies on the same substrates *)

let default_extension_specs () =
  List.map Suite.find
    [
      "505.mcf_r"; "641.leela_s"; "623.xalancbmk_s"; "519.lbm_r";
      "648.exchange2_s"; "503.bwaves_r";
    ]

let sampling ?(options = Pipeline.default_options) ?specs () =
  let specs =
    match specs with Some s -> s | None -> default_extension_specs ()
  in
  let t =
    Table.create
      ~title:
        "Extension: SimPoint vs systematic (SMARTS/SimFlex-style) sampling \
         of per-slice CPI"
      [
        ("Benchmark", Table.Left);
        ("Whole CPI", Table.Right);
        ("SP points", Table.Right);
        ("SP est", Table.Right);
        ("SP err", Table.Right);
        ("SYS n", Table.Right);
        ("SYS est +- CI95", Table.Right);
        ("SYS err", Table.Right);
      ]
  in
  List.iter
    (fun (spec : Benchspec.t) ->
      let built =
        Benchspec.build ~slice_insns:options.Pipeline.slice_insns
          ~slices_scale:options.Pipeline.slices_scale spec
      in
      let prog = built.Benchspec.program in
      (* one instrumented pass: BBVs + per-slice CPI series *)
      let bbv =
        Sp_pin.Bbv_tool.create ~slice_len:options.Pipeline.slice_insns prog
      in
      let core =
        Sp_cpu.Interval_core.create ~config:options.Pipeline.core_config prog
      in
      let timer =
        Sp_cpu.Slice_timer.create ~slice_len:options.Pipeline.slice_insns core
      in
      ignore
        (Sp_pin.Pin.run_fresh
           ~tools:
             [
               Sp_pin.Bbv_tool.hooks bbv;
               Sp_cpu.Interval_core.hooks core;
               Sp_cpu.Slice_timer.hooks timer;
             ]
           prog);
      Sp_pin.Bbv_tool.finish bbv;
      Sp_cpu.Slice_timer.finish timer;
      let cpis = Sp_cpu.Slice_timer.slice_cpis timer in
      let whole_cpi = Sp_cpu.Interval_core.cpi core in
      (* SimPoint estimator *)
      let sel =
        Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
          ~slice_len:options.Pipeline.slice_insns
          (Sp_pin.Bbv_tool.slices bbv)
      in
      let sp_est =
        Array.fold_left
          (fun acc (p : Sp_simpoint.Simpoints.point) ->
            let i = min p.slice_index (Array.length cpis - 1) in
            acc +. (p.weight *. cpis.(i)))
          0.0 sel.Sp_simpoint.Simpoints.points
      in
      let n_points = Array.length sel.Sp_simpoint.Simpoints.points in
      (* systematic estimator with the same measurement budget *)
      let design =
        Sp_simpoint.Systematic.design_for_budget
          ~num_slices:(Array.length cpis) ~budget:n_points
      in
      let idx =
        Sp_simpoint.Systematic.sample_indices design
          ~num_slices:(Array.length cpis)
      in
      let est =
        Sp_simpoint.Systematic.estimate (Array.map (fun i -> cpis.(i)) idx)
      in
      Table.add_row t
        [
          spec.Benchspec.name;
          Table.fmt_f ~dec:3 whole_cpi;
          string_of_int n_points;
          Table.fmt_f ~dec:3 sp_est;
          Table.fmt_pct (Stats.rel_error_pct ~reference:whole_cpi sp_est);
          string_of_int est.Sp_simpoint.Systematic.samples;
          Printf.sprintf "%.3f +- %.3f" est.Sp_simpoint.Systematic.mean
            est.Sp_simpoint.Systematic.ci95_half;
          Table.fmt_pct
            (Stats.rel_error_pct ~reference:whole_cpi
               est.Sp_simpoint.Systematic.mean);
        ])
    specs;
  t

let benchmark_features (r : Pipeline.bench_result) =
  let w = r.Pipeline.whole in
  let native = r.Pipeline.native in
  let branch_miss_rate =
    if native.Sp_perf.Perf_counters.branch_instructions = 0 then 0.0
    else
      float_of_int native.Sp_perf.Perf_counters.branch_misses
      /. float_of_int native.Sp_perf.Perf_counters.branch_instructions
  in
  [|
    w.Runstats.mix.Sp_pin.Mix.no_mem;
    w.Runstats.mix.Sp_pin.Mix.mem_r;
    w.Runstats.mix.Sp_pin.Mix.mem_w;
    w.Runstats.l1d_miss;
    w.Runstats.l2_miss;
    w.Runstats.l3_miss;
    w.Runstats.l3_accesses /. Float.max 1.0 w.Runstats.insns;
    w.Runstats.cpi;
    branch_miss_rate;
  |]

let feature_names =
  [
    "NO_MEM"; "MEM_R"; "MEM_W"; "L1D miss"; "L2 miss"; "L3 miss";
    "L3 acc/insn"; "CPI"; "branch miss";
  ]

let subset results =
  let data = Array.of_list (List.map benchmark_features results) in
  let names =
    Array.of_list
      (List.map (fun (r : Pipeline.bench_result) -> r.spec.Benchspec.name) results)
  in
  let pca = Sp_simpoint.Pca.fit ~components:4 data in
  let var_table =
    Table.create
      ~title:
        "Extension: PCA over per-benchmark characterisation vectors \
         (explained variance)"
      [
        ("Component", Table.Left);
        ("Eigenvalue", Table.Right);
        ("Explained", Table.Right);
        ("Cumulative", Table.Right);
        ("Top loadings", Table.Left);
      ]
  in
  let cum = ref 0.0 in
  Array.iteri
    (fun i ev ->
      cum := !cum +. pca.Sp_simpoint.Pca.explained.(i);
      let loadings =
        List.mapi (fun j name -> (Float.abs pca.Sp_simpoint.Pca.components.(i).(j), name))
          feature_names
        |> List.sort (fun (a, _) (b, _) -> compare b a)
        |> fun l -> List.filteri (fun i _ -> i < 3) l
        |> List.map snd |> String.concat ", "
      in
      Table.add_row var_table
        [
          Printf.sprintf "PC%d" (i + 1);
          Table.fmt_f ev;
          pct pca.Sp_simpoint.Pca.explained.(i);
          pct !cum;
          loadings;
        ])
    pca.Sp_simpoint.Pca.eigenvalues;
  let k = min 6 (Array.length data) in
  let steps = Sp_simpoint.Hcluster.linkage pca.Sp_simpoint.Pca.scores in
  let assignment =
    Sp_simpoint.Hcluster.cut ~n:(Array.length data) steps ~k
  in
  let reps = Sp_simpoint.Hcluster.medoids pca.Sp_simpoint.Pca.scores assignment in
  let cl_table =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: benchmark subsets (average-linkage clustering in PCA \
            space, k=%d); the representative stands in for its cluster"
           k)
      [
        ("Subset", Table.Right);
        ("Representative", Table.Left);
        ("Members", Table.Left);
      ]
  in
  for c = 0 to k - 1 do
    let members =
      List.filteri (fun i _ -> assignment.(i) = c) (Array.to_list names)
    in
    Table.add_row cl_table
      [
        string_of_int (c + 1);
        names.(reps.(c));
        String.concat ", " members;
      ]
  done;
  (var_table, cl_table)

let statcache ?(options = Pipeline.default_options) ?specs () =
  let specs =
    match specs with Some s -> s | None -> default_extension_specs ()
  in
  let line_bytes = options.Pipeline.cache_config.Sp_cache.Config.l2.line_bytes in
  let l2_lines = Sp_cache.Config.num_lines options.Pipeline.cache_config.l2 in
  let l3_lines = Sp_cache.Config.num_lines options.Pipeline.cache_config.l3 in
  let t =
    Table.create
      ~title:
        "Extension: StatCache-style miss-rate prediction from a reuse-\
         distance profile vs measured allcache rates (whole runs; L1-\
         filterless fully-associative LRU model)"
      [
        ("Benchmark", Table.Left);
        ("Accesses", Table.Right);
        ("Cold", Table.Right);
        ("Pred L2-size", Table.Right);
        ("Meas L2 MPKA", Table.Right);
        ("Pred L3-size", Table.Right);
        ("Meas L3 MPKA", Table.Right);
      ]
  in
  List.iter
    (fun (spec : Benchspec.t) ->
      let built =
        Benchspec.build ~slice_insns:options.Pipeline.slice_insns
          ~slices_scale:options.Pipeline.slices_scale spec
      in
      let prog = built.Benchspec.program in
      let reuse = Sp_cache.Reuse.create ~line_bytes () in
      let cache =
        Sp_pin.Allcache_tool.create ~config:options.Pipeline.cache_config prog
      in
      ignore
        (Sp_pin.Pin.run_fresh
           ~tools:[ Sp_cache.Reuse.hooks_of reuse; Sp_pin.Allcache_tool.hooks cache ]
           prog);
      let stats = Sp_pin.Allcache_tool.stats cache in
      (* compare misses-per-1000-data-accesses: the reuse model predicts
         misses of a cache of that capacity over the raw access stream,
         which corresponds to (level misses / L1 accesses) measured *)
      let mpka_meas (level : Sp_cache.Hierarchy.level_stats) =
        1000.0 *. float_of_int level.misses
        /. Float.max 1.0 (float_of_int stats.Sp_cache.Hierarchy.l1d.accesses)
      in
      let mpka_pred lines =
        1000.0 *. Sp_cache.Reuse.miss_rate_estimate reuse ~cache_lines:lines
      in
      Table.add_row t
        [
          spec.Benchspec.name;
          Table.fmt_int (Sp_cache.Reuse.total reuse);
          Table.fmt_int (Sp_cache.Reuse.cold reuse);
          Table.fmt_f (mpka_pred l2_lines);
          Table.fmt_f (mpka_meas stats.Sp_cache.Hierarchy.l2);
          Table.fmt_f (mpka_pred l3_lines);
          Table.fmt_f (mpka_meas stats.Sp_cache.Hierarchy.l3);
        ])
    specs;
  t

let ablation_prefetch ?(options = Pipeline.default_options) ?specs () =
  let specs =
    match specs with
    | Some s -> s
    | None -> List.map Suite.find [ "505.mcf_r"; "519.lbm_r"; "623.xalancbmk_s"; "525.x264_r" ]
  in
  let t =
    Table.create
      ~title:
        "Ablation: next-line prefetching vs cold-region LLC error (signed \
         L2/L3 miss-rate error of cold Regional runs vs Whole)"
      [
        ("Benchmark", Table.Left);
        ("L2 err (no PF)", Table.Right);
        ("L2 err (PF)", Table.Right);
        ("L3 err (no PF)", Table.Right);
        ("L3 err (PF)", Table.Right);
      ]
  in
  List.iter
    (fun (spec : Benchspec.t) ->
      let profile = Pipeline.profile_for_sweep ~options spec in
      let sel =
        Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
          ~slice_len:options.Pipeline.slice_insns profile.Pipeline.sweep_slices
      in
      let run prefetch =
        let opts = { options with Pipeline.next_line_prefetch = prefetch } in
        Runstats.of_points ~label:"regional"
          (Pipeline.replay_points opts profile.Pipeline.sweep_whole
             sel.Sp_simpoint.Simpoints.points)
      in
      let whole = profile.Pipeline.sweep_whole_stats in
      let off = run false and on = run true in
      let err get s = Printf.sprintf "%+.1f%%" (signed_err (get whole) (get s)) in
      Table.add_row t
        [
          spec.Benchspec.name;
          err (fun (s : Runstats.run_stats) -> s.Runstats.l2_miss) off;
          err (fun s -> s.Runstats.l2_miss) on;
          err (fun s -> s.Runstats.l3_miss) off;
          err (fun s -> s.Runstats.l3_miss) on;
        ])
    specs;
  t

(* ------------------------------------------------------------------ *)

let cpistack results =
  let t =
    Table.create
      ~title:"Extension: whole-run CPI stacks (interval model, Table III)"
      [
        ("Benchmark", Table.Left);
        ("CPI", Table.Right);
        ("Base", Table.Right);
        ("Branch", Table.Right);
        ("Memory", Table.Right);
        ("Mispredict/ki", Table.Right);
      ]
  in
  List.iter
    (fun (r : Pipeline.bench_result) ->
      let s = r.Pipeline.whole_core in
      let total = Float.max 1e-9 s.Sp_cpu.Interval_core.cycles in
      let share x = pct (x /. total) in
      let mpki =
        1000.0
        *. float_of_int s.Sp_cpu.Interval_core.branch_mispredicts
        /. Float.max 1.0 (float_of_int s.Sp_cpu.Interval_core.instructions)
      in
      Table.add_row t
        [
          r.spec.Benchspec.name;
          Table.fmt_f ~dec:3 r.Pipeline.whole.Runstats.cpi;
          share s.Sp_cpu.Interval_core.base_cycles;
          share s.Sp_cpu.Interval_core.branch_stall_cycles;
          share s.Sp_cpu.Interval_core.memory_stall_cycles;
          Table.fmt_f mpki;
        ])
    results;
  t

(* a warm scan over an arbitrary timing model (used by [models]) *)
let warm_cpis_with options ~fresh ~hooks ~set_warming ~reset_state ~cpi whole
    points =
  let model = fresh () in
  let model_hooks = hooks model in
  let acc = ref [] in
  let warmup =
    {
      Sp_pinball.Logger.length = options.Pipeline.warmup_insns;
      hooks = model_hooks;
      on_start =
        (fun () ->
          reset_state model;
          set_warming model true);
    }
  in
  Sp_pinball.Logger.scan_regions ~warmup whole points (fun pb ->
      set_warming model false;
      let r = Sp_pinball.Replayer.replay ~tools:[ model_hooks ] pb in
      let weight =
        match pb.Sp_pinball.Pinball.kind with
        | Sp_pinball.Pinball.Region x -> x.weight
        | Sp_pinball.Pinball.Whole -> 1.0
      in
      ignore r;
      acc := (weight, cpi model) :: !acc);
  List.rev !acc

let models ?(options = Pipeline.default_options) ?specs () =
  let specs =
    match specs with
    | Some s -> s
    | None ->
        List.map Suite.find
          [ "505.mcf_r"; "641.leela_s"; "519.lbm_r"; "648.exchange2_s" ]
  in
  let t =
    Table.create
      ~title:
        "Extension: model independence — the same simulation points predict \
         CPI under out-of-order and in-order timing models (warmed replays)"
      [
        ("Benchmark", Table.Left);
        ("OoO whole", Table.Right);
        ("OoO SimPoint", Table.Right);
        ("OoO err", Table.Right);
        ("InO whole", Table.Right);
        ("InO SimPoint", Table.Right);
        ("InO err", Table.Right);
      ]
  in
  List.iter
    (fun (spec : Benchspec.t) ->
      let profile = Pipeline.profile_for_sweep ~options spec in
      let prog = profile.Pipeline.sweep_built.Benchspec.program in
      let sel =
        Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
          ~slice_len:options.Pipeline.slice_insns profile.Pipeline.sweep_slices
      in
      let points = sel.Sp_simpoint.Simpoints.points in
      let whole_of hooks cpi =
        let m = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
        ignore (Sp_vm.Interp.run ~hooks prog m);
        cpi ()
      in
      (* out-of-order *)
      let ooo_core = Sp_cpu.Interval_core.create ~config:options.core_config prog in
      let ooo_whole =
        whole_of (Sp_cpu.Interval_core.hooks ooo_core) (fun () ->
            Sp_cpu.Interval_core.cpi ooo_core)
      in
      let ooo_points =
        warm_cpis_with options
          ~fresh:(fun () ->
            Sp_cpu.Interval_core.create ~config:options.core_config prog)
          ~hooks:Sp_cpu.Interval_core.hooks
          ~set_warming:Sp_cpu.Interval_core.set_warming
          ~reset_state:Sp_cpu.Interval_core.reset_state
          ~cpi:Sp_cpu.Interval_core.cpi profile.Pipeline.sweep_whole points
      in
      (* in-order *)
      let ino_core = Sp_cpu.Inorder_core.create ~config:options.core_config prog in
      let ino_whole =
        whole_of (Sp_cpu.Inorder_core.hooks ino_core) (fun () ->
            Sp_cpu.Inorder_core.cpi ino_core)
      in
      let ino_points =
        warm_cpis_with options
          ~fresh:(fun () ->
            Sp_cpu.Inorder_core.create ~config:options.core_config prog)
          ~hooks:Sp_cpu.Inorder_core.hooks
          ~set_warming:Sp_cpu.Inorder_core.set_warming
          ~reset_state:Sp_cpu.Inorder_core.reset_state
          ~cpi:Sp_cpu.Inorder_core.cpi profile.Pipeline.sweep_whole points
      in
      let weighted pts =
        let wsum = Stats.fsum fst pts in
        Stats.fsum (fun (w, c) -> w *. c) pts /. Float.max 1e-9 wsum
      in
      let ooo_est = weighted ooo_points and ino_est = weighted ino_points in
      Table.add_row t
        [
          spec.Benchspec.name;
          Table.fmt_f ~dec:3 ooo_whole;
          Table.fmt_f ~dec:3 ooo_est;
          Table.fmt_pct (Stats.rel_error_pct ~reference:ooo_whole ooo_est);
          Table.fmt_f ~dec:3 ino_whole;
          Table.fmt_f ~dec:3 ino_est;
          Table.fmt_pct (Stats.rel_error_pct ~reference:ino_whole ino_est);
        ])
    specs;
  t

let rate ?(options = Pipeline.default_options) ?specs ?(copies = 4) () =
  let specs =
    match specs with
    | Some s -> s
    | None -> List.map Suite.find [ "505.mcf_r"; "519.lbm_r"; "541.leela_r" ]
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: SPECrate throughput mode — %d concurrent copies over \
            a shared L3 vs a single copy (steady-state window after a 1.5 M-\
            instruction warm phase per copy)"
           copies)
      [
        ("Benchmark", Table.Left);
        ("L3 APKI (1 copy)", Table.Right);
        ("L3 miss (1 copy)", Table.Right);
        ("L3 APKI (N)", Table.Right);
        ("L3 miss (N)", Table.Right);
        ("Miss-rate delta", Table.Right);
      ]
  in
  let warm_fuel = 1_500_000 and fuel = 3_500_000 in
  List.iter
    (fun (spec : Benchspec.t) ->
      let built =
        Benchspec.build ~slice_insns:options.Pipeline.slice_insns
          ~slices_scale:options.Pipeline.slices_scale spec
      in
      let prog = built.Benchspec.program in
      let run n =
        let shared =
          Sp_cache.Shared_hierarchy.create ~cores:n options.Pipeline.cache_config
        in
        let mk core =
          ( prog,
            {
              Sp_vm.Hooks.nil with
              on_read = (fun a -> Sp_cache.Shared_hierarchy.read shared ~core a);
              on_write = (fun a -> Sp_cache.Shared_hierarchy.write shared ~core a);
            } )
        in
        let mc = Sp_vm.Multicore.create (List.init n mk) in
        (* warm phase: populate the caches, then measure steady state *)
        Sp_vm.Multicore.run ~quantum:1000 ~fuel:warm_fuel mc;
        Sp_cache.Shared_hierarchy.reset_stats shared;
        Sp_vm.Multicore.run ~quantum:1000 ~fuel mc;
        let insns =
          float_of_int ((Sp_vm.Multicore.retired mc).(0) - warm_fuel)
        in
        let s = Sp_cache.Shared_hierarchy.core_stats shared 0 in
        let apki =
          1000.0 *. float_of_int s.Sp_cache.Shared_hierarchy.l3_accesses /. insns
        in
        let miss_rate =
          if s.Sp_cache.Shared_hierarchy.l3_accesses = 0 then 0.0
          else
            float_of_int s.Sp_cache.Shared_hierarchy.l3_misses
            /. float_of_int s.Sp_cache.Shared_hierarchy.l3_accesses
        in
        (apki, miss_rate)
      in
      let apki1, miss1 = run 1 in
      let apkin, missn = run copies in
      Table.add_row t
        [
          spec.Benchspec.name;
          Table.fmt_f apki1;
          pct miss1;
          Table.fmt_f apkin;
          pct missn;
          Printf.sprintf "%+.1fpp" ((missn -. miss1) *. 100.0);
        ])
    specs;
  t

(* ------------------------------------------------------------------ *)
(* ASCII figure shapes *)

let fig4_chart results =
  match results with
  | [] -> ""
  | first :: _ ->
      let ks =
        List.map (fun (v : Sp_simpoint.Variance.sweep_point) -> v.k)
          first.Pipeline.variance
      in
      let mean_at i =
        Stats.mean
          (Array.of_list
             (List.filter_map
                (fun (r : Pipeline.bench_result) ->
                  List.nth_opt r.Pipeline.variance i
                  |> Option.map (fun (v : Sp_simpoint.Variance.sweep_point) ->
                         v.avg_variance))
                results))
      in
      let values = Array.of_list (List.mapi (fun i _ -> mean_at i) ks) in
      "Figure 4 shape (suite-mean within-cluster variance vs k="
      ^ String.concat "," (List.map string_of_int ks)
      ^ "):\n"
      ^ Chart.series ~height:10 ~width:56 ~labels:[ "avg variance" ] [ values ]

let fig9_chart results =
  let percentiles = [ 100; 90; 80; 70; 60; 50; 40; 30; 20; 10 ] in
  let mix_errs, times =
    List.map
      (fun p ->
        let coverage = float_of_int p /. 100.0 in
        let cold r =
          if p >= 100 then Pipeline.regional r else Pipeline.reduced ~coverage r
        in
        let mix =
          Stats.mean
            (Array.of_list
               (List.map
                  (fun r ->
                    Runstats.mix_error_pp ~reference:r.Pipeline.whole (cold r))
                  results))
        in
        let time =
          Stats.mean
            (Array.of_list
               (List.map
                  (fun r ->
                    Timemodel.seconds Timemodel.Regional
                      ~paper_insns:(Pipeline.paper_insns r (cold r)))
                  results))
        in
        (mix, time))
      percentiles
    |> List.split
  in
  "Figure 9 shape (x: percentile 100 -> 10; errors rise as execution time \
   falls):\n"
  ^ Chart.series ~height:10 ~width:56
      ~labels:[ "mix err (pp)"; "exec time (norm)" ]
      [
        Array.of_list mix_errs;
        (let t = Array.of_list times in
         let m = Array.fold_left Float.max 1e-9 t in
         let e = Array.fold_left Float.max 1e-9 (Array.of_list mix_errs) in
         Array.map (fun x -> x /. m *. e) t);
      ]

let ablation_roi ?(options = Pipeline.default_options) ?specs () =
  let specs =
    match specs with
    | Some s -> s
    | None ->
        List.map Suite.find
          [ "505.mcf_r"; "620.omnetpp_s"; "641.leela_s"; "557.xz_r"; "519.lbm_r" ]
  in
  let t =
    Table.create
      ~title:
        "Ablation: region-of-interest profiling — clusters found over the \
         whole run vs the ROI only (initialisation excluded)"
      [
        ("Benchmark", Table.Left);
        ("Init share", Table.Right);
        ("k (whole)", Table.Right);
        ("n90 (whole)", Table.Right);
        ("k (ROI)", Table.Right);
        ("n90 (ROI)", Table.Right);
      ]
  in
  List.iter
    (fun (spec : Benchspec.t) ->
      let built =
        Benchspec.build ~slice_insns:options.Pipeline.slice_insns
          ~slices_scale:options.Pipeline.slices_scale spec
      in
      let prog = built.Benchspec.program in
      let bbv =
        Sp_pin.Bbv_tool.create ~slice_len:options.Pipeline.slice_insns prog
      in
      let roi = Sp_pin.Roi_tool.create ~target_pc:built.Benchspec.roi_start_pc in
      let run =
        Sp_pin.Pin.run_fresh
          ~tools:[ Sp_pin.Bbv_tool.hooks bbv; Sp_pin.Roi_tool.hooks roi ]
          prog
      in
      Sp_pin.Bbv_tool.finish bbv;
      let slices = Sp_pin.Bbv_tool.slices bbv in
      let init_insns =
        Option.value ~default:0 (Sp_pin.Roi_tool.reached_at roi)
      in
      let select sl =
        let s =
          Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
            ~slice_len:options.Pipeline.slice_insns sl
        in
        ( s.Sp_simpoint.Simpoints.chosen_k,
          Array.length (Sp_simpoint.Simpoints.reduce s ~coverage:0.9) )
      in
      let k_whole, n90_whole = select slices in
      let roi_slices =
        Array.of_list
          (List.filter
             (fun (s : Sp_pin.Bbv_tool.slice) ->
               s.Sp_pin.Bbv_tool.start_icount >= init_insns)
             (Array.to_list slices))
      in
      let k_roi, n90_roi = select roi_slices in
      Table.add_row t
        [
          spec.Benchspec.name;
          pct (float_of_int init_insns /. float_of_int run.Sp_pin.Pin.retired);
          string_of_int k_whole;
          string_of_int n90_whole;
          string_of_int k_roi;
          string_of_int n90_roi;
        ])
    specs;
  t

(* ------------------------------------------------------------------ *)

let timevary ?(options = Pipeline.default_options) ?specs () =
  let specs =
    match specs with
    | Some s -> s
    | None -> List.map Suite.find [ "620.omnetpp_s"; "505.mcf_r" ]
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (spec : Benchspec.t) ->
      let built =
        Benchspec.build ~slice_insns:options.Pipeline.slice_insns
          ~slices_scale:options.Pipeline.slices_scale spec
      in
      let prog = built.Benchspec.program in
      let core =
        Sp_cpu.Interval_core.create ~config:options.Pipeline.core_config prog
      in
      let timer =
        Sp_cpu.Slice_timer.create ~slice_len:options.Pipeline.slice_insns core
      in
      ignore
        (Sp_pin.Pin.run_fresh
           ~tools:[ Sp_cpu.Interval_core.hooks core; Sp_cpu.Slice_timer.hooks timer ]
           prog);
      Sp_cpu.Slice_timer.finish timer;
      let cpis = Sp_cpu.Slice_timer.slice_cpis timer in
      Buffer.add_string buf
        (Printf.sprintf
           "Time-varying behaviour of %s (per-slice CPI over %d slices):\n"
           spec.Benchspec.name (Array.length cpis));
      Buffer.add_string buf
        (Chart.series ~height:10 ~width:72 ~labels:[ "CPI per slice" ] [ cpis ]);
      Buffer.add_char buf '\n')
    specs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)

let smarts ?(options = Pipeline.default_options) ?specs ?(period = 30) () =
  let specs =
    match specs with Some s -> s | None -> default_extension_specs ()
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Extension: full SMARTS (continuous functional warming, detailed \
            measurement every %d-th slice) vs whole-run truth"
           period)
      [
        ("Benchmark", Table.Left);
        ("Whole CPI", Table.Right);
        ("SMARTS CPI", Table.Right);
        ("CPI err", Table.Right);
        ("Whole L3", Table.Right);
        ("SMARTS L3", Table.Right);
        ("Detailed insns", Table.Right);
      ]
  in
  List.iter
    (fun (spec : Benchspec.t) ->
      let built =
        Benchspec.build ~slice_insns:options.Pipeline.slice_insns
          ~slices_scale:options.Pipeline.slices_scale spec
      in
      let prog = built.Benchspec.program in
      (* ground truth *)
      let truth_core =
        Sp_cpu.Interval_core.create ~config:options.Pipeline.core_config prog
      in
      let truth_cache =
        Sp_pin.Allcache_tool.create ~config:options.Pipeline.cache_config prog
      in
      ignore
        (Sp_pin.Pin.run_fresh
           ~tools:
             [ Sp_cpu.Interval_core.hooks truth_core;
               Sp_pin.Allcache_tool.hooks truth_cache ]
           prog);
      (* SMARTS pass: same tools, but warming toggles per slice *)
      let core =
        Sp_cpu.Interval_core.create ~config:options.Pipeline.core_config prog
      in
      let cache =
        Sp_pin.Allcache_tool.create ~config:options.Pipeline.cache_config prog
      in
      let slice_len = options.Pipeline.slice_insns in
      let count = ref 0 and slice = ref 0 in
      let set_warm w =
        Sp_cpu.Interval_core.set_warming core w;
        Sp_pin.Allcache_tool.set_warming cache w
      in
      set_warm true;
      let toggler =
        {
          Sp_vm.Hooks.nil with
          on_instr =
            (fun _ _ ->
              incr count;
              if !count >= slice_len then begin
                count := 0;
                incr slice;
                (* measure the first slice of every period *)
                set_warm (not (!slice mod period = 0))
              end);
        }
      in
      ignore
        (Sp_pin.Pin.run_fresh
           ~tools:
             [ toggler; Sp_cpu.Interval_core.hooks core;
               Sp_pin.Allcache_tool.hooks cache ]
           prog);
      let whole_cpi = Sp_cpu.Interval_core.cpi truth_core in
      let smarts_cpi = Sp_cpu.Interval_core.cpi core in
      let l3 (tool : Sp_pin.Allcache_tool.t) =
        (Sp_pin.Allcache_tool.stats tool).Sp_cache.Hierarchy.l3.miss_rate
      in
      Table.add_row t
        [
          spec.Benchspec.name;
          Table.fmt_f ~dec:3 whole_cpi;
          Table.fmt_f ~dec:3 smarts_cpi;
          Table.fmt_pct (Stats.rel_error_pct ~reference:whole_cpi smarts_cpi);
          pct (l3 truth_cache);
          pct (l3 cache);
          Table.fmt_int (Sp_cpu.Interval_core.instructions core);
        ])
    specs;
  t

(* ------------------------------------------------------------------ *)

let vli ?(options = Pipeline.default_options) ?specs () =
  let specs =
    match specs with
    | Some s -> s
    | None ->
        List.map Suite.find [ "620.omnetpp_s"; "505.mcf_r"; "641.leela_s" ]
  in
  let micro = Scale.of_minsn Scale.micro_slice_minsn in
  let t =
    Table.create
      ~title:
        "Extension: variable-length intervals (SimPoint 3.0) vs fixed 30M \
         slices — interval counts, points, and Regional mix error"
      [
        ("Benchmark", Table.Left);
        ("Fixed slices", Table.Right);
        ("Fixed k", Table.Right);
        ("Fixed mix err", Table.Right);
        ("VLI intervals", Table.Right);
        ("VLI k", Table.Right);
        ("VLI mix err", Table.Right);
        ("Avg VLI len (M)", Table.Right);
      ]
  in
  List.iter
    (fun (spec : Benchspec.t) ->
      let profile = Pipeline.profile_for_sweep ~options ~slice_insns:micro spec in
      let micro_slices = profile.Pipeline.sweep_slices in
      let whole = profile.Pipeline.sweep_whole_stats in
      let mix_err_of points =
        let stats =
          Runstats.of_points ~label:"r"
            (Pipeline.replay_points options profile.Pipeline.sweep_whole points)
        in
        Runstats.mix_error_pp ~reference:whole stats
      in
      (* fixed 30M slices from the same micro collection *)
      let fixed_slices =
        Sp_simpoint.Aggregate.merge
          ~factor:(Scale.default_slice_minsn / Scale.micro_slice_minsn)
          micro_slices
      in
      let fixed_sel =
        Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
          ~slice_len:options.Pipeline.slice_insns fixed_slices
      in
      (* variable-length intervals capped at 4x the fixed slice *)
      let max_len = 4 * options.Pipeline.slice_insns in
      let intervals = Sp_simpoint.Vli.segment ~max_len micro_slices in
      let vli_sel =
        Sp_simpoint.Vli.select ~config:options.Pipeline.simpoint_config
          ~max_len ~micro_len:micro micro_slices
      in
      let avg_len =
        Stats.mean
          (Array.map
             (fun (s : Sp_pin.Bbv_tool.slice) -> float_of_int s.Sp_pin.Bbv_tool.length)
             intervals)
      in
      Table.add_row t
        [
          spec.Benchspec.name;
          string_of_int (Array.length fixed_slices);
          string_of_int fixed_sel.Sp_simpoint.Simpoints.chosen_k;
          Printf.sprintf "%.2fpp" (mix_err_of fixed_sel.Sp_simpoint.Simpoints.points);
          string_of_int (Array.length intervals);
          string_of_int vli_sel.Sp_simpoint.Simpoints.chosen_k;
          Printf.sprintf "%.2fpp" (mix_err_of vli_sel.Sp_simpoint.Simpoints.points);
          Table.fmt_f
            (avg_len /. float_of_int Sp_util.Scale.sim_insns_per_minsn);
        ])
    specs;
  t

(* ------------------------------------------------------------------ *)

let samplers ?(options = Pipeline.default_options) ?specs () =
  let options = Pipeline.normalize options in
  let specs = match specs with Some s -> s | None -> Suite.all in
  let t =
    Table.create
      ~title:
        "Extension: sampler-vs-sampler error/cost (CPI from warm replays, \
         signed pooled L3 error, budget = simulated instructions incl. \
         warmup)"
      [
        ("Sampler", Table.Left);
        ("Avg pts", Table.Right);
        ("Sim Minsns", Table.Right);
        ("% of whole", Table.Right);
        ("CPI err", Table.Right);
        ("L3 err (warm)", Table.Right);
        ("L3 err (cold)", Table.Right);
      ]
  in
  (* build + log + profile each workload once; every registered sampler
     then selects over the same slices and replays only its own points,
     so the comparison isolates the selection methodology *)
  let profiles =
    Sp_util.Pool.parallel_map ~jobs:options.Pipeline.jobs
      (fun spec -> Pipeline.profile_for_sweep ~options spec)
      (Array.of_list specs)
  in
  let wholes =
    Array.to_list
      (Array.map (fun p -> p.Pipeline.sweep_whole_stats) profiles)
  in
  let whole_insns =
    Stats.fsum (fun (w : Runstats.run_stats) -> w.Runstats.insns) wholes
  in
  List.iter
    (fun kind ->
      let runs =
        Array.map
          (fun prof ->
            let sel =
              Sp_simpoint.Sampler.select
                ~config:options.Pipeline.simpoint_config kind
                ~slice_len:options.Pipeline.slice_insns
                prof.Pipeline.sweep_slices
            in
            let pts = sel.Sp_simpoint.Sampler.points in
            let cold =
              Runstats.of_points ~label:"cold"
                (Pipeline.replay_points options prof.Pipeline.sweep_whole pts)
            in
            let warm =
              Runstats.of_points ~label:"warm"
                (Pipeline.warm_replay_points options
                   ~warmup_insns:options.Pipeline.warmup_insns
                   prof.Pipeline.sweep_whole pts)
            in
            (prof, pts, cold, warm))
          profiles
      in
      let npts =
        Stats.mean
          (Array.map
             (fun (_, pts, _, _) -> float_of_int (Array.length pts))
             runs)
      in
      let budget =
        Stats.fsum
          (fun (_, pts, _, _) ->
            Array.fold_left
              (fun acc (p : Sp_simpoint.Simpoints.point) ->
                acc
                +. float_of_int (p.length + options.Pipeline.warmup_insns))
              0.0 pts)
          (Array.to_list runs)
      in
      let cpi_err =
        Stats.mean
          (Array.map
             (fun (prof, _, _, warm) ->
               Stats.rel_error_pct
                 ~reference:prof.Pipeline.sweep_whole_stats.Runstats.cpi
                 warm.Runstats.cpi)
             runs)
      in
      let pooled which =
        match
          List.assoc_opt "L3"
            (pooled_errors wholes (Array.to_list (Array.map which runs)))
        with
        | Some e -> Printf.sprintf "%+.1f%%" e
        | None -> "-"
      in
      Table.add_row t
        [
          Sp_simpoint.Sampler.name kind;
          Table.fmt_f ~dec:1 npts;
          Table.fmt_f ~dec:2 (budget /. 1e6);
          Table.fmt_pct (budget /. whole_insns *. 100.0);
          Table.fmt_pct cpi_err;
          pooled (fun (_, _, _, warm) -> warm);
          pooled (fun (_, _, cold, _) -> cold);
        ])
    Sp_simpoint.Sampler.all_kinds;
  t
