(** The paper's experimental pipeline (Figure 2), end to end:

    compile (build the synthetic benchmark) -> log a Whole Pinball while
    profiling (BBVs, instruction mix, [allcache], the Sniper-model
    timing and the native-hardware counters all piggyback on the single
    logging pass) -> select simulation points -> capture Regional
    Pinballs -> replay them cold (Regional / Reduced Regional) and with
    cache warming (Warmup Regional).

    [run_benchmark] does all of the above for one workload and returns
    every statistic the evaluation section consumes; [run_suite] maps it
    over the suite. *)

type options = {
  slice_insns : int;        (** slice length (default: 30 paper-Minsn) *)
  slices_scale : float;     (** scales whole-run length; tests use < 1 *)
  warmup_insns : int;       (** warmup window per point (500 paper-M) *)
  coverage : float;         (** percentile for Reduced runs (0.9) *)
  sampler : Sp_simpoint.Sampler.kind;
      (** which registered sampling methodology the select stage runs
          ([Simpoint], the default, or [Systematic] / [Stratified] /
          [Rss]); everything downstream of select is sampler-agnostic *)
  simpoint_config : Sp_simpoint.Simpoints.config;
  cache_config : Sp_cache.Config.hierarchy;  (** Table I *)
  next_line_prefetch : bool;
      (** enable the allcache next-line prefetcher (ablation) *)
  core_config : Sp_cpu.Core_config.t;        (** Table III *)
  variance_ks : int list;   (** cluster counts for the Figure 4 sweep *)
  collect_variance : bool;
  progress : bool;          (** progress lines on stderr *)
  jobs : int;
      (** domain-pool width for the parallel stages (suite fan-out,
          cold regional replays, k-means, variance sweep).  1 (the
          default) runs fully sequentially; any value produces
          bit-for-bit identical results, only wall-clock changes. *)
  pinball_cache : string option;
      (** content-addressed whole-pinball cache directory
          ({!Sp_pinball.Artifact_cache}).  When set, the logging stage
          first looks for a stored whole pinball keyed by (benchmark,
          slice length, scale) and replays it under the same profiling
          tools instead of re-logging — statistics are bit-for-bit
          identical either way.  Corrupt or stale entries are
          quarantined with a warning and recomputed, never fatal.
          [None] (the default) disables caching. *)
  profile_cache : string option;
      (** content-addressed profile-result cache directory
          ({!Sp_pinball.Profile_store}).  When set, the log+profile
          stage memoises its outputs (BBV slices, per-kind instruction
          counts, whole-run cache and timing statistics) keyed by
          md5(generation|benchmark|slice_insns|scale|warmup); a later
          run with the same parameters skips the instrumented
          whole-program replay entirely and decodes the entry instead —
          bit-identical, since the logged execution is deterministic.
          Unless [pinball_cache] is also set, the same directory caches
          the whole pinballs (see {!normalize}), so a fully-warm re-run
          performs no whole-program execution at all.  Same robustness
          contract as the pinball cache.  [None] (the default)
          disables it. *)
  mem_cache_mb : int;
      (** shared budget (MiB) of the in-memory decoded-artifact LRU
          ({!Sp_pinball.Mem_cache}) fronting both disk caches: a hit
          skips the disk read, checksum sweep and decode.  Strictly a
          performance knob — results are bit-identical with it on, off
          or thrashing — so it is excluded from the API v2 options
          envelope, like the cache directories.  0 disables; the
          default is a small sane cap (64). *)
}

val default_options : options

val normalize : options -> options
(** Resolve derived knobs once ([simpoint_config] inherits [jobs] when
    parallel; [pinball_cache] defaults to the [profile_cache] directory
    when only the latter is set), producing the single value every
    stage receives.  Idempotent; the entry points apply it themselves,
    so callers only need it when invoking stage building blocks
    directly. *)

(** What simulation-point selection found (the clustering metadata,
    minus the bulky per-slice vectors). *)
type selection_summary = {
  sampler : Sp_simpoint.Sampler.kind;  (** methodology that selected *)
  chosen_k : int;
      (** method-specific group count ({!Sp_simpoint.Sampler.output}
          [groups]): clusters, samples, strata or rank positions *)
  num_slices : int;
  points : Sp_simpoint.Simpoints.point array;
  bic_curve : (int * float) list;  (** non-empty only for [Simpoint] *)
  diagnostics : (string * float) list;
      (** the sampler's method-specific diagnostics record *)
}

type stage_timing = { stage : string; seconds : float }

(** Machine-readable account of where a benchmark's wall time went:
    one entry per pipeline stage (build, log+profile, select, variance,
    cold-replay, warm-replay), in execution order.  Collected
    unconditionally — it does not require tracing to be enabled. *)
type run_report = {
  jobs_used : int;  (** the effective [options.jobs] for this run *)
  warmup_insns_used : int;
      (** the effective [options.warmup_insns] for this run *)
  sampler_used : string;
      (** CLI name of the select-stage sampler ({!Sp_simpoint.Sampler.name}) *)
  stages : stage_timing list;
}

val run_report_to_json : run_report -> Sp_obs.Json.t

type bench_result = {
  spec : Sp_workloads.Benchspec.t;
  built : Sp_workloads.Benchspec.built;
  options : options;
  whole_insns : int;
  selection : selection_summary;
  whole : Runstats.run_stats;
  whole_core : Sp_cpu.Interval_core.stats;
      (** timing breakdown of the whole run (CPI-stack reporting) *)
  point_stats : Runstats.point_stats list;       (** cold Regional replays *)
  warm_point_stats : Runstats.point_stats list;  (** Warmup Regional *)
  native : Sp_perf.Perf_counters.sample;
  variance : Sp_simpoint.Variance.sweep_point list;
  wall_seconds : float;  (** real host time spent on this benchmark *)
  report : run_report;   (** per-stage wall-time breakdown *)
}

val run_benchmark :
  ?options:options -> Sp_workloads.Benchspec.t -> bench_result

val run_suite :
  ?options:options -> ?specs:Sp_workloads.Benchspec.t list ->
  unit -> bench_result list
(** Defaults to the full 29-benchmark suite.  Benchmarks fan out across
    the {!Sp_util.Pool} domain pool ([options.jobs] wide); results come
    back in [specs] order and are identical to a sequential run.

    [options] is the single configuration entry point ({!normalize} is
    its sole derivation point — the [?jobs] alias that once shadowed
    [options.jobs] was removed in the v2 API redesign; set
    [options.jobs] instead). *)

(** {1 Aggregations over a result} *)

val regional : bench_result -> Runstats.run_stats

val reduced : ?coverage:float -> bench_result -> Runstats.run_stats
(** The Reduced Regional Run: highest-weight points covering
    [coverage] of execution (default: the result's option, 0.9). *)

val reduced_count : ?coverage:float -> bench_result -> int

val warmup_regional : bench_result -> Runstats.run_stats

val reduced_warm : ?coverage:float -> bench_result -> Runstats.run_stats
(** Reduced Regional aggregation over the *warmed* replays — the
    methodology Sniper's PinPoints flow uses for timing runs. *)

val reduced_point_stats :
  coverage:float -> bench_result -> Runstats.point_stats list

val paper_insns : bench_result -> Runstats.run_stats -> float
(** Paper-equivalent instruction count of a run (applies {!Sp_util.Scale}). *)

(** {1 Building blocks for sweeps}

    The Figure 3 sensitivity sweeps and the ablations re-cluster and
    re-replay one workload many times; these expose the pipeline's
    stages individually so the expensive profiling pass runs once. *)

type sweep_profile = {
  sweep_built : Sp_workloads.Benchspec.built;
  sweep_whole : Sp_pinball.Logger.whole;
  sweep_slices : Sp_pin.Bbv_tool.slice array;
  sweep_whole_stats : Runstats.run_stats;
  sweep_imix : (string * int) array;
      (** dynamic instruction mix, [(Isa.kind_name, count)] per kind
          code — a free by-product of the single-pass profile stage *)
}

val profile_for_sweep :
  ?options:options -> ?slice_insns:int -> Sp_workloads.Benchspec.t ->
  sweep_profile
(** Build, log and profile once, keeping the slices and the whole
    pinball for repeated re-clustering.  [slice_insns] overrides the
    BBV granularity (Figure 3(b) collects 5-Minsn micro-slices). *)

val replay_points :
  options -> Sp_pinball.Logger.whole -> Sp_simpoint.Simpoints.point array ->
  Runstats.point_stats list
(** Cold Regional replays of the given points (fresh tools each). *)

val warm_replay_points :
  options -> warmup_insns:int -> Sp_pinball.Logger.whole ->
  Sp_simpoint.Simpoints.point array -> Runstats.point_stats list
(** Warmup Regional replays with the given warmup window.  Each point
    is carved as a self-contained warm-prefixed regional pinball
    ({!Sp_pinball.Logger.capture_warm_regions}) and replayed with fresh
    per-point tool state ({!Sp_pinball.Replayer.replay_prefixed}), so
    the replays fan out across the domain pool ([options.jobs]);
    results are bit-identical to {!warm_replay_points_scan} at every
    job count. *)

val warm_replay_points_scan :
  options -> warmup_insns:int -> Sp_pinball.Logger.whole ->
  Sp_simpoint.Simpoints.point array -> Runstats.point_stats list
(** The sequential shared-scan implementation warm replay used before
    it was parallelised: one forward pass over the whole execution,
    shared warm tools reset at each window start.  Kept as the
    differential reference for the equivalence suite; the pipeline
    itself always uses {!warm_replay_points}. *)
