type t = {
  regs : int array;
  fregs : float array;
  pc : int;
  callstack : int array;
  sp : int;
  mem : Memory.t;
  icount : int;
}

(* The snapshot's memory shares the machine's page arrays copy-on-write
   and is fully frozen from construction on: [capture] freezes the
   source machine (its later stores privatise pages), and the snapshot
   itself is never written.  [restore] therefore only reads the
   snapshot, which makes restoring one snapshot from many domains at
   once safe — each restored machine gets its own COW view. *)
let capture (m : Interp.machine) =
  {
    regs = Array.copy m.regs;
    fregs = Array.copy m.fregs;
    pc = m.pc;
    callstack = Array.copy m.callstack;
    sp = m.sp;
    mem = Memory.cow_clone m.mem;
    icount = m.icount;
  }

let restore t : Interp.machine =
  {
    regs = Array.copy t.regs;
    fregs = Array.copy t.fregs;
    pc = t.pc;
    callstack = Array.copy t.callstack;
    sp = t.sp;
    mem = Memory.cow_clone t.mem;
    icount = t.icount;
  }

let icount t = t.icount
let pc t = t.pc
let mem_bytes t = Memory.footprint_bytes t.mem

(* ------------------------------------------------------------------ *)
(* Serialisation (pinball format v2) *)

let write buf t =
  let open Sp_util in
  Binio.w_int_array buf t.regs;
  Binio.w_float_array buf t.fregs;
  Binio.w_i64 buf t.pc;
  Binio.w_int_array buf t.callstack;
  Binio.w_i64 buf t.sp;
  Binio.w_i64 buf t.icount;
  Memory.write buf t.mem

let read r =
  let open Sp_util in
  let regs = Binio.r_int_array r in
  if Array.length regs <> Sp_isa.Isa.num_regs then
    Binio.fail "Snapshot: %d integer registers, expected %d"
      (Array.length regs) Sp_isa.Isa.num_regs;
  let fregs = Binio.r_float_array r in
  if Array.length fregs <> Sp_isa.Isa.num_fregs then
    Binio.fail "Snapshot: %d FP registers, expected %d" (Array.length fregs)
      Sp_isa.Isa.num_fregs;
  let pc = Binio.r_i64 r in
  if pc < 0 then Binio.fail "Snapshot: negative pc %d" pc;
  let callstack = Binio.r_int_array r in
  let sp = Binio.r_i64 r in
  if sp < 0 || sp > Array.length callstack then
    Binio.fail "Snapshot: sp %d outside the %d-slot call stack" sp
      (Array.length callstack);
  let icount = Binio.r_i64 r in
  if icount < 0 then Binio.fail "Snapshot: negative icount %d" icount;
  let mem = Memory.read r in
  (* freeze eagerly so the first [restore] never mutates the snapshot:
     a decoded pinball may be cached and restored from several domains
     at once *)
  Memory.freeze mem;
  { regs; fregs; pc; callstack; sp; mem; icount }
