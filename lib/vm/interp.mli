(** The interpreter: executes a {!Program.t} against a machine state,
    firing {!Hooks.t} callbacks for instrumentation.

    Execution is resumable: [run] with a [fuel] bound leaves the machine
    at the next unexecuted instruction, so callers (slicers, regional
    replayers) can execute exact instruction intervals. *)

type machine = {
  regs : int array;       (** 16 integer registers; r15 is zero by convention *)
  fregs : float array;    (** 16 FP registers *)
  mutable pc : int;
  callstack : int array;
  mutable sp : int;       (** next free call-stack slot *)
  mem : Memory.t;
  mutable icount : int;   (** instructions retired since creation *)
}

type status =
  | Halted       (** executed a [Halt] *)
  | Out_of_fuel  (** fuel exhausted; machine is resumable *)

val create : ?mem:Memory.t -> entry:int -> unit -> machine
(** Fresh machine with zeroed registers, positioned at [entry]. *)

val default_syscall : int -> int
(** Deterministic syscall used when none is supplied: channel [n] returns
    a fixed hash of [n] — the "recorded input" of a default environment. *)

type engine =
  | Auto
      (** fastest tier the hook set admits: the compiled-block tier for
          nil and plain block-level sets, the fused block-stepper when
          an [on_block_mems] consumer is live, the per-instruction
          engines when per-instruction hooks are. *)
  | Reference
      (** pin to the per-instruction reference family — the engines the
          differential suites compare everything else against. *)
  | Block_step
      (** pin to (at most) the block-stepping family. *)
  | Compiled  (** explicit request for the compiled tier; same as [Auto]. *)

val run :
  ?engine:engine ->
  ?hooks:Hooks.t ->
  ?syscall:(int -> int) ->
  ?fuel:int ->
  Program.t ->
  machine ->
  status
(** Execute until [Halt] or until [fuel] instructions have retired.

    [engine] (default [Auto]) caps which engine tier may run.  Pins
    exist for differential testing and benchmarking; they never change
    observable behaviour — every tier retires the same instruction
    stream, fires equivalent hook events and leaves bit-identical
    machine state for any fuel split — only how fast it happens.  A pin
    is a ceiling, not a demand: a hook set that needs per-instruction
    or fused delivery keeps the engine that can provide it.

    Semantics notes: integer division/remainder by zero yields 0 (the
    machine never traps); shift counts are masked to 6 bits; call-stack
    depth is bounded (overflow raises [Stack_error]). *)

exception Stack_error of string
