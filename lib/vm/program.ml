open Sp_isa

(* How a basic block transfers control: the class of its final
   instruction, or [Fallthrough] when the block ends only because the
   next pc is a leader. *)
type terminator = Fallthrough | Cond_branch | Jump | Call | Ret | Halt

type block = {
  id : int;
  start_pc : int;
  len : int;
  term : terminator;
  (* how many instructions of each [Isa.kind] the block holds, indexed
     by kind code — lets block-level tools credit a whole block without
     re-scanning its body *)
  kind_counts : int array;
  (* static instruction-fetch footprint: byte address of the leader and
     byte extent of the straight-line body.  Instructions are fixed
     size, so a cache tool derives the block's fetched line/page sets
     for any power-of-two geometry by shifting the two endpoints. *)
  fetch_base : int;
  fetch_bytes : int;
}

type t = {
  name : string;
  instrs : Isa.instr array;
  kinds : int array;
  bb_of_pc : int array;
  is_leader : bool array;
  blocks : block array;
  (* exclusive end pc per block id: [block_end.(bb) = start_pc + len].
     Kept as a flat array so the block-stepping interpreter finds the
     straight-line extent of the current block with one load. *)
  block_end : int array;
  (* longest straight-line block body, in instructions — sizes the
     reference buffers of the fused cache-simulation engine *)
  max_block_len : int;
  entry : int;
  code_base : int;
}

let terminator_of_instr (i : Isa.instr) =
  match i with
  | Isa.Branch _ -> Cond_branch
  | Isa.Jump _ -> Jump
  | Isa.Call _ -> Call
  | Isa.Ret -> Ret
  | Isa.Halt -> Halt
  | _ -> Fallthrough

let terminator_name = function
  | Fallthrough -> "fallthrough"
  | Cond_branch -> "branch"
  | Jump -> "jump"
  | Call -> "call"
  | Ret -> "ret"
  | Halt -> "halt"

let of_instrs ?(name = "anon") ?(entry = 0) ?(code_base = 0x40_0000) instrs =
  let n = Array.length instrs in
  if n = 0 then invalid_arg "Program.of_instrs: empty program";
  if entry < 0 || entry >= n then invalid_arg "Program.of_instrs: bad entry";
  let leader = Array.make n false in
  leader.(0) <- true;
  leader.(entry) <- true;
  Array.iteri
    (fun pc i ->
      (match Isa.branch_target i with
      | Some t ->
          if t < 0 || t >= n then
            invalid_arg
              (Printf.sprintf "Program.of_instrs(%s): target %d out of range at pc %d"
                 name t pc)
          else leader.(t) <- true
      | None -> ());
      if Isa.is_control i && pc + 1 < n then leader.(pc + 1) <- true)
    instrs;
  let kinds = Array.map (fun i -> Isa.kind_code (Isa.kind i)) instrs in
  let bb_of_pc = Array.make n 0 in
  let blocks = ref [] in
  let nblocks = ref 0 in
  let start = ref 0 in
  let close_block last =
    let id = !nblocks in
    incr nblocks;
    let kind_counts = Array.make Isa.num_kinds 0 in
    for pc = !start to last do
      bb_of_pc.(pc) <- id;
      let k = kinds.(pc) in
      kind_counts.(k) <- kind_counts.(k) + 1
    done;
    let len = last - !start + 1 in
    blocks :=
      {
        id;
        start_pc = !start;
        len;
        term = terminator_of_instr instrs.(last);
        kind_counts;
        fetch_base = code_base + (!start * Isa.bytes_per_instr);
        fetch_bytes = len * Isa.bytes_per_instr;
      }
      :: !blocks
  in
  for pc = 0 to n - 1 do
    if pc > !start && leader.(pc) then begin
      close_block (pc - 1);
      start := pc
    end
  done;
  close_block (n - 1);
  let blocks = Array.of_list (List.rev !blocks) in
  {
    name;
    instrs;
    kinds;
    bb_of_pc;
    is_leader = leader;
    blocks;
    block_end = Array.map (fun b -> b.start_pc + b.len) blocks;
    max_block_len = Array.fold_left (fun m b -> max m b.len) 0 blocks;
    entry;
    code_base;
  }

let num_blocks t = Array.length t.blocks

let fetch_addr t pc = t.code_base + (pc * Isa.bytes_per_instr)

let block_at t pc = t.blocks.(t.bb_of_pc.(pc))

(* ------------------------------------------------------------------ *)
(* Serialisation (pinball format v2).  Only the constructor inputs are
   encoded — name, instructions, entry, code base; the block structure
   is recomputed by [of_instrs] on decode, which also re-validates every
   static branch target. *)

let alu_op_code : Isa.alu_op -> int = function
  | Add -> 0 | Sub -> 1 | Mul -> 2 | Div -> 3 | Rem -> 4
  | And -> 5 | Or -> 6 | Xor -> 7 | Shl -> 8 | Shr -> 9

let alu_op_of_code : int -> Isa.alu_op = function
  | 0 -> Add | 1 -> Sub | 2 -> Mul | 3 -> Div | 4 -> Rem
  | 5 -> And | 6 -> Or | 7 -> Xor | 8 -> Shl | 9 -> Shr
  | n -> Sp_util.Binio.fail "Program: bad ALU op code %d" n

let falu_op_code : Isa.falu_op -> int = function
  | Fadd -> 0 | Fsub -> 1 | Fmul -> 2 | Fdiv -> 3

let falu_op_of_code : int -> Isa.falu_op = function
  | 0 -> Fadd | 1 -> Fsub | 2 -> Fmul | 3 -> Fdiv
  | n -> Sp_util.Binio.fail "Program: bad FP op code %d" n

let cond_code : Isa.cond -> int = function
  | Eq -> 0 | Ne -> 1 | Lt -> 2 | Le -> 3 | Gt -> 4 | Ge -> 5

let cond_of_code : int -> Isa.cond = function
  | 0 -> Eq | 1 -> Ne | 2 -> Lt | 3 -> Le | 4 -> Gt | 5 -> Ge
  | n -> Sp_util.Binio.fail "Program: bad condition code %d" n

let write_instr buf (i : Isa.instr) =
  let open Sp_util in
  let op = Binio.w_u8 buf in
  match i with
  | Alu (o, rd, r1, r2) -> op 0; op (alu_op_code o); op rd; op r1; op r2
  | Alui (o, rd, r1, imm) ->
      op 1; op (alu_op_code o); op rd; op r1; Binio.w_i64 buf imm
  | Li (rd, imm) -> op 2; op rd; Binio.w_i64 buf imm
  | Mov (rd, rs) -> op 3; op rd; op rs
  | Load (rd, rs, off) -> op 4; op rd; op rs; Binio.w_i64 buf off
  | Store (rv, rb, off) -> op 5; op rv; op rb; Binio.w_i64 buf off
  | Movs (rd, rs) -> op 6; op rd; op rs
  | Falu (o, fd, f1, f2) -> op 7; op (falu_op_code o); op fd; op f1; op f2
  | Fload (fd, rs, off) -> op 8; op fd; op rs; Binio.w_i64 buf off
  | Fstore (fv, rb, off) -> op 9; op fv; op rb; Binio.w_i64 buf off
  | Fmovi (fd, x) -> op 10; op fd; Binio.w_f64 buf x
  | Cvtif (fd, rs) -> op 11; op fd; op rs
  | Cvtfi (rd, fs) -> op 12; op rd; op fs
  | Branch (c, r1, r2, t) ->
      op 13; op (cond_code c); op r1; op r2; Binio.w_i64 buf t
  | Jump t -> op 14; Binio.w_i64 buf t
  | Call t -> op 15; Binio.w_i64 buf t
  | Ret -> op 16
  | Sys (n, rd) -> op 17; Binio.w_i64 buf n; op rd
  | Halt -> op 18

let read_instr r : Isa.instr =
  let open Sp_util in
  let reg () =
    let v = Binio.r_u8 r in
    if v >= Isa.num_regs then Binio.fail "Program: bad register %d" v;
    v
  in
  match Binio.r_u8 r with
  | 0 ->
      let o = alu_op_of_code (Binio.r_u8 r) in
      let rd = reg () in let r1 = reg () in let r2 = reg () in
      Alu (o, rd, r1, r2)
  | 1 ->
      let o = alu_op_of_code (Binio.r_u8 r) in
      let rd = reg () in let r1 = reg () in
      Alui (o, rd, r1, Binio.r_i64 r)
  | 2 -> let rd = reg () in Li (rd, Binio.r_i64 r)
  | 3 -> let rd = reg () in Mov (rd, reg ())
  | 4 -> let rd = reg () in let rs = reg () in Load (rd, rs, Binio.r_i64 r)
  | 5 -> let rv = reg () in let rb = reg () in Store (rv, rb, Binio.r_i64 r)
  | 6 -> let rd = reg () in Movs (rd, reg ())
  | 7 ->
      let o = falu_op_of_code (Binio.r_u8 r) in
      let fd = reg () in let f1 = reg () in let f2 = reg () in
      Falu (o, fd, f1, f2)
  | 8 -> let fd = reg () in let rs = reg () in Fload (fd, rs, Binio.r_i64 r)
  | 9 -> let fv = reg () in let rb = reg () in Fstore (fv, rb, Binio.r_i64 r)
  | 10 -> let fd = reg () in Fmovi (fd, Binio.r_f64 r)
  | 11 -> let fd = reg () in Cvtif (fd, reg ())
  | 12 -> let rd = reg () in Cvtfi (rd, reg ())
  | 13 ->
      let c = cond_of_code (Binio.r_u8 r) in
      let r1 = reg () in let r2 = reg () in
      Branch (c, r1, r2, Binio.r_i64 r)
  | 14 -> Jump (Binio.r_i64 r)
  | 15 -> Call (Binio.r_i64 r)
  | 16 -> Ret
  | 17 -> let n = Binio.r_i64 r in Sys (n, reg ())
  | 18 -> Halt
  | n -> Binio.fail "Program: bad opcode %d" n

let write buf t =
  let open Sp_util in
  Binio.w_string buf t.name;
  Binio.w_i64 buf t.entry;
  Binio.w_i64 buf t.code_base;
  Binio.w_u32 buf (Array.length t.instrs);
  Array.iter (write_instr buf) t.instrs

let read r =
  let open Sp_util in
  let name = Binio.r_string r in
  let entry = Binio.r_i64 r in
  let code_base = Binio.r_i64 r in
  let n = Binio.r_count r ~elem_bytes:1 "instruction array" in
  let instrs = Array.init n (fun _ -> read_instr r) in
  (* [of_instrs] re-validates entry and every static target *)
  match of_instrs ~name ~entry ~code_base instrs with
  | t -> t
  | exception Invalid_argument msg -> Binio.fail "%s" msg

let pp_listing ppf t =
  Format.fprintf ppf "; program %s: %d instrs, %d blocks@." t.name
    (Array.length t.instrs) (Array.length t.blocks);
  Array.iteri
    (fun pc i ->
      if t.is_leader.(pc) then
        Format.fprintf ppf "BB%d:@." t.bb_of_pc.(pc);
      Format.fprintf ppf "  %4d: %a@." pc Isa.pp i)
    t.instrs
