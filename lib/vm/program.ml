open Sp_isa

(* How a basic block transfers control: the class of its final
   instruction, or [Fallthrough] when the block ends only because the
   next pc is a leader. *)
type terminator = Fallthrough | Cond_branch | Jump | Call | Ret | Halt

type block = {
  id : int;
  start_pc : int;
  len : int;
  term : terminator;
  (* how many instructions of each [Isa.kind] the block holds, indexed
     by kind code — lets block-level tools credit a whole block without
     re-scanning its body *)
  kind_counts : int array;
}

type t = {
  name : string;
  instrs : Isa.instr array;
  kinds : int array;
  bb_of_pc : int array;
  is_leader : bool array;
  blocks : block array;
  (* exclusive end pc per block id: [block_end.(bb) = start_pc + len].
     Kept as a flat array so the block-stepping interpreter finds the
     straight-line extent of the current block with one load. *)
  block_end : int array;
  entry : int;
  code_base : int;
}

let terminator_of_instr (i : Isa.instr) =
  match i with
  | Isa.Branch _ -> Cond_branch
  | Isa.Jump _ -> Jump
  | Isa.Call _ -> Call
  | Isa.Ret -> Ret
  | Isa.Halt -> Halt
  | _ -> Fallthrough

let terminator_name = function
  | Fallthrough -> "fallthrough"
  | Cond_branch -> "branch"
  | Jump -> "jump"
  | Call -> "call"
  | Ret -> "ret"
  | Halt -> "halt"

let of_instrs ?(name = "anon") ?(entry = 0) ?(code_base = 0x40_0000) instrs =
  let n = Array.length instrs in
  if n = 0 then invalid_arg "Program.of_instrs: empty program";
  if entry < 0 || entry >= n then invalid_arg "Program.of_instrs: bad entry";
  let leader = Array.make n false in
  leader.(0) <- true;
  leader.(entry) <- true;
  Array.iteri
    (fun pc i ->
      (match Isa.branch_target i with
      | Some t ->
          if t < 0 || t >= n then
            invalid_arg
              (Printf.sprintf "Program.of_instrs(%s): target %d out of range at pc %d"
                 name t pc)
          else leader.(t) <- true
      | None -> ());
      if Isa.is_control i && pc + 1 < n then leader.(pc + 1) <- true)
    instrs;
  let kinds = Array.map (fun i -> Isa.kind_code (Isa.kind i)) instrs in
  let bb_of_pc = Array.make n 0 in
  let blocks = ref [] in
  let nblocks = ref 0 in
  let start = ref 0 in
  let close_block last =
    let id = !nblocks in
    incr nblocks;
    let kind_counts = Array.make Isa.num_kinds 0 in
    for pc = !start to last do
      bb_of_pc.(pc) <- id;
      let k = kinds.(pc) in
      kind_counts.(k) <- kind_counts.(k) + 1
    done;
    blocks :=
      {
        id;
        start_pc = !start;
        len = last - !start + 1;
        term = terminator_of_instr instrs.(last);
        kind_counts;
      }
      :: !blocks
  in
  for pc = 0 to n - 1 do
    if pc > !start && leader.(pc) then begin
      close_block (pc - 1);
      start := pc
    end
  done;
  close_block (n - 1);
  let blocks = Array.of_list (List.rev !blocks) in
  {
    name;
    instrs;
    kinds;
    bb_of_pc;
    is_leader = leader;
    blocks;
    block_end = Array.map (fun b -> b.start_pc + b.len) blocks;
    entry;
    code_base;
  }

let num_blocks t = Array.length t.blocks

let fetch_addr t pc = t.code_base + (pc * Isa.bytes_per_instr)

let block_at t pc = t.blocks.(t.bb_of_pc.(pc))

let pp_listing ppf t =
  Format.fprintf ppf "; program %s: %d instrs, %d blocks@." t.name
    (Array.length t.instrs) (Array.length t.blocks);
  Array.iteri
    (fun pc i ->
      if t.is_leader.(pc) then
        Format.fprintf ppf "BB%d:@." t.bb_of_pc.(pc);
      Format.fprintf ppf "  %4d: %a@." pc Isa.pp i)
    t.instrs
