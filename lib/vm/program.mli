open Sp_isa

(** Executable program: instruction array plus the static basic-block
    structure the SimPoint methodology observes.

    Basic blocks are computed exactly as a binary-instrumentation engine
    would: a leader is the entry point, any static control-transfer
    target, or the instruction following a control transfer; a block runs
    from a leader to the next leader (exclusive) or a control
    instruction (inclusive). *)

type terminator = Fallthrough | Cond_branch | Jump | Call | Ret | Halt
(** How a block transfers control: the class of its final instruction,
    or [Fallthrough] when the block ends only because the next pc is a
    leader. *)

type block = {
  id : int;
  start_pc : int;
  len : int;  (** straight-line length in instructions *)
  term : terminator;
  kind_counts : int array;
      (** instructions of each [Isa.kind] in the block, indexed by kind
          code — block-level tools credit a whole block from this table
          instead of re-scanning its body *)
  fetch_base : int;
      (** byte address of the leader's instruction fetch
          ([code_base + start_pc * Isa.bytes_per_instr]) *)
  fetch_bytes : int;
      (** byte extent of the straight-line fetch stream
          ([len * Isa.bytes_per_instr]); with [fetch_base] this bounds
          the block's i-fetch line/page footprint for any power-of-two
          cache geometry by shifting the span endpoints *)
}

type t = private {
  name : string;
  instrs : Isa.instr array;
  kinds : int array;        (** [Isa.kind_code] per pc, for hot-loop dispatch *)
  bb_of_pc : int array;     (** enclosing block id per pc *)
  is_leader : bool array;   (** true at each block's first pc *)
  blocks : block array;
  block_end : int array;    (** exclusive end pc per block id, for the
                                block-stepping interpreter *)
  max_block_len : int;      (** longest straight-line block body, in
                                instructions — sizes the fused engine's
                                reference buffers *)
  entry : int;
  code_base : int;          (** byte address of pc 0, for i-fetch addresses *)
}

val of_instrs : ?name:string -> ?entry:int -> ?code_base:int -> Isa.instr array -> t
(** Builds the program and its block table.
    @raise Invalid_argument if a static target is out of range or the
    instruction array is empty. *)

val num_blocks : t -> int

val fetch_addr : t -> int -> int
(** Instruction-fetch byte address of a pc. *)

val block_at : t -> int -> block
(** Block containing a pc. *)

val terminator_name : terminator -> string

val pp_listing : Format.formatter -> t -> unit
(** Disassembly listing with block boundaries, for debugging. *)

(** {1 Serialisation (pinball format v2)} *)

val write : Buffer.t -> t -> unit
(** Deterministic encoding of the constructor inputs (name,
    instructions, entry, code base); the block structure is derived, so
    it is not stored. *)

val read : Sp_util.Binio.reader -> t
(** Decode a program written by {!write}.  Opcodes, register numbers
    and static branch targets are all validated (the latter via
    {!of_instrs}).
    @raise Sp_util.Binio.Corrupt on malformed input. *)
