(** Architectural-state snapshots: the raw material of Pinballs.

    A snapshot deep-copies everything the interpreter needs to resume an
    execution at an exact dynamic instruction count — registers, PC, call
    stack and the full (sparse) memory image.  Restoring yields a fresh
    machine that replays identically, independent of the machine the
    snapshot was taken from. *)

type t

val capture : Interp.machine -> t

val restore : t -> Interp.machine
(** A fresh machine; shares no mutable state with the snapshot, so a
    snapshot can be restored many times. *)

val icount : t -> int
(** Dynamic instruction count at capture time. *)

val pc : t -> int

val mem_bytes : t -> int
(** Size of the captured memory image. *)

(** {1 Serialisation (pinball format v2)} *)

val write : Buffer.t -> t -> unit
(** Deterministic encoding of the full architectural state. *)

val read : Sp_util.Binio.reader -> t
(** Decode a snapshot written by {!write}, validating register-file
    sizes, the stack pointer and the memory image.
    @raise Sp_util.Binio.Corrupt on malformed input. *)
