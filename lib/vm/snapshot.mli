(** Architectural-state snapshots: the raw material of Pinballs.

    A snapshot captures everything the interpreter needs to resume an
    execution at an exact dynamic instruction count — registers, PC, call
    stack and the full (sparse) memory image.  Restoring yields a fresh
    machine that replays identically, independent of the machine the
    snapshot was taken from.

    Memory is shared copy-on-write rather than deep-copied: the
    snapshot's image is frozen from construction on, capture freezes
    the source machine's pages (its later writes privatise them), and
    each restore hands out an O(pages) view whose first write to a page
    copies just that page.  Restoring never mutates the snapshot, so
    one snapshot can be restored concurrently from many domains. *)

type t

val capture : Interp.machine -> t

val restore : t -> Interp.machine
(** A fresh machine; logically shares no mutable state with the
    snapshot (memory pages are shared copy-on-write), so a snapshot can
    be restored many times, including concurrently. *)

val icount : t -> int
(** Dynamic instruction count at capture time. *)

val pc : t -> int

val mem_bytes : t -> int
(** Size of the captured memory image. *)

(** {1 Serialisation (pinball format v2)} *)

val write : Buffer.t -> t -> unit
(** Deterministic encoding of the full architectural state. *)

val read : Sp_util.Binio.reader -> t
(** Decode a snapshot written by {!write}, validating register-file
    sizes, the stack pointer and the memory image.
    @raise Sp_util.Binio.Corrupt on malformed input. *)
