(** Instrumentation hooks: the VM-side half of the Pin-style API.

    The interpreter invokes these callbacks while executing; the
    {!Sp_pin} framework builds hook records out of pintools.  Callbacks
    are plain (non-labelled) closures so the dispatch cost in the
    interpreter's hot loop stays at one indirect call each. *)

type t = {
  on_block : int -> unit;
      (** block id, at entry (through the leader) to each dynamic basic
          block *)
  on_block_exec : int -> int -> unit;
      (** [bb, n]: [n] instructions of block [bb] retired.  The count is
          an aggregate — the block-stepping engine delivers a whole
          block entry at once (possibly truncated at a fuel boundary or
          started mid-block on resume), the per-instruction engine
          delivers [n = 1] per retirement.  Tools attached here must
          depend only on the multiplicity, never on instruction
          position; both deliveries then produce bit-identical results. *)
  on_instr : int -> int -> unit;
      (** [pc, kind_code] for every retired instruction *)
  on_read : int -> unit;  (** data byte address of each memory read *)
  on_write : int -> unit;  (** data byte address of each memory write *)
  on_branch : int -> bool -> unit;
      (** [pc, taken] for every conditional branch *)
}

val nil : t
(** No-op hooks; the interpreter runs at full speed. *)

val is_nil : t -> bool
(** [is_nil h] is true when every callback of [h] is a no-op.  All
    constructors in this module preserve the no-op sentinels, so the
    interpreter can test this once per run and skip hook dispatch in
    its inner loop entirely. *)

val block_level : t -> bool
(** [block_level h] is true when every per-instruction callback
    ([on_instr], [on_read], [on_write]) is a no-op.  The remaining
    callbacks all fire at most once per basic block, so the interpreter
    may run such a hook set on its block-stepping engine: hook dispatch
    once per block entry, straight-line execution in between. *)

val seq : t -> t -> t
(** Run both hook sets, first argument first. *)

val seq_all : t list -> t
(** Run every hook set, in list order.  Unlike a fold of {!seq}, the
    chain is flattened: each callback field dispatches through one flat
    closure over the live (non-no-op) callbacks rather than a tree of
    nested pair closures. *)
