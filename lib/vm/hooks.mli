(** Instrumentation hooks: the VM-side half of the Pin-style API.

    The interpreter invokes these callbacks while executing; the
    {!Sp_pin} framework builds hook records out of pintools.  Callbacks
    are plain (non-labelled) closures so the dispatch cost in the
    interpreter's hot loop stays at one indirect call each. *)

type t = {
  on_block : int -> unit;
      (** block id, at entry (through the leader) to each dynamic basic
          block *)
  on_block_exec : int -> int -> unit;
      (** [bb, n]: [n] instructions of block [bb] retired.  The count is
          an aggregate — the block-stepping engine delivers a whole
          block entry at once (possibly truncated at a fuel boundary or
          started mid-block on resume), the per-instruction engine
          delivers [n = 1] per retirement.  Tools attached here must
          depend only on the multiplicity, never on instruction
          position; both deliveries then produce bit-identical results. *)
  on_block_span : int -> int -> unit;
      (** [pc0, n]: [n] consecutive instructions starting at pc [pc0]
          retired.  The positional sibling of [on_block_exec]: spans
          partition the retirement stream exactly (block engines deliver
          at most one span per block entry — truncated at a fuel
          boundary, started mid-block on resume — per-instruction
          engines deliver [n = 1] spans), so a tool can classify every
          retired instruction against the static program (kind, memory
          class) without per-instruction dispatch.  Tools must be
          insensitive to how the stream is batched into spans; all
          engines then produce bit-identical results.  Still a
          block-level aggregate: a live callback here keeps the set
          eligible for block-stepping. *)
  on_block_mems : int -> int -> int array -> int array -> int -> unit;
      (** [pc0, n, offs, addrs, nrefs]: an aggregate of [n] consecutive
          retired instructions starting at [pc0], carrying all of their
          data references at once.  [offs.(r)] (for [r < nrefs]) is the
          instruction index of reference [r] relative to [pc0], in
          retirement order; [addrs.(r)] encodes its byte address [a] and
          direction as [(a lsl 1) lor w] with [w = 1] for a write
          ([a = addrs.(r) asr 1] recovers the address).  Segments
          partition the retirement stream exactly — the fused
          block-stepping engine delivers at most one segment per block
          entry (splitting around [Sys] instructions so a raising
          syscall handler still observes every earlier reference), the
          per-instruction engine delivers [n = 1] segments.  The arrays
          are reused between calls: callbacks must consume them before
          returning and only read the first [nrefs] entries. *)
  on_instr : int -> int -> unit;
      (** [pc, kind_code] for every retired instruction *)
  on_read : int -> unit;  (** data byte address of each memory read *)
  on_write : int -> unit;  (** data byte address of each memory write *)
  on_branch : int -> bool -> unit;
      (** [pc, taken] for every conditional branch *)
}

val nil : t
(** No-op hooks; the interpreter runs at full speed. *)

val is_nil : t -> bool
(** [is_nil h] is true when every callback of [h] is a no-op.  All
    constructors in this module preserve the no-op sentinels, so the
    interpreter can test this once per run and skip hook dispatch in
    its inner loop entirely. *)

val block_level : t -> bool
(** [block_level h] is true when every per-instruction callback
    ([on_instr], [on_read], [on_write]) is a no-op.  The remaining
    callbacks all fire at most once per basic block, so the interpreter
    may run such a hook set on its block-stepping engine: hook dispatch
    once per block entry, straight-line execution in between.
    [on_block_mems] is itself a per-block aggregate, so a live callback
    there keeps the set block-level (the interpreter picks its fused
    engine). *)

val has_block_span : t -> bool
(** True when the [on_block_span] aggregate is live. *)

val has_block_mems : t -> bool
(** True when the [on_block_mems] aggregate is live; decides
    between the plain block-stepping engine and the fused one (and, for
    per-instruction sets, whether single-instruction segments must be
    delivered). *)

val seq : t -> t -> t
(** Run both hook sets, first argument first. *)

val seq_all : t list -> t
(** Run every hook set, in list order.  Unlike a fold of {!seq}, the
    chain is flattened: each callback field dispatches through one flat
    closure over the live (non-no-op) callbacks rather than a tree of
    nested pair closures. *)
