(** Instrumentation hooks: the VM-side half of the Pin-style API.

    The interpreter invokes these callbacks while executing; the
    {!Sp_pin} framework builds hook records out of pintools.  Callbacks
    are plain (non-labelled) closures so the dispatch cost in the
    interpreter's hot loop stays at one indirect call each. *)

type t = {
  on_block : int -> unit;
      (** block id, at entry to each dynamic basic block *)
  on_instr : int -> int -> unit;
      (** [pc, kind_code] for every retired instruction *)
  on_read : int -> unit;  (** data byte address of each memory read *)
  on_write : int -> unit;  (** data byte address of each memory write *)
  on_branch : int -> bool -> unit;
      (** [pc, taken] for every conditional branch *)
}

val nil : t
(** No-op hooks; the interpreter runs at full speed. *)

val is_nil : t -> bool
(** [is_nil h] is true when every callback of [h] is a no-op.  All
    constructors in this module preserve the no-op sentinels, so the
    interpreter can test this once per run and skip hook dispatch in
    its inner loop entirely. *)

val seq : t -> t -> t
(** Run both hook sets, first argument first. *)

val seq_all : t list -> t
(** Run every hook set, in list order.  Unlike a fold of {!seq}, the
    chain is flattened: each callback field dispatches through one flat
    closure over the live (non-no-op) callbacks rather than a tree of
    nested pair closures. *)
