type t = {
  on_block : int -> unit;
  on_block_exec : int -> int -> unit;
  on_block_span : int -> int -> unit;
  on_block_mems : int -> int -> int array -> int array -> int -> unit;
  on_instr : int -> int -> unit;
  on_read : int -> unit;
  on_write : int -> unit;
  on_branch : int -> bool -> unit;
}

let ignore1 (_ : int) = ()
let ignore2 (_ : int) (_ : int) = ()
let ignore_branch (_ : int) (_ : bool) = ()

let ignore_mems (_ : int) (_ : int) (_ : int array) (_ : int array) (_ : int) =
  ()

let nil =
  {
    on_block = ignore1;
    on_block_exec = ignore2;
    on_block_span = ignore2;
    on_block_mems = ignore_mems;
    on_instr = ignore2;
    on_read = ignore1;
    on_write = ignore1;
    on_branch = ignore_branch;
  }

(* Every constructor funnels no-op callbacks through the shared
   [ignore*] sentinels, so physical equality against them (and [is_nil]
   against the whole record) is a reliable "nothing installed" test —
   the interpreter uses it to skip hook dispatch entirely. *)
let is_nil h =
  h == nil
  || (h.on_block == ignore1 && h.on_block_exec == ignore2
      && h.on_block_span == ignore2
      && h.on_block_mems == ignore_mems && h.on_instr == ignore2
      && h.on_read == ignore1 && h.on_write == ignore1
      && h.on_branch == ignore_branch)

(* A hook set is block-level when every per-instruction callback is the
   sentinel.  [on_block], [on_block_exec] and [on_branch] all fire at
   most once per basic block, so the interpreter may run such a set on
   its block-stepping path: enter the block, fire the aggregates, then
   execute the straight-line body with zero dispatch.

   [on_block_exec bb n] means "n instructions of block [bb] retired".
   It conveys multiplicity only, not position: the block-stepping engine
   fires it once per block entry (n = straight-line length, or less at a
   fuel boundary / mid-block resume), while the per-instruction engine
   fires it with n = 1 per retired instruction.  Tools attached to it
   must therefore be insensitive to batching — pure counters like BBV
   collection, not position-dependent watchers.

   [on_block_span pc0 n] is the positional sibling of [on_block_exec]:
   "n consecutive instructions starting at pc0 retired".  Spans
   partition the retirement stream exactly, so a tool can classify
   every retired instruction (kind, memory class) from the static
   program without per-instruction dispatch.  It is still a block-level
   aggregate — at most one call per block entry on the block-stepping
   engines — so a live callback keeps the set block-level. *)
let block_level h =
  h.on_instr == ignore2 && h.on_read == ignore1 && h.on_write == ignore1

let has_block_span h = h.on_block_span != ignore2

(* [on_block_mems] is an aggregate like [on_block_exec]: the fused
   engine delivers one segment per block entry, the per-instruction
   engines deliver one single-instruction segment per retirement.  A
   live callback here does not disqualify a set from block-stepping —
   it selects the fused engine variant instead. *)
let has_block_mems h = h.on_block_mems != ignore_mems

let seq a b =
  let pick1 fa fb =
    if fa == ignore1 then fb
    else if fb == ignore1 then fa
    else fun x -> fa x; fb x
  in
  let pick2 fa fb =
    if fa == ignore2 then fb
    else if fb == ignore2 then fa
    else fun x y -> fa x y; fb x y
  in
  {
    on_block = pick1 a.on_block b.on_block;
    on_block_exec = pick2 a.on_block_exec b.on_block_exec;
    on_block_span = pick2 a.on_block_span b.on_block_span;
    on_block_mems =
      (if a.on_block_mems == ignore_mems then b.on_block_mems
       else if b.on_block_mems == ignore_mems then a.on_block_mems
       else
         fun pc n offs addrs nrefs ->
           a.on_block_mems pc n offs addrs nrefs;
           b.on_block_mems pc n offs addrs nrefs);
    on_instr = pick2 a.on_instr b.on_instr;
    on_read = pick1 a.on_read b.on_read;
    on_write = pick1 a.on_write b.on_write;
    on_branch =
      (if a.on_branch == ignore_branch then b.on_branch
       else if b.on_branch == ignore_branch then a.on_branch
       else fun x y -> a.on_branch x y; b.on_branch x y);
  }

(* Fuse a whole chain per field.  Folding [seq] over a list builds a
   tree of pairwise closures — [((a;b);c);d] — whose inner nodes are
   re-entered on every event.  Here each field's live callbacks are
   collected once and dispatched from a flat array, so an n-tool chain
   costs one closure plus n direct calls instead of n-1 nested
   closures. *)
let fuse1 sentinel fs =
  match List.filter (fun f -> f != sentinel) fs with
  | [] -> sentinel
  | [ f ] -> f
  | [ f; g ] -> fun x -> f x; g x
  | [ f; g; h ] -> fun x -> f x; g x; h x
  | fs ->
      let arr = Array.of_list fs in
      let n = Array.length arr in
      fun x ->
        for i = 0 to n - 1 do
          (Array.unsafe_get arr i) x
        done

let fuse2 sentinel fs =
  match List.filter (fun f -> f != sentinel) fs with
  | [] -> sentinel
  | [ f ] -> f
  | [ f; g ] -> fun x y -> f x y; g x y
  | [ f; g; h ] -> fun x y -> f x y; g x y; h x y
  | fs ->
      let arr = Array.of_list fs in
      let n = Array.length arr in
      fun x y ->
        for i = 0 to n - 1 do
          (Array.unsafe_get arr i) x y
        done

let fuse_mems fs =
  match List.filter (fun f -> f != ignore_mems) fs with
  | [] -> ignore_mems
  | [ f ] -> f
  | [ f; g ] ->
      fun pc n offs addrs nrefs ->
        f pc n offs addrs nrefs;
        g pc n offs addrs nrefs
  | fs ->
      let arr = Array.of_list fs in
      let len = Array.length arr in
      fun pc n offs addrs nrefs ->
        for i = 0 to len - 1 do
          (Array.unsafe_get arr i) pc n offs addrs nrefs
        done

let seq_all = function
  | [] -> nil
  | [ h ] -> h
  | hs ->
      {
        on_block = fuse1 ignore1 (List.map (fun h -> h.on_block) hs);
        on_block_exec = fuse2 ignore2 (List.map (fun h -> h.on_block_exec) hs);
        on_block_span = fuse2 ignore2 (List.map (fun h -> h.on_block_span) hs);
        on_block_mems = fuse_mems (List.map (fun h -> h.on_block_mems) hs);
        on_instr = fuse2 ignore2 (List.map (fun h -> h.on_instr) hs);
        on_read = fuse1 ignore1 (List.map (fun h -> h.on_read) hs);
        on_write = fuse1 ignore1 (List.map (fun h -> h.on_write) hs);
        on_branch = fuse2 ignore_branch (List.map (fun h -> h.on_branch) hs);
      }
