open Sp_isa

type machine = {
  regs : int array;
  fregs : float array;
  mutable pc : int;
  callstack : int array;
  mutable sp : int;
  mem : Memory.t;
  mutable icount : int;
}

type status = Halted | Out_of_fuel

exception Stack_error of string

let stack_depth = 4096

let create ?mem ~entry () =
  let mem = match mem with Some m -> m | None -> Memory.create () in
  {
    regs = Array.make Isa.num_regs 0;
    fregs = Array.make Isa.num_fregs 0.0;
    pc = entry;
    callstack = Array.make stack_depth 0;
    sp = 0;
    mem;
    icount = 0;
  }

let default_syscall n = Sp_util.Rng.hash_string (string_of_int n) land 0xFFFF

(* Execution metrics, flushed once per [run] (and once per engine loop
   for block counts) so the hot loops stay untouched.  Instruction and
   TLB-refill totals are pure functions of the retired work and are
   registered stable; per-tier run counts depend on which pipeline path
   drove the interpreter, so they are not. *)
module M = struct
  let instructions = Sp_obs.Metrics.counter "vm.instructions"
  let tlb_refills = Sp_obs.Metrics.counter "vm.tlb_refills"
  let blocks = Sp_obs.Metrics.counter "vm.blocks_stepped"
  let runs_plain = Sp_obs.Metrics.counter ~stable:false "vm.runs.plain"
  let runs_block = Sp_obs.Metrics.counter ~stable:false "vm.runs.block"
  let runs_fused = Sp_obs.Metrics.counter ~stable:false "vm.runs.fused"
  let runs_hooked = Sp_obs.Metrics.counter ~stable:false "vm.runs.hooked"
  let runs_mixed = Sp_obs.Metrics.counter ~stable:false "vm.runs.mixed"
  let runs_compiled = Sp_obs.Metrics.counter ~stable:false "vm.runs.compiled"
end

let exec_alu op a b =
  match (op : Isa.alu_op) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)

let exec_falu op a b =
  match (op : Isa.falu_op) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> if b = 0.0 then 0.0 else a /. b

let eval_cond c a b =
  match (c : Isa.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* The uninstrumented fast path: the same walk as [run_hooked] below
   with every hook site deleted.  Replay fast-forwarding (region
   capture, warmup positioning) spends billions of instructions here,
   so the duplication buys a loop with zero closure calls — keep the
   two copies in lockstep when touching either. *)
let run_plain ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  while !running do
    let pc = m.pc in
    m.icount <- m.icount + 1;
    decr remaining;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc));
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc));
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Sys (n, rd) ->
        Array.unsafe_set regs rd (syscall n);
        m.pc <- pc + 1
    | Halt ->
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  !status
[@@inline never]

(* The block-stepping tier: hooks are block-level ([Hooks.block_level]),
   so all dispatch happens once per basic-block entry.  The block's
   extent comes from [Program.block_end]; the straight-line body then
   executes with no leader tests, no per-instruction fuel checks and no
   closure calls.  Only the final instruction of a block can transfer
   control, so the body match never sees one.

   Invariants kept in lockstep with the per-instruction engines:
   - [m.icount] is bulk-advanced at block entry, but any [Sys]
     instruction observes the exact per-instruction count (pinball
     logging records syscalls as [icount - 1]) and [m.pc] is set to the
     syscall's pc so a raising handler leaves the machine addressable;
   - a fuel boundary mid-block retires exactly [remaining] instructions
     and leaves [m.pc] at the next unexecuted one, so resumed runs are
     bit-identical to uninterrupted ones;
   - [on_block] fires only when entering through the leader (a resume
     mid-block does not re-announce the block), [on_block_exec] fires on
     every entry with the retired count, and [on_branch] fires at the
     terminator exactly as the per-instruction engines do. *)
let run_block ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let block_end = prog.block_end in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let on_block_span = hooks.Hooks.on_block_span in
  let has_span = on_block_span != Hooks.nil.Hooks.on_block_span in
  let on_branch = hooks.Hooks.on_branch in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  let blocks = ref 0 in
  while !running do
    incr blocks;
    let pc0 = m.pc in
    let bb = Array.unsafe_get bb_of_pc pc0 in
    if Array.unsafe_get is_leader pc0 then on_block bb;
    let stop = Array.unsafe_get block_end bb in
    let avail = stop - pc0 in
    let n = if avail <= !remaining then avail else !remaining in
    on_block_exec bb n;
    if has_span then on_block_span pc0 n;
    m.icount <- m.icount + n;
    remaining := !remaining - n;
    let last = pc0 + n - 1 in
    for pc = pc0 to last - 1 do
      match Array.unsafe_get instrs pc with
      | Alu (op, rd, r1, r2) ->
          Array.unsafe_set regs rd
            (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2))
      | Alui (op, rd, r1, imm) ->
          Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm)
      | Li (rd, imm) -> Array.unsafe_set regs rd imm
      | Mov (rd, rs) -> Array.unsafe_set regs rd (Array.unsafe_get regs rs)
      | Load (rd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          Array.unsafe_set regs rd (Memory.load mem a)
      | Store (rv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          Memory.store mem a (Array.unsafe_get regs rv)
      | Movs (rdst, rsrc) ->
          let src = Array.unsafe_get regs rsrc in
          let dst = Array.unsafe_get regs rdst in
          Memory.store mem dst (Memory.load mem src)
      | Falu (op, fd, f1, f2) ->
          Array.unsafe_set fregs fd
            (exec_falu op (Array.unsafe_get fregs f1)
               (Array.unsafe_get fregs f2))
      | Fload (fd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          Array.unsafe_set fregs fd (Memory.loadf mem a)
      | Fstore (fv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          Memory.storef mem a (Array.unsafe_get fregs fv)
      | Fmovi (fd, x) -> Array.unsafe_set fregs fd x
      | Cvtif (fd, rs) ->
          Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs))
      | Cvtfi (rd, fs) ->
          Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs))
      | Sys (num, rd) ->
          (* expose the exact retirement index to the handler *)
          let bulk = m.icount in
          m.icount <- bulk - (last - pc);
          m.pc <- pc;
          Array.unsafe_set regs rd (syscall num);
          m.icount <- bulk
      | Branch _ | Jump _ | Call _ | Ret | Halt ->
          (* control instructions end their block *)
          assert false
    done;
    let pc = last in
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Sys (num, rd) ->
        m.pc <- pc;
        Array.unsafe_set regs rd (syscall num);
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc))
        end;
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc))
        end;
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Halt ->
        m.pc <- pc;
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  Sp_obs.Metrics.add M.blocks !blocks;
  !status
[@@inline never]

(* The fused block-stepping tier: [run_block] plus collection of the
   straight-line body's data references into per-run buffers, delivered
   to [on_block_mems] as one aggregate segment per block entry.  The
   cache tool then walks the block's i-fetch line/page grid and its
   data stream in one pass instead of being called back per
   instruction.

   Segment invariants (the exactness contract with the tool):
   - segments partition the retirement stream: every retired
     instruction belongs to exactly one segment, in order, so the
     tool's reconstructed fetch stream is the per-instruction one;
   - a [Sys] in the body flushes the segment up to and including the
     syscall instruction *before* invoking the handler — the
     per-instruction tier fires the fetch hook before executing, so a
     raising handler must leave the tool having seen exactly the same
     prefix;
   - the terminator's references are collected (addresses are
     computable before any state change) and the whole segment flushed
     before the terminator's effect runs, so a [Call]/[Ret] stack
     error also leaves the tool exactly one instruction ahead of the
     machine, as the per-instruction tier does;
   - reference buffers are reused across segments; offsets are relative
     to the segment start and addresses carry the write bit in bit 0
     (see [Hooks.on_block_mems]). *)
let run_fused ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let block_end = prog.block_end in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let on_block_span = hooks.Hooks.on_block_span in
  let has_span = on_block_span != Hooks.nil.Hooks.on_block_span in
  let on_block_mems = hooks.Hooks.on_block_mems in
  let on_branch = hooks.Hooks.on_branch in
  (* at most two references per instruction (Movs: read then write) *)
  let cap = 2 * prog.max_block_len in
  let offs = Array.make cap 0 in
  let addrs = Array.make cap 0 in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  let blocks = ref 0 in
  while !running do
    incr blocks;
    let pc0 = m.pc in
    let bb = Array.unsafe_get bb_of_pc pc0 in
    if Array.unsafe_get is_leader pc0 then on_block bb;
    let stop = Array.unsafe_get block_end bb in
    let avail = stop - pc0 in
    let n = if avail <= !remaining then avail else !remaining in
    on_block_exec bb n;
    if has_span then on_block_span pc0 n;
    m.icount <- m.icount + n;
    remaining := !remaining - n;
    let last = pc0 + n - 1 in
    let seg_start = ref pc0 in
    let nrefs = ref 0 in
    for pc = pc0 to last - 1 do
      match Array.unsafe_get instrs pc with
      | Alu (op, rd, r1, r2) ->
          Array.unsafe_set regs rd
            (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2))
      | Alui (op, rd, r1, imm) ->
          Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm)
      | Li (rd, imm) -> Array.unsafe_set regs rd imm
      | Mov (rd, rs) -> Array.unsafe_set regs rd (Array.unsafe_get regs rs)
      | Load (rd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r (a lsl 1);
          nrefs := r + 1;
          Array.unsafe_set regs rd (Memory.load mem a)
      | Store (rv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r ((a lsl 1) lor 1);
          nrefs := r + 1;
          Memory.store mem a (Array.unsafe_get regs rv)
      | Movs (rdst, rsrc) ->
          let src = Array.unsafe_get regs rsrc in
          let dst = Array.unsafe_get regs rdst in
          let r = !nrefs in
          let o = pc - !seg_start in
          Array.unsafe_set offs r o;
          Array.unsafe_set addrs r (src lsl 1);
          Array.unsafe_set offs (r + 1) o;
          Array.unsafe_set addrs (r + 1) ((dst lsl 1) lor 1);
          nrefs := r + 2;
          Memory.store mem dst (Memory.load mem src)
      | Falu (op, fd, f1, f2) ->
          Array.unsafe_set fregs fd
            (exec_falu op (Array.unsafe_get fregs f1)
               (Array.unsafe_get fregs f2))
      | Fload (fd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r (a lsl 1);
          nrefs := r + 1;
          Array.unsafe_set fregs fd (Memory.loadf mem a)
      | Fstore (fv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r ((a lsl 1) lor 1);
          nrefs := r + 1;
          Memory.storef mem a (Array.unsafe_get fregs fv)
      | Fmovi (fd, x) -> Array.unsafe_set fregs fd x
      | Cvtif (fd, rs) ->
          Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs))
      | Cvtfi (rd, fs) ->
          Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs))
      | Sys (num, rd) ->
          (* flush through the syscall instruction, then expose the
             exact retirement index to the handler *)
          on_block_mems !seg_start (pc - !seg_start + 1) offs addrs !nrefs;
          nrefs := 0;
          seg_start := pc + 1;
          let bulk = m.icount in
          m.icount <- bulk - (last - pc);
          m.pc <- pc;
          Array.unsafe_set regs rd (syscall num);
          m.icount <- bulk
      | Branch _ | Jump _ | Call _ | Ret | Halt ->
          (* control instructions end their block *)
          assert false
    done;
    let pc = last in
    (* the terminator's data addresses depend only on registers, so they
       can be collected — and the whole segment flushed — before its
       effect runs (see the invariants above) *)
    (match Array.unsafe_get instrs pc with
    | Load (_, rs, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r ((Array.unsafe_get regs rs + off) lsl 1);
        nrefs := r + 1
    | Store (_, rb, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r
          (((Array.unsafe_get regs rb + off) lsl 1) lor 1);
        nrefs := r + 1
    | Movs (rdst, rsrc) ->
        let r = !nrefs in
        let o = pc - !seg_start in
        Array.unsafe_set offs r o;
        Array.unsafe_set addrs r (Array.unsafe_get regs rsrc lsl 1);
        Array.unsafe_set offs (r + 1) o;
        Array.unsafe_set addrs (r + 1) ((Array.unsafe_get regs rdst lsl 1) lor 1);
        nrefs := r + 2
    | Fload (_, rs, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r ((Array.unsafe_get regs rs + off) lsl 1);
        nrefs := r + 1
    | Fstore (_, rb, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r
          (((Array.unsafe_get regs rb + off) lsl 1) lor 1);
        nrefs := r + 1
    | _ -> ());
    on_block_mems !seg_start (pc - !seg_start + 1) offs addrs !nrefs;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Sys (num, rd) ->
        m.pc <- pc;
        Array.unsafe_set regs rd (syscall num);
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc))
        end;
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc))
        end;
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Halt ->
        m.pc <- pc;
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  Sp_obs.Metrics.add M.blocks !blocks;
  !status
[@@inline never]

let run_hooked ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let kinds = prog.kinds in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let has_block_exec = on_block_exec != Hooks.nil.Hooks.on_block_exec in
  let on_block_span = hooks.Hooks.on_block_span in
  let has_span = on_block_span != Hooks.nil.Hooks.on_block_span in
  let on_instr = hooks.Hooks.on_instr in
  let on_read = hooks.Hooks.on_read in
  let on_write = hooks.Hooks.on_write in
  let on_branch = hooks.Hooks.on_branch in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  while !running do
    let pc = m.pc in
    if Array.unsafe_get is_leader pc then on_block (Array.unsafe_get bb_of_pc pc);
    (* block-level tools seq'd with per-instruction ones still see every
       retirement, one block-credit at a time *)
    if has_block_exec then on_block_exec (Array.unsafe_get bb_of_pc pc) 1;
    if has_span then on_block_span pc 1;
    on_instr pc (Array.unsafe_get kinds pc);
    m.icount <- m.icount + 1;
    decr remaining;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        on_read src;
        on_write dst;
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc));
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc));
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Sys (n, rd) ->
        Array.unsafe_set regs rd (syscall n);
        m.pc <- pc + 1
    | Halt ->
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  !status
[@@inline never]

(* [run_hooked] plus [on_block_mems] delivery: when a fused (segment
   consuming) tool is seq'd with genuinely per-instruction hooks, the
   set cannot block-step, but the fused tool must still see every
   retirement exactly once.  This copy delivers one single-instruction
   segment per retired instruction — flushed after execution for
   ordinary instructions, but *before* a syscall handler runs and
   before a [Call]/[Ret] stack error is raised, matching the fetch
   visibility of the per-instruction hooks.  Kept separate from
   [run_hooked] so hook sets without a fused tool pay nothing. *)
let run_mixed ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let kinds = prog.kinds in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let has_block_exec = on_block_exec != Hooks.nil.Hooks.on_block_exec in
  let on_block_span = hooks.Hooks.on_block_span in
  let has_span = on_block_span != Hooks.nil.Hooks.on_block_span in
  let on_block_mems = hooks.Hooks.on_block_mems in
  let on_instr = hooks.Hooks.on_instr in
  let on_read = hooks.Hooks.on_read in
  let on_write = hooks.Hooks.on_write in
  let on_branch = hooks.Hooks.on_branch in
  (* single-instruction segments: both offsets are 0, at most two refs *)
  let offs = Array.make 2 0 in
  let addrs = Array.make 2 0 in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  while !running do
    let pc = m.pc in
    if Array.unsafe_get is_leader pc then on_block (Array.unsafe_get bb_of_pc pc);
    if has_block_exec then on_block_exec (Array.unsafe_get bb_of_pc pc) 1;
    if has_span then on_block_span pc 1;
    on_instr pc (Array.unsafe_get kinds pc);
    m.icount <- m.icount + 1;
    decr remaining;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set regs rd (Memory.load mem a);
        Array.unsafe_set addrs 0 (a lsl 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.store mem a (Array.unsafe_get regs rv);
        Array.unsafe_set addrs 0 ((a lsl 1) lor 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        on_read src;
        on_write dst;
        Memory.store mem dst (Memory.load mem src);
        Array.unsafe_set addrs 0 (src lsl 1);
        Array.unsafe_set addrs 1 ((dst lsl 1) lor 1);
        on_block_mems pc 1 offs addrs 2;
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        Array.unsafe_set addrs 0 (a lsl 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.storef mem a (Array.unsafe_get fregs fv);
        Array.unsafe_set addrs 0 ((a lsl 1) lor 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        on_block_mems pc 1 offs addrs 0;
        m.pc <- (if taken then target else pc + 1)
    | Jump target ->
        on_block_mems pc 1 offs addrs 0;
        m.pc <- target
    | Call target ->
        on_block_mems pc 1 offs addrs 0;
        if m.sp >= stack_depth then
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc));
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        on_block_mems pc 1 offs addrs 0;
        if m.sp <= 0 then
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc));
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Sys (n, rd) ->
        (* flush before the handler: a raising handler must leave the
           fused tool having seen this instruction's fetch *)
        on_block_mems pc 1 offs addrs 0;
        Array.unsafe_set regs rd (syscall n);
        m.pc <- pc + 1
    | Halt ->
        on_block_mems pc 1 offs addrs 0;
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  !status
[@@inline never]

(* ------------------------------------------------------------------ *)
(* The compiled tier.

   A pre-compilation pass walks the program once and turns every basic
   block into a chain of straight-line OCaml closures: one closure per
   instruction, each performing its effect on the raw machine arrays
   and tail-calling the next.  Executing a block is then one indirect
   call per instruction with no opcode decode, no per-instruction fuel
   check and no pc bookkeeping — the pc is implicit in which closure is
   running and is only materialised where an engine contract requires
   it (syscalls, stack errors, chain exits).  Unconditional terminators
   with a forward static target ([Jump]/[Call]/fallthrough into the
   next leader) chain directly into the target block's closure, fusing
   superblocks; forward-only chaining makes the closure graph a DAG, so
   compilation in decreasing pc order always finds its continuations
   already built, and [max_chain_insns] bounds how much fuel a single
   dispatch can consume.

   Compiled closures are built once per program and shared across runs,
   so they cannot capture any per-run state: machine, syscall handler
   and hooks travel in a [cenv] handed to every closure.

   Contracts kept in lockstep with the other engines:
   - hook events: each block's closure chain starts with a prologue
     firing [on_block]/[on_block_exec]/[on_block_span] exactly as
     [run_block] does at a block entry; mid-block resume entries fire
     the partial aggregates without [on_block];
   - [m.icount] is bulk-advanced for the whole chain at dispatch, and
     every [Sys] closure rolls it back to the exact per-instruction
     value (the remainder of its chain is a compile-time constant), so
     pinball syscall logging stays tier-independent; a [Call] overflow
     rolls back the same way before raising;
   - fuel: a chain is dispatched only when the remaining fuel covers it
     entirely; otherwise the run tail is delegated to the
     block-stepping tier (or the plain tier when nothing is hooked),
     which lands the fuel boundary on exactly the same instruction with
     identical partial-block events and machine state. *)

type cenv = {
  cm : machine;
  cregs : int array;
  cfregs : float array;
  cmem : Memory.t;
  csyscall : int -> int;
  c_block : int -> unit;
  c_block_exec : int -> int -> unit;
  c_span : int -> int -> unit;
  c_branch : int -> bool -> unit;
  c_hooked : bool;
  mutable c_halted : bool;
}

type compiled = {
  entry_code : (cenv -> unit) array;
      (* per pc: closure executing from pc to the end of its chain *)
  entry_len : int array;
      (* instructions the chain from pc retires (all-or-nothing) *)
  entry_blocks : int array;
      (* block entries the chain from pc makes, for [M.blocks] *)
}

(* Upper bound on the instructions one chain dispatch may retire.
   Chains are all-or-nothing against the remaining fuel, so this also
   bounds how early the dispatcher must hand a run's tail to the
   interpreted fallback. *)
let max_chain_insns = 1024

(* One non-control instruction: perform the effect, tail-call [next].
   [clen_next] is the number of instructions the rest of the chain
   retires after this one — the compile-time icount rollback a [Sys]
   needs to expose the exact per-instruction count to its handler. *)
let compile_straight pc (i : Isa.instr) ~(next : cenv -> unit) ~clen_next :
    cenv -> unit =
  match i with
  | Alu (op, rd, r1, r2) -> (
      match (op : Isa.alu_op) with
      | Add ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 + Array.unsafe_get regs r2);
            next e
      | Sub ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 - Array.unsafe_get regs r2);
            next e
      | Mul ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 * Array.unsafe_get regs r2);
            next e
      | Div ->
          fun e ->
            let regs = e.cregs in
            let b = Array.unsafe_get regs r2 in
            Array.unsafe_set regs rd
              (if b = 0 then 0 else Array.unsafe_get regs r1 / b);
            next e
      | Rem ->
          fun e ->
            let regs = e.cregs in
            let b = Array.unsafe_get regs r2 in
            Array.unsafe_set regs rd
              (if b = 0 then 0 else Array.unsafe_get regs r1 mod b);
            next e
      | And ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 land Array.unsafe_get regs r2);
            next e
      | Or ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 lor Array.unsafe_get regs r2);
            next e
      | Xor ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 lxor Array.unsafe_get regs r2);
            next e
      | Shl ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 lsl (Array.unsafe_get regs r2 land 63));
            next e
      | Shr ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (Array.unsafe_get regs r1 lsr (Array.unsafe_get regs r2 land 63));
            next e)
  | Alui (op, rd, r1, imm) -> (
      match (op : Isa.alu_op) with
      | Add ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 + imm);
            next e
      | Sub ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 - imm);
            next e
      | Mul ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 * imm);
            next e
      | Div ->
          let z = imm = 0 in
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (if z then 0 else Array.unsafe_get regs r1 / imm);
            next e
      | Rem ->
          let z = imm = 0 in
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd
              (if z then 0 else Array.unsafe_get regs r1 mod imm);
            next e
      | And ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 land imm);
            next e
      | Or ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 lor imm);
            next e
      | Xor ->
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 lxor imm);
            next e
      | Shl ->
          let s = imm land 63 in
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 lsl s);
            next e
      | Shr ->
          let s = imm land 63 in
          fun e ->
            let regs = e.cregs in
            Array.unsafe_set regs rd (Array.unsafe_get regs r1 lsr s);
            next e)
  | Li (rd, imm) ->
      fun e ->
        Array.unsafe_set e.cregs rd imm;
        next e
  | Mov (rd, rs) ->
      fun e ->
        let regs = e.cregs in
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        next e
  | Load (rd, rs, off) ->
      fun e ->
        let regs = e.cregs in
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set regs rd (Memory.load e.cmem a);
        next e
  | Store (rv, rb, off) ->
      fun e ->
        let regs = e.cregs in
        let a = Array.unsafe_get regs rb + off in
        Memory.store e.cmem a (Array.unsafe_get regs rv);
        next e
  | Movs (rdst, rsrc) ->
      fun e ->
        let regs = e.cregs in
        let mem = e.cmem in
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        Memory.store mem dst (Memory.load mem src);
        next e
  | Falu (op, fd, f1, f2) -> (
      match (op : Isa.falu_op) with
      | Fadd ->
          fun e ->
            let fregs = e.cfregs in
            Array.unsafe_set fregs fd
              (Array.unsafe_get fregs f1 +. Array.unsafe_get fregs f2);
            next e
      | Fsub ->
          fun e ->
            let fregs = e.cfregs in
            Array.unsafe_set fregs fd
              (Array.unsafe_get fregs f1 -. Array.unsafe_get fregs f2);
            next e
      | Fmul ->
          fun e ->
            let fregs = e.cfregs in
            Array.unsafe_set fregs fd
              (Array.unsafe_get fregs f1 *. Array.unsafe_get fregs f2);
            next e
      | Fdiv ->
          fun e ->
            let fregs = e.cfregs in
            let b = Array.unsafe_get fregs f2 in
            Array.unsafe_set fregs fd
              (if b = 0.0 then 0.0 else Array.unsafe_get fregs f1 /. b);
            next e)
  | Fload (fd, rs, off) ->
      fun e ->
        let a = Array.unsafe_get e.cregs rs + off in
        Array.unsafe_set e.cfregs fd (Memory.loadf e.cmem a);
        next e
  | Fstore (fv, rb, off) ->
      fun e ->
        let a = Array.unsafe_get e.cregs rb + off in
        Memory.storef e.cmem a (Array.unsafe_get e.cfregs fv);
        next e
  | Fmovi (fd, x) ->
      fun e ->
        Array.unsafe_set e.cfregs fd x;
        next e
  | Cvtif (fd, rs) ->
      fun e ->
        Array.unsafe_set e.cfregs fd
          (float_of_int (Array.unsafe_get e.cregs rs));
        next e
  | Cvtfi (rd, fs) ->
      fun e ->
        Array.unsafe_set e.cregs rd
          (int_of_float (Array.unsafe_get e.cfregs fs));
        next e
  | Sys (num, rd) ->
      let rb = clen_next in
      fun e ->
        (* expose the exact retirement index and pc to the handler: the
           chain's bulk advance overshoots by the statically known
           remainder [rb] *)
        let m = e.cm in
        let bulk = m.icount in
        m.icount <- bulk - rb;
        m.pc <- pc;
        Array.unsafe_set e.cregs rd (e.csyscall num);
        m.icount <- bulk;
        next e
  | Branch _ | Jump _ | Call _ | Ret | Halt ->
      (* control instructions are compiled by the terminator pass *)
      assert false

let compile_branch pc c r1 r2 target : cenv -> unit =
  let next_pc = pc + 1 in
  match (c : Isa.cond) with
  | Eq ->
      fun e ->
        let regs = e.cregs in
        let taken = Array.unsafe_get regs r1 = Array.unsafe_get regs r2 in
        if e.c_hooked then e.c_branch pc taken;
        e.cm.pc <- (if taken then target else next_pc)
  | Ne ->
      fun e ->
        let regs = e.cregs in
        let taken = Array.unsafe_get regs r1 <> Array.unsafe_get regs r2 in
        if e.c_hooked then e.c_branch pc taken;
        e.cm.pc <- (if taken then target else next_pc)
  | Lt ->
      fun e ->
        let regs = e.cregs in
        let taken = Array.unsafe_get regs r1 < Array.unsafe_get regs r2 in
        if e.c_hooked then e.c_branch pc taken;
        e.cm.pc <- (if taken then target else next_pc)
  | Le ->
      fun e ->
        let regs = e.cregs in
        let taken = Array.unsafe_get regs r1 <= Array.unsafe_get regs r2 in
        if e.c_hooked then e.c_branch pc taken;
        e.cm.pc <- (if taken then target else next_pc)
  | Gt ->
      fun e ->
        let regs = e.cregs in
        let taken = Array.unsafe_get regs r1 > Array.unsafe_get regs r2 in
        if e.c_hooked then e.c_branch pc taken;
        e.cm.pc <- (if taken then target else next_pc)
  | Ge ->
      fun e ->
        let regs = e.cregs in
        let taken = Array.unsafe_get regs r1 >= Array.unsafe_get regs r2 in
        if e.c_hooked then e.c_branch pc taken;
        e.cm.pc <- (if taken then target else next_pc)

let compile (prog : Program.t) : compiled =
  let instrs = prog.instrs in
  let n = Array.length instrs in
  let blocks = prog.blocks in
  let bb_of_pc = prog.bb_of_pc in
  let nblocks = Array.length blocks in
  let unreachable (_ : cenv) = assert false in
  (* [code.(pc)]: closure for the in-chain continuation at [pc] — block
     leaders carry their hook prologue, body pcs do not, so a chain
     link into a leader fires the next block's events exactly like a
     fresh [run_block] entry.  [entry_code.(pc)] is what the dispatcher
     calls: the same closure for leaders, a partial-aggregate wrapper
     for mid-block resume points.  Index [n] catches a program that
     runs off the end (the per-instruction tiers fault on the
     out-of-range fetch; here it raises cleanly). *)
  let code : (cenv -> unit) array = Array.make (n + 1) unreachable in
  let entry_code : (cenv -> unit) array = Array.make (n + 1) unreachable in
  let clen = Array.make (n + 1) 0 in
  let entry_blocks = Array.make (n + 1) 0 in
  (* dynamic block entries made by a chain entering block [b] *)
  let blocks_from = Array.make nblocks 1 in
  entry_code.(n) <-
    (fun _ -> invalid_arg "Interp: execution ran off the end of the program");
  (* Decreasing block order: every chain target (strictly beyond the
     current terminator) is already compiled and wrapped. *)
  for b = nblocks - 1 downto 0 do
    let blk = blocks.(b) in
    let start = blk.Program.start_pc in
    let len = blk.Program.len in
    let term_pc = start + len - 1 in
    let chainable t = t > term_pc && t < n && len + clen.(t) <= max_chain_insns in
    (match instrs.(term_pc) with
    | Branch (c, r1, r2, target) ->
        code.(term_pc) <- compile_branch term_pc c r1 r2 target;
        clen.(term_pc) <- 1
    | Jump target ->
        if chainable target then begin
          (* the jump's only effect is the pc change the chain link
             makes implicit: compile it to the target's closure *)
          code.(term_pc) <- code.(target);
          clen.(term_pc) <- 1 + clen.(target);
          blocks_from.(b) <- 1 + blocks_from.(bb_of_pc.(target))
        end
        else begin
          code.(term_pc) <- (fun e -> e.cm.pc <- target);
          clen.(term_pc) <- 1
        end
    | Call target ->
        let ret_pc = term_pc + 1 in
        if chainable target then begin
          let tgt = code.(target) in
          let rb = clen.(target) in
          code.(term_pc) <-
            (fun e ->
              let m = e.cm in
              if m.sp >= stack_depth then begin
                m.icount <- m.icount - rb;
                m.pc <- term_pc;
                raise
                  (Stack_error
                     (Printf.sprintf "call-stack overflow at pc %d" term_pc))
              end;
              m.callstack.(m.sp) <- ret_pc;
              m.sp <- m.sp + 1;
              tgt e);
          clen.(term_pc) <- 1 + clen.(target);
          blocks_from.(b) <- 1 + blocks_from.(bb_of_pc.(target))
        end
        else begin
          code.(term_pc) <-
            (fun e ->
              let m = e.cm in
              if m.sp >= stack_depth then begin
                m.pc <- term_pc;
                raise
                  (Stack_error
                     (Printf.sprintf "call-stack overflow at pc %d" term_pc))
              end;
              m.callstack.(m.sp) <- ret_pc;
              m.sp <- m.sp + 1;
              m.pc <- target);
          clen.(term_pc) <- 1
        end
    | Ret ->
        code.(term_pc) <-
          (fun e ->
            let m = e.cm in
            if m.sp <= 0 then begin
              m.pc <- term_pc;
              raise
                (Stack_error
                   (Printf.sprintf "ret on empty stack at pc %d" term_pc))
            end;
            m.sp <- m.sp - 1;
            m.pc <- m.callstack.(m.sp));
        clen.(term_pc) <- 1
    | Halt ->
        code.(term_pc) <-
          (fun e ->
            e.cm.pc <- term_pc;
            e.c_halted <- true);
        clen.(term_pc) <- 1
    | i ->
        (* fallthrough terminator: a non-control instruction whose
           successor is a leader (or the end of the program) *)
        let succ = term_pc + 1 in
        if chainable succ then begin
          code.(term_pc) <-
            compile_straight term_pc i ~next:code.(succ) ~clen_next:clen.(succ);
          clen.(term_pc) <- 1 + clen.(succ);
          blocks_from.(b) <- 1 + blocks_from.(bb_of_pc.(succ))
        end
        else begin
          code.(term_pc) <-
            compile_straight term_pc i
              ~next:(fun e -> e.cm.pc <- succ)
              ~clen_next:0;
          clen.(term_pc) <- 1
        end);
    for pc = term_pc - 1 downto start do
      code.(pc) <-
        compile_straight pc instrs.(pc) ~next:code.(pc + 1)
          ~clen_next:clen.(pc + 1);
      clen.(pc) <- 1 + clen.(pc + 1)
    done;
    (* leader prologue: the block's events, then the straight body *)
    let plain_start = code.(start) in
    code.(start) <-
      (fun e ->
        if e.c_hooked then begin
          e.c_block b;
          e.c_block_exec b len;
          e.c_span start len
        end;
        plain_start e);
    entry_code.(start) <- code.(start);
    entry_blocks.(start) <- blocks_from.(b);
    (* mid-block resume entries: partial aggregates, no [on_block] —
       matching [run_block] resuming inside a block *)
    for pc = start + 1 to term_pc do
      let npart = term_pc + 1 - pc in
      let body = code.(pc) in
      entry_code.(pc) <-
        (fun e ->
          if e.c_hooked then begin
            e.c_block_exec b npart;
            e.c_span pc npart
          end;
          body e);
      entry_blocks.(pc) <- blocks_from.(b)
    done
  done;
  { entry_code; entry_len = clen; entry_blocks }

(* Per-domain cache of compiled programs, keyed by physical identity of
   the [Program.t].  Compilation is deterministic and self-contained,
   so worker domains compile independently instead of sharing (no locks
   on the replay hot path); the bound only guards against unbounded
   growth when many distinct programs flow through one domain. *)
let compiled_cache_limit = 32

let compiled_cache : (Program.t * compiled) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let compiled_for (prog : Program.t) : compiled =
  let cache = Domain.DLS.get compiled_cache in
  match !cache with
  | (p0, c0) :: _ when p0 == prog -> c0
  | entries -> (
      let rec find = function
        | [] -> None
        | (p, (c : compiled)) :: _ when p == prog -> Some c
        | _ :: rest -> find rest
      in
      match find entries with
      | Some c ->
          (* move-to-front keeps the repeated-replay case one compare *)
          cache := (prog, c) :: List.filter (fun (p, _) -> p != prog) entries;
          c
      | None ->
          let c = compile prog in
          let entries =
            if List.length entries >= compiled_cache_limit then
              List.filteri (fun i _ -> i < compiled_cache_limit - 1) entries
            else entries
          in
          cache := (prog, c) :: entries;
          c)

let run_compiled ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let c = compiled_for prog in
  let e =
    {
      cm = m;
      cregs = m.regs;
      cfregs = m.fregs;
      cmem = m.mem;
      csyscall = syscall;
      c_block = hooks.Hooks.on_block;
      c_block_exec = hooks.Hooks.on_block_exec;
      c_span = hooks.Hooks.on_block_span;
      c_branch = hooks.Hooks.on_branch;
      c_hooked = not (Hooks.is_nil hooks);
      c_halted = false;
    }
  in
  let entry_code = c.entry_code in
  let entry_len = c.entry_len in
  let entry_blocks = c.entry_blocks in
  let remaining = ref fuel in
  let blocks = ref 0 in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  while !running do
    let pc = m.pc in
    let len = Array.unsafe_get entry_len pc in
    if len <= !remaining then begin
      m.icount <- m.icount + len;
      remaining := !remaining - len;
      blocks := !blocks + Array.unsafe_get entry_blocks pc;
      (Array.unsafe_get entry_code pc) e;
      if e.c_halted then begin
        status := Halted;
        running := false
      end
      else if !remaining <= 0 then running := false
    end
    else begin
      (* Not enough fuel for the whole chain: the block-stepping tier
         (or the plain tier when nothing is hooked) retires exactly
         [remaining] instructions from here, landing the fuel boundary
         on the same instruction with identical partial-block events
         and machine state. *)
      status :=
        (if e.c_hooked then run_block ~hooks ~syscall ~fuel:!remaining prog m
         else run_plain ~syscall ~fuel:!remaining prog m);
      running := false
    end
  done;
  (* [vm.blocks_stepped] counts only hooked runs, mirroring the other
     tiers: nil-hook runs historically go through [run_plain] (which
     never counts) and their fuel splits legitimately differ between
     replay strategies (sequential scan vs capture-then-fan-out), so
     counting them would break the metric's jobs-invariance.  Hooked
     runs count exactly what [run_block] would for the same fuel. *)
  if e.c_hooked then Sp_obs.Metrics.add M.blocks !blocks;
  !status
[@@inline never]

type engine = Auto | Reference | Block_step | Compiled

(* Engine tiers, fastest applicable wins under [Auto]:
   - nil hooks                     -> [run_compiled]: one closure call
     per instruction, chained per superblock, zero decode
   - block-level only              -> [run_compiled] with the block
     prologues firing the aggregates
   - block-level + fused tool      -> [run_fused]: per-block dispatch,
     data references delivered as one aggregate segment per block
   - per-instr hooks               -> [run_hooked]: dispatch per retirement
   - per-instr hooks + fused tool  -> [run_mixed]: [run_hooked] plus
     single-instruction segment delivery
   [engine] pins the run at (at most) a given tier for differential
   testing: [Reference] forces the per-instruction family, [Block_step]
   the block-stepping family.  A pin never changes what the hook set
   can observe — sets needing per-instruction or fused delivery keep
   their engine regardless.  All tiers retire identical instruction
   streams and leave identical machine state for any fuel split. *)
let run ?(engine = Auto) ?(hooks = Hooks.nil) ?(syscall = default_syscall)
    ?(fuel = max_int) (prog : Program.t) (m : machine) =
  let icount0 = m.icount in
  let tlb0 = Memory.tlb_refills m.mem in
  let status =
    if Hooks.is_nil hooks then begin
      match engine with
      | Auto | Compiled ->
          Sp_obs.Metrics.incr M.runs_compiled;
          run_compiled ~hooks:Hooks.nil ~syscall ~fuel prog m
      | Block_step ->
          Sp_obs.Metrics.incr M.runs_block;
          run_block ~hooks:Hooks.nil ~syscall ~fuel prog m
      | Reference ->
          Sp_obs.Metrics.incr M.runs_plain;
          run_plain ~syscall ~fuel prog m
    end
    else if Hooks.block_level hooks then begin
      if Hooks.has_block_mems hooks then begin
        match engine with
        | Reference ->
            Sp_obs.Metrics.incr M.runs_mixed;
            run_mixed ~hooks ~syscall ~fuel prog m
        | Auto | Block_step | Compiled ->
            Sp_obs.Metrics.incr M.runs_fused;
            run_fused ~hooks ~syscall ~fuel prog m
      end
      else begin
        match engine with
        | Auto | Compiled ->
            Sp_obs.Metrics.incr M.runs_compiled;
            run_compiled ~hooks ~syscall ~fuel prog m
        | Block_step ->
            Sp_obs.Metrics.incr M.runs_block;
            run_block ~hooks ~syscall ~fuel prog m
        | Reference ->
            Sp_obs.Metrics.incr M.runs_hooked;
            run_hooked ~hooks ~syscall ~fuel prog m
      end
    end
    else if Hooks.has_block_mems hooks then begin
      Sp_obs.Metrics.incr M.runs_mixed;
      run_mixed ~hooks ~syscall ~fuel prog m
    end
    else begin
      Sp_obs.Metrics.incr M.runs_hooked;
      run_hooked ~hooks ~syscall ~fuel prog m
    end
  in
  Sp_obs.Metrics.add M.instructions (m.icount - icount0);
  Sp_obs.Metrics.add M.tlb_refills (Memory.tlb_refills m.mem - tlb0);
  status
