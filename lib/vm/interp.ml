open Sp_isa

type machine = {
  regs : int array;
  fregs : float array;
  mutable pc : int;
  callstack : int array;
  mutable sp : int;
  mem : Memory.t;
  mutable icount : int;
}

type status = Halted | Out_of_fuel

exception Stack_error of string

let stack_depth = 4096

let create ?mem ~entry () =
  let mem = match mem with Some m -> m | None -> Memory.create () in
  {
    regs = Array.make Isa.num_regs 0;
    fregs = Array.make Isa.num_fregs 0.0;
    pc = entry;
    callstack = Array.make stack_depth 0;
    sp = 0;
    mem;
    icount = 0;
  }

let default_syscall n = Sp_util.Rng.hash_string (string_of_int n) land 0xFFFF

(* Execution metrics, flushed once per [run] (and once per engine loop
   for block counts) so the hot loops stay untouched.  Instruction and
   TLB-refill totals are pure functions of the retired work and are
   registered stable; per-tier run counts depend on which pipeline path
   drove the interpreter, so they are not. *)
module M = struct
  let instructions = Sp_obs.Metrics.counter "vm.instructions"
  let tlb_refills = Sp_obs.Metrics.counter "vm.tlb_refills"
  let blocks = Sp_obs.Metrics.counter "vm.blocks_stepped"
  let runs_plain = Sp_obs.Metrics.counter ~stable:false "vm.runs.plain"
  let runs_block = Sp_obs.Metrics.counter ~stable:false "vm.runs.block"
  let runs_fused = Sp_obs.Metrics.counter ~stable:false "vm.runs.fused"
  let runs_hooked = Sp_obs.Metrics.counter ~stable:false "vm.runs.hooked"
  let runs_mixed = Sp_obs.Metrics.counter ~stable:false "vm.runs.mixed"
end

let exec_alu op a b =
  match (op : Isa.alu_op) with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then 0 else a / b
  | Rem -> if b = 0 then 0 else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)

let exec_falu op a b =
  match (op : Isa.falu_op) with
  | Fadd -> a +. b
  | Fsub -> a -. b
  | Fmul -> a *. b
  | Fdiv -> if b = 0.0 then 0.0 else a /. b

let eval_cond c a b =
  match (c : Isa.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

(* The uninstrumented fast path: the same walk as [run_hooked] below
   with every hook site deleted.  Replay fast-forwarding (region
   capture, warmup positioning) spends billions of instructions here,
   so the duplication buys a loop with zero closure calls — keep the
   two copies in lockstep when touching either. *)
let run_plain ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  while !running do
    let pc = m.pc in
    m.icount <- m.icount + 1;
    decr remaining;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc));
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc));
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Sys (n, rd) ->
        Array.unsafe_set regs rd (syscall n);
        m.pc <- pc + 1
    | Halt ->
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  !status
[@@inline never]

(* The block-stepping tier: hooks are block-level ([Hooks.block_level]),
   so all dispatch happens once per basic-block entry.  The block's
   extent comes from [Program.block_end]; the straight-line body then
   executes with no leader tests, no per-instruction fuel checks and no
   closure calls.  Only the final instruction of a block can transfer
   control, so the body match never sees one.

   Invariants kept in lockstep with the per-instruction engines:
   - [m.icount] is bulk-advanced at block entry, but any [Sys]
     instruction observes the exact per-instruction count (pinball
     logging records syscalls as [icount - 1]) and [m.pc] is set to the
     syscall's pc so a raising handler leaves the machine addressable;
   - a fuel boundary mid-block retires exactly [remaining] instructions
     and leaves [m.pc] at the next unexecuted one, so resumed runs are
     bit-identical to uninterrupted ones;
   - [on_block] fires only when entering through the leader (a resume
     mid-block does not re-announce the block), [on_block_exec] fires on
     every entry with the retired count, and [on_branch] fires at the
     terminator exactly as the per-instruction engines do. *)
let run_block ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let block_end = prog.block_end in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let on_branch = hooks.Hooks.on_branch in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  let blocks = ref 0 in
  while !running do
    incr blocks;
    let pc0 = m.pc in
    let bb = Array.unsafe_get bb_of_pc pc0 in
    if Array.unsafe_get is_leader pc0 then on_block bb;
    let stop = Array.unsafe_get block_end bb in
    let avail = stop - pc0 in
    let n = if avail <= !remaining then avail else !remaining in
    on_block_exec bb n;
    m.icount <- m.icount + n;
    remaining := !remaining - n;
    let last = pc0 + n - 1 in
    for pc = pc0 to last - 1 do
      match Array.unsafe_get instrs pc with
      | Alu (op, rd, r1, r2) ->
          Array.unsafe_set regs rd
            (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2))
      | Alui (op, rd, r1, imm) ->
          Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm)
      | Li (rd, imm) -> Array.unsafe_set regs rd imm
      | Mov (rd, rs) -> Array.unsafe_set regs rd (Array.unsafe_get regs rs)
      | Load (rd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          Array.unsafe_set regs rd (Memory.load mem a)
      | Store (rv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          Memory.store mem a (Array.unsafe_get regs rv)
      | Movs (rdst, rsrc) ->
          let src = Array.unsafe_get regs rsrc in
          let dst = Array.unsafe_get regs rdst in
          Memory.store mem dst (Memory.load mem src)
      | Falu (op, fd, f1, f2) ->
          Array.unsafe_set fregs fd
            (exec_falu op (Array.unsafe_get fregs f1)
               (Array.unsafe_get fregs f2))
      | Fload (fd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          Array.unsafe_set fregs fd (Memory.loadf mem a)
      | Fstore (fv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          Memory.storef mem a (Array.unsafe_get fregs fv)
      | Fmovi (fd, x) -> Array.unsafe_set fregs fd x
      | Cvtif (fd, rs) ->
          Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs))
      | Cvtfi (rd, fs) ->
          Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs))
      | Sys (num, rd) ->
          (* expose the exact retirement index to the handler *)
          let bulk = m.icount in
          m.icount <- bulk - (last - pc);
          m.pc <- pc;
          Array.unsafe_set regs rd (syscall num);
          m.icount <- bulk
      | Branch _ | Jump _ | Call _ | Ret | Halt ->
          (* control instructions end their block *)
          assert false
    done;
    let pc = last in
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Sys (num, rd) ->
        m.pc <- pc;
        Array.unsafe_set regs rd (syscall num);
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc))
        end;
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc))
        end;
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Halt ->
        m.pc <- pc;
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  Sp_obs.Metrics.add M.blocks !blocks;
  !status
[@@inline never]

(* The fused block-stepping tier: [run_block] plus collection of the
   straight-line body's data references into per-run buffers, delivered
   to [on_block_mems] as one aggregate segment per block entry.  The
   cache tool then walks the block's i-fetch line/page grid and its
   data stream in one pass instead of being called back per
   instruction.

   Segment invariants (the exactness contract with the tool):
   - segments partition the retirement stream: every retired
     instruction belongs to exactly one segment, in order, so the
     tool's reconstructed fetch stream is the per-instruction one;
   - a [Sys] in the body flushes the segment up to and including the
     syscall instruction *before* invoking the handler — the
     per-instruction tier fires the fetch hook before executing, so a
     raising handler must leave the tool having seen exactly the same
     prefix;
   - the terminator's references are collected (addresses are
     computable before any state change) and the whole segment flushed
     before the terminator's effect runs, so a [Call]/[Ret] stack
     error also leaves the tool exactly one instruction ahead of the
     machine, as the per-instruction tier does;
   - reference buffers are reused across segments; offsets are relative
     to the segment start and addresses carry the write bit in bit 0
     (see [Hooks.on_block_mems]). *)
let run_fused ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let block_end = prog.block_end in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let on_block_mems = hooks.Hooks.on_block_mems in
  let on_branch = hooks.Hooks.on_branch in
  (* at most two references per instruction (Movs: read then write) *)
  let cap = 2 * prog.max_block_len in
  let offs = Array.make cap 0 in
  let addrs = Array.make cap 0 in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  let blocks = ref 0 in
  while !running do
    incr blocks;
    let pc0 = m.pc in
    let bb = Array.unsafe_get bb_of_pc pc0 in
    if Array.unsafe_get is_leader pc0 then on_block bb;
    let stop = Array.unsafe_get block_end bb in
    let avail = stop - pc0 in
    let n = if avail <= !remaining then avail else !remaining in
    on_block_exec bb n;
    m.icount <- m.icount + n;
    remaining := !remaining - n;
    let last = pc0 + n - 1 in
    let seg_start = ref pc0 in
    let nrefs = ref 0 in
    for pc = pc0 to last - 1 do
      match Array.unsafe_get instrs pc with
      | Alu (op, rd, r1, r2) ->
          Array.unsafe_set regs rd
            (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2))
      | Alui (op, rd, r1, imm) ->
          Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm)
      | Li (rd, imm) -> Array.unsafe_set regs rd imm
      | Mov (rd, rs) -> Array.unsafe_set regs rd (Array.unsafe_get regs rs)
      | Load (rd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r (a lsl 1);
          nrefs := r + 1;
          Array.unsafe_set regs rd (Memory.load mem a)
      | Store (rv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r ((a lsl 1) lor 1);
          nrefs := r + 1;
          Memory.store mem a (Array.unsafe_get regs rv)
      | Movs (rdst, rsrc) ->
          let src = Array.unsafe_get regs rsrc in
          let dst = Array.unsafe_get regs rdst in
          let r = !nrefs in
          let o = pc - !seg_start in
          Array.unsafe_set offs r o;
          Array.unsafe_set addrs r (src lsl 1);
          Array.unsafe_set offs (r + 1) o;
          Array.unsafe_set addrs (r + 1) ((dst lsl 1) lor 1);
          nrefs := r + 2;
          Memory.store mem dst (Memory.load mem src)
      | Falu (op, fd, f1, f2) ->
          Array.unsafe_set fregs fd
            (exec_falu op (Array.unsafe_get fregs f1)
               (Array.unsafe_get fregs f2))
      | Fload (fd, rs, off) ->
          let a = Array.unsafe_get regs rs + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r (a lsl 1);
          nrefs := r + 1;
          Array.unsafe_set fregs fd (Memory.loadf mem a)
      | Fstore (fv, rb, off) ->
          let a = Array.unsafe_get regs rb + off in
          let r = !nrefs in
          Array.unsafe_set offs r (pc - !seg_start);
          Array.unsafe_set addrs r ((a lsl 1) lor 1);
          nrefs := r + 1;
          Memory.storef mem a (Array.unsafe_get fregs fv)
      | Fmovi (fd, x) -> Array.unsafe_set fregs fd x
      | Cvtif (fd, rs) ->
          Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs))
      | Cvtfi (rd, fs) ->
          Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs))
      | Sys (num, rd) ->
          (* flush through the syscall instruction, then expose the
             exact retirement index to the handler *)
          on_block_mems !seg_start (pc - !seg_start + 1) offs addrs !nrefs;
          nrefs := 0;
          seg_start := pc + 1;
          let bulk = m.icount in
          m.icount <- bulk - (last - pc);
          m.pc <- pc;
          Array.unsafe_set regs rd (syscall num);
          m.icount <- bulk
      | Branch _ | Jump _ | Call _ | Ret | Halt ->
          (* control instructions end their block *)
          assert false
    done;
    let pc = last in
    (* the terminator's data addresses depend only on registers, so they
       can be collected — and the whole segment flushed — before its
       effect runs (see the invariants above) *)
    (match Array.unsafe_get instrs pc with
    | Load (_, rs, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r ((Array.unsafe_get regs rs + off) lsl 1);
        nrefs := r + 1
    | Store (_, rb, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r
          (((Array.unsafe_get regs rb + off) lsl 1) lor 1);
        nrefs := r + 1
    | Movs (rdst, rsrc) ->
        let r = !nrefs in
        let o = pc - !seg_start in
        Array.unsafe_set offs r o;
        Array.unsafe_set addrs r (Array.unsafe_get regs rsrc lsl 1);
        Array.unsafe_set offs (r + 1) o;
        Array.unsafe_set addrs (r + 1) ((Array.unsafe_get regs rdst lsl 1) lor 1);
        nrefs := r + 2
    | Fload (_, rs, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r ((Array.unsafe_get regs rs + off) lsl 1);
        nrefs := r + 1
    | Fstore (_, rb, off) ->
        let r = !nrefs in
        Array.unsafe_set offs r (pc - !seg_start);
        Array.unsafe_set addrs r
          (((Array.unsafe_get regs rb + off) lsl 1) lor 1);
        nrefs := r + 1
    | _ -> ());
    on_block_mems !seg_start (pc - !seg_start + 1) offs addrs !nrefs;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Sys (num, rd) ->
        m.pc <- pc;
        Array.unsafe_set regs rd (syscall num);
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc))
        end;
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then begin
          m.pc <- pc;
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc))
        end;
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Halt ->
        m.pc <- pc;
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  Sp_obs.Metrics.add M.blocks !blocks;
  !status
[@@inline never]

let run_hooked ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let kinds = prog.kinds in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let has_block_exec = on_block_exec != Hooks.nil.Hooks.on_block_exec in
  let on_instr = hooks.Hooks.on_instr in
  let on_read = hooks.Hooks.on_read in
  let on_write = hooks.Hooks.on_write in
  let on_branch = hooks.Hooks.on_branch in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  while !running do
    let pc = m.pc in
    if Array.unsafe_get is_leader pc then on_block (Array.unsafe_get bb_of_pc pc);
    (* block-level tools seq'd with per-instruction ones still see every
       retirement, one block-credit at a time *)
    if has_block_exec then on_block_exec (Array.unsafe_get bb_of_pc pc) 1;
    on_instr pc (Array.unsafe_get kinds pc);
    m.icount <- m.icount + 1;
    decr remaining;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set regs rd (Memory.load mem a);
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.store mem a (Array.unsafe_get regs rv);
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        on_read src;
        on_write dst;
        Memory.store mem dst (Memory.load mem src);
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.storef mem a (Array.unsafe_get fregs fv);
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        m.pc <- (if taken then target else pc + 1)
    | Jump target -> m.pc <- target
    | Call target ->
        if m.sp >= stack_depth then
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc));
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        if m.sp <= 0 then
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc));
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Sys (n, rd) ->
        Array.unsafe_set regs rd (syscall n);
        m.pc <- pc + 1
    | Halt ->
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  !status
[@@inline never]

(* [run_hooked] plus [on_block_mems] delivery: when a fused (segment
   consuming) tool is seq'd with genuinely per-instruction hooks, the
   set cannot block-step, but the fused tool must still see every
   retirement exactly once.  This copy delivers one single-instruction
   segment per retired instruction — flushed after execution for
   ordinary instructions, but *before* a syscall handler runs and
   before a [Call]/[Ret] stack error is raised, matching the fetch
   visibility of the per-instruction hooks.  Kept separate from
   [run_hooked] so hook sets without a fused tool pay nothing. *)
let run_mixed ~hooks ~syscall ~fuel (prog : Program.t) (m : machine) =
  let instrs = prog.instrs in
  let kinds = prog.kinds in
  let is_leader = prog.is_leader in
  let bb_of_pc = prog.bb_of_pc in
  let regs = m.regs in
  let fregs = m.fregs in
  let mem = m.mem in
  let on_block = hooks.Hooks.on_block in
  let on_block_exec = hooks.Hooks.on_block_exec in
  let has_block_exec = on_block_exec != Hooks.nil.Hooks.on_block_exec in
  let on_block_mems = hooks.Hooks.on_block_mems in
  let on_instr = hooks.Hooks.on_instr in
  let on_read = hooks.Hooks.on_read in
  let on_write = hooks.Hooks.on_write in
  let on_branch = hooks.Hooks.on_branch in
  (* single-instruction segments: both offsets are 0, at most two refs *)
  let offs = Array.make 2 0 in
  let addrs = Array.make 2 0 in
  let remaining = ref fuel in
  let status = ref Out_of_fuel in
  let running = ref (fuel > 0) in
  while !running do
    let pc = m.pc in
    if Array.unsafe_get is_leader pc then on_block (Array.unsafe_get bb_of_pc pc);
    if has_block_exec then on_block_exec (Array.unsafe_get bb_of_pc pc) 1;
    on_instr pc (Array.unsafe_get kinds pc);
    m.icount <- m.icount + 1;
    decr remaining;
    (match Array.unsafe_get instrs pc with
    | Alu (op, rd, r1, r2) ->
        Array.unsafe_set regs rd
          (exec_alu op (Array.unsafe_get regs r1) (Array.unsafe_get regs r2));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Alui (op, rd, r1, imm) ->
        Array.unsafe_set regs rd (exec_alu op (Array.unsafe_get regs r1) imm);
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Li (rd, imm) ->
        Array.unsafe_set regs rd imm;
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Mov (rd, rs) ->
        Array.unsafe_set regs rd (Array.unsafe_get regs rs);
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Load (rd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set regs rd (Memory.load mem a);
        Array.unsafe_set addrs 0 (a lsl 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Store (rv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.store mem a (Array.unsafe_get regs rv);
        Array.unsafe_set addrs 0 ((a lsl 1) lor 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Movs (rdst, rsrc) ->
        let src = Array.unsafe_get regs rsrc in
        let dst = Array.unsafe_get regs rdst in
        on_read src;
        on_write dst;
        Memory.store mem dst (Memory.load mem src);
        Array.unsafe_set addrs 0 (src lsl 1);
        Array.unsafe_set addrs 1 ((dst lsl 1) lor 1);
        on_block_mems pc 1 offs addrs 2;
        m.pc <- pc + 1
    | Falu (op, fd, f1, f2) ->
        Array.unsafe_set fregs fd
          (exec_falu op (Array.unsafe_get fregs f1) (Array.unsafe_get fregs f2));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Fload (fd, rs, off) ->
        let a = Array.unsafe_get regs rs + off in
        on_read a;
        Array.unsafe_set fregs fd (Memory.loadf mem a);
        Array.unsafe_set addrs 0 (a lsl 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Fstore (fv, rb, off) ->
        let a = Array.unsafe_get regs rb + off in
        on_write a;
        Memory.storef mem a (Array.unsafe_get fregs fv);
        Array.unsafe_set addrs 0 ((a lsl 1) lor 1);
        on_block_mems pc 1 offs addrs 1;
        m.pc <- pc + 1
    | Fmovi (fd, x) ->
        Array.unsafe_set fregs fd x;
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Cvtif (fd, rs) ->
        Array.unsafe_set fregs fd (float_of_int (Array.unsafe_get regs rs));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Cvtfi (rd, fs) ->
        Array.unsafe_set regs rd (int_of_float (Array.unsafe_get fregs fs));
        on_block_mems pc 1 offs addrs 0;
        m.pc <- pc + 1
    | Branch (c, r1, r2, target) ->
        let taken =
          eval_cond c (Array.unsafe_get regs r1) (Array.unsafe_get regs r2)
        in
        on_branch pc taken;
        on_block_mems pc 1 offs addrs 0;
        m.pc <- (if taken then target else pc + 1)
    | Jump target ->
        on_block_mems pc 1 offs addrs 0;
        m.pc <- target
    | Call target ->
        on_block_mems pc 1 offs addrs 0;
        if m.sp >= stack_depth then
          raise (Stack_error (Printf.sprintf "call-stack overflow at pc %d" pc));
        m.callstack.(m.sp) <- pc + 1;
        m.sp <- m.sp + 1;
        m.pc <- target
    | Ret ->
        on_block_mems pc 1 offs addrs 0;
        if m.sp <= 0 then
          raise (Stack_error (Printf.sprintf "ret on empty stack at pc %d" pc));
        m.sp <- m.sp - 1;
        m.pc <- m.callstack.(m.sp)
    | Sys (n, rd) ->
        (* flush before the handler: a raising handler must leave the
           fused tool having seen this instruction's fetch *)
        on_block_mems pc 1 offs addrs 0;
        Array.unsafe_set regs rd (syscall n);
        m.pc <- pc + 1
    | Halt ->
        on_block_mems pc 1 offs addrs 0;
        status := Halted;
        running := false);
    if !remaining <= 0 then running := false
  done;
  !status
[@@inline never]

(* Engine tiers, fastest applicable wins:
   - nil hooks                     -> [run_plain]: zero dispatch
   - block-level only              -> [run_block]: dispatch per block
   - block-level + fused tool      -> [run_fused]: per-block dispatch,
     data references delivered as one aggregate segment per block
   - per-instr hooks               -> [run_hooked]: dispatch per retirement
   - per-instr hooks + fused tool  -> [run_mixed]: [run_hooked] plus
     single-instruction segment delivery
   All tiers retire identical instruction streams and leave identical
   machine state for any fuel split. *)
let run ?(hooks = Hooks.nil) ?(syscall = default_syscall) ?(fuel = max_int)
    (prog : Program.t) (m : machine) =
  let icount0 = m.icount in
  let tlb0 = Memory.tlb_refills m.mem in
  let status =
    if Hooks.is_nil hooks then begin
      Sp_obs.Metrics.incr M.runs_plain;
      run_plain ~syscall ~fuel prog m
    end
    else if Hooks.block_level hooks then
      if Hooks.has_block_mems hooks then begin
        Sp_obs.Metrics.incr M.runs_fused;
        run_fused ~hooks ~syscall ~fuel prog m
      end
      else begin
        Sp_obs.Metrics.incr M.runs_block;
        run_block ~hooks ~syscall ~fuel prog m
      end
    else if Hooks.has_block_mems hooks then begin
      Sp_obs.Metrics.incr M.runs_mixed;
      run_mixed ~hooks ~syscall ~fuel prog m
    end
    else begin
      Sp_obs.Metrics.incr M.runs_hooked;
      run_hooked ~hooks ~syscall ~fuel prog m
    end
  in
  Sp_obs.Metrics.add M.instructions (m.icount - icount0);
  Sp_obs.Metrics.add M.tlb_refills (Memory.tlb_refills m.mem - tlb0);
  status
