let page_words_log2 = 12
let page_words = 1 lsl page_words_log2
let word_bytes = 8
let page_bytes = page_words * word_bytes
let offset_mask = page_words - 1

(* 38-bit byte address space; keeps indices positive even on buggy input. *)
let addr_mask = (1 lsl 38) - 1

(* Direct-mapped software TLB: a small page-pointer cache in front of
   the page hashtables, so hot loads and stores resolve their page with
   one tag compare instead of a [Hashtbl.find_opt].  Tags hold the page
   index (-1 = empty); a hit reads the page pointer straight out of the
   slot array.  Entries are only ever installed for pages that exist in
   the backing hashtable, and pages are never replaced there (only added
   by [store], or dropped wholesale by [clear], which resets the TLB),
   so a matching tag can never be stale. *)
let tlb_slots_log2 = 6
let tlb_slots = 1 lsl tlb_slots_log2
let tlb_mask = tlb_slots - 1

let no_int_page : int array = [||]
let no_float_page : float array = [||]

type t = {
  int_pages : (int, int array) Hashtbl.t;
  float_pages : (int, float array) Hashtbl.t;
  int_tags : int array;
  int_tlb : int array array;
  float_tags : int array;
  float_tlb : float array array;
  (* cumulative TLB refills (fast-path misses that installed an entry);
     off the fast path, read by the interpreter's metrics flush *)
  mutable tlb_refills : int;
}

let create () =
  {
    int_pages = Hashtbl.create 64;
    float_pages = Hashtbl.create 16;
    int_tags = Array.make tlb_slots (-1);
    int_tlb = Array.make tlb_slots no_int_page;
    float_tags = Array.make tlb_slots (-1);
    float_tlb = Array.make tlb_slots no_float_page;
    tlb_refills = 0;
  }

let int_page t idx =
  match Hashtbl.find_opt t.int_pages idx with
  | Some p -> p
  | None ->
      let p = Array.make page_words 0 in
      Hashtbl.add t.int_pages idx p;
      p

let float_page t idx =
  match Hashtbl.find_opt t.float_pages idx with
  | Some p -> p
  | None ->
      let p = Array.make page_words 0.0 in
      Hashtbl.add t.float_pages idx p;
      p

let load t addr =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  if Array.unsafe_get t.int_tags slot = idx then
    Array.unsafe_get
      (Array.unsafe_get t.int_tlb slot)
      (w land offset_mask)
  else
    match Hashtbl.find_opt t.int_pages idx with
    | Some p ->
        t.tlb_refills <- t.tlb_refills + 1;
        Array.unsafe_set t.int_tags slot idx;
        Array.unsafe_set t.int_tlb slot p;
        Array.unsafe_get p (w land offset_mask)
    | None -> 0

let store t addr v =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  let p =
    if Array.unsafe_get t.int_tags slot = idx then
      Array.unsafe_get t.int_tlb slot
    else begin
      let p = int_page t idx in
      t.tlb_refills <- t.tlb_refills + 1;
      Array.unsafe_set t.int_tags slot idx;
      Array.unsafe_set t.int_tlb slot p;
      p
    end
  in
  Array.unsafe_set p (w land offset_mask) v

let loadf t addr =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  if Array.unsafe_get t.float_tags slot = idx then
    Array.unsafe_get
      (Array.unsafe_get t.float_tlb slot)
      (w land offset_mask)
  else
    match Hashtbl.find_opt t.float_pages idx with
    | Some p ->
        t.tlb_refills <- t.tlb_refills + 1;
        Array.unsafe_set t.float_tags slot idx;
        Array.unsafe_set t.float_tlb slot p;
        Array.unsafe_get p (w land offset_mask)
    | None -> 0.0

let storef t addr v =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  let p =
    if Array.unsafe_get t.float_tags slot = idx then
      Array.unsafe_get t.float_tlb slot
    else begin
      let p = float_page t idx in
      t.tlb_refills <- t.tlb_refills + 1;
      Array.unsafe_set t.float_tags slot idx;
      Array.unsafe_set t.float_tlb slot p;
      p
    end
  in
  Array.unsafe_set p (w land offset_mask) v

let tlb_refills t = t.tlb_refills

let footprint_bytes t =
  (Hashtbl.length t.int_pages + Hashtbl.length t.float_pages) * page_bytes

let copy t =
  let dup tbl = Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) tbl [] in
  let restore pairs =
    let tbl = Hashtbl.create (List.length pairs * 2) in
    List.iter (fun (k, v) -> Hashtbl.add tbl k v) pairs;
    tbl
  in
  (* the copy starts with a cold TLB: its slots may only ever point at
     the copy's own page arrays *)
  {
    (create ()) with
    int_pages = restore (dup t.int_pages);
    float_pages = restore (dup t.float_pages);
  }

(* ------------------------------------------------------------------ *)
(* Serialisation (pinball format v2).  Pages are written sorted by
   index so the encoding of a given memory image is deterministic. *)

let max_page_index = (addr_mask lsr 3) lsr page_words_log2

let sorted_pages tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let write buf t =
  let open Sp_util in
  Binio.w_u32 buf page_words;
  Binio.w_u32 buf (Hashtbl.length t.int_pages);
  List.iter
    (fun (idx, page) ->
      Binio.w_i64 buf idx;
      Array.iter (Binio.w_i64 buf) page)
    (sorted_pages t.int_pages);
  Binio.w_u32 buf (Hashtbl.length t.float_pages);
  List.iter
    (fun (idx, page) ->
      Binio.w_i64 buf idx;
      Array.iter (Binio.w_f64 buf) page)
    (sorted_pages t.float_pages)

let read r =
  let open Sp_util in
  let pw = Binio.r_u32 r in
  if pw <> page_words then
    Binio.fail "Memory: page size %d, expected %d" pw page_words;
  let t = create () in
  let read_pages tbl read_word =
    let n = Binio.r_u32 r in
    for _ = 1 to n do
      let idx = Binio.r_i64 r in
      if idx < 0 || idx > max_page_index then
        Binio.fail "Memory: page index %d out of range" idx;
      if Hashtbl.mem tbl idx then
        Binio.fail "Memory: duplicate page index %d" idx;
      (* each word read is bounds-checked, so a corrupt page count fails
         at the first missing byte instead of over-allocating *)
      Hashtbl.add tbl idx (Array.init page_words (fun _ -> read_word r))
    done
  in
  read_pages t.int_pages Binio.r_i64;
  read_pages t.float_pages Binio.r_f64;
  t

let clear t =
  Hashtbl.reset t.int_pages;
  Hashtbl.reset t.float_pages;
  (* every cached page pointer is now dangling: empty the TLB and drop
     the page arrays so they can be collected *)
  Array.fill t.int_tags 0 tlb_slots (-1);
  Array.fill t.float_tags 0 tlb_slots (-1);
  Array.fill t.int_tlb 0 tlb_slots no_int_page;
  Array.fill t.float_tlb 0 tlb_slots no_float_page
