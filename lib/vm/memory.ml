let page_words_log2 = 12
let page_words = 1 lsl page_words_log2
let word_bytes = 8
let page_bytes = page_words * word_bytes
let offset_mask = page_words - 1

(* 38-bit byte address space; keeps indices positive even on buggy input. *)
let addr_mask = (1 lsl 38) - 1

(* Direct-mapped software TLB: a small page-pointer cache in front of
   the page hashtables, so hot loads and stores resolve their page with
   one tag compare instead of a hashtable lookup.

   Copy-on-write sharing adds a second tag array per view.  A page may
   be *frozen* — its array shared with one or more snapshots — in which
   case this memory must never write through it.  Loads check [tags]
   (a frozen page is fine to read); stores check [wtags], which only
   ever holds the index of a *private* page, so the store fast path
   stays a single compare and can never write through a shared array.
   Both tag arrays index the same [tlb] page-pointer slots; the
   invariant is: [wtags.(s) = i] implies [tags.(s) = i] and [tlb.(s)]
   is the private page array for index [i].  Freezing clears [wtags];
   privatising a page copies its array, replaces it in the hashtable
   and reinstalls the slot with both tags set.  Tags hold the page
   index (-1 = empty); pages are never replaced in the hashtable except
   by privatisation (which reinstalls the TLB slot) or dropped
   wholesale by [clear] (which resets the TLB), so a matching tag can
   never be stale. *)
let tlb_slots_log2 = 6
let tlb_slots = 1 lsl tlb_slots_log2
let tlb_mask = tlb_slots - 1

let no_int_page : int array = [||]
let no_float_page : float array = [||]

type t = {
  int_pages : (int, int array) Hashtbl.t;
  float_pages : (int, float array) Hashtbl.t;
  (* indices of pages whose arrays are shared copy-on-write with a
     snapshot (always a subset of the corresponding page table) *)
  int_frozen : (int, unit) Hashtbl.t;
  float_frozen : (int, unit) Hashtbl.t;
  int_tags : int array;
  int_wtags : int array;
  int_tlb : int array array;
  float_tags : int array;
  float_wtags : int array;
  float_tlb : float array array;
  (* cumulative TLB refills (fast-path misses that installed an entry);
     off the fast path, read by the interpreter's metrics flush *)
  mutable tlb_refills : int;
}

let create () =
  {
    int_pages = Hashtbl.create 64;
    float_pages = Hashtbl.create 16;
    int_frozen = Hashtbl.create 16;
    float_frozen = Hashtbl.create 16;
    int_tags = Array.make tlb_slots (-1);
    int_wtags = Array.make tlb_slots (-1);
    int_tlb = Array.make tlb_slots no_int_page;
    float_tags = Array.make tlb_slots (-1);
    float_wtags = Array.make tlb_slots (-1);
    float_tlb = Array.make tlb_slots no_float_page;
    tlb_refills = 0;
  }

let load t addr =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  if Array.unsafe_get t.int_tags slot = idx then
    Array.unsafe_get
      (Array.unsafe_get t.int_tlb slot)
      (w land offset_mask)
  else
    match Hashtbl.find t.int_pages idx with
    | p ->
        t.tlb_refills <- t.tlb_refills + 1;
        Array.unsafe_set t.int_tags slot idx;
        Array.unsafe_set t.int_wtags slot
          (if Hashtbl.mem t.int_frozen idx then -1 else idx);
        Array.unsafe_set t.int_tlb slot p;
        Array.unsafe_get p (w land offset_mask)
    | exception Not_found -> 0

(* Store slow path: missing page (allocate), frozen page (privatise:
   copy the array, replace it in the table, unfreeze) or plain TLB
   miss.  In every case the slot ends up holding a private page, so
   [wtags] may be installed. *)
let store_slow t idx slot off v =
  let p =
    match Hashtbl.find t.int_pages idx with
    | p ->
        if Hashtbl.mem t.int_frozen idx then begin
          let q = Array.copy p in
          Hashtbl.replace t.int_pages idx q;
          Hashtbl.remove t.int_frozen idx;
          q
        end
        else p
    | exception Not_found ->
        let p = Array.make page_words 0 in
        Hashtbl.add t.int_pages idx p;
        p
  in
  t.tlb_refills <- t.tlb_refills + 1;
  Array.unsafe_set t.int_tags slot idx;
  Array.unsafe_set t.int_wtags slot idx;
  Array.unsafe_set t.int_tlb slot p;
  Array.unsafe_set p off v

let store t addr v =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  if Array.unsafe_get t.int_wtags slot = idx then
    Array.unsafe_set
      (Array.unsafe_get t.int_tlb slot)
      (w land offset_mask) v
  else store_slow t idx slot (w land offset_mask) v

let loadf t addr =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  if Array.unsafe_get t.float_tags slot = idx then
    Array.unsafe_get
      (Array.unsafe_get t.float_tlb slot)
      (w land offset_mask)
  else
    match Hashtbl.find t.float_pages idx with
    | p ->
        t.tlb_refills <- t.tlb_refills + 1;
        Array.unsafe_set t.float_tags slot idx;
        Array.unsafe_set t.float_wtags slot
          (if Hashtbl.mem t.float_frozen idx then -1 else idx);
        Array.unsafe_set t.float_tlb slot p;
        Array.unsafe_get p (w land offset_mask)
    | exception Not_found -> 0.0

let storef_slow t idx slot off v =
  let p =
    match Hashtbl.find t.float_pages idx with
    | p ->
        if Hashtbl.mem t.float_frozen idx then begin
          let q = Array.copy p in
          Hashtbl.replace t.float_pages idx q;
          Hashtbl.remove t.float_frozen idx;
          q
        end
        else p
    | exception Not_found ->
        let p = Array.make page_words 0.0 in
        Hashtbl.add t.float_pages idx p;
        p
  in
  t.tlb_refills <- t.tlb_refills + 1;
  Array.unsafe_set t.float_tags slot idx;
  Array.unsafe_set t.float_wtags slot idx;
  Array.unsafe_set t.float_tlb slot p;
  Array.unsafe_set p off v

let storef t addr v =
  let w = (addr land addr_mask) lsr 3 in
  let idx = w lsr page_words_log2 in
  let slot = idx land tlb_mask in
  if Array.unsafe_get t.float_wtags slot = idx then
    Array.unsafe_set
      (Array.unsafe_get t.float_tlb slot)
      (w land offset_mask) v
  else storef_slow t idx slot (w land offset_mask) v

let tlb_refills t = t.tlb_refills

let footprint_bytes t =
  (Hashtbl.length t.int_pages + Hashtbl.length t.float_pages) * page_bytes

(* ------------------------------------------------------------------ *)
(* Copy-on-write sharing *)

let fully_frozen t =
  Hashtbl.length t.int_frozen = Hashtbl.length t.int_pages
  && Hashtbl.length t.float_frozen = Hashtbl.length t.float_pages

let freeze t =
  if not (fully_frozen t) then begin
    Hashtbl.iter (fun idx _ -> Hashtbl.replace t.int_frozen idx ()) t.int_pages;
    Hashtbl.iter
      (fun idx _ -> Hashtbl.replace t.float_frozen idx ())
      t.float_pages;
    (* no slot may claim write permission on a now-shared page *)
    Array.fill t.int_wtags 0 tlb_slots (-1);
    Array.fill t.float_wtags 0 tlb_slots (-1)
  end

let cow_clone t =
  freeze t;
  (* [t] is now fully frozen, so the clone shares every page array;
     either side privatises on its first write to a page.  When [t] was
     already fully frozen (a snapshot image) [freeze] mutated nothing,
     making concurrent clones of one snapshot safe: this is pure
     reading. *)
  {
    int_pages = Hashtbl.copy t.int_pages;
    float_pages = Hashtbl.copy t.float_pages;
    int_frozen = Hashtbl.copy t.int_frozen;
    float_frozen = Hashtbl.copy t.float_frozen;
    int_tags = Array.make tlb_slots (-1);
    int_wtags = Array.make tlb_slots (-1);
    int_tlb = Array.make tlb_slots no_int_page;
    float_tags = Array.make tlb_slots (-1);
    float_wtags = Array.make tlb_slots (-1);
    float_tlb = Array.make tlb_slots no_float_page;
    tlb_refills = 0;
  }

let copy t =
  let dup tbl = Hashtbl.fold (fun k v acc -> (k, Array.copy v) :: acc) tbl [] in
  let restore pairs =
    let tbl = Hashtbl.create (List.length pairs * 2) in
    List.iter (fun (k, v) -> Hashtbl.add tbl k v) pairs;
    tbl
  in
  (* the copy starts with a cold TLB and owns every page privately *)
  {
    (create ()) with
    int_pages = restore (dup t.int_pages);
    float_pages = restore (dup t.float_pages);
  }

(* ------------------------------------------------------------------ *)
(* Serialisation (pinball format v2).  Pages are written sorted by
   index so the encoding of a given memory image is deterministic. *)

let max_page_index = (addr_mask lsr 3) lsr page_words_log2

let sorted_pages tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)

let write buf t =
  let open Sp_util in
  Binio.w_u32 buf page_words;
  Binio.w_u32 buf (Hashtbl.length t.int_pages);
  List.iter
    (fun (idx, page) ->
      Binio.w_i64 buf idx;
      Binio.w_i64s buf page)
    (sorted_pages t.int_pages);
  Binio.w_u32 buf (Hashtbl.length t.float_pages);
  List.iter
    (fun (idx, page) ->
      Binio.w_i64 buf idx;
      Binio.w_f64s buf page)
    (sorted_pages t.float_pages)

let read r =
  let open Sp_util in
  let pw = Binio.r_u32 r in
  if pw <> page_words then
    Binio.fail "Memory: page size %d, expected %d" pw page_words;
  let t = create () in
  let read_pages tbl read_block =
    let n = Binio.r_u32 r in
    for _ = 1 to n do
      let idx = Binio.r_i64 r in
      if idx < 0 || idx > max_page_index then
        Binio.fail "Memory: page index %d out of range" idx;
      if Hashtbl.mem tbl idx then
        Binio.fail "Memory: duplicate page index %d" idx;
      (* the block read is bounds-checked up front, so a corrupt page
         count fails before any allocation *)
      Hashtbl.add tbl idx (read_block r page_words)
    done
  in
  read_pages t.int_pages Binio.r_i64s;
  read_pages t.float_pages Binio.r_f64s;
  t

let clear t =
  Hashtbl.reset t.int_pages;
  Hashtbl.reset t.float_pages;
  Hashtbl.reset t.int_frozen;
  Hashtbl.reset t.float_frozen;
  (* every cached page pointer is now dangling: empty the TLB and drop
     the page arrays so they can be collected *)
  Array.fill t.int_tags 0 tlb_slots (-1);
  Array.fill t.int_wtags 0 tlb_slots (-1);
  Array.fill t.float_tags 0 tlb_slots (-1);
  Array.fill t.float_wtags 0 tlb_slots (-1);
  Array.fill t.int_tlb 0 tlb_slots no_int_page;
  Array.fill t.float_tlb 0 tlb_slots no_float_page
