(** Sparse paged memory for the virtual machine.

    The address space is byte-addressed but all accesses are 8-byte words
    (the cache simulators see the byte addresses; the interpreter sees
    words).  Pages are allocated lazily on first touch, so a workload with
    a multi-gigabyte *address* range costs only its actual footprint.

    Integer and floating-point data live in parallel page views: loads
    and stores of one view at an address do not alias the other.  Our
    workloads never reinterpret bytes across the two, and keeping the
    views separate lets both sides use unboxed OCaml arrays. *)

type t

val create : unit -> t

val load : t -> int -> int
(** [load mem addr] reads the word at byte address [addr] (0 if untouched). *)

val store : t -> int -> int -> unit
(** [store mem addr v] writes the word at byte address [addr]. *)

val loadf : t -> int -> float
val storef : t -> int -> float -> unit

val word_bytes : int
(** Bytes per word (8). *)

val page_bytes : int
(** Bytes per page. *)

val footprint_bytes : t -> int
(** Total bytes of pages touched so far (int + float views). *)

val tlb_refills : t -> int
(** Cumulative software-TLB refills (fast-path misses that installed an
    entry) since this memory was created.  Deterministic for a given
    access stream; the interpreter flushes deltas into the
    [vm.tlb_refills] metric. *)

val copy : t -> t
(** Deep copy; the result shares nothing with the source. *)

val freeze : t -> unit
(** Mark every current page as shared (copy-on-write): subsequent
    stores privatise a page on first write instead of mutating the
    shared array.  Idempotent, and a no-op (with no mutation at all)
    when the memory is already fully frozen. *)

val cow_clone : t -> t
(** A logically independent copy that shares every page array with [t]
    copy-on-write: O(pages) bookkeeping instead of O(image) copying,
    and either side privatises a page the first time it writes to it.
    Freezes [t] as a side effect.  When [t] is already fully frozen (a
    snapshot image) the call mutates nothing, so concurrent clones of
    one frozen memory from multiple domains are safe. *)

val clear : t -> unit

(** {1 Serialisation (pinball format v2)} *)

val write : Buffer.t -> t -> unit
(** Deterministic encoding of the touched pages (sorted by index). *)

val read : Sp_util.Binio.reader -> t
(** Decode an image written by {!write}.  Every field is validated
    (page size, page indices, byte bounds).
    @raise Sp_util.Binio.Corrupt on malformed input. *)
