(* Pinball portability: the PinPlay property the paper relies on — a
   checkpoint is self-contained, so it can be written to disk, copied
   anywhere, and replayed without the benchmark, its inputs, or the
   machine that recorded it.

     dune exec examples/pinball_portability.exe -- [benchmark] [scale] *)

open Sp_pinball
open Specrepro

let () =
  let bench = if Array.length Sys.argv > 1 then Sys.argv.(1) else "557.xz_r" in
  let scale =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 0.1
  in
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "specrepro-pinballs" in
  let spec = Sp_workloads.Suite.find bench in
  let built = Sp_workloads.Benchspec.build ~slices_scale:scale spec in
  let prog = built.Sp_workloads.Benchspec.program in

  (* 1. log the whole execution, with BBV profiling piggybacked *)
  let bbv =
    Sp_pin.Bbv_tool.create ~slice_len:built.Sp_workloads.Benchspec.slice_insns prog
  in
  let whole =
    Logger.log_whole ~benchmark:bench ~extra_tools:[ Sp_pin.Bbv_tool.hooks bbv ]
      prog
  in
  Sp_pin.Bbv_tool.finish bbv;
  Printf.printf "Logged whole pinball: %d instructions, %d recorded inputs\n"
    whole.Logger.total_insns
    (Array.length whole.Logger.pinball.Pinball.syscalls);

  (* 2. select simulation points and capture regional pinballs *)
  let sel =
    Sp_simpoint.Simpoints.select
      ~slice_len:built.Sp_workloads.Benchspec.slice_insns
      (Sp_pin.Bbv_tool.slices bbv)
  in
  let regions = Logger.capture_regions whole sel.Sp_simpoint.Simpoints.points in
  Printf.printf "Captured %d regional pinballs\n" (Array.length regions);

  (* 3. save them to disk *)
  let paths = Array.map (fun pb -> Store.save ~dir pb) regions in
  let bytes =
    Array.fold_left (fun acc p -> acc + (Unix.stat p).Unix.st_size) 0 paths
  in
  Printf.printf "Stored under %s (%d files, %.1f MB total)\n" dir
    (Array.length paths)
    (float_of_int bytes /. 1048576.0);

  (* 4. a 'different machine': load from disk and replay under tools,
        no benchmark build, no inputs *)
  let mixes =
    Store.list_dir ~dir
    |> List.map (fun path ->
           let pb = Store.load_exn path in
           let mixt = Sp_pin.Ldstmix.create () in
           let r = Replayer.replay ~tools:[ Sp_pin.Ldstmix.hooks mixt ] pb in
           (Pinball.weight pb, Sp_pin.Ldstmix.mix mixt, r.Replayer.retired))
  in
  let weighted =
    Sp_pin.Mix.weighted (List.map (fun (w, m, _) -> (w, m)) mixes)
  in
  let insns = List.fold_left (fun acc (_, _, n) -> acc + n) 0 mixes in
  Printf.printf
    "Replayed from disk: %d instructions across %d regions\n  weighted mix: %s\n"
    insns (List.length mixes)
    (Format.asprintf "%a" Sp_pin.Mix.pp weighted);

  (* compare against the live whole run *)
  let mixt = Sp_pin.Ldstmix.create () in
  ignore (Replayer.replay ~tools:[ Sp_pin.Ldstmix.hooks mixt ] whole.Logger.pinball);
  Printf.printf "  whole-run mix: %s\n"
    (Format.asprintf "%a" Sp_pin.Mix.pp (Sp_pin.Ldstmix.mix mixt));
  Printf.printf "  largest class deviation: %.2f percentage points\n"
    (Sp_pin.Mix.max_abs_error_pp
       ~reference:(Sp_pin.Ldstmix.mix mixt)
       weighted);

  (* tidy up *)
  List.iter Sys.remove (Store.list_dir ~dir);
  ignore (Pipeline.default_options)
