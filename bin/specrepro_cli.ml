(* The specrepro command-line interface.

   Subcommands mirror the stages of the paper's methodology:
     list        the synthetic SPEC CPU2017 suite
     profile     whole-run profiling of one benchmark
     simpoints   simulation-point selection (optionally saving pinballs)
     replay      replay stored pinballs under pintools
     run         the full pipeline for one benchmark
     suite       the full pipeline for the whole suite (Table II + headlines)
     experiment  regenerate one of the paper's tables/figures *)

open Cmdliner
open Specrepro

(* ------------------------------------------------------------------ *)
(* shared arguments *)

let bench_arg =
  let doc = "Benchmark name (e.g. 505.mcf_r or mcf_r)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCHMARK" ~doc)

let scale_arg =
  let doc =
    "Scale factor for the whole-run length (1.0 = the calibrated paper-like \
     length; tests and demos use less)."
  in
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc)

let quiet_arg =
  let doc = "Suppress progress output." in
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel stages (suite fan-out, cold regional \
     replays, k-means, variance sweep).  1 runs fully sequentially; 0 picks \
     the hardware's recommended parallelism.  Any value produces identical \
     results — only wall-clock changes."
  in
  let env = Cmd.Env.info "SPECREPRO_JOBS" ~doc:"Default for $(b,--jobs)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc ~env)

let resolve_jobs jobs = if jobs <= 0 then Sp_util.Pool.default_jobs () else jobs

let cache_arg =
  let doc =
    "Content-addressed pinball cache directory.  The whole pinball logged \
     for each (benchmark, slice length, scale) is stored under a digest key \
     and reused by later invocations instead of re-logging; corrupt or \
     stale entries are quarantined and recomputed.  Inspect the directory \
     with $(b,specrepro pinballs)."
  in
  let env =
    Cmd.Env.info "SPECREPRO_PINBALL_CACHE"
      ~doc:"Default for $(b,--pinball-cache)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "pinball-cache" ] ~docv:"DIR" ~doc ~env)

let options ?pinball_cache ~scale ~quiet ~jobs () =
  {
    Pipeline.default_options with
    slices_scale = scale;
    progress = not quiet;
    jobs = resolve_jobs jobs;
    pinball_cache;
  }

let find_bench name =
  match Sp_workloads.Suite.find name with
  | spec -> Ok spec
  | exception Not_found ->
      Error
        (Printf.sprintf "unknown benchmark %S; try `specrepro list'" name)

(* ------------------------------------------------------------------ *)
(* list *)

let list_cmd =
  let run () =
    let t =
      Sp_util.Table.create ~title:"Synthetic SPEC CPU2017 suite"
        [
          ("Benchmark", Sp_util.Table.Left);
          ("Class", Sp_util.Table.Left);
          ("Sim points (paper)", Sp_util.Table.Right);
          ("90th-pct (paper)", Sp_util.Table.Right);
          ("Kernels", Sp_util.Table.Left);
        ]
    in
    List.iter
      (fun (s : Sp_workloads.Benchspec.t) ->
        Sp_util.Table.add_row t
          [
            s.Sp_workloads.Benchspec.name;
            Sp_workloads.Benchspec.suite_class_name
              s.Sp_workloads.Benchspec.suite_class;
            string_of_int s.Sp_workloads.Benchspec.planted_phases;
            string_of_int s.Sp_workloads.Benchspec.planted_n90;
            String.concat ","
              (List.map
                 (fun (k : Sp_workloads.Kernel.t) -> k.Sp_workloads.Kernel.name)
                 s.Sp_workloads.Benchspec.palette);
          ])
      Sp_workloads.Suite.all;
    Sp_util.Table.print t
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the synthetic SPEC CPU2017 benchmarks.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* profile *)

let profile_cmd =
  let run bench scale quiet jobs cache =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let options = options ?pinball_cache:cache ~scale ~quiet ~jobs () in
        let profile = Pipeline.profile_for_sweep ~options spec in
        let w = profile.Pipeline.sweep_whole_stats in
        Printf.printf "%s: %.0f instructions, %d slices\n"
          spec.Sp_workloads.Benchspec.name w.Runstats.insns
          (Array.length profile.Pipeline.sweep_slices);
        Printf.printf "instruction mix: %s\n"
          (Format.asprintf "%a" Sp_pin.Mix.pp w.Runstats.mix);
        Printf.printf
          "cache miss rates (Table I hierarchy, capacity-scaled): L1D %.2f%% \
           L2 %.2f%% L3 %.2f%%\n"
          (w.Runstats.l1d_miss *. 100.0)
          (w.Runstats.l2_miss *. 100.0)
          (w.Runstats.l3_miss *. 100.0);
        Printf.printf "timing model CPI: %.3f\n" w.Runstats.cpi
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run one benchmark to completion under the profiling pintools.")
    Term.(const run $ bench_arg $ scale_arg $ quiet_arg $ jobs_arg $ cache_arg)

(* ------------------------------------------------------------------ *)
(* simpoints *)

let simpoints_cmd =
  let out_arg =
    let doc = "Directory to save Whole and Regional Pinballs into." in
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR" ~doc)
  in
  let max_k_arg =
    let doc = "Maximum number of clusters (the paper uses 35)." in
    Arg.(value & opt int 35 & info [ "max-k" ] ~docv:"K" ~doc)
  in
  let run bench scale quiet jobs max_k out =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let options = options ~scale ~quiet ~jobs () in
        let options =
          {
            options with
            Pipeline.simpoint_config =
              { options.Pipeline.simpoint_config with max_k };
          }
        in
        let profile = Pipeline.profile_for_sweep ~options spec in
        let sel =
          Sp_simpoint.Simpoints.select ~config:options.Pipeline.simpoint_config
            ~slice_len:options.Pipeline.slice_insns
            profile.Pipeline.sweep_slices
        in
        Printf.printf "%s: %d simulation points over %d slices\n"
          spec.Sp_workloads.Benchspec.name sel.Sp_simpoint.Simpoints.chosen_k
          sel.Sp_simpoint.Simpoints.num_slices;
        Array.iter
          (fun p ->
            Printf.printf "  %s\n"
              (Format.asprintf "%a" Sp_simpoint.Simpoints.pp_point p))
          sel.Sp_simpoint.Simpoints.points;
        (match out with
        | None -> ()
        | Some dir ->
            let saved = ref 1 in
            ignore
              (Sp_pinball.Store.save ~dir profile.Pipeline.sweep_whole.Sp_pinball.Logger.pinball);
            Sp_pinball.Logger.scan_regions profile.Pipeline.sweep_whole
              sel.Sp_simpoint.Simpoints.points (fun pb ->
                ignore (Sp_pinball.Store.save ~dir pb);
                incr saved);
            Printf.printf "saved %d pinballs under %s\n" !saved dir)
  in
  Cmd.v
    (Cmd.info "simpoints"
       ~doc:"Select simulation points for a benchmark (optionally saving \
             pinballs).")
    Term.(const run $ bench_arg $ scale_arg $ quiet_arg $ jobs_arg $ max_k_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* replay *)

let replay_cmd =
  let files_arg =
    let doc = "Pinball files (.pb) to replay." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"PINBALL" ~doc)
  in
  let replay_one path =
    match Sp_pinball.Store.load path with
    | Error e ->
        Printf.eprintf "specrepro replay: %s\n"
          (Sp_pinball.Store.error_message e);
        false
    | Ok pb ->
        let prog = pb.Sp_pinball.Pinball.program in
        let mixt = Sp_pin.Ldstmix.create () in
        let cache =
          Sp_pin.Allcache_tool.create ~config:Sp_cache.Config.allcache_sim prog
        in
        let core =
          Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim
            prog
        in
        let r =
          Sp_pinball.Replayer.replay
            ~tools:
              [
                Sp_pin.Ldstmix.hooks mixt;
                Sp_pin.Allcache_tool.hooks cache;
                Sp_cpu.Interval_core.hooks core;
              ]
            pb
        in
        let stats = Sp_pin.Allcache_tool.stats cache in
        Printf.printf "%s (%s): %d insns  %s  L3 miss %.2f%%  CPI %.3f\n" path
          (Sp_pinball.Pinball.describe pb)
          r.Sp_pinball.Replayer.retired
          (Format.asprintf "%a" Sp_pin.Mix.pp (Sp_pin.Ldstmix.mix mixt))
          (stats.Sp_cache.Hierarchy.l3.miss_rate *. 100.0)
          (Sp_cpu.Interval_core.cpi core);
        true
  in
  let run files =
    let ok = List.fold_left (fun ok p -> replay_one p && ok) true files in
    if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay stored pinballs under the pintools.")
    Term.(const run $ files_arg)

(* ------------------------------------------------------------------ *)
(* exec *)

let exec_cmd =
  let file_arg =
    let doc = "Program text file (one instruction per line; # comments)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let fuel_arg =
    let doc = "Maximum instructions to execute." in
    Arg.(value & opt int 100_000_000 & info [ "fuel" ] ~docv:"N" ~doc)
  in
  let run file fuel =
    match Sp_vm.Progtext.load file with
    | Error e -> Printf.eprintf "%s: %s\n" file e; exit 1
    | Ok prog ->
        let mixt = Sp_pin.Ldstmix.create () in
        let cache =
          Sp_pin.Allcache_tool.create ~config:Sp_cache.Config.allcache_sim prog
        in
        let core =
          Sp_cpu.Interval_core.create ~config:Sp_cpu.Core_config.i7_3770_sim
            prog
        in
        let machine = Sp_vm.Interp.create ~entry:prog.Sp_vm.Program.entry () in
        let r =
          Sp_pin.Pin.run
            ~tools:
              [
                Sp_pin.Ldstmix.hooks mixt;
                Sp_pin.Allcache_tool.hooks cache;
                Sp_cpu.Interval_core.hooks core;
              ]
            ~fuel prog machine
        in
        Printf.printf "%s: %s after %d instructions\n" file
          (match r.Sp_pin.Pin.status with
          | Sp_vm.Interp.Halted -> "halted"
          | Sp_vm.Interp.Out_of_fuel -> "out of fuel")
          r.Sp_pin.Pin.retired;
        Printf.printf "registers: %s\n"
          (String.concat " "
             (List.mapi
                (fun i v -> Printf.sprintf "r%d=%d" i v)
                (Array.to_list machine.Sp_vm.Interp.regs)));
        Printf.printf "mix: %s\n"
          (Format.asprintf "%a" Sp_pin.Mix.pp (Sp_pin.Ldstmix.mix mixt));
        let s = Sp_pin.Allcache_tool.stats cache in
        Printf.printf "caches: L1D %.2f%%  L2 %.2f%%  L3 %.2f%% miss;  CPI %.3f\n"
          (s.Sp_cache.Hierarchy.l1d.miss_rate *. 100.)
          (s.Sp_cache.Hierarchy.l2.miss_rate *. 100.)
          (s.Sp_cache.Hierarchy.l3.miss_rate *. 100.)
          (Sp_cpu.Interval_core.cpi core)
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Execute a hand-written program text file under the pintools.")
    Term.(const run $ file_arg $ fuel_arg)

(* ------------------------------------------------------------------ *)
(* disasm *)

let disasm_cmd =
  let run bench =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let built = Sp_workloads.Benchspec.build ~slices_scale:0.01 spec in
        Format.printf "%a@." Sp_vm.Program.pp_listing
          built.Sp_workloads.Benchspec.program
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:"Print a benchmark's full disassembly with basic-block \
             boundaries.")
    Term.(const run $ bench_arg)

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let out_arg =
    let doc = "Output trace file." in
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE" ~doc)
  in
  let limit_arg =
    let doc = "Maximum number of events to record." in
    Arg.(value & opt int 1_000_000 & info [ "limit"; "n" ] ~docv:"N" ~doc)
  in
  let run bench scale quiet jobs out limit =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let options = options ~scale ~quiet ~jobs () in
        let built =
          Sp_workloads.Benchspec.build
            ~slice_insns:options.Pipeline.slice_insns
            ~slices_scale:options.Pipeline.slices_scale spec
        in
        let oc = open_out_bin out in
        let w = Sp_pin.Trace_io.Writer.create ~limit oc in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            ignore
              (Sp_pin.Pin.run_fresh
                 ~tools:[ Sp_pin.Trace_io.Writer.hooks w ]
                 built.Sp_workloads.Benchspec.program));
        Printf.printf "%s: wrote %d events to %s%s\n"
          spec.Sp_workloads.Benchspec.name
          (Sp_pin.Trace_io.Writer.events_written w)
          out
          (if Sp_pin.Trace_io.Writer.truncated w then " (truncated)" else "")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Export a benchmark's instrumented event stream as a text trace.")
    Term.(const run $ bench_arg $ scale_arg $ quiet_arg $ jobs_arg $ out_arg $ limit_arg)

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let run bench scale quiet jobs cache =
    match find_bench bench with
    | Error e -> prerr_endline e; exit 1
    | Ok spec ->
        let options = options ?pinball_cache:cache ~scale ~quiet ~jobs () in
        let r = Pipeline.run_benchmark ~options spec in
        Printf.printf
          "%s: %d points (paper %d), %d cover 90%% (paper %d)\n\n"
          spec.Sp_workloads.Benchspec.name
          (Array.length r.Pipeline.selection.points)
          spec.Sp_workloads.Benchspec.planted_phases
          (Pipeline.reduced_count r) spec.Sp_workloads.Benchspec.planted_n90;
        let show (s : Runstats.run_stats) =
          Printf.printf
            "%-22s %12.0f insns  %s\n%-22s L1D %5.2f%%  L2 %5.2f%%  L3 %6.2f%%  CPI %.3f\n"
            s.Runstats.label s.Runstats.insns
            (Format.asprintf "%a" Sp_pin.Mix.pp s.Runstats.mix)
            ""
            (s.Runstats.l1d_miss *. 100.0)
            (s.Runstats.l2_miss *. 100.0)
            (s.Runstats.l3_miss *. 100.0)
            s.Runstats.cpi
        in
        show r.Pipeline.whole;
        show (Pipeline.regional r);
        show (Pipeline.reduced r);
        show (Pipeline.warmup_regional r);
        Printf.printf "\nnative (perf) CPI: %.3f\n"
          (Sp_perf.Perf_counters.cpi r.Pipeline.native)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run the full pipeline for one benchmark.")
    Term.(const run $ bench_arg $ scale_arg $ quiet_arg $ jobs_arg $ cache_arg)

(* ------------------------------------------------------------------ *)
(* suite *)

let suite_cmd =
  let extended_arg =
    let doc = "Also run the 14 extended (non-Table II) workloads." in
    Arg.(value & flag & info [ "extended" ] ~doc)
  in
  let run scale quiet jobs cache extended =
    let options = options ?pinball_cache:cache ~scale ~quiet ~jobs () in
    let specs =
      if extended then Sp_workloads.Suite.full else Sp_workloads.Suite.all
    in
    let results = Pipeline.run_suite ~options ~specs () in
    Sp_util.Table.print (Experiments.table2 results);
    let t =
      Sp_util.Table.create ~title:"Headline claims"
        [
          ("Metric", Sp_util.Table.Left);
          ("Paper", Sp_util.Table.Right);
          ("Measured", Sp_util.Table.Right);
        ]
    in
    List.iter
      (fun (h : Experiments.headline) ->
        Sp_util.Table.add_row t [ h.metric; h.paper; h.measured ])
      (Experiments.headlines results);
    Sp_util.Table.print t
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:"Run the pipeline over all 29 benchmarks and print Table II plus \
             the headline comparisons.")
    Term.(const run $ scale_arg $ quiet_arg $ jobs_arg $ cache_arg $ extended_arg)

(* ------------------------------------------------------------------ *)
(* experiment *)

let experiment_cmd =
  let name_arg =
    let doc = "Experiment: table1, table3, fig3a, fig3b, ablation-bic, \
               ablation-proj, ablation-prefetch, sampling, statcache, models, rate \
               (suite-wide figures live in bench/main.exe)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc)
  in
  let run name scale quiet jobs =
    let options = options ~scale ~quiet ~jobs () in
    match name with
    | "table1" -> Sp_util.Table.print (Experiments.table1 ())
    | "table3" -> print_endline (Experiments.table3 ())
    | "fig3a" -> Sp_util.Table.print (Experiments.fig3a ~options ())
    | "fig3b" -> Sp_util.Table.print (Experiments.fig3b ~options ())
    | "ablation-bic" -> Sp_util.Table.print (Experiments.ablation_bic ~options ())
    | "ablation-proj" ->
        Sp_util.Table.print (Experiments.ablation_projection ~options ())
    | "ablation-prefetch" ->
        Sp_util.Table.print (Experiments.ablation_prefetch ~options ())
    | "sampling" -> Sp_util.Table.print (Experiments.sampling ~options ())
    | "statcache" -> Sp_util.Table.print (Experiments.statcache ~options ())
    | "models" -> Sp_util.Table.print (Experiments.models ~options ())
    | "rate" -> Sp_util.Table.print (Experiments.rate ~options ())
    | other ->
        Printf.eprintf
          "unknown experiment %S (suite-wide figures: use bench/main.exe)\n"
          other;
        exit 1
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a single-benchmark experiment.")
    Term.(const run $ name_arg $ scale_arg $ quiet_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* pinballs: inspect / verify / gc a store or cache directory *)

let pinballs_cmd =
  let dir_arg =
    let doc = "Pinball store or cache directory." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)
  in
  let describe_file path =
    match Sp_pinball.Store.load path with
    | Error e -> Error (Sp_pinball.Store.error_message e)
    | Ok pb ->
        let kind =
          match pb.Sp_pinball.Pinball.kind with
          | Sp_pinball.Pinball.Whole -> "whole"
          | Sp_pinball.Pinball.Region r -> Printf.sprintf "region %d" r.cluster
        in
        let length =
          match pb.Sp_pinball.Pinball.length with
          | Some l -> string_of_int l
          | None -> "to halt"
        in
        Ok (pb.Sp_pinball.Pinball.benchmark, kind, length)
  in
  let list_cmd =
    let run dir =
      let t =
        Sp_util.Table.create ~title:(Printf.sprintf "Pinballs under %s" dir)
          [
            ("File", Sp_util.Table.Left);
            ("Bytes", Sp_util.Table.Right);
            ("Benchmark", Sp_util.Table.Left);
            ("Kind", Sp_util.Table.Left);
            ("Length", Sp_util.Table.Right);
            ("Status", Sp_util.Table.Left);
          ]
      in
      List.iter
        (fun path ->
          let size =
            try string_of_int (Unix.stat path).Unix.st_size
            with Unix.Unix_error _ -> "?"
          in
          let benchmark, kind, length, status =
            match describe_file path with
            | Ok (b, k, l) -> (b, k, l, "ok")
            | Error e -> ("-", "-", "-", e)
          in
          Sp_util.Table.add_row t
            [ Filename.basename path; size; benchmark; kind; length; status ])
        (Sp_pinball.Store.list_dir ~dir);
      Sp_util.Table.print t;
      let manifest = Sp_pinball.Artifact_cache.read_manifest ~dir in
      if manifest <> [] then begin
        let m =
          Sp_util.Table.create ~title:"Cache manifest"
            [
              ("Key", Sp_util.Table.Left);
              ("Benchmark", Sp_util.Table.Left);
              ("Slice insns", Sp_util.Table.Right);
              ("Scale", Sp_util.Table.Right);
              ("File", Sp_util.Table.Left);
            ]
        in
        List.iter
          (fun (e : Sp_pinball.Artifact_cache.entry) ->
            Sp_util.Table.add_row m
              [
                e.key;
                e.benchmark;
                string_of_int e.slice_insns;
                Printf.sprintf "%g" e.slices_scale;
                e.file;
              ])
          manifest;
        Sp_util.Table.print m
      end
    in
    Cmd.v
      (Cmd.info "list"
         ~doc:"List the pinballs (and any cache manifest) in a directory.")
      Term.(const run $ dir_arg)
  in
  let verify_cmd =
    let run dir =
      let files = Sp_pinball.Store.list_dir ~dir in
      let bad =
        List.fold_left
          (fun bad path ->
            match Sp_pinball.Store.verify path with
            | Ok () ->
                Printf.printf "%s: ok\n" path;
                bad
            | Error e ->
                Printf.printf "%s\n" (Sp_pinball.Store.error_message e);
                bad + 1)
          0 files
      in
      Printf.printf "%d pinball(s), %d corrupt\n" (List.length files) bad;
      if bad > 0 then exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Fully validate every pinball in a directory (framing, \
               checksums, all fields); exits 1 if any is corrupt.")
      Term.(const run $ dir_arg)
  in
  let gc_cmd =
    let run dir =
      let r = Sp_pinball.Artifact_cache.gc ~dir in
      Printf.printf
        "%s: kept %d pinball(s); removed %d corrupt, %d quarantined, %d \
         temporary; pruned %d manifest entr%s\n"
        dir r.Sp_pinball.Artifact_cache.kept r.removed_corrupt
        r.removed_quarantined r.removed_tmp r.manifest_pruned
        (if r.manifest_pruned = 1 then "y" else "ies")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:"Garbage-collect a directory: drop corrupt pinballs, \
               quarantined entries, stale temporaries and dead manifest \
               entries.  Valid pinballs are never touched.")
      Term.(const run $ dir_arg)
  in
  Cmd.group
    (Cmd.info "pinballs"
       ~doc:"Inspect, verify and garbage-collect a pinball store or cache \
             directory.")
    [ list_cmd; verify_cmd; gc_cmd ]

(* ------------------------------------------------------------------ *)

let () =
  let doc =
    "reproduction of 'Efficacy of Statistical Sampling on Contemporary \
     Workloads: The Case of SPEC CPU2017' (IISWC 2019)"
  in
  let info = Cmd.info "specrepro" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            profile_cmd;
            simpoints_cmd;
            replay_cmd;
            pinballs_cmd;
            trace_cmd;
            disasm_cmd;
            exec_cmd;
            run_cmd;
            suite_cmd;
            experiment_cmd;
          ]))
